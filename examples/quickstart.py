#!/usr/bin/env python3
"""Quickstart: the paper's Listing 1, all three sum-of-squares variants.

Demonstrates the core progression of the Gozer system:

1. ``loc-sum-squares`` — plain sequential Gozer on the GVM;
2. ``par-sum-squares`` — local parallelism with futures (Section 2);
3. ``dist-sum-squares`` — transparent distribution with for-each on a
   simulated BlueBox cluster (Section 3);

plus the primitive that makes (3) possible: serializable continuations.

Run:  python examples/quickstart.py
"""

import pickle

from repro import Yielded, make_runtime
from repro.vinz.api import VinzEnvironment

LISTING_1 = """
(defun loc-sum-squares (numbers)
  (apply #'+
    (loop for number in numbers
          collect (* number number))))

(defun par-sum-squares (numbers)
  (apply #'+
    (loop for number in numbers
          collect (future (* number number)))))
"""

DIST_WORKFLOW = """
(defun dist-sum-squares (numbers)
  (apply #'+
    (for-each (number in numbers)
      (* number number))))

(defun main (params)
  (dist-sum-squares params))
"""

NUMBERS = list(range(1, 11))


def local_variants() -> None:
    print("## Local execution (one process)")
    rt = make_runtime(deterministic=False, max_workers=4)
    try:
        rt.eval_string(LISTING_1)
        numbers = "(list " + " ".join(map(str, NUMBERS)) + ")"
        loc = rt.eval_string(f"(loc-sum-squares {numbers})")
        par = rt.eval_string(f"(par-sum-squares {numbers})")
        print(f"  loc-sum-squares -> {loc}")
        print(f"  par-sum-squares -> {par}   (futures on a thread pool)")
    finally:
        rt.shutdown()


def continuations() -> None:
    print("\n## Continuations: suspend, serialize, resume")
    rt = make_runtime(deterministic=True)
    result = rt.start("""
        (defun staged (x)
          (let ((doubled (* x 2)))
            (yield :checkpoint)          ; the fiber suspends here
            (+ doubled (yield :second))))
        (staged 100)""")
    assert isinstance(result, Yielded)
    print(f"  first yield carried: {result.value}")
    blob = pickle.dumps(result.continuation)
    print(f"  continuation serialized to {len(blob)} bytes "
          "(this is what Vinz writes to the shared store)")
    result = rt.resume(pickle.loads(blob), None)
    print(f"  second yield carried: {result.value}")
    done = rt.resume(result.continuation, 7)
    print(f"  resumed to completion: {done.value}")


def distributed() -> None:
    print("\n## Distributed execution (simulated BlueBox cluster)")
    env = VinzEnvironment(nodes=4, seed=1)
    env.deploy_workflow("SumSquares", DIST_WORKFLOW, spawn_limit=4)
    result = env.call("SumSquares", NUMBERS)
    print(f"  dist-sum-squares -> {result}")
    summary = env.summary()
    print(f"  fibers used: {summary['fibers_total']} "
          f"(1 parent + {summary['fibers_total'] - 1} children)")
    print(f"  virtual time: {summary['virtual_time']:.4f}s, "
          f"messages delivered: {summary['queue']['delivered']}")
    nodes_used = {e.detail['node']
                  for e in env.cluster.trace.of_kind('fiber-run')}
    print(f"  fibers ran on nodes: {sorted(nodes_used)}")


def main() -> None:
    expected = sum(n * n for n in NUMBERS)
    print(f"Sum of squares of {NUMBERS} (expected {expected})\n")
    local_variants()
    continuations()
    distributed()
    print("\nAll three variants agree — the paper's Listing 1 point: "
          "parallel and distributed code reads like sequential code.")


if __name__ == "__main__":
    main()
