#!/usr/bin/env python3
"""A tour of the Section 5 future-work extensions.

The paper's closing section lists improvements the authors planned;
this reproduction implements them.  The tour runs the same portfolio
valuation workflow (examples/gozer/portfolio.gozer) under the paper's
production defaults and then with each extension enabled, printing the
operational difference.

Run:  python examples/extensions_tour.py
"""

import os

from repro.vinz.api import VinzEnvironment

HERE = os.path.dirname(os.path.abspath(__file__))
PORTFOLIO_SOURCE = open(os.path.join(HERE, "gozer", "portfolio.gozer")).read()


def build_positions(n: int) -> list:
    from repro.lang.symbols import Keyword as K

    return [[K("price"), 100.0 + i, K("quantity"), 10 + i] for i in range(n)]


def run(name: str, **env_kwargs) -> dict:
    extra = {k: v for k, v in env_kwargs.items()
             if k in ("placement",)}
    env = VinzEnvironment(nodes=6, seed=42, trace=False, **extra)
    if "scheduling_policy" in env_kwargs:
        env.scheduling_policy = env_kwargs["scheduling_policy"]
    if "migration_policy" in env_kwargs:
        env.migration_policy = env_kwargs["migration_policy"]
    env.deploy_workflow("Portfolio", PORTFOLIO_SOURCE, spawn_limit=3)
    positions = build_positions(12)
    result = env.call("Portfolio", positions)
    report = {result[i].name: result[i + 1] for i in range(0, len(result), 2)}
    stats = {
        "total": report["total"],
        "positions": report["positions"],
        "virtual_s": round(env.cluster.kernel.now, 2),
        "messages": env.cluster.queue.delivered,
        "awake_fibers": env.cluster.counters.get("op.Portfolio.AwakeFiber"),
        "store_reads": env.store.reads,
        "mutable_hit": round(env.cache_hit_rates()["mutable"], 2),
    }
    print(f"\n== {name} ==")
    for key, value in stats.items():
        print(f"  {key:12} {value}")
    return stats


def main() -> None:
    print("Valuing 12 positions with the chained for-each "
          "(one AwakeFiber instead of 12), under different policies.")

    baseline = run("paper defaults (balanced placement)")
    affinity = run("locality-aware placement", placement="affinity")

    print("\nWhat changed:")
    print(f"  The chained for-each needed "
          f"{baseline['awake_fibers']} parent wake-up(s) for 12 children.")
    print(f"  Affinity placement raised the mutable cache hit rate "
          f"{baseline['mutable_hit']} -> {affinity['mutable_hit']} and cut "
          f"store reads {baseline['store_reads']} -> "
          f"{affinity['store_reads']}.")
    assert baseline["total"] == affinity["total"]
    assert baseline["awake_fibers"] == 1  # sibling chaining at work


if __name__ == "__main__":
    main()
