#!/usr/bin/env python3
"""ETL fan-out with failure injection — survivability in action.

Paper Section 3.2: "the failure of any instance will result in only
minimal delays as other instances automatically compensate."  This
example runs a long extract-transform-load workflow, kills cluster
nodes while it runs, and shows the task completing anyway — then prints
the Figure-1-style lifetime trace of what happened.

Run:  python examples/etl_fanout.py
"""

from repro.bluebox.services import simple_service
from repro.vinz.api import VinzEnvironment

ETL_WORKFLOW = """
(deflink EX :wsdl "urn:extract-service")

(defun transform (record)
  "CPU-heavy per-record transformation."
  (compute 2.0)                      ; 2 simulated seconds of work
  (* record record))

(defun main (params)
  ;; extract: one non-blocking service call per source partition
  (let ((batches (for-each (part in params)
                   (EX-Extract-Method :Partition part))))
    ;; transform: fan out over all extracted records
    (let ((records (apply #'append batches)))
      (let ((transformed (for-each (r in records) (transform r))))
        ;; load: a final reduce
        (list :records (length transformed)
              :checksum (apply #'+ transformed))))))
"""


def extract_service():
    def extract(ctx, body):
        ctx.charge(1.0)  # a slow scan
        partition = body.get("Partition", 0)
        return [partition * 10 + i for i in range(5)]

    return simple_service("Extract", {"Extract": extract},
                          namespace="urn:extract-service",
                          parameters={"Extract": ["Partition"]})


def main() -> None:
    env = VinzEnvironment(nodes=5, seed=99)
    env.deploy_service(extract_service())
    env.deploy_workflow("Etl", ETL_WORKFLOW, spawn_limit=6)

    partitions = [0, 1, 2]
    expected_records = [p * 10 + i for p in partitions for i in range(5)]
    print(f"Starting ETL over partitions {partitions} "
          f"({len(expected_records)} records) on 5 nodes.\n")
    task_id = env.start("Etl", partitions)

    # let the transform stage get going, then start killing nodes
    env.cluster.run_until(
        lambda: sum(1 for e in env.cluster.trace.events
                    if e.kind == "fiber-fork") >= 4)
    for victim in ["node-1", "node-2"]:
        requeued = env.fail_node(victim)
        print(f"!! killed {victim} mid-run "
              f"({requeued} in-flight requests re-queued)")

    task = env.wait_for_task(task_id)
    result = {task.result[i].name: task.result[i + 1]
              for i in range(0, len(task.result), 2)}
    print(f"\nTask {task_id} finished with status: {task.status}")
    print(f"  records processed: {result['records']}")
    print(f"  checksum:          {result['checksum']}")
    assert result["checksum"] == sum(r * r for r in expected_records)
    print("  checksum verified against a direct computation.")

    redelivered = env.cluster.queue.redelivered
    print(f"\nThe queue re-delivered {redelivered} message(s) after the "
          "failures; no state was lost (checkpoints + redelivery).")

    print("\n-- lifetime trace (Figure 1 style), first 25 events --")
    events = env.cluster.trace.for_task(task_id)
    for event in events[:25]:
        print("  " + repr(event))
    print(f"  ... {max(0, len(events) - 25)} more events")


if __name__ == "__main__":
    main()
