#!/usr/bin/env python3
"""A financial risk batch pipeline — the paper's motivating domain.

RiskMetrics Group used Gozer "for the processing of financial data"
(Section 1).  This example builds a realistic nightly risk workflow:

* two backend BlueBox services (MarketData, Pricing), one flaky;
* a workflow that deflinks both, fans out over portfolios with
  :chunk-size for combined distributed + local parallelism;
* a retry handler (Listing 6 style) around the flaky service;
* a task variable collecting a running error count (Listing 4 style).

Run:  python examples/risk_pipeline.py
"""

import random

from repro.bluebox.services import Service, ServiceFault
from repro.vinz.api import VinzEnvironment


class MarketDataService(Service):
    """Serves end-of-day prices for instruments."""

    def __init__(self, seed: int = 7):
        super().__init__("MarketData", namespace="urn:marketdata-service",
                         doc="End-of-day market data.")
        self.rng = random.Random(seed)
        self.add_operation(
            "Snapshot", self.op_snapshot,
            doc="Returns the market snapshot for a business date.",
            parameters=["Date"])

    def op_snapshot(self, ctx, body):
        ctx.charge(0.2)  # a bulk load
        return {"date": body.get("Date"), "curve": [0.01, 0.012, 0.015]}


class PricingService(Service):
    """Prices instruments; the network to it is flaky."""

    def __init__(self, seed: int = 11, failure_rate: float = 0.25):
        super().__init__("Pricing", namespace="urn:pricing-service",
                         doc="Instrument pricing.")
        self.rng = random.Random(seed)
        self.failure_rate = failure_rate
        self.faults_injected = 0
        self.add_operation(
            "Price", self.op_price,
            doc="Prices one instrument against a market snapshot.",
            parameters=["Instrument"],
            faults=["{urn:pricing-service}Connect"])

    def op_price(self, ctx, body):
        ctx.charge(0.05)
        if self.rng.random() < self.failure_rate:
            self.faults_injected += 1
            raise ServiceFault("{urn:pricing-service}Connect",
                               "connection reset by peer")
        instrument = body.get("Instrument") or "?"
        return {"instrument": instrument,
                "pv": round(100.0 + (hash(instrument) % 1000) / 100.0, 2)}


RISK_WORKFLOW = """
(deflink MD :wsdl "urn:marketdata-service")
(deflink PR :wsdl "urn:pricing-service")

(defhandler retry-pricing
  :java ("java.net.SocketException")
  :code ("{urn:pricing-service}Connect")
  :action retry
  :count 8)

(deftaskvar priced-count
  "How many instruments have been priced so far." 0)

(defun price-instrument (instrument)
  "Price one instrument, retrying transient connection failures."
  (with-handler retry-pricing
    (let ((result (PR-Price-Method :Instrument instrument)))
      (setf ^priced-count^ (+ ^priced-count^ 1))
      (gethash "pv" result))))

(defun price-portfolio (portfolio)
  "Price every instrument in a portfolio; sum the present values."
  (let ((pvs (for-each (inst in portfolio :chunk-size 4)
               (price-instrument inst))))
    (apply #'+ pvs)))

(defun main (params)
  ;; params: a list of portfolios (each a list of instrument names)
  (let ((snapshot (MD-Snapshot-Method :Date "2010-04-19")))
    (let ((totals (for-each (portfolio in params)
                    (price-portfolio portfolio))))
      (list :portfolio-totals totals
            :grand-total (apply #'+ totals)
            :instruments-priced ^priced-count^))))
"""


def build_portfolios(n_portfolios: int, size: int) -> list:
    return [[f"INSTR-{p}-{i}" for i in range(size)]
            for p in range(n_portfolios)]


def main() -> None:
    env = VinzEnvironment(nodes=6, slots=2, seed=2010)
    pricing = PricingService()
    env.deploy_service(MarketDataService())
    env.deploy_service(pricing)
    env.deploy_workflow("NightlyRisk", RISK_WORKFLOW, spawn_limit=4)

    portfolios = build_portfolios(n_portfolios=4, size=8)
    n_instruments = sum(len(p) for p in portfolios)
    print(f"Pricing {n_instruments} instruments across "
          f"{len(portfolios)} portfolios on a 6-node cluster...\n")

    result = env.call("NightlyRisk", portfolios)
    report = {result[i].name: result[i + 1] for i in range(0, len(result), 2)}

    print("Portfolio totals:")
    for i, total in enumerate(report["portfolio-totals"]):
        print(f"  portfolio {i}: PV = {total:.2f}")
    print(f"Grand total PV: {report['grand-total']:.2f}")
    print(f"Instruments priced (task variable): "
          f"{report['instruments-priced']}")
    print(f"\nTransient pricing faults injected: {pricing.faults_injected} "
          "(all retried transparently by the retry handler)")

    summary = env.summary()
    print(f"Cluster: {summary['fibers_total']} fibers, "
          f"{summary['queue']['delivered']} messages, "
          f"virtual makespan {summary['virtual_time']:.2f}s, "
          f"utilization {summary['utilization']:.0%}")
    assert report["instruments-priced"] == n_instruments


if __name__ == "__main__":
    main()
