#!/usr/bin/env python3
"""An interactive Gozer REPL.

The paper calls Gozer "a scripting language due to its support for
interactive development" (Section 1).  This REPL supports:

* multi-line input (unbalanced forms prompt for continuation lines);
* ``:dis <form>``  — disassemble the bytecode the compiler emits;
* ``:expand <form>`` — show the macroexpansion of a form;
* ``:time <form>`` — evaluate with wall-clock timing;
* ``:trace <form>`` — evaluate while printing the Gozer call tree;
* ``:quit`` — exit.

Run:  python examples/repl.py            (interactive)
      echo '(+ 1 2)' | python examples/repl.py   (piped)
"""

import sys
import time

from repro import make_runtime
from repro.gvm.conditions import UnhandledConditionError
from repro.lang.errors import GozerError, IncompleteFormError
from repro.lang.macros import macroexpand
from repro.lang.printer import print_form

BANNER = """Gozer REPL (reproduction of the IPPS 2010 system)
Type Gozer forms; :dis/:expand/:time <form>; :quit to exit."""


def main() -> None:
    rt = make_runtime(deterministic=False, max_workers=4)
    interactive = sys.stdin.isatty()
    if interactive:
        print(BANNER)
    buffer = ""
    try:
        while True:
            prompt = "gozer> " if not buffer else "  ...> "
            if interactive:
                sys.stdout.write(prompt)
                sys.stdout.flush()
            line = sys.stdin.readline()
            if not line:
                break
            buffer += line
            stripped = buffer.strip()
            if not stripped:
                buffer = ""
                continue
            if stripped == ":quit":
                break
            try:
                handle(rt, stripped)
                buffer = ""
            except IncompleteFormError:
                continue  # wait for more input
            except UnhandledConditionError as exc:
                print(f"error: {exc.condition!r}")
                buffer = ""
            except GozerError as exc:
                print(f"error: {exc}")
                buffer = ""
            except Exception as exc:  # noqa: BLE001 - REPL shows everything
                print(f"host error: {type(exc).__name__}: {exc}")
                buffer = ""
    finally:
        rt.shutdown()
        if interactive:
            print("\nbye")


def handle(rt, text: str) -> None:
    if text.startswith(":dis "):
        form = rt.read(text[len(":dis "):])
        code = rt.compile(form)
        print(code.disassemble())
        return
    if text.startswith(":expand "):
        form = rt.read(text[len(":expand "):])
        print(print_form(macroexpand(form, rt.global_env, rt.apply)))
        return
    if text.startswith(":time "):
        form = rt.read(text[len(":time "):])
        started = time.perf_counter()
        value = rt.eval_form(form)
        elapsed = time.perf_counter() - started
        print(print_form(value))
        print(f";; {elapsed * 1000:.3f} ms")
        return
    if text.startswith(":trace "):
        form = rt.read(text[len(":trace "):])
        code = rt.compile(form)
        vm = rt.new_vm()
        vm.call_hook = lambda depth, name, args: print(
            ";; " + "  " * depth + f"({name} "
            + " ".join(print_form(a) for a in args) + ")")
        result = vm.run_code(code)
        print(print_form(result.value))
        return
    # plain evaluation: may contain several forms
    value = rt.eval_string(text)
    print(print_form(value))


if __name__ == "__main__":
    main()
