"""Content-defined chunking invariants (persistsnap.chunker)."""

import os
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.persistsnap.chunker import (
    DEFAULT_MAX_SIZE,
    DEFAULT_MIN_SIZE,
    _GEAR,
    chunk_spans,
)


class TestInvariants:
    @given(st.binary(min_size=0, max_size=20_000))
    @settings(max_examples=100)
    def test_lossless(self, data):
        assert b"".join(chunk_spans(data)) == data

    @given(st.binary(min_size=1, max_size=20_000))
    @settings(max_examples=100)
    def test_size_bounds(self, data):
        chunks = chunk_spans(data)
        for chunk in chunks[:-1]:
            assert DEFAULT_MIN_SIZE <= len(chunk) <= DEFAULT_MAX_SIZE
        assert 0 < len(chunks[-1]) <= DEFAULT_MAX_SIZE

    @given(st.binary(min_size=0, max_size=10_000))
    @settings(max_examples=50)
    def test_deterministic(self, data):
        assert chunk_spans(data) == chunk_spans(data)

    def test_empty(self):
        assert chunk_spans(b"") == []

    def test_bad_geometry_rejected(self):
        with pytest.raises(ValueError):
            chunk_spans(b"x", min_size=0)
        with pytest.raises(ValueError):
            chunk_spans(b"x", min_size=100, max_size=50)


class TestGearTable:
    def test_gear_values_are_distinct(self):
        """Regression: the table must come from ONE seeded RNG — a
        constant table gives a position-only hash that never cuts."""
        assert len(set(_GEAR)) > 250

    def test_gear_is_pinned(self):
        """The table is format state: changing the seed breaks dedup
        against previously written snapshots."""
        expected = random.Random(0x476F7A32)
        assert _GEAR[0] == expected.getrandbits(64)


class TestBoundaryStability:
    """The reason for content-defined over fixed-size chunking."""

    def _payload(self, seed=7, n=16_000):
        rng = random.Random(seed)
        return bytes(rng.randrange(256) for _ in range(n))

    def test_cuts_happen(self):
        chunks = chunk_spans(self._payload())
        assert len(chunks) > 20  # ~256B average on random data

    def test_tail_append_keeps_prefix_chunks(self):
        data = self._payload()
        grown = data + self._payload(seed=8, n=2_000)
        before = chunk_spans(data)
        after = set(map(bytes, chunk_spans(grown)))
        # everything except the final (boundary-crossing) chunk survives
        surviving = sum(1 for c in before[:-1] if c in after)
        assert surviving >= len(before) - 2

    def test_head_insert_keeps_suffix_chunks(self):
        data = self._payload()
        shifted = self._payload(seed=9, n=777) + data
        before = chunk_spans(data)
        after = set(map(bytes, chunk_spans(shifted)))
        # fixed-size chunking would lose every chunk to the 777-byte
        # shift; CDC re-synchronizes after at most a couple of chunks
        surviving = sum(1 for c in before[2:] if c in after)
        assert surviving >= len(before) - 6

    def test_middle_edit_is_local(self):
        data = self._payload()
        position = len(data) // 2
        edited = data[:position] + b"EDIT" + data[position + 4:]
        before = chunk_spans(data)
        after = set(map(bytes, chunk_spans(edited)))
        changed = sum(1 for c in before if c not in after)
        assert changed <= 3  # the edit disturbs its own chunk, not all


class TestOsRandomSmoke:
    def test_incompressible_payload_chunks(self):
        data = os.urandom(50_000)
        chunks = chunk_spans(data)
        assert b"".join(chunks) == data
        sizes = [len(c) for c in chunks[:-1]]
        assert all(DEFAULT_MIN_SIZE <= s <= DEFAULT_MAX_SIZE for s in sizes)
