"""Chaos campaigns against the v2 snapshot plane.

The acceptance bar from the issue: a campaign injecting torn manifests
and missing chunks runs to quiescence with **zero wrong-value
restores**.  Fail-stop outcomes (retry, dead-letter, task error) are
acceptable; a task that *completes with the wrong answer* is the one
unforgivable outcome, because it means corrupt state was restored and
executed.
"""

import pytest

from repro.faults import (
    CORRUPT_CHUNK,
    MISSING_CHUNK,
    TORN_MANIFEST,
    FaultPlan,
    SnapshotFault,
)
from repro.faults.campaign import run_campaign
from repro.vinz.task import COMPLETED


def snapshot_campaign(plan, seed, **kwargs):
    kwargs.setdefault("tasks", 4)
    kwargs.setdefault("nodes", 4)
    return run_campaign(plan, seed=seed, name="persistsnap-chaos",
                        snapshots="v2", **kwargs)


class TestMissingChunk:
    def test_retry_recovers_and_no_wrong_values(self):
        plan = FaultPlan(faults=[
            SnapshotFault(action=MISSING_CHUNK, nth=1, count=2),
            SnapshotFault(action=MISSING_CHUNK, nth=7, count=1),
        ], name="missing-chunks")
        report = snapshot_campaign(plan, seed=101)
        assert report.injected.get(MISSING_CHUNK, 0) >= 1
        assert report.wrong_results() == []
        # the fault is transient (injected per-occurrence): every task
        # recovers through the retry policy
        assert report.all_completed


class TestCorruptChunk:
    def test_flip_detected_never_executed(self):
        plan = FaultPlan(faults=[
            SnapshotFault(action=CORRUPT_CHUNK, nth=1, count=3),
        ], name="corrupt-chunks")
        report = snapshot_campaign(plan, seed=202)
        assert report.injected.get(CORRUPT_CHUNK, 0) >= 1
        assert report.wrong_results() == []
        assert report.all_completed


class TestTornManifest:
    def test_tear_is_failstop_not_wrong_value(self):
        """A torn manifest is durable damage: the fiber either makes
        progress from its node-local cache (and overwrites the tear on
        the next persist) or exhausts retries and dead-letters.  Both
        are fail-stop; neither may complete wrong."""
        plan = FaultPlan(faults=[
            SnapshotFault(action=TORN_MANIFEST, nth=2, count=2,
                          keep_fraction=0.5),
        ], name="torn-manifests")
        report = snapshot_campaign(plan, seed=303)
        assert report.injected.get(TORN_MANIFEST, 0) >= 1
        assert report.wrong_results() == []
        # quiescence: every task reached a terminal state
        for task in report.env.registry.tasks.values():
            assert task.finished

    def test_full_tear_and_near_complete_tear(self):
        for keep in (0.0, 0.9):
            plan = FaultPlan(faults=[
                SnapshotFault(action=TORN_MANIFEST, nth=1, count=1,
                              keep_fraction=keep),
            ])
            report = snapshot_campaign(plan, seed=404)
            assert report.wrong_results() == []
            for task in report.env.registry.tasks.values():
                assert task.finished


class TestCombinedCampaign:
    """The acceptance-criteria campaign: both fault families at once."""

    PLAN = FaultPlan(faults=[
        SnapshotFault(action=TORN_MANIFEST, nth=3, count=1,
                      keep_fraction=0.4),
        SnapshotFault(action=MISSING_CHUNK, nth=2, count=2),
        SnapshotFault(action=CORRUPT_CHUNK, nth=5, count=1),
    ], name="snapshot-chaos-combined")

    def test_zero_wrong_value_restores(self):
        report = snapshot_campaign(self.PLAN, seed=515, tasks=6)
        assert report.wrong_results() == []
        for task in report.env.registry.tasks.values():
            assert task.finished
        # at least one snapshot fault actually landed
        landed = sum(report.injected.get(kind, 0) for kind in
                     (TORN_MANIFEST, MISSING_CHUNK, CORRUPT_CHUNK))
        assert landed >= 1

    def test_replays_bit_identically(self):
        first = snapshot_campaign(self.PLAN, seed=515, tasks=6)
        second = snapshot_campaign(self.PLAN, seed=515, tasks=6)
        assert first.injected == second.injected
        assert first.statuses == second.statuses
        assert {t.id: t.result
                for t in first.env.registry.tasks.values()} == \
               {t.id: t.result
                for t in second.env.registry.tasks.values()}

    def test_different_seed_differs_somewhere(self):
        a = snapshot_campaign(self.PLAN, seed=515, tasks=6)
        b = snapshot_campaign(self.PLAN, seed=616, tasks=6)
        # inputs are seed-derived, so the workloads must differ
        assert sorted(a.inputs.values()) != sorted(b.inputs.values())


class TestPlanSerialization:
    def test_snapshot_fault_roundtrips_through_dict(self):
        plan = FaultPlan(faults=[
            SnapshotFault(action=TORN_MANIFEST, nth=2, keep_fraction=0.25),
            SnapshotFault(action=MISSING_CHUNK, nth=4, count=3),
        ], name="roundtrip")
        assert FaultPlan.from_dict(plan.to_dict()) == plan

    def test_validation(self):
        with pytest.raises(ValueError):
            SnapshotFault(action="melt-chunk")
        with pytest.raises(ValueError):
            SnapshotFault(action=TORN_MANIFEST, keep_fraction=1.0)
        with pytest.raises(ValueError):
            SnapshotFault(action=MISSING_CHUNK, nth=0)
