"""End-to-end: incremental snapshots wired through the workflow service.

Runs the same loop-heavy workflow under ``snapshots="v1"`` and
``snapshots="v2"`` and checks the v2 plumbing end to end: identical
results, fewer persisted bytes, a chunk plane that drains to zero at
task completion, digest-cache restores, and rollback consistency when
store faults abort persist windows mid-flight.
"""

import pytest

from repro.faults import FaultInjector, FaultPlan, StoreFault
from repro.faults.plan import FAIL_WRITE
from repro.faults.retry import RetryPolicy
from repro.vinz.api import VinzEnvironment
from repro.vinz.cache import FiberCache, LruCache

#: a workflow whose suspended state is dominated by an unchanging
#: carried structure — the shape incremental snapshots exist for: every
#: workflow-sleep persists ~the same bytes plus a growing accumulator
LOOPY = """
(defun main (params)
  (let ((carried (loop for i from 0 below 250 collect
                       (list i "carried-payload-block" (* i 7))))
        (acc (list)))
    (dolist (i params)
      (workflow-sleep 1)
      (append! acc (* i 2)))
    (list (length carried) acc)))
"""

EXPECTED = [250, [i * 2 for i in range(12)]]


def run_loopy(snapshots, nodes=3, seed=5, retry_policy=None, plan=None):
    env = VinzEnvironment(nodes=nodes, seed=seed,
                          retry_policy=retry_policy)
    env.deploy_workflow("W", LOOPY, snapshots=snapshots)
    injector = None
    if plan is not None:
        injector = FaultInjector(seed, plan).install(env)
    result = env.call("W", list(range(12)))
    return env, result, injector


class TestResultEquality:
    def test_v2_computes_exactly_what_v1_does(self):
        _, v1_result, _ = run_loopy("v1")
        _, v2_result, _ = run_loopy("v2")
        assert v1_result == v2_result == EXPECTED


class TestDedup:
    def test_v2_persists_fewer_bytes(self):
        v1_env, _, _ = run_loopy("v1")
        v2_env, _, _ = run_loopy("v2")
        v1_bytes = v1_env.counters.get_sum("persist.bytes")
        v2_bytes = v2_env.counters.get_sum("persist.bytes")
        assert v1_env.counters.get("persist.writes") >= 10
        assert v2_bytes < v1_bytes
        # the loop-heavy shape dedups well beyond break-even
        assert v1_bytes / v2_bytes > 1.3

    def test_snapshot_stats_surface_in_summary(self):
        env, _, _ = run_loopy("v2")
        stats = env.summary()["snapshots"]
        assert stats["format"] == "v2"
        assert stats["encodes"] >= 10
        assert stats["chunks_reused"] > 0
        assert stats["dedup_ratio"] > 1.5

    def test_v1_summary_has_no_snapshot_stats(self):
        env, _, _ = run_loopy("v1")
        assert env.summary()["snapshots"] is None


class TestChunkGc:
    def test_chunk_plane_drains_at_completion(self):
        """Refcounted GC: once every task is done and its state keys
        reclaimed, no chunk or refcount key may survive."""
        env, result, _ = run_loopy("v2")
        assert result == EXPECTED
        assert env.store.keys("snapchunk/") == []
        assert env.store.keys("snapref/") == []
        assert env.store.keys("fiber-state/") == []

    def test_deletes_balance_writes(self):
        env, _, _ = run_loopy("v2")
        service = env.workflows["W"]
        stats = service.snapper.stats_snapshot()
        assert stats["chunks_written"] > 0
        assert stats["chunks_deleted"] == stats["chunks_written"]


class TestDigestCache:
    def test_restore_hits_digest_cache_when_mutable_evicted(self):
        """The digest cache is content-addressed: even after the
        (fiber, version)-keyed mutable entry is gone, an unchanged
        state digest restores without touching a single chunk."""
        env = VinzEnvironment(nodes=1, seed=7)
        env.deploy_workflow("W", LOOPY, snapshots="v2")
        task_id = env.start("W", list(range(12)))
        env.cluster.run_until(
            lambda: env.counters.get("persist.writes") >= 3)
        # evict every mutable continuation but keep the digest cache
        for node in env.cluster.nodes.values():
            cache = FiberCache.for_node(node)
            cache.mutable = LruCache(cache.mutable.capacity)
        record = env.wait_for_task(task_id)
        assert record.result == EXPECTED
        assert env.counters.get("cache.digest.hit") >= 1

    def test_digest_hit_rate_reported(self):
        env, _, _ = run_loopy("v2")
        stats = env.summary()["snapshots"]
        assert 0.0 <= stats["digest_cache_hit_rate"] <= 1.0


class TestAbortRollback:
    def test_store_faults_leave_chunk_plane_consistent(self):
        """fail-write faults abort persist windows after chunk adds
        have happened; the undo hooks must put the refcount plane back
        exactly, or completion-time GC would leak or double-free."""
        plan = FaultPlan(faults=[
            StoreFault(action=FAIL_WRITE, key_prefix="fiber-state/",
                       nth=2, count=3),
        ])
        env, result, injector = run_loopy(
            "v2", retry_policy=RetryPolicy.default(), plan=plan)
        assert result == EXPECTED  # retries absorbed the faults
        assert injector.injected.get("fail-write", 0) > 0
        # the aborted windows rolled back: GC still drains to zero
        assert env.store.keys("snapchunk/") == []
        assert env.store.keys("snapref/") == []

    def test_chunk_plane_faults_also_roll_back(self):
        plan = FaultPlan(faults=[
            StoreFault(action=FAIL_WRITE, key_prefix="snapchunk/",
                       nth=3, count=2),
        ])
        env, result, injector = run_loopy(
            "v2", retry_policy=RetryPolicy.default(), plan=plan)
        assert result == EXPECTED
        assert injector.injected.get("fail-write", 0) > 0
        assert env.store.keys("snapchunk/") == []
        assert env.store.keys("snapref/") == []
