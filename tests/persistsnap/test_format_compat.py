"""Cross-format compatibility: v1 <-> v2 snapshot blobs.

Three guarantees under test:

* **upgrade** — v1 blobs written by a v1 service restore under a v2
  service (the magic sniff in ``_load_continuation`` falls back to the
  v1 codec path);
* **downgrade guard** — a v2 manifest reaching a v1 reader fails with a
  clear, actionable :class:`SnapshotFormatError`, never a pickle error;
* **layout pin** — the v2 manifest wire format is golden-filed; any
  byte-level drift fails here before it corrupts a deployment.
"""

import pathlib

import pytest

from repro.persistsnap import SnapshotPipeline, decode_manifest, is_manifest
from repro.persistsnap.manifest import (
    _ENTRY,
    _FRAME,
    _HEADER,
    FORMAT_VERSION,
    MANIFEST_MAGIC,
    ChunkRef,
    content_digest,
    encode_manifest,
)
from repro.vinz.api import VinzEnvironment
from repro.vinz.persistence import (
    MAGIC,
    FiberCodec,
    SnapshotFormatError,
    blob_codec_name,
)

GOLDEN = pathlib.Path(__file__).parent / "golden_manifest_v2.bin"

FANOUT = """
(defun main (params)
  (for-each (x in params) (* x 10)))
"""


def make_golden_manifest() -> bytes:
    chunks = [
        ChunkRef(digest=content_digest(b"chunk-alpha"),
                 raw_len=1024, stored_len=512, enc=1),
        ChunkRef(digest=content_digest(b"chunk-beta"),
                 raw_len=700, stored_len=700, enc=0),
        ChunkRef(digest=content_digest(b"chunk-gamma"),
                 raw_len=2048, stored_len=901, enc=1),
    ]
    return encode_manifest(b"D", content_digest(b"whole-state"), 3772,
                           chunks)


class TestV1ReadableUnderV2:
    def test_v1_blob_roundtrips_through_new_code(self):
        state = {"frames": list(range(200)), "pc": 3}
        for codec_name in ("none", "gzip", "deflate", "custom"):
            codec = FiberCodec(codec_name)
            blob = codec.dumps(state)
            assert blob[:4] == MAGIC
            assert not is_manifest(blob)
            assert codec.loads(blob, fiber_id="f1") == state

    def test_service_upgraded_midflight_finishes_on_v1_blobs(self):
        """The upgrade path: a node redeployed with snapshots="v2" must
        resume fibers whose state was persisted by the v1 code."""
        env = VinzEnvironment(nodes=3, seed=5)
        service = env.deploy_workflow("W", FANOUT, snapshots="v1")
        assert service.snapper is None
        task_id = env.start("W", list(range(8)))
        # run until at least one v1 fiber-state blob is on disk
        env.cluster.run_until(
            lambda: env.counters.get("persist.writes") >= 1)
        # upgrade in place: same store, same codec, new pipeline
        service.snapshot_format = "v2"
        service.snapper = SnapshotPipeline(
            service.codec, env.store, metrics=service.codec.metrics)
        record = env.wait_for_task(task_id)
        assert record.result == [x * 10 for x in range(8)]
        # the tail of the run persisted through the v2 pipeline
        assert service.snapper.encodes > 0


class TestDowngradeGuard:
    def test_v2_manifest_under_v1_reader_is_actionable(self):
        codec = FiberCodec("deflate")
        pipeline = SnapshotPipeline(codec, VinzEnvironment(
            nodes=1, seed=1).store)
        blob = pipeline.encode("k", {"x": 1}, fiber_id="f9").blob
        with pytest.raises(SnapshotFormatError) as exc:
            codec.loads(blob, fiber_id="f9")
        message = str(exc.value)
        assert "v2" in message and "redeploy" in message
        assert "f9" in message  # names the fiber it failed on

    def test_blob_codec_name_identifies_v2(self):
        assert blob_codec_name(make_golden_manifest()) == "v2-manifest"


class TestLayoutPin:
    def test_golden_file_bytes(self):
        """The manifest encoder output is byte-frozen.  If this fails
        you changed the wire format: bump FORMAT_VERSION, keep a reader
        for version 2, and regenerate the golden file."""
        assert make_golden_manifest() == GOLDEN.read_bytes()

    def test_golden_file_decodes(self):
        manifest = decode_manifest(GOLDEN.read_bytes())
        assert manifest.state_digest == content_digest(b"whole-state")
        assert manifest.raw_len == 3772
        assert [c.raw_len for c in manifest.chunks] == [1024, 700, 2048]
        assert [c.enc for c in manifest.chunks] == [1, 0, 1]

    def test_struct_sizes_pinned(self):
        assert MANIFEST_MAGIC == b"GZS2"
        assert FORMAT_VERSION == 2
        assert _FRAME.size == 8
        assert _HEADER.size == 24
        assert _ENTRY.size == 25
        # total manifest size: 36 fixed + 25 per chunk
        assert len(make_golden_manifest()) == 4 + 8 + 24 + 3 * 25

    def test_v1_magic_pinned(self):
        assert MAGIC == b"GZR1"
