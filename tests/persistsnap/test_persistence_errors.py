"""Regression: deserialization failures are typed and carry context.

The latent bug class this pins down: ``FiberCodec.loads`` used to let
raw ``UnpicklingError`` / ``zlib.error`` / bare ``ValueError`` escape
with no indication of *which* fiber or *what* format failed — the
operator saw "pickle data was truncated" with nothing to grep for.
Every decode failure must now surface as a
:class:`DeserializationError` naming the fiber id, the format version
and (where known) the codec, and must tunnel through the VM boundary
like other store errors so the retry/dead-letter machinery sees it.
"""

import pickle
import zlib

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bluebox.store import StoreError
from repro.vinz.persistence import (
    MAGIC,
    DeserializationError,
    FiberCodec,
    SnapshotFormatError,
)

STATE = {"stack": list(range(50)), "label": "suspend-3"}


class TestErrorContext:
    def test_truncated_pickle_names_fiber_and_format(self):
        codec = FiberCodec("none")
        blob = codec.dumps(STATE)
        with pytest.raises(DeserializationError) as exc:
            codec.loads(blob[:-7], fiber_id="fiber-0017")
        message = str(exc.value)
        assert "fiber-0017" in message
        assert "format=v1" in message
        assert "codec=none" in message

    def test_corrupt_compressed_payload_names_codec(self):
        for codec_name in ("gzip", "deflate", "custom"):
            codec = FiberCodec(codec_name)
            blob = codec.dumps(STATE)
            damaged = blob[:5] + b"\x00garbage\xff" + blob[10:]
            with pytest.raises(DeserializationError) as exc:
                codec.loads(damaged, fiber_id="f2")
            assert f"codec={codec_name}" in str(exc.value)
            assert "f2" in str(exc.value)

    def test_unknown_codec_byte_is_typed(self):
        codec = FiberCodec("deflate")
        blob = MAGIC + b"?" + b"whatever"
        with pytest.raises(SnapshotFormatError) as exc:
            codec.loads(blob, fiber_id="f3")
        assert "f3" in str(exc.value)

    def test_bad_magic_is_typed(self):
        codec = FiberCodec("deflate")
        with pytest.raises(SnapshotFormatError):
            codec.loads(b"NOPE" + b"D" + b"x", fiber_id="f4")

    def test_error_chains_original_cause(self):
        codec = FiberCodec("none")
        blob = codec.dumps(STATE)
        with pytest.raises(DeserializationError) as exc:
            codec.loads(blob[:-1], fiber_id="f5")
        assert exc.value.__cause__ is not None

    def test_deserialize_state_wraps_unpickling(self):
        codec = FiberCodec("deflate")
        with pytest.raises(DeserializationError) as exc:
            codec.deserialize_state(b"not a pickle", fiber_id="f6",
                                    fmt="v2")
        assert "format=v2" in str(exc.value)


class TestErrorTyping:
    """The hierarchy the rest of the platform depends on."""

    def test_is_store_error_and_tunnels(self):
        # StoreError → the window aborts, rolls back and retries per
        # the fiber's RetryPolicy instead of poisoning the VM
        assert issubclass(DeserializationError, StoreError)
        err = DeserializationError("x", fiber_id="f")
        assert err.tunnels_through_vm

    def test_is_value_error_for_legacy_callers(self):
        # pre-existing callers catch ValueError on bad blobs; the
        # typed error must remain catchable there
        assert issubclass(DeserializationError, ValueError)
        assert issubclass(SnapshotFormatError, DeserializationError)

    @given(st.binary(max_size=400))
    @settings(max_examples=120, deadline=None)
    def test_no_untyped_escape(self, junk):
        """Whatever bytes arrive at loads(), the only exception that
        may escape is the typed one."""
        codec = FiberCodec("deflate")
        try:
            codec.loads(MAGIC + b"D" + junk, fiber_id="fz")
        except DeserializationError:
            pass  # typed — acceptable

    @given(st.binary(max_size=400))
    @settings(max_examples=120, deadline=None)
    def test_no_untyped_escape_raw_layer(self, junk):
        codec = FiberCodec("none")
        try:
            codec.deserialize_state(junk, fiber_id="fz")
        except DeserializationError:
            pass


class TestRoundTripStillWorks:
    def test_wrapping_does_not_break_good_blobs(self):
        for codec_name in ("none", "gzip", "deflate", "custom"):
            codec = FiberCodec(codec_name)
            assert codec.loads(codec.dumps(STATE), fiber_id="f") == STATE

    def test_loads_without_fiber_id_still_typed(self):
        codec = FiberCodec("none")
        blob = codec.dumps(STATE)
        with pytest.raises(DeserializationError):
            codec.loads(blob[:-3])
