"""Round-trip property suite: v2 snapshots restore bit-identically.

Two layers:

* randomized *state graphs* (shared substructure, cycles, deep nesting)
  pushed through the pipeline and compared against the whole-pickle
  baseline — chunk dedup must never change what comes back;
* real captured *continuations* — deep frame stacks, condition handler
  stacks, restarts, futures, task variables — restored through v2 and
  resumed to the same answers as the uncut original.
"""

import pickle

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.bluebox.store import SharedStore
from repro.gvm.continuations import Continuation
from repro.gvm.vm import Done
from repro.lang.symbols import Keyword
from repro.persistsnap import SnapshotPipeline, content_digest, is_manifest
from repro.vinz.persistence import FiberCodec

K = Keyword


def fresh_pipeline(codec_name="deflate"):
    codec = FiberCodec(codec_name)
    return SnapshotPipeline(codec, SharedStore()), codec


def roundtrip(pipeline, codec, state, key="fiber-state/f1"):
    result = pipeline.encode(key, state, fiber_id="f1")
    pipeline.store.write(key, result.blob)
    result.release()
    return pipeline.load(result.blob, fiber_id="f1")


# -- randomized state graphs ------------------------------------------------

scalars = st.one_of(
    st.none(), st.booleans(), st.integers(), st.floats(allow_nan=False),
    st.text(max_size=40), st.binary(max_size=80))

trees = st.recursive(
    scalars,
    lambda inner: st.one_of(
        st.lists(inner, max_size=6),
        st.dictionaries(st.text(max_size=8), inner, max_size=5),
        st.tuples(inner, inner)),
    max_leaves=60)


class TestStateGraphs:
    @given(trees)
    @settings(max_examples=60, deadline=None)
    def test_tree_restores_equal(self, state):
        pipeline, codec = fresh_pipeline()
        assert roundtrip(pipeline, codec, state) == state

    @given(trees)
    @settings(max_examples=40, deadline=None)
    def test_matches_whole_pickle_baseline(self, state):
        """Dedup must never change semantics: the v2 restore equals
        what a plain whole-blob pickle round-trip produces."""
        pipeline, codec = fresh_pipeline()
        via_v2 = roundtrip(pipeline, codec, state)
        via_pickle = pickle.loads(pickle.dumps(state))
        assert via_v2 == via_pickle

    @given(st.lists(st.binary(min_size=100, max_size=4000), min_size=1,
                    max_size=8))
    @settings(max_examples=40, deadline=None)
    def test_bit_identical_reserialization(self, payloads):
        """Strongest form: re-serializing the restored state yields the
        exact bytes the manifest digested."""
        pipeline, codec = fresh_pipeline()
        state = {"blobs": payloads}
        raw = codec.serialize_state(state)
        result = pipeline.encode("k", state, fiber_id="f1", raw=raw)
        restored = pipeline.load(result.blob, fiber_id="f1")
        assert codec.serialize_state(restored) == raw
        assert content_digest(raw) == result.manifest.state_digest

    def test_shared_substructure_stays_shared(self):
        pipeline, codec = fresh_pipeline()
        shared = ["payload"] * 50
        state = {"a": shared, "b": shared, "c": [shared, shared]}
        restored = roundtrip(pipeline, codec, state)
        assert restored["a"] is restored["b"]
        assert restored["c"][0] is restored["a"]

    def test_cyclic_structure_restores(self):
        pipeline, codec = fresh_pipeline()
        node = {"name": "root", "next": None}
        node["next"] = node  # cycle
        restored = roundtrip(pipeline, codec, {"head": node})
        assert restored["head"]["next"] is restored["head"]

    @given(st.integers(min_value=0, max_value=3),
           st.lists(st.integers(), min_size=0, max_size=200))
    @settings(max_examples=30, deadline=None)
    def test_incremental_sequence_each_version_exact(self, seed, extra):
        """A mutating state stored repeatedly under one key: every
        version restores exactly, whatever the dedup diff did."""
        pipeline, codec = fresh_pipeline()
        state = {"carried": [f"block-{i:04d}" for i in range(150)],
                 "acc": [seed]}
        key = "fiber-state/f1"
        for step, item in enumerate([*extra, seed]):
            state["acc"].append(item)
            result = pipeline.encode(key, state, fiber_id="f1")
            pipeline.store.write(key, result.blob)
            result.release()
            restored = pipeline.load(pipeline.store.read(key),
                                     fiber_id="f1")
            assert restored == state


class TestCodecMatrix:
    @pytest.mark.parametrize("codec_name",
                             ["none", "gzip", "deflate", "custom"])
    def test_every_codec_roundtrips(self, codec_name):
        pipeline, codec = fresh_pipeline(codec_name)
        state = {"xs": list(range(500)), "s": "text " * 200}
        assert roundtrip(pipeline, codec, state) == state


# -- real continuations -----------------------------------------------------

def snap_continuation(rt, continuation, codec_name="custom"):
    """Round-trip a captured continuation through a fresh v2 pipeline
    sharing the runtime's registries (as deployed nodes do)."""
    from repro.gvm.frames import GozerFunction
    from repro.vinz.persistence import CodeRegistry, HostFunctionRegistry

    registry = CodeRegistry()
    hosts = HostFunctionRegistry()
    for name, value in rt.global_env.variables.items():
        if isinstance(value, GozerFunction):
            registry.register_tree(value.code)
        elif callable(value):
            hosts.register(name.name, value)
    codec = FiberCodec(codec_name, registry=registry, hosts=hosts)
    pipeline = SnapshotPipeline(codec, SharedStore())
    result = pipeline.encode("fiber-state/f1", continuation, fiber_id="f1")
    assert is_manifest(result.blob)
    restored = pipeline.load(result.blob, fiber_id="f1")
    assert isinstance(restored, Continuation)
    return restored


class TestContinuations:
    def test_deep_frame_stack(self, rt):
        result = rt.start("""
            (defun descend (n)
              (if (= n 0) (yield :bottom) (+ 1 (descend (- n 1)))))
            (descend 30)""")
        restored = snap_continuation(rt, result.continuation)
        assert rt.resume(restored, 0) == Done(30)

    def test_handler_and_restart_stacks(self, rt):
        result = rt.start("""
            (handler-bind ((error (lambda (c) (invoke-restart 'use 9))))
              (restart-case (progn (yield) (error "x"))
                (use (v) v)))""")
        restored = snap_continuation(rt, result.continuation)
        assert rt.resume(restored, None) == Done(9)

    def test_handler_case_after_resume(self, rt):
        result = rt.start("""
            (handler-case
                (progn (yield) (error "late failure") :no)
              (error (c) :caught-after-resume))""")
        restored = snap_continuation(rt, result.continuation)
        assert rt.resume(restored, None) == Done(K("caught-after-resume"))

    def test_captured_future_value(self, rt):
        # futures are determined before capture (Section 4.1), so the
        # continuation carries the settled value
        result = rt.start("""
            (let ((f (future (* 6 7))))
              (yield)
              (touch f))""")
        restored = snap_continuation(rt, result.continuation)
        assert rt.resume(restored, None) == Done(42)

    def test_rich_state_hash_table(self, rt):
        result = rt.start("""
            (let ((table (make-hash-table))
                  (items (list 1 "two" :three (list 4))))
              (setf (gethash :k table) items)
              (yield)
              (gethash :k table))""")
        restored = snap_continuation(rt, result.continuation)
        assert rt.resume(restored, None) == Done([1, "two", K("three"), [4]])

    def test_loop_heavy_incremental_identical_results(self, rt):
        """The dedup path vs the baseline path, step by step through a
        whole loop — results must be identical at every suspension."""
        from repro.bluebox.store import SharedStore as Store

        result = rt.start("""
            (let ((carried (loop for i from 0 below 150 collect
                                 (list i "carried-block")))
                  (acc (list)))
              (loop for x in (list 1 2 3 4 5 6 7 8 9 10 11 12)
                    do (append! acc (+ x (yield x))))
              (list (length carried) acc))""")
        codec = FiberCodec("deflate")
        pipeline = SnapshotPipeline(codec, Store())
        baseline = result
        key = "fiber-state/f1"
        for reply in range(12):
            # v2 round-trip the live continuation, then advance BOTH
            write = pipeline.encode(key, result.continuation,
                                    fiber_id="f1")
            pipeline.store.write(key, write.blob)
            write.release()
            restored = pipeline.load(pipeline.store.read(key),
                                     fiber_id="f1")
            result = rt.resume(restored, reply)
            baseline = rt.resume(
                pickle.loads(pickle.dumps(baseline.continuation)), reply)
            if isinstance(result, Done):
                break
        assert isinstance(result, Done) and isinstance(baseline, Done)
        assert result.value == baseline.value
        assert result.value[0] == 150
        # and the loop actually deduped: far fewer bytes written than raw
        assert pipeline.written_bytes < pipeline.raw_bytes

    @given(st.integers(min_value=1, max_value=25))
    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    def test_random_depth_roundtrip(self, rt, depth):
        result = rt.start(f"""
            (defun spin (n acc)
              (if (= n 0) (yield acc) (spin (- n 1) (cons n acc))))
            (spin {depth} (list))""")
        restored = snap_continuation(rt, result.continuation)
        done = rt.resume(restored, K("ok"))
        assert done == Done(K("ok"))
