"""Restore fuzzing: every corruption is *detected*, never restored.

The invariant under test is the one the chaos campaign relies on: a
damaged manifest or chunk may fail the restore with a typed
:class:`SnapshotError` (which the retry machinery handles), but it must
never produce a wrong-value restore or escape as an untyped exception.
"""

import random
import zlib

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bluebox.store import SharedStore
from repro.persistsnap import (
    ChunkCorruptionError,
    ChunkStore,
    ManifestFormatError,
    MissingChunkError,
    SnapshotError,
    SnapshotPipeline,
    StateDigestError,
    TornManifestError,
    content_digest,
    decode_manifest,
    encode_manifest,
)
from repro.persistsnap.manifest import ChunkRef, MANIFEST_MAGIC
from repro.vinz.persistence import DeserializationError, FiberCodec

STATE = {"carried": [f"block-{i:04d}" for i in range(300)],
         "noise": bytes(random.Random(11).randrange(256)
                        for _ in range(3000)),
         "pc": 7}


def snapshot():
    """A fresh pipeline with STATE persisted; returns (pipeline, blob)."""
    pipeline = SnapshotPipeline(FiberCodec("deflate"), SharedStore())
    result = pipeline.encode("fiber-state/f1", STATE, fiber_id="f1")
    pipeline.store.write("fiber-state/f1", result.blob)
    result.release()
    return pipeline, result.blob


def flip_bit(data: bytes, bit_index: int) -> bytes:
    out = bytearray(data)
    out[bit_index // 8] ^= 1 << (bit_index % 8)
    return bytes(out)


class TestManifestCorruption:
    def test_truncation_at_every_offset(self):
        pipeline, blob = snapshot()
        for cut in range(len(blob)):
            with pytest.raises((SnapshotError, DeserializationError)):
                pipeline.load(blob[:cut], fiber_id="f1")

    def test_truncation_inside_frame_is_torn(self):
        pipeline, blob = snapshot()
        with pytest.raises(TornManifestError):
            pipeline.read_manifest(blob[:6], fiber_id="f1")
        with pytest.raises(TornManifestError):
            pipeline.read_manifest(blob[:-1], fiber_id="f1")

    def test_every_single_bit_flip_detected(self):
        """CRC32 catches all single-bit errors; the magic and frame are
        covered by their own checks.  No flip may restore silently."""
        pipeline, blob = snapshot()
        for bit in range(len(blob) * 8):
            with pytest.raises((SnapshotError, DeserializationError)):
                pipeline.load(flip_bit(blob, bit), fiber_id="f1")

    @given(st.binary(min_size=0, max_size=200))
    @settings(max_examples=80, deadline=None)
    def test_arbitrary_garbage_is_typed(self, junk):
        pipeline, _ = snapshot()
        with pytest.raises((SnapshotError, DeserializationError)):
            pipeline.load(MANIFEST_MAGIC + junk, fiber_id="f1")

    def test_unknown_version_rejected(self):
        _, blob = snapshot()
        manifest = decode_manifest(blob)
        body_start = 4 + 8
        body = bytearray(blob[body_start:])
        body[0] = 99  # future format version
        reframed = (MANIFEST_MAGIC
                    + __import__("struct").pack(
                        "<II", len(body), zlib.crc32(bytes(body))
                        & 0xFFFFFFFF)
                    + bytes(body))
        with pytest.raises(ManifestFormatError):
            decode_manifest(reframed, fiber_id="f1")
        assert manifest.raw_len > 0

    def test_error_carries_fiber_identity(self):
        pipeline, blob = snapshot()
        with pytest.raises(TornManifestError) as exc:
            pipeline.read_manifest(blob[:10], fiber_id="fib-42")
        assert "fib-42" in str(exc.value)
        assert "v2" in str(exc.value)


class TestChunkCorruption:
    def _manifest(self, pipeline, blob):
        return pipeline.read_manifest(blob, fiber_id="f1")

    def test_missing_chunk_is_typed(self):
        pipeline, blob = snapshot()
        manifest = self._manifest(pipeline, blob)
        victim = manifest.chunks[len(manifest.chunks) // 2]
        pipeline.store.delete(ChunkStore.chunk_key(victim.hex))
        with pytest.raises(MissingChunkError) as exc:
            pipeline.fetch_state(manifest, fiber_id="f1")
        assert victim.hex[:8] in str(exc.value)

    def test_bit_flipped_chunk_detected_or_harmless(self):
        """A flip anywhere in a stored chunk either raises the typed
        error or — in the rare case it lands in a deflate stream's
        unused padding bits — decompresses to the identical bytes.  A
        wrong-value restore is never acceptable."""
        pipeline, blob = snapshot()
        manifest = self._manifest(pipeline, blob)
        rng = random.Random(5)
        detected = 0
        for victim in manifest.chunks:
            key = ChunkStore.chunk_key(victim.hex)
            good = pipeline.store.read(key)
            pipeline.store.write(
                key, flip_bit(good, rng.randrange(len(good) * 8)))
            try:
                pipeline.load(blob, fiber_id="f1")
            except ChunkCorruptionError:
                detected += 1
            else:
                # undetectable flips must be byte-exact no-ops
                assert pipeline.load(blob, fiber_id="f1") == STATE
            pipeline.store.write(key, good)  # heal for the next victim
        assert detected >= len(manifest.chunks) - 1
        # healed store restores fine again
        assert pipeline.load(blob, fiber_id="f1") == STATE

    def test_truncated_chunk_is_typed(self):
        pipeline, blob = snapshot()
        manifest = self._manifest(pipeline, blob)
        victim = manifest.chunks[0]
        key = ChunkStore.chunk_key(victim.hex)
        pipeline.store.write(key, pipeline.store.read(key)[:-3])
        with pytest.raises(ChunkCorruptionError):
            pipeline.fetch_state(manifest, fiber_id="f1")

    def test_swapped_chunk_payloads_are_typed(self):
        """Right lengths, wrong content: only the digest check can
        catch a chunk stored under another chunk's address."""
        pipeline, blob = snapshot()
        manifest = self._manifest(pipeline, blob)
        assert len(manifest.chunks) >= 2
        a_key = ChunkStore.chunk_key(manifest.chunks[0].hex)
        b_key = ChunkStore.chunk_key(manifest.chunks[1].hex)
        a, b = pipeline.store.read(a_key), pipeline.store.read(b_key)
        pipeline.store.write(a_key, b)
        pipeline.store.write(b_key, a)
        with pytest.raises(ChunkCorruptionError):
            pipeline.fetch_state(manifest, fiber_id="f1")

    def test_wrong_state_digest_is_typed(self):
        """Chunks all verify individually but the whole-state digest
        disagrees — e.g. a manifest overwritten with a stale one."""
        pipeline, blob = snapshot()
        manifest = self._manifest(pipeline, blob)
        forged = encode_manifest(
            manifest.codec_byte
            if isinstance(manifest.codec_byte, bytes)
            else bytes([manifest.codec_byte]),
            content_digest(b"something else entirely"),
            manifest.raw_len,
            list(manifest.chunks))
        with pytest.raises(StateDigestError):
            pipeline.load(forged, fiber_id="f1")

    def test_dangling_digest_is_missing_chunk(self):
        pipeline, blob = snapshot()
        manifest = self._manifest(pipeline, blob)
        phantom = ChunkRef(digest=content_digest(b"never stored"),
                           raw_len=64, stored_len=64, enc=0)
        forged = encode_manifest(
            manifest.codec_byte
            if isinstance(manifest.codec_byte, bytes)
            else bytes([manifest.codec_byte]),
            manifest.state_digest, manifest.raw_len,
            [phantom, *manifest.chunks])
        with pytest.raises(MissingChunkError):
            pipeline.load(forged, fiber_id="f1")


class TestNeverWrongValue:
    """The umbrella property: random damage anywhere in the snapshot's
    storage footprint either leaves the restore exact or raises a typed
    error.  A wrong-value restore fails the test immediately."""

    @given(st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=60, deadline=None)
    def test_random_damage_never_restores_wrong(self, seed):
        rng = random.Random(seed)
        pipeline, blob = snapshot()
        keys = ["fiber-state/f1"] + [
            k for k in pipeline.store.keys("snapchunk/")]
        victim_key = rng.choice(keys)
        original = pipeline.store.read(victim_key)
        mode = rng.choice(["flip", "truncate", "garbage", "delete"])
        if mode == "flip" and len(original) > 0:
            damaged = flip_bit(original,
                               rng.randrange(len(original) * 8))
            pipeline.store.write(victim_key, damaged)
        elif mode == "truncate":
            pipeline.store.write(
                victim_key, original[:rng.randrange(len(original) + 1)])
        elif mode == "garbage":
            pipeline.store.write(
                victim_key,
                bytes(rng.randrange(256)
                      for _ in range(rng.randrange(1, 200))))
        else:
            pipeline.store.delete(victim_key)
        try:
            restored = pipeline.load(
                pipeline.store.read("fiber-state/f1")
                if pipeline.store.exists("fiber-state/f1") else b"",
                fiber_id="f1")
        except (SnapshotError, DeserializationError):
            return  # detected: the acceptable outcome
        # undetected damage is only acceptable if the value is exact
        assert restored == STATE
