"""Span-tree integrity under the chaos matrix.

The span model's hardest claim: even when node kills force in-flight
messages to be redelivered, every redelivery's queue-hop span links
back to the hop it retries, so a task's whole chaotic lifetime still
reconstructs as one causal tree.  This reuses the chaos campaign from
``test_chaos`` with span tracing switched on."""

import random

import pytest

from repro.lang.symbols import Keyword as K
from repro.vinz.api import VinzEnvironment
from repro.vinz.task import COMPLETED

from .test_chaos import WORKFLOW, data_service, expected_total


def run_traced_campaign(seed: int, kills: int, nodes: int = 4,
                        tasks: int = 4) -> VinzEnvironment:
    rng = random.Random(seed)
    env = VinzEnvironment(nodes=nodes, seed=seed, trace=False, spans=True)
    env.deploy_service(data_service())
    env.deploy_workflow("Chaos", WORKFLOW, spawn_limit=3)

    inputs = {}
    for i in range(tasks):
        items = [rng.randint(1, 9) for _ in range(rng.randint(2, 5))]
        inputs[i] = items
        env.cluster.send("Chaos", "Start",
                         {"params": [K("id"), i, K("items"), items]})

    node_ids = list(env.cluster.nodes)
    for _ in range(kills):
        victim = rng.choice(node_ids)
        when = rng.uniform(0.05, 3.0)
        env.cluster.kernel.schedule(
            when, lambda v=victim: env.fail_node(v)
            if env.cluster.nodes[v].alive else None)
        env.cluster.kernel.schedule(
            when + rng.uniform(0.5, 2.0),
            lambda v=victim: env.restore_node(v))
    env.cluster.run_until_idle()

    for task in env.registry.tasks.values():
        assert task.status == COMPLETED, (task.id, task.status, task.error)
        plist = {task.result[i].name: task.result[i + 1]
                 for i in range(0, len(task.result), 2)}
        assert plist["total"] == expected_total(inputs[plist["id"]])
    return env


class TestSpanTreeUnderChaos:
    @pytest.mark.parametrize("seed", [101, 202, 505])
    def test_every_redelivery_links_to_its_original_hop(self, seed):
        env = run_traced_campaign(seed=seed, kills=6)
        tracer = env.tracer

        assert tracer.verify_parents() == [], \
            "chaos produced spans with dangling parent ids"
        retries = [span for span in tracer.of_kind("queue-hop")
                   if "retry_of" in span.attrs]
        for hop in retries:
            origin = tracer.get(hop.attrs["retry_of"])
            assert origin is not None and origin.kind == "queue-hop", \
                f"retry hop {hop.id} points at a non-hop origin"
            assert hop.parent_id == origin.id
            assert hop.attrs["attempt"] >= 1

    def test_campaign_actually_exercised_redelivery(self):
        """Across seeds the traced campaign must see real redeliveries —
        otherwise the linking assertions above pass vacuously."""
        total_retry_spans = 0
        for seed in (101, 202, 303, 505, 777):
            env = run_traced_campaign(seed=seed, kills=6)
            total_retry_spans += sum(
                1 for span in env.tracer.of_kind("queue-hop")
                if "retry_of" in span.attrs)
        assert total_retry_spans > 0

    def test_every_task_still_has_one_rooted_tree(self):
        env = run_traced_campaign(seed=202, kills=6)
        tracer = env.tracer
        for task_id in env.registry.tasks:
            root = tracer.task_root(task_id)
            assert root is not None and root.kind == "task"
            # the task span itself hangs off the Start delivery's spans
            ancestor_kinds = {s.kind for s in tracer.ancestors(root.id)}
            assert ancestor_kinds <= {"operation", "queue-hop"}
            tree = tracer.task_tree(task_id)
            kinds = {span.kind for span in tree}
            assert {"task", "fiber", "queue-hop", "operation",
                    "fiber-run"} <= kinds
