"""Survivability integration tests (paper Sections 1 and 3.2).

"Survivability of system faults/shutdowns without losing state ...
the failure of any instance will result in only minimal delays as other
instances automatically compensate."
"""

import pytest

from repro.bluebox.services import simple_service
from repro.vinz.api import VinzEnvironment
from repro.vinz.task import COMPLETED

MULTI_STAGE = """
(defun main (params)
  (let ((a (for-each (x in params) (compute 0.5) (* x 2))))
    (workflow-sleep 1)
    (let ((b (for-each (x in a) (compute 0.5) (+ x 1))))
      (apply #'+ b))))
"""


class TestNodeFailureDuringWorkflow:
    def test_task_completes_despite_node_loss(self):
        env = VinzEnvironment(nodes=4, seed=33)
        env.deploy_workflow("W", MULTI_STAGE)
        task_id = env.start("W", [1, 2, 3, 4])
        # let the workflow get going, then kill a node that has run fibers
        env.cluster.run_until(
            lambda: any(e.kind == "fiber-run" for e in env.cluster.trace.events))
        ran_on = [e.detail["node"] for e in env.cluster.trace.events
                  if e.kind == "fiber-run"]
        env.fail_node(ran_on[0])
        task = env.wait_for_task(task_id)
        assert task.status == COMPLETED
        assert task.result == sum(x * 2 + 1 for x in [1, 2, 3, 4])

    def test_multiple_failures_tolerated(self):
        env = VinzEnvironment(nodes=5, seed=34)
        env.deploy_workflow("W", MULTI_STAGE)
        task_id = env.start("W", [1, 2, 3])
        env.cluster.run_until(
            lambda: any(e.kind == "fiber-suspend"
                        for e in env.cluster.trace.events))
        nodes = list(env.cluster.nodes)
        env.fail_node(nodes[0])
        env.fail_node(nodes[1])
        task = env.wait_for_task(task_id)
        assert task.status == COMPLETED

    def test_state_not_lost_lock_released_on_failure(self):
        """Coordinator (ZooKeeper-like) locks: a dead node's fiber lock
        is released so another node can run the fiber."""
        env = VinzEnvironment(nodes=2, seed=35, locks="coordinator")
        env.deploy_workflow("W", """
            (defun main (params)
              (compute 10)  ; long window: node will die mid-run
              (workflow-sleep 1)
              :survived)""")
        task_id = env.start("W", None)
        env.cluster.run_until(
            lambda: any(e.kind == "fiber-run"
                        for e in env.cluster.trace.events))
        victim = [e for e in env.cluster.trace.events
                  if e.kind == "fiber-run"][0].detail["node"]
        env.fail_node(victim)
        task = env.wait_for_task(task_id)
        assert task.status == COMPLETED

    def test_checkpoints_written_at_every_suspend(self):
        """'automatically creating and maintaining persistent
        checkpoints' — one store write per suspension."""
        env = VinzEnvironment(nodes=2, seed=36)
        env.deploy_workflow("W", """
            (defun main (params)
              (workflow-sleep 1)
              (workflow-sleep 1)
              (workflow-sleep 1)
              :done)""")
        env.run("W", None)
        assert env.counters.get("persist.writes") == 3

    def test_fiber_version_increments_per_checkpoint(self):
        env = VinzEnvironment(nodes=2, seed=37)
        env.deploy_workflow("W", """
            (defun main (params)
              (workflow-sleep 1) (workflow-sleep 1) :x)""")
        task_id = env.run("W", None)
        fiber = env.registry.fibers_of(task_id)[0]
        assert fiber.version == 2


class TestQueueRobustness:
    def test_work_buffered_while_cluster_down(self):
        """The queue buffers messages while no instance is available."""
        env = VinzEnvironment(nodes=1, seed=38)
        env.deploy_workflow("W", "(defun main (p) (1+ p))")
        env.fail_node("node-1")
        task_holder = []

        def grab(body):
            task_holder.append(body)

        from repro.bluebox.messagequeue import ReplyTo

        env.cluster.send("W", "Start", {"params": 1},
                         reply_to=ReplyTo(callback=grab))
        env.cluster.run_until_idle()
        assert not task_holder  # nothing processed yet
        env.restore_node("node-1")
        env.cluster.run_until_idle()
        assert task_holder  # Start processed after restore
        task_id = task_holder[0]["result"]["task"]
        assert env.registry.tasks[task_id].status == COMPLETED


class TestInterleavedTasks:
    def test_many_tasks_share_the_cluster(self):
        env = VinzEnvironment(nodes=4, seed=39)
        env.deploy_workflow("W", """
            (defun main (params)
              (apply #'+ (for-each (x in params) (compute 0.1) (* x x))))""")
        task_ids = [env.start("W", [i, i + 1, i + 2]) for i in range(10)]
        for task_id in task_ids:
            env.wait_for_task(task_id)
        for i, task_id in enumerate(task_ids):
            expected = i * i + (i + 1) ** 2 + (i + 2) ** 2
            assert env.registry.tasks[task_id].result == expected

    def test_interactive_priority_not_starved(self):
        """Section 3.2: interactive requests are less likely to be held
        up by batch workflows, because the queue prioritizes them."""
        from repro.bluebox.messagequeue import PRIORITY_INTERACTIVE, ReplyTo

        env = VinzEnvironment(nodes=2, seed=40)
        env.deploy_workflow("Batch", """
            (defun main (params)
              (for-each (x in params) (compute 2.0) x))""", spawn_limit=16)
        env.deploy_service(simple_service(
            "Interactive", {"Ping": lambda ctx, body: "pong"}))
        env.start("Batch", list(range(12)))
        # let the batch saturate the cluster
        env.cluster.run_until(
            lambda: all(n.busy > 0 for n in env.cluster.nodes.values()))
        replies = []
        env.cluster.send("Interactive", "Ping", {},
                         priority=PRIORITY_INTERACTIVE,
                         reply_to=ReplyTo(callback=lambda b: replies.append(
                             env.cluster.kernel.now)))
        sent_at = env.cluster.kernel.now
        env.cluster.run_until(lambda: bool(replies))
        # the ping got through long before the batch drained
        assert replies[0] - sent_at < 5.0
