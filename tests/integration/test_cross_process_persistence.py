"""Cross-process fiber migration: the NFS story, for real.

The paper's Section 4.2 design lets one JVM write a fiber and another
JVM resume it.  These tests prove the same for our implementation: a
continuation serialized in a *separate Python process* is resumed here
(and vice versa), using a real shared directory.
"""

import subprocess
import sys
import textwrap

import pytest

from repro.bluebox.store import DirectoryStore
from repro.gvm.runtime import make_runtime
from repro.vinz.persistence import FiberCodec

WORKFLOW = """
(defun staged (x)
  (let ((doubled (* x 2)))
    (yield :checkpoint)
    (+ doubled 5)))
(staged 100)
"""


def test_fiber_written_by_child_process_resumes_here(tmp_path):
    script = textwrap.dedent(f"""
        import sys
        from repro.bluebox.store import DirectoryStore
        from repro.gvm.runtime import make_runtime
        from repro.vinz.persistence import FiberCodec

        rt = make_runtime(deterministic=True)
        result = rt.start({WORKFLOW!r})
        codec = FiberCodec("deflate")
        store = DirectoryStore({str(tmp_path)!r})
        store.write("fiber-state/f1", codec.dumps(result.continuation))
        print("WROTE")
    """)
    proc = subprocess.run([sys.executable, "-c", script],
                          capture_output=True, text=True, timeout=60)
    assert proc.returncode == 0, proc.stderr
    assert "WROTE" in proc.stdout

    # "another instance could later read it and resume execution"
    store = DirectoryStore(str(tmp_path))
    codec = FiberCodec("deflate")
    continuation = codec.loads(store.read("fiber-state/f1"))
    rt = make_runtime(deterministic=True)
    done = rt.resume(continuation, None)
    assert done.value == 205


def test_fiber_written_here_resumes_in_child_process(tmp_path):
    rt = make_runtime(deterministic=True)
    result = rt.start(WORKFLOW)
    codec = FiberCodec("gzip")
    store = DirectoryStore(str(tmp_path))
    store.write("fiber-state/f2", codec.dumps(result.continuation))

    script = textwrap.dedent(f"""
        from repro.bluebox.store import DirectoryStore
        from repro.gvm.runtime import make_runtime
        from repro.vinz.persistence import FiberCodec

        store = DirectoryStore({str(tmp_path)!r})
        codec = FiberCodec("gzip")
        continuation = codec.loads(store.read("fiber-state/f2"))
        rt = make_runtime(deterministic=True)
        done = rt.resume(continuation, None)
        print("RESULT", done.value)
    """)
    proc = subprocess.run([sys.executable, "-c", script],
                          capture_output=True, text=True, timeout=60)
    assert proc.returncode == 0, proc.stderr
    assert "RESULT 205" in proc.stdout
