"""Cross-process durability: a writer killed mid-batch, recovered here.

The durable store's crash-recovery contract, proven across a real
process boundary: a child process commits fiber state through a
file-backed write-ahead journal and is SIGKILLed in the middle of a
batch append (only a prefix of the frame reaches disk).  The parent
then rebuilds a store over the same directory, replays the journal,
and must see every committed fiber — and none of the torn tail.
"""

import os
import signal
import subprocess
import sys
import textwrap

COMMITTED = 5  # whole batches the child commits before dying


def _paths(tmp_path):
    return (str(tmp_path / "wal" / "journal.bin"),
            [str(tmp_path / f"plane-{i}") for i in range(2)])


def _build_store(journal_path, roots):
    from repro.durastore import DirectoryBackend, DurableStore, \
        FileJournalStorage, WriteAheadJournal
    backends = [DirectoryBackend(f"shard-{i}", root)
                for i, root in enumerate(roots)]
    journal = WriteAheadJournal(FileJournalStorage(journal_path))
    return DurableStore(backends=backends, journal=journal,
                        checkpoint_interval=0)


def test_writer_killed_mid_batch_recovers_committed_state(tmp_path):
    journal_path, roots = _paths(tmp_path)
    script = textwrap.dedent(f"""
        import os, signal
        from repro.durastore import DirectoryBackend, DurableStore, \\
            FileJournalStorage, WriteAheadJournal, encode_batch

        backends = [DirectoryBackend(f"shard-{{i}}", root)
                    for i, root in enumerate({roots!r})]
        journal = WriteAheadJournal(FileJournalStorage({journal_path!r}))
        store = DurableStore(backends=backends, journal=journal,
                             checkpoint_interval=0)

        for i in range({COMMITTED}):
            store.begin_window()
            store.write(f"fiber-state/f{{i}}", b"committed-%d" % i)
            store.write(f"fiber-thunk/f{{i}}", b"thunk-%d" % i)
            store.commit_batch(store.seal_window())

        # one more window: its backend writes land, its journal frame
        # is cut short by the crash — a torn tail on disk
        store.begin_window()
        store.write("fiber-state/doomed", b"never-committed")
        batch = store.seal_window()
        journal.storage.append(batch.framed[: len(batch.framed) // 2])
        print("DYING", flush=True)
        os.kill(os.getpid(), signal.SIGKILL)
    """)
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [p for p in (env.get("PYTHONPATH"),) if p]
        + [os.path.join(os.path.dirname(__file__), "..", "..", "src")])
    proc = subprocess.run([sys.executable, "-c", script], env=env,
                          capture_output=True, text=True, timeout=60)
    assert proc.returncode == -signal.SIGKILL, proc.stderr
    assert "DYING" in proc.stdout

    # the uncommitted write reached its backend directory before the
    # kill — exactly the state a crashed filer client leaves behind
    store = _build_store(journal_path, roots)
    assert store.exists("fiber-state/doomed")

    report = store.recover()
    assert report["tail_error"] is not None
    assert report["tail_bytes_dropped"] > 0
    assert report["batches"] == COMMITTED
    assert report["recovered_keys"] == 2 * COMMITTED

    # every committed fiber is back, byte for byte
    for i in range(COMMITTED):
        assert store.read(f"fiber-state/f{i}") == b"committed-%d" % i
        assert store.read(f"fiber-thunk/f{i}") == b"thunk-%d" % i
    # and the torn batch is gone everywhere, including the backends
    assert not store.exists("fiber-state/doomed")
    assert store.keys("fiber-state/doomed") == []


def test_recovered_store_resumes_normal_service(tmp_path):
    """After recovery the same store keeps journaling: new commits land
    on the repaired tail and a second replay sees old + new state."""
    journal_path, roots = _paths(tmp_path)
    first = _build_store(journal_path, roots)
    first.begin_window()
    first.write("fiber-state/a", b"one")
    first.commit_batch(first.seal_window())
    # simulated crash mid-append
    first.begin_window()
    first.write("fiber-state/b", b"never")
    batch = first.seal_window()
    first.journal.storage.append(batch.framed[:9])
    del first

    store = _build_store(journal_path, roots)
    report = store.recover()
    assert report["tail_error"] is not None
    store.begin_window()
    store.write("fiber-state/c", b"after-recovery")
    store.commit_batch(store.seal_window())

    fresh = _build_store(journal_path, roots)
    state = fresh.journal.replay()["state"]
    assert state["fiber-state/a"] == b"one"
    assert state["fiber-state/c"] == b"after-recovery"
    assert "fiber-state/b" not in state
