"""Configuration-matrix integration tests.

Runs the same workflow under every combination of the platform's
swappable backends (codec, lock manager, placement, store backing) and
asserts identical results — the configuration space must not change
semantics, only costs.
"""

import itertools

import pytest

from repro.bluebox.store import DirectoryStore
from repro.lang.symbols import Keyword
from repro.vinz.api import VinzEnvironment

WORKFLOW = """
(deftaskvar progress 0)

(defun main (params)
  (let ((squares (for-each (x in params)
                   (setf ^progress^ (+ ^progress^ 1))
                   (* x x))))
    (workflow-sleep 0.5)
    (list :sum (apply #'+ squares) :count ^progress^)))
"""

EXPECTED_SUM = sum(x * x for x in [1, 2, 3, 4])


def run_config(**kwargs):
    env = VinzEnvironment(nodes=3, seed=7, trace=False, **kwargs)
    env.deploy_workflow("W", WORKFLOW)
    result = env.call("W", [1, 2, 3, 4])
    plist = {result[i].name: result[i + 1] for i in range(0, len(result), 2)}
    return env, plist


class TestBackendMatrix:
    @pytest.mark.parametrize("codec", ["none", "gzip", "deflate", "custom"])
    def test_all_codecs_same_result(self, codec):
        env = VinzEnvironment(nodes=3, seed=7, trace=False)
        env.deploy_workflow("W", WORKFLOW, codec=codec)
        result = env.call("W", [1, 2, 3, 4])
        plist = {result[i].name: result[i + 1]
                 for i in range(0, len(result), 2)}
        assert plist["sum"] == EXPECTED_SUM
        assert plist["count"] == 4

    @pytest.mark.parametrize("locks,quirk", [
        ("coordinator", 0.0),
        ("file", 0.0),
        ("file", 0.05),  # with the NFS visibility quirk enabled
    ])
    def test_lock_backends_same_result(self, locks, quirk):
        env, plist = run_config(locks=locks, lock_quirk_delay=quirk)
        assert plist["sum"] == EXPECTED_SUM

    @pytest.mark.parametrize("placement", ["balanced", "affinity"])
    def test_placement_policies_same_result(self, placement):
        env, plist = run_config(placement=placement)
        assert plist["sum"] == EXPECTED_SUM

    def test_directory_store_backed_environment(self, tmp_path):
        """The full platform over a real on-disk shared store: every
        checkpoint and task variable hits the filesystem."""
        store = DirectoryStore(str(tmp_path))
        env = VinzEnvironment(nodes=3, seed=7, trace=False, store=store)
        env.deploy_workflow("W", WORKFLOW)
        result = env.call("W", [1, 2, 3, 4])
        plist = {result[i].name: result[i + 1]
                 for i in range(0, len(result), 2)}
        assert plist["sum"] == EXPECTED_SUM
        # state files really landed on disk during the run
        assert store.writes > 0

    def test_file_locks_with_quirk_slow_but_correct(self):
        """The NFS visibility quirk adds lock-wait requeues but never
        wrong answers."""
        plain_env, plain = run_config(locks="file", lock_quirk_delay=0.0)
        quirky_env, quirky = run_config(locks="file", lock_quirk_delay=0.2)
        assert plain["sum"] == quirky["sum"] == EXPECTED_SUM
        assert quirky_env.cluster.kernel.now >= plain_env.cluster.kernel.now

    def test_deterministic_across_identical_configs(self):
        env_a, _ = run_config(placement="balanced")
        env_b, _ = run_config(placement="balanced")
        # identical control flow: same event/message/store counts; the
        # virtual clock may differ by compressed-blob-size noise only
        assert env_a.store.writes == env_b.store.writes
        assert env_a.cluster.queue.delivered == env_b.cluster.queue.delivered
        assert env_a.cluster.kernel.now == pytest.approx(
            env_b.cluster.kernel.now, abs=1e-3)


class TestWorkflowServiceConfig:
    def test_custom_main_name(self):
        env = VinzEnvironment(nodes=2, seed=1, trace=False)
        env.deploy_workflow("W", "(defun entry (p) (* p 2))", main="entry")
        assert env.call("W", 21) == 42

    def test_cache_disabled_still_correct(self):
        env = VinzEnvironment(nodes=3, seed=2, trace=False)
        env.deploy_workflow("W", WORKFLOW, cache=False)
        result = env.call("W", [1, 2, 3, 4])
        plist = {result[i].name: result[i + 1]
                 for i in range(0, len(result), 2)}
        assert plist["sum"] == EXPECTED_SUM
        assert env.counters.get("cache.mutable.hit") == 0

    def test_instruction_cost_scales_virtual_time(self):
        def run_with_cost(cost):
            env = VinzEnvironment(nodes=1, seed=3, trace=False)
            env.deploy_workflow("W", """
                (defun main (p)
                  (let ((acc 0))
                    (dotimes (i 2000) (setq acc (+ acc i)))
                    acc))""", instruction_cost=cost)
            env.call("W", None)
            return env.cluster.kernel.now

        cheap = run_with_cost(1e-7)
        expensive = run_with_cost(1e-4)
        assert expensive > cheap * 5
