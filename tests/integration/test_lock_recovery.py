"""Lease-based fiber-lock recovery under crashed nodes.

The hard half of the single-runner guarantee (paper Section 4.2): the
locks that stop two JVMs from running one fiber also mean a *dead* JVM
can strand that fiber forever — NFS lock files outlive their writers
and "the NFS server is completely opaque".  These tests kill nodes
while they hold fiber locks, under the file backend (no failure
detector — only leases can recover), and assert both invariants
jointly: every task still completes with the right answer (nothing
stuck), and the committed-window audit shows no fiber ever double-ran.
"""

import random

import pytest

from repro.bluebox.locks import FileLockManager
from repro.bluebox.services import simple_service
from repro.faults.campaign import run_campaign
from repro.faults.plan import CRASH, FaultPlan, NodeFault
from repro.lang.symbols import Keyword
from repro.vinz.api import VinzEnvironment
from repro.vinz.task import COMPLETED

WORKFLOW = """
(defun main (params)
  (let* ((items (getf params :items))
         (doubled (for-each (x in items)
                    (compute 0.4)
                    (* x 2))))
    (list :id (getf params :id) :total (apply #'+ doubled))))
"""


def start_tasks(env, tasks, rng):
    inputs = {}
    for i in range(tasks):
        items = [rng.randint(1, 9) for _ in range(rng.randint(2, 4))]
        inputs[i] = items
        env.cluster.send("Recovery", "Start",
                         {"params": [Keyword("id"), i,
                                     Keyword("items"), items]})
    return inputs


def assert_all_correct(env, inputs):
    assert len(env.registry.tasks) == len(inputs)
    for task in env.registry.tasks.values():
        assert task.status == COMPLETED, (task.id, task.status, task.error)
        plist = {task.result[i].name: task.result[i + 1]
                 for i in range(0, len(task.result), 2)}
        assert plist["total"] == sum(x * 2 for x in inputs[plist["id"]])


def assert_single_runner(env):
    """No message committed twice; no fiber's windows overlap."""
    seen = set()
    by_fiber = {}
    for fiber_id, msg_id, start, end in env.runner_audit:
        assert (fiber_id, msg_id) not in seen, \
            f"message {msg_id} committed twice for fiber {fiber_id}"
        seen.add((fiber_id, msg_id))
        by_fiber.setdefault(fiber_id, []).append((start, end))
    for fiber_id, windows in by_fiber.items():
        windows.sort()
        for (s1, e1), (s2, e2) in zip(windows, windows[1:]):
            assert s2 >= e1, f"fiber {fiber_id} windows overlap"


class TestLeaseRecovery:
    def test_crashed_holder_recovers_via_lease(self):
        """Kill a node mid-window under file locks: the abandoned lock
        must be reclaimed by the scanner and the fiber re-run."""
        env = VinzEnvironment(nodes=3, seed=7, locks="file",
                              lease_ttl=1.0)
        env.deploy_workflow("Recovery", WORKFLOW, spawn_limit=2)
        rng = random.Random(7)
        inputs = start_tasks(env, tasks=3, rng=rng)
        # crash a node while windows are in flight; never restore it —
        # the survivors must finish everything
        env.cluster.kernel.schedule(0.3, lambda: env.fail_node("node-1"))
        env.cluster.run_until_idle()
        assert_all_correct(env, inputs)
        assert_single_runner(env)
        recovery = env.summary()["recovery"]
        # the dead node held at least one fiber lock: the scanner must
        # have expired it and recovery latency is bounded by TTL + scan
        if recovery["leases"]["abandoned"]:
            assert recovery["locks_expired"] >= 1
            bound = env.locks.lease_ttl + env.recovery.interval + 1e-6
            assert recovery["max_recovery_latency"] <= bound

    def test_crash_restart_storm_file_locks(self):
        """Repeated kill/restore cycles under file locks + leases:
        nothing sticks, nothing double-runs, answers stay right."""
        env = VinzEnvironment(nodes=4, seed=11, locks="file",
                              lease_ttl=1.0)
        env.deploy_workflow("Recovery", WORKFLOW, spawn_limit=2)
        rng = random.Random(11)
        inputs = start_tasks(env, tasks=4, rng=rng)
        node_ids = list(env.cluster.nodes)
        for _ in range(6):
            victim = rng.choice(node_ids)
            when = rng.uniform(0.1, 4.0)
            env.cluster.kernel.schedule(
                when, lambda v=victim: env.fail_node(v)
                if env.cluster.nodes[v].alive else None)
            env.cluster.kernel.schedule(
                when + rng.uniform(0.5, 2.0),
                lambda v=victim: env.restore_node(v))
        env.cluster.run_until_idle()
        assert_all_correct(env, inputs)
        assert_single_runner(env)

    def test_coordinator_recovers_without_waiting_for_lease(self):
        """Parity check: the coordinator's failure detector expires the
        dead node's sessions instantly — no lease lapse needed."""
        env = VinzEnvironment(nodes=3, seed=5, locks="coordinator",
                              lease_ttl=5.0)
        env.deploy_workflow("Recovery", WORKFLOW, spawn_limit=2)
        rng = random.Random(5)
        inputs = start_tasks(env, tasks=3, rng=rng)
        env.cluster.kernel.schedule(0.3, lambda: env.fail_node("node-1"))
        env.cluster.run_until_idle()
        assert_all_correct(env, inputs)
        assert_single_runner(env)

    def test_heartbeats_keep_long_windows_alive(self):
        """A window longer than the TTL must not lose its lock: the
        cluster heartbeats the lease while the node lives."""
        env = VinzEnvironment(nodes=2, seed=3, locks="file",
                              lease_ttl=0.5)
        env.deploy_workflow("Recovery", WORKFLOW, spawn_limit=2)
        # (compute 0.4) windows approach the 0.5 TTL; with several
        # fibers interleaving, only heartbeats keep leases live
        rng = random.Random(3)
        inputs = start_tasks(env, tasks=2, rng=rng)
        env.cluster.run_until_idle()
        assert_all_correct(env, inputs)
        assert_single_runner(env)
        assert env.locks.leases_stolen == 0  # no healthy holder robbed


class TestCrashOnLockCampaign:
    def test_crash_on_lock_campaign_file_locks(self):
        """The worst case: the node dies the instant it takes a fiber
        lock.  Nothing persisted, the NFS entry survives — only the
        lease can free it."""
        plan = FaultPlan([
            NodeFault(action=CRASH, on_lock=2, restart_after=2.0),
            NodeFault(action=CRASH, on_lock=7, restart_after=2.0),
        ], name="crash-on-lock")
        report = run_campaign(plan, seed=21, tasks=3, nodes=4,
                              locks="file", lease_ttl=1.0)
        assert isinstance(report.env.locks, FileLockManager)
        assert report.all_completed, report.statuses
        assert report.wrong_results() == []
        assert report.stuck_fibers() == []
        assert report.single_runner_violations() == []
        assert report.injected.get("crash-on-lock", 0) >= 1

    def test_crash_campaign_replays_bit_identically(self):
        plan = FaultPlan([NodeFault(action=CRASH, on_lock=3,
                                    restart_after=1.5)],
                         name="replay")
        first = run_campaign(plan, seed=33, tasks=2, nodes=3,
                             locks="file", lease_ttl=1.0)
        second = run_campaign(plan, seed=33, tasks=2, nodes=3,
                              locks="file", lease_ttl=1.0)
        assert first.signature("lease-expired", "fiber-reawakened",
                               "fault.injected") \
            == second.signature("lease-expired", "fiber-reawakened",
                                "fault.injected")

    def test_crash_during_persist_file_locks(self):
        """Crash mid-persist under file locks: rollback + lease
        recovery + retry must still converge on the right answers."""
        plan = FaultPlan([NodeFault(action=CRASH, on_persist=3,
                                    restart_after=2.0)],
                         name="crash-on-persist-file")
        report = run_campaign(plan, seed=13, tasks=3, nodes=4,
                              locks="file", lease_ttl=1.0)
        assert report.all_completed, report.statuses
        assert report.wrong_results() == []
        assert report.stuck_fibers() == []
        assert report.single_runner_violations() == []
