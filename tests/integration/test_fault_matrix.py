"""The reproducible chaos matrix (fault-injection subsystem).

Every campaign here is a named ``(seed, FaultPlan)`` pair: a seeded
matrix over message faults × store faults × node faults asserting the
paper's survivability claim end to end (every task completes with the
right answer), plus replay tests asserting the same pair produces a
bit-identical trace, and dead-letter tests asserting that exhausted
messages fail loudly through the condition system instead of hanging.
"""

import pytest

from repro.bluebox.services import simple_service
from repro.faults import (
    CORRUPT_READ,
    CRASH,
    DELAY,
    DROP,
    DUPLICATE,
    FAIL_WRITE,
    FaultInjector,
    FaultPlan,
    MessageFault,
    NodeFault,
    RetryPolicy,
    StoreFault,
)
from repro.faults.campaign import run_campaign
from repro.lang.symbols import Keyword
from repro.vinz.api import VinzEnvironment
from repro.vinz.task import COMPLETED, ERROR

MESSAGE_FAULTS = {
    "drop": MessageFault(DROP, nth=2, count=2),
    "duplicate": MessageFault(DUPLICATE, nth=3, count=1),
    "delay": MessageFault(DELAY, nth=4, count=1, delay=0.6),
}

STORE_FAULTS = {
    "fail-write": StoreFault(FAIL_WRITE, nth=2, count=2),
    "corrupt-read": StoreFault(CORRUPT_READ, nth=2, count=1),
}

NODE_FAULTS = {
    "crash-mid-fiber": NodeFault(CRASH, at=0.4, restart_after=1.0),
    "crash-on-persist": NodeFault(CRASH, on_persist=3, restart_after=1.0),
}


class TestFaultMatrix:
    @pytest.mark.parametrize("message_kind", sorted(MESSAGE_FAULTS))
    @pytest.mark.parametrize("store_kind", sorted(STORE_FAULTS))
    @pytest.mark.parametrize("node_kind", sorted(NODE_FAULTS))
    def test_campaign_completes_correctly(self, message_kind, store_kind,
                                          node_kind):
        plan = FaultPlan([MESSAGE_FAULTS[message_kind],
                          STORE_FAULTS[store_kind],
                          NODE_FAULTS[node_kind]],
                         name=f"{message_kind}+{store_kind}+{node_kind}")
        report = run_campaign(plan, seed=1234, tasks=3, nodes=3)
        # every task finished with the arithmetically correct answer
        assert report.statuses == {COMPLETED: 3}, report.statuses
        assert report.wrong_results() == []
        # the campaign was not a no-op: every fault category fired
        injected = report.injected
        assert sum(injected.values()) >= 3, injected
        assert any(k in injected for k in
                   (MESSAGE_FAULTS[message_kind].action,)), injected
        assert any(k in injected for k in
                   (STORE_FAULTS[store_kind].action,)), injected
        assert ("crash" in injected) or ("crash-on-persist" in injected), \
            injected
        # nothing was abandoned under the default bounded policy
        assert report.dead_lettered == 0

    def test_drop_fault_forces_redelivery(self):
        plan = FaultPlan([MessageFault(DROP, nth=2, count=3)], name="drops")
        report = run_campaign(plan, seed=99, tasks=2, nodes=2)
        assert report.statuses == {COMPLETED: 2}
        assert report.injected.get(DROP) == 3
        assert report.redelivered >= 3
        # retries were traced with their backoff
        assert any(e.kind == "retry.scheduled"
                   for e in report.env.cluster.trace.events)

    def test_duplicate_fault_is_idempotent(self):
        plan = FaultPlan([MessageFault(DUPLICATE, nth=1, count=4)],
                         name="dups")
        report = run_campaign(plan, seed=13, tasks=2, nodes=2)
        # duplicated Starts / fiber messages create no extra tasks and
        # corrupt no results
        assert report.statuses == {COMPLETED: 2}
        assert report.wrong_results() == []
        assert report.duplicated == 4


class TestReplayDeterminism:
    KNOWN_PLAN = FaultPlan([
        MessageFault(DROP, nth=2, count=1),
        MessageFault(DELAY, nth=5, count=1, delay=0.8),
        StoreFault(CORRUPT_READ, key_prefix="fiber-state/", nth=2),
        NodeFault(CRASH, on_persist=4, restart_after=1.5),
        NodeFault(CRASH, at=0.7, restart_after=1.0),
    ], name="known-schedule")

    def test_same_seed_and_plan_replay_bit_identically(self):
        first = run_campaign(self.KNOWN_PLAN, seed=7, tasks=3, nodes=3)
        second = run_campaign(self.KNOWN_PLAN, seed=7, tasks=3, nodes=3)
        assert first.signature() == second.signature()
        assert first.injected == second.injected
        # and the run did real work under real damage
        assert first.statuses == {COMPLETED: 3}
        assert sum(first.injected.values()) >= 3

    def test_different_seed_diverges(self):
        first = run_campaign(self.KNOWN_PLAN, seed=7, tasks=3, nodes=3)
        other = run_campaign(self.KNOWN_PLAN, seed=8, tasks=3, nodes=3)
        assert first.signature() != other.signature()

    def test_fault_events_replay_identically(self):
        """The fault-event subset of the trace is also stable (the
        injector's own decisions are part of the replay contract)."""
        kinds = ("fault.injected", "retry.scheduled", "deadletter.enqueued")
        first = run_campaign(self.KNOWN_PLAN, seed=21, tasks=2, nodes=3)
        second = run_campaign(self.KNOWN_PLAN, seed=21, tasks=2, nodes=3)
        assert first.signature(*kinds) == second.signature(*kinds)
        assert len(first.signature("fault.injected")) \
            == sum(first.injected.values())


class TestDeadLetterLiveness:
    TIGHT = RetryPolicy(max_attempts=3, base_delay=0.01, multiplier=2.0,
                        max_delay=0.1, jitter=0.0)

    def test_unwritable_fiber_state_fails_tasks_instead_of_hanging(self):
        # every fiber-state persist fails: fibers can never make
        # progress, so their messages must exhaust and dead-letter, and
        # the owning tasks must surface ERROR — not hang the campaign
        plan = FaultPlan([StoreFault(FAIL_WRITE, key_prefix="fiber-state/",
                                     nth=1, count=10_000)],
                         name="persist-storm")
        report = run_campaign(plan, seed=5, tasks=2, nodes=2,
                              retry_policy=self.TIGHT)
        assert report.statuses == {ERROR: 2}
        assert report.dead_lettered == 2
        for task in report.env.registry.tasks.values():
            assert "dead-lettered" in (task.error or "")
        trace_kinds = [e.kind for e in report.env.cluster.trace.events]
        assert trace_kinds.count("deadletter.enqueued") == 2

    def test_dead_letters_are_retained_for_inspection(self):
        plan = FaultPlan([StoreFault(FAIL_WRITE, nth=1, count=10_000)],
                         name="write-storm")
        report = run_campaign(plan, seed=5, tasks=2, nodes=2,
                              retry_policy=self.TIGHT)
        queue = report.env.cluster.queue
        assert len(queue.dead_letters) == queue.dead_lettered == 2
        for message in queue.dead_letters:
            assert message.attempts >= self.TIGHT.max_attempts

    def test_no_message_is_both_completed_and_dead_lettered(self):
        plan = FaultPlan([MessageFault(DROP, nth=1, count=30)],
                         name="heavy-drops")
        report = run_campaign(plan, seed=77, tasks=2, nodes=2,
                              retry_policy=self.TIGHT.with_max_attempts(2))
        completed = {d["msg"] for e in report.env.cluster.trace.events
                     if e.kind == "complete"
                     for d in (e.detail,) if "msg" in d}
        assert completed.isdisjoint(report.env.cluster.queue.dead_letter_ids())


class TestConditionSurfacing:
    SOURCE = """
    (deflink DS :wsdl "urn:dl-data")
    (defun main (params)
      (handler-case
          (DS-Lookup-Method :Key params)
        (service-error (c) (list :fallback params))))
    """

    def _env(self):
        env = VinzEnvironment(
            nodes=2, seed=3,
            retry_policy=RetryPolicy(max_attempts=2, base_delay=0.01,
                                     multiplier=1.0, max_delay=0.01,
                                     jitter=0.0))

        def lookup(ctx, body):
            return body.get("Key", 0) * 10

        env.deploy_service(simple_service(
            "DLData", {"Lookup": lookup}, namespace="urn:dl-data",
            parameters={"Lookup": ["Key"]}))
        env.deploy_workflow("W", self.SOURCE)
        return env

    def test_dead_lettered_request_signals_catchable_condition(self):
        """A service request that exhausts its retries answers with a
        ``{urn:bluebox}DeadLettered`` fault, which the workflow catches
        with an ordinary ``handler-case`` — the existing condition
        system, not a new error channel."""
        env = self._env()
        plan = FaultPlan([MessageFault(DROP, service="DLData",
                                       nth=1, count=50)], name="drop-all")
        FaultInjector(3, plan).install(env)
        assert env.call("W", 7) == [Keyword("fallback"), 7]
        assert env.cluster.queue.dead_lettered == 1

    def test_without_faults_the_request_succeeds(self):
        env = self._env()
        assert env.call("W", 7) == 70
