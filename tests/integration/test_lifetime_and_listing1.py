"""Figure 1 (workflow lifetime) and Listing 1 (sum-of-squares) checks."""

import pytest

from repro.bluebox.services import simple_service
from repro.gvm.runtime import make_runtime
from repro.vinz.api import VinzEnvironment

LISTING1 = """
(defun loc-sum-squares (numbers)
  (apply #'+
    (loop for number in numbers
          collect (* number number))))

(defun par-sum-squares (numbers)
  (apply #'+
    (loop for number in numbers
          collect (future (* number number)))))

(defun dist-sum-squares (numbers)
  (apply #'+
    (for-each (number in numbers)
      (* number number))))
"""


class TestListing1:
    """All three variants produce the same answer — the paper's point
    that parallel/distributed code looks like sequential code."""

    NUMBERS = list(range(1, 21))
    EXPECTED = sum(n * n for n in NUMBERS)

    def test_loc_and_par_locally(self):
        rt = make_runtime(deterministic=True)
        rt.eval_string(LISTING1.split("(defun dist")[0])
        assert rt.eval_string(f"(loc-sum-squares (list {' '.join(map(str, self.NUMBERS))}))") == self.EXPECTED
        assert rt.eval_string(f"(par-sum-squares (list {' '.join(map(str, self.NUMBERS))}))") == self.EXPECTED

    def test_all_three_in_a_workflow(self):
        env = VinzEnvironment(nodes=4, seed=17)
        env.deploy_workflow("SumSquares", LISTING1 + """
            (defun main (numbers)
              (list (loc-sum-squares numbers)
                    (par-sum-squares numbers)
                    (dist-sum-squares numbers)))""")
        loc, par, dist = env.call("SumSquares", self.NUMBERS)
        assert loc == par == dist == self.EXPECTED

    def test_par_with_real_threads(self):
        rt = make_runtime(deterministic=False, max_workers=4)
        try:
            rt.eval_string(LISTING1.split("(defun dist")[0])
            assert rt.eval_string(
                "(par-sum-squares (loop for i from 1 to 50 collect i))") == \
                sum(i * i for i in range(1, 51))
        finally:
            rt.shutdown()


class TestFigure1Lifetime:
    """Reconstruct the paper's Figure 1: the lifetime of one workflow
    task, as a causally ordered event trace."""

    def _run_sample_workflow(self):
        env = VinzEnvironment(nodes=3, seed=18)

        def price(ctx, body):
            ctx.charge(0.25)
            return 101.25

        env.deploy_service(simple_service("Pricing", {"Price": price},
                                          namespace="urn:pricing",
                                          parameters={"Price": ["Id"]}))
        env.deploy_workflow("Sample", """
            (deflink P :wsdl "urn:pricing")
            (defun main (params)
              (let ((price (P-Price-Method :Id params)))
                (apply #'+ (for-each (x in (list 1 2))
                             (* x price)))))""")
        task_id = env.run("Sample", "IBM")
        return env, task_id

    def test_lifetime_phases_in_order(self):
        env, task_id = self._run_sample_workflow()
        events = env.cluster.trace.for_task(task_id)
        kinds = [e.kind for e in events]
        # the canonical phases of Figure 1:
        assert "task-start" in kinds
        assert "fiber-run" in kinds
        assert "service-request" in kinds
        assert "fiber-suspend" in kinds
        assert "fiber-fork" in kinds
        assert "fiber-complete" in kinds
        assert "task-complete" in kinds
        # ordering: start < first run < suspend-for-service < complete
        t = {k: min(e.time for e in events if e.kind == k) for k in set(kinds)}
        assert t["task-start"] <= t["fiber-run"]
        assert t["fiber-run"] <= t["fiber-suspend"]
        assert t["fiber-suspend"] <= t["task-complete"]

    def test_result_correct(self):
        env, task_id = self._run_sample_workflow()
        assert env.registry.tasks[task_id].result == pytest.approx(
            1 * 101.25 + 2 * 101.25)

    def test_suspensions_match_resumes(self):
        env, task_id = self._run_sample_workflow()
        events = env.cluster.trace.for_task(task_id)
        suspends = sum(1 for e in events if e.kind == "fiber-suspend")
        resumes = sum(1 for e in events
                      if e.kind == "fiber-run" and e.detail.get("resume"))
        assert suspends == resumes

    def test_trace_renders(self):
        env, task_id = self._run_sample_workflow()
        text = env.cluster.trace.render(env.cluster.trace.for_task(task_id))
        assert "task-start" in text
        assert "task-complete" in text
