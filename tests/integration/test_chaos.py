"""Chaos campaign: randomized node failures under load.

The paper's survivability claim (Sections 1 and 3.2) in its strongest
form: no matter when instances die, as long as some capacity eventually
exists, every task completes with the right answer.  These tests kill
random nodes at random (virtual) times throughout a workload and verify
full completion and correct results.
"""

import random

import pytest

from repro.bluebox.services import simple_service
from repro.vinz.api import VinzEnvironment
from repro.vinz.task import COMPLETED

WORKFLOW = """
(deflink DS :wsdl "urn:chaos-data")

(defun main (params)
  ;; params: (:id n :items (...))
  (let* ((items (getf params :items))
         (enriched (for-each (x in items)
                     (compute 0.3)
                     (+ x (DS-Lookup-Method :Key x))))
         (total (apply #'+ enriched)))
    (workflow-sleep 0.5)
    (list :id (getf params :id) :total total)))
"""


def data_service():
    def lookup(ctx, body):
        ctx.charge(0.2)
        return body.get("Key", 0) * 10

    return simple_service("ChaosData", {"Lookup": lookup},
                          namespace="urn:chaos-data",
                          parameters={"Lookup": ["Key"]})


def expected_total(items):
    return sum(x + x * 10 for x in items)


def run_campaign(seed: int, kills: int, nodes: int = 6,
                 tasks: int = 6) -> VinzEnvironment:
    rng = random.Random(seed)
    env = VinzEnvironment(nodes=nodes, seed=seed, trace=False)
    env.deploy_service(data_service())
    env.deploy_workflow("Chaos", WORKFLOW, spawn_limit=3)

    inputs = {}
    for i in range(tasks):
        items = [rng.randint(1, 9) for _ in range(rng.randint(2, 5))]
        inputs[i] = items
        from repro.lang.symbols import Keyword as K

        env.cluster.send("Chaos", "Start",
                         {"params": [K("id"), i, K("items"), items]})

    # schedule node murders at random virtual times; always revive one
    # node at the end so the cluster retains capacity
    node_ids = list(env.cluster.nodes)
    for k in range(kills):
        victim = rng.choice(node_ids)
        when = rng.uniform(0.05, 3.0)
        env.cluster.kernel.schedule(
            when, lambda v=victim: env.fail_node(v)
            if env.cluster.nodes[v].alive else None)
        env.cluster.kernel.schedule(
            when + rng.uniform(0.5, 2.0),
            lambda v=victim: env.restore_node(v))
    env.cluster.run_until_idle()
    # correctness: every task completed with the right total
    assert len(env.registry.tasks) == tasks
    for task in env.registry.tasks.values():
        assert task.status == COMPLETED, (task.id, task.status, task.error)
        plist = {task.result[i].name: task.result[i + 1]
                 for i in range(0, len(task.result), 2)}
        assert plist["total"] == expected_total(inputs[plist["id"]]), task.id
    return env


class TestChaosCampaign:
    @pytest.mark.parametrize("seed", [101, 202, 303, 404, 505])
    def test_random_failures_never_lose_work(self, seed):
        env = run_campaign(seed=seed, kills=4)
        # failures actually happened (the campaign wasn't a no-op)
        # and redelivery kicked in at least sometimes across seeds
        assert env.cluster.queue.enqueued > 0

    def test_heavy_kill_storm(self):
        """Many kills, few nodes: recovery under sustained damage."""
        env = run_campaign(seed=777, kills=10, nodes=3, tasks=4)
        assert env.registry.counts() == {COMPLETED: 4}

    def test_redelivery_observed_across_campaign(self):
        """At least one seed of the campaign must actually exercise the
        in-flight redelivery path (otherwise the campaign is too soft)."""
        total_redelivered = 0
        for seed in (101, 202, 303, 404, 505, 777):
            env = run_campaign(seed=seed, kills=6, nodes=4, tasks=4)
            total_redelivered += env.cluster.queue.redelivered
        assert total_redelivered > 0


class TestKitchenSinkChaos:
    """Every extension enabled at once + random failures: affinity
    placement, EDF scheduling, adaptive migration, chained for-each,
    auto chunking, mailboxes — all under node-kill pressure."""

    SOURCE = """
    (deflink DS :wsdl "urn:chaos-data")

    (deftaskvar finished 0)

    (defun crunch (x)
      (compute 0.2)
      (+ x (DS-Lookup-Method :Key x)))

    (defun main (params)
      (let* ((items (getf params :items))
             ;; chained distribution
             (chained (for-each (x in items :strategy :chain) (crunch x)))
             ;; auto-chunked distribution over the same items
             (chunked (for-each (x in items :chunk-size :auto)
                        (compute 0.05) (* x 2)))
             ;; a mailbox round trip
             (me (get-process-id))
             (child (fork-and-exec
                      (lambda (parent)
                        (send-message parent :hello)
                        :sent)
                      :arguments (list me)))
             (greeting (receive-message)))
        (join-process child)
        (setf ^finished^ 1)
        (list :id (getf params :id)
              :chained (apply #'+ chained)
              :chunked (apply #'+ chunked)
              :greeting greeting
              :done ^finished^)))
    """

    def test_everything_on_with_failures(self):
        rng = random.Random(4242)
        env = VinzEnvironment(nodes=5, seed=4242, trace=False,
                              placement="affinity")
        env.scheduling_policy = "edf"
        env.migration_policy = "adaptive"
        env.deploy_service(data_service())
        env.deploy_workflow("Sink", self.SOURCE, spawn_limit=3,
                            auto_chunk_target=1.0)
        from repro.lang.symbols import Keyword as K

        inputs = {}
        for i in range(4):
            items = [rng.randint(1, 9) for _ in range(6)]
            inputs[i] = items
            env.cluster.send("Sink", "Start",
                             {"params": [K("id"), i, K("items"), items],
                              "deadline": 30.0 + i})
        # two scheduled kills with revival
        for when, victim in ((0.8, "node-1"), (2.0, "node-3")):
            env.cluster.kernel.schedule(
                when, lambda v=victim: env.fail_node(v))
            env.cluster.kernel.schedule(
                when + 1.5, lambda v=victim: env.restore_node(v))
        env.cluster.run_until_idle()

        assert env.registry.counts() == {COMPLETED: 4}
        for task in env.registry.tasks.values():
            plist = {task.result[i].name: task.result[i + 1]
                     for i in range(0, len(task.result), 2)}
            items = inputs[plist["id"]]
            assert plist["chained"] == expected_total(items)
            assert plist["chunked"] == sum(2 * x for x in items)
            assert plist["greeting"].name == "hello"
            assert plist["done"] == 1
