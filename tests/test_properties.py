"""Property-based tests (hypothesis) on core invariants."""

import string

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.bluebox.messagequeue import MessageQueue
from repro.bluebox.xmlmsg import XmlElement, element_to_value, value_to_element
from repro.faults import (
    CORRUPT_READ,
    CRASH,
    DELAY,
    DROP,
    DUPLICATE,
    FAIL_READ,
    FAIL_WRITE,
    FaultPlan,
    MessageFault,
    NodeFault,
    StoreFault,
)
from repro.faults.campaign import run_campaign
from repro.gvm.runtime import make_runtime
from repro.lang.printer import print_form
from repro.lang.reader import read_string
from repro.lang.symbols import Keyword, Symbol
from repro.vinz.cache import LruCache
from repro.vinz.persistence import FiberCodec

# ---------------------------------------------------------------------------
# strategies
# ---------------------------------------------------------------------------

symbol_names = st.text(
    alphabet=string.ascii_lowercase + "-*?", min_size=1, max_size=12
).filter(lambda s: not s.startswith("-") and not any(c.isdigit() for c in s)
         and s not in ("nil", "t", "false", "true"))

atoms = st.one_of(
    st.integers(min_value=-10**9, max_value=10**9),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
    st.text(alphabet=string.printable, max_size=20),
    symbol_names.map(Symbol),
    symbol_names.map(Keyword),
    st.none(),
    st.booleans(),
)

forms = st.recursive(atoms, lambda children: st.lists(children, max_size=5),
                     max_leaves=25)

json_like = st.recursive(
    st.one_of(st.none(), st.booleans(),
              st.integers(min_value=-10**6, max_value=10**6),
              st.text(max_size=15)),
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.dictionaries(st.text(string.ascii_letters, min_size=1, max_size=8),
                        children, max_size=4)),
    max_leaves=20)


# ---------------------------------------------------------------------------
# reader / printer round trip
# ---------------------------------------------------------------------------

class TestReaderRoundTrip:
    @given(forms)
    @settings(max_examples=200)
    def test_print_then_read_is_identity(self, form):
        assert read_string(print_form(form)) == form

    @given(st.lists(forms, min_size=1, max_size=4))
    @settings(max_examples=100)
    def test_multiple_forms_round_trip(self, form_list):
        from repro.lang.reader import read_all

        text = " ".join(print_form(f) for f in form_list)
        assert read_all(text) == form_list


# ---------------------------------------------------------------------------
# VM vs ground truth (the differential block moved to conformance)
# ---------------------------------------------------------------------------

# The old TestVMDifferential block migrated to the conformance
# subsystem: representative instances live in
# tests/conformance/corpus/ as the ``seed-prop-*`` entries (replayed
# through the full oracle matrix by tests/conformance/test_corpus.py),
# and the randomized family those properties sampled is generated and
# differentially executed by ``python -m repro fuzz`` (see
# docs/conformance.md).  The ground-truth-vs-Python variants keep one
# hypothesis check here so a VM regression that breaks *both* engines
# equally still fails.


class TestVMGroundTruth:
    @given(st.lists(st.integers(min_value=-1000, max_value=1000),
                    min_size=0, max_size=20))
    @settings(max_examples=25)
    def test_sum_squares_matches_python(self, numbers):
        rt = make_runtime(deterministic=True)
        listed = " ".join(str(n) for n in numbers)
        value = rt.eval_string(f"""
            (apply #'+ (loop for n in (list {listed}) collect (* n n)))""")
        assert value == sum(n * n for n in numbers)

    @given(st.lists(st.integers(min_value=-100, max_value=100),
                    min_size=1, max_size=15))
    @settings(max_examples=25)
    def test_sort_is_sorted(self, xs):
        rt = make_runtime(deterministic=True)
        listed = " ".join(str(x) for x in xs)
        assert rt.eval_string(f"(sort (list {listed}))") == sorted(xs)


# ---------------------------------------------------------------------------
# continuation determinism
# ---------------------------------------------------------------------------

class TestContinuationProperties:
    @given(st.lists(st.integers(min_value=-10**6, max_value=10**6),
                    min_size=1, max_size=8))
    @settings(max_examples=30)
    def test_yield_resume_transparent(self, values):
        """Feeding values through yields == computing on them directly."""
        rt = make_runtime(deterministic=True)
        result = rt.start("""
            (let ((acc 0))
              (loop repeat %d do (setq acc (+ acc (yield))))
              acc)""" % len(values))
        for v in values[:-1]:
            result = rt.resume(result.continuation, v)
        done = rt.resume(result.continuation, values[-1])
        assert done.value == sum(values)

    @given(st.integers(min_value=-10**9, max_value=10**9))
    @settings(max_examples=30)
    def test_resume_same_continuation_twice_same_answer(self, v):
        rt = make_runtime(deterministic=True)
        result = rt.start("(* 3 (yield))")
        assert rt.resume(result.continuation, v).value == 3 * v
        assert rt.resume(result.continuation, v).value == 3 * v


# ---------------------------------------------------------------------------
# codecs
# ---------------------------------------------------------------------------

class TestCodecProperties:
    @given(json_like, st.sampled_from(["none", "gzip", "deflate", "custom"]))
    @settings(max_examples=100)
    def test_round_trip(self, state, codec_name):
        codec = FiberCodec(codec_name)
        assert codec.loads(codec.dumps(state)) == state


# ---------------------------------------------------------------------------
# XML value encoding
# ---------------------------------------------------------------------------

class TestXmlProperties:
    @given(json_like)
    @settings(max_examples=100)
    def test_value_element_round_trip(self, value):
        el = value_to_element("v", value)
        assert element_to_value(XmlElement.from_xml(el.to_xml())) == value


# ---------------------------------------------------------------------------
# message queue ordering
# ---------------------------------------------------------------------------

class TestQueueProperties:
    @given(st.lists(st.tuples(st.integers(min_value=0, max_value=9),
                              st.integers()),
                    min_size=1, max_size=30))
    @settings(max_examples=100)
    def test_pop_order_is_priority_then_fifo(self, entries):
        queue = MessageQueue()
        for priority, payload in entries:
            msg = queue.make_message("S", "Op", {"p": payload},
                                     priority=priority)
            queue.enqueue(msg, now=0.0)
        popped = []
        while True:
            msg = queue.pop_next("S", now=0.0)
            if msg is None:
                break
            popped.append(msg)
        # priorities non-decreasing
        priorities = [m.priority for m in popped]
        assert priorities == sorted(priorities)
        # FIFO within each priority class (ids increase)
        for priority in set(priorities):
            ids = [m.id for m in popped if m.priority == priority]
            assert ids == sorted(ids)
        assert len(popped) == len(entries)


# ---------------------------------------------------------------------------
# LRU cache
# ---------------------------------------------------------------------------

class TestLruProperties:
    @given(st.lists(st.tuples(st.sampled_from("abcdefgh"), st.integers()),
                    max_size=50),
           st.integers(min_value=1, max_value=5))
    @settings(max_examples=100)
    def test_capacity_never_exceeded_and_last_write_wins(self, ops, capacity):
        cache = LruCache(capacity=capacity)
        latest = {}
        for key, value in ops:
            cache.put(key, value)
            latest[key] = value
        assert len(cache) <= capacity
        for key in latest:
            got = cache.get(key)
            assert got is None or got == latest[key]


# ---------------------------------------------------------------------------
# fault plans: survivability under arbitrary (bounded) fault schedules
# ---------------------------------------------------------------------------

# Bounded fault strategies.  The bounds keep every generated plan inside
# the survivable envelope: crashes always restart (eventual capacity)
# and the worst-case number of policy-counted delivery failures any one
# message can accumulate (message faults + store-abort retries) stays
# below the default RetryPolicy's 8 attempts, so no message can be
# legitimately dead-lettered.

message_faults = st.builds(
    MessageFault,
    action=st.sampled_from([DROP, DUPLICATE, DELAY]),
    nth=st.integers(min_value=1, max_value=6),
    count=st.integers(min_value=1, max_value=2),
    delay=st.floats(min_value=0.05, max_value=1.0))

store_faults = st.builds(
    StoreFault,
    action=st.sampled_from([FAIL_WRITE, FAIL_READ, CORRUPT_READ]),
    key_prefix=st.sampled_from(["", "fiber-state/", "fiber-thunk/"]),
    nth=st.integers(min_value=1, max_value=6),
    count=st.integers(min_value=1, max_value=2))

node_faults = st.builds(
    NodeFault,
    action=st.just(CRASH),
    at=st.floats(min_value=0.1, max_value=2.0),
    restart_after=st.floats(min_value=0.5, max_value=2.0))

fault_plans = st.lists(
    st.one_of(message_faults, store_faults, node_faults),
    min_size=0, max_size=3,
).map(lambda faults: FaultPlan(faults, name="generated"))


class TestFaultPlanProperties:
    @given(fault_plans)
    @settings(max_examples=10, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_survivable_plans_complete_all_tasks_correctly(self, plan):
        """Any bounded fault schedule that leaves eventual capacity:
        every task completes with the arithmetically correct result,
        and no message is both completed and dead-lettered."""
        report = run_campaign(plan, seed=1717, tasks=2, nodes=3)
        tasks = report.env.registry.tasks
        assert tasks and all(t.status == "completed"
                             for t in tasks.values()), report.statuses
        assert report.wrong_results() == []
        completed_msgs = {e.detail["msg"]
                          for e in report.env.cluster.trace.events
                          if e.kind == "complete" and "msg" in e.detail}
        dead = set(report.env.cluster.queue.dead_letter_ids())
        assert completed_msgs.isdisjoint(dead)
        assert report.dead_lettered == 0


# ---------------------------------------------------------------------------
# randomized yield placement (continuation transparency, the hard way)
# ---------------------------------------------------------------------------


class TestRandomYieldPlacement:
    """Generate programs that interleave arithmetic with yields at
    hypothesis-chosen points, run them through suspend/pickle/resume
    cycles, and compare against computing the same thing directly."""

    @given(st.lists(st.tuples(st.booleans(),
                              st.integers(min_value=-50, max_value=50)),
                    min_size=1, max_size=10))
    @settings(max_examples=40)
    def test_interleaved_yields_transparent(self, steps):
        import pickle as _pickle

        from repro.gvm.vm import Done, Yielded

        rt = make_runtime(deterministic=True)
        # program: fold over the steps; yielding steps add the resumed
        # value, plain steps add their constant
        body = ["(setq acc 0)"]
        feeds = []
        expected = 0
        for do_yield, constant in steps:
            if do_yield:
                body.append("(setq acc (+ acc (yield :need-input)))")
                feeds.append(constant)
            else:
                body.append(f"(setq acc (+ acc {constant}))")
            expected += constant
        body.append("acc")
        source = "(progn " + " ".join(body) + ")"

        result = rt.start(source)
        for feed in feeds:
            assert isinstance(result, Yielded)
            # round-trip the continuation through pickle every time
            continuation = _pickle.loads(_pickle.dumps(result.continuation))
            result = rt.resume(continuation, feed)
        assert isinstance(result, Done)
        assert result.value == expected

    @given(st.integers(min_value=1, max_value=6),
           st.integers(min_value=0, max_value=100))
    @settings(max_examples=25)
    def test_yield_in_recursion_depth(self, depth, payload):
        """Yields from arbitrary call depth capture the whole stack."""
        from repro.gvm.vm import Done, Yielded

        rt = make_runtime(deterministic=True)
        rt.eval_string("""
            (defun descend (n)
              (if (= n 0)
                  (yield :bottom)
                  (+ 1 (descend (- n 1)))))""")
        result = rt.start(f"(descend {depth})")
        assert isinstance(result, Yielded)
        done = rt.resume(result.continuation, payload)
        assert isinstance(done, Done)
        assert done.value == payload + depth
