"""CLI tests: ``python -m repro``."""

import os
import subprocess
import sys

import pytest

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
STATS = os.path.join(REPO, "examples", "gozer", "stats.gozer")
PORTFOLIO = os.path.join(REPO, "examples", "gozer", "portfolio.gozer")


def cli(*argv, stdin="", expect_rc=0):
    proc = subprocess.run([sys.executable, "-m", "repro", *argv],
                          input=stdin, capture_output=True, text=True,
                          timeout=180)
    assert proc.returncode == expect_rc, proc.stderr
    return proc.stdout


class TestCli:
    def test_dis(self):
        out = cli("dis", "(+ 1 2)")
        assert "call" in out and "return" in out

    def test_expand(self):
        out = cli("expand", "(unless a b)")
        assert "(if a nil (progn b))" in out

    def test_run_file(self):
        out = cli("run", STATS)
        assert "summarize" in out  # value of the last defun

    def test_run_file_with_main(self, tmp_path):
        wf = tmp_path / "wf.gozer"
        wf.write_text("(defun main (params) (* (or params 1) 6))")
        assert "42" in cli("run", str(wf), "7")

    def test_deploy(self):
        out = cli("deploy", PORTFOLIO, "((:price 2.0 :quantity 5))")
        assert "result:" in out
        assert ":total 10.0" in out
        assert "virtual time" in out

    def test_deploy_with_extensions_flags(self):
        out = cli("deploy", PORTFOLIO, "((:price 1.0 :quantity 1))",
                  "--placement", "affinity", "--edf",
                  "--adaptive-migration")
        assert ":total 1.0" in out

    def test_trace(self):
        out = cli("trace", PORTFOLIO, "((:price 3.0 :quantity 2))")
        assert "task-start" in out
        assert "task-complete" in out
        assert "completed" in out

    def test_production_day(self):
        out = cli("production-day", "0.001", "--nodes", "4", "--slots", "2")
        assert "tasks/day" in out
        assert "cache hit rates" in out

    def test_repl_subcommand(self):
        out = cli("repl", stdin="(* 6 7)\n:quit\n")
        assert "42" in out

    def test_fuzz(self, tmp_path):
        report = tmp_path / "report.json"
        out = cli("fuzz", "--seed", "11", "--budget", "8",
                  "--vinz-every", "8", "--report", str(report))
        assert "unclassified divergences: 0" in out
        assert "coverage:" in out
        import json

        doc = json.loads(report.read_text())
        assert doc["programs"] == 8

    def test_bad_command_exits_nonzero(self):
        proc = subprocess.run([sys.executable, "-m", "repro", "bogus"],
                              capture_output=True, text=True, timeout=60)
        assert proc.returncode != 0
