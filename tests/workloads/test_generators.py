"""Workload generator tests (paper Section 5 calibration)."""

import random

import pytest

from repro.workloads.generators import (
    LogNormalDuration,
    PoissonArrivals,
    TaskSpec,
    WorkloadProfile,
    generate_tasks,
    workload_statistics,
)
from repro.workloads.production import (
    DAY_SECONDS,
    PAPER_TASKS_PER_DAY,
    run_production_day,
)


class TestLogNormalDuration:
    def test_mean_calibration(self):
        """The sample mean converges to the configured mean."""
        model = LogNormalDuration(mean_seconds=68.4, sigma=2.0,
                                  maximum=float("inf"))
        rng = random.Random(0)
        samples = [model.sample(rng) for _ in range(200_000)]
        mean = sum(samples) / len(samples)
        assert 0.8 * 68.4 < mean < 1.2 * 68.4

    def test_clipping(self):
        model = LogNormalDuration(mean_seconds=60, minimum=0.02,
                                  maximum=43200)
        rng = random.Random(1)
        samples = [model.sample(rng) for _ in range(10_000)]
        assert min(samples) >= 0.02
        assert max(samples) <= 43200

    def test_heavy_tail(self):
        """Most tasks are short; a few are very long (paper: 20ms-12h)."""
        model = LogNormalDuration(mean_seconds=68.4, sigma=2.0)
        rng = random.Random(2)
        samples = sorted(model.sample(rng) for _ in range(50_000))
        median = samples[len(samples) // 2]
        assert median < 68.4 / 2  # median well below mean = heavy tail
        assert samples[-1] > 3600  # hours-long stragglers exist

    def test_invalid_mean(self):
        with pytest.raises(ValueError):
            LogNormalDuration(mean_seconds=0)


class TestArrivals:
    def test_count_and_range(self):
        arrivals = PoissonArrivals(100, 1000.0).sample(random.Random(3))
        assert len(arrivals) == 100
        assert arrivals == sorted(arrivals)
        assert all(0 <= a <= 1000.0 for a in arrivals)


class TestGenerateTasks:
    def test_deterministic_by_seed(self):
        a = generate_tasks(50, 1000.0, seed=9)
        b = generate_tasks(50, 1000.0, seed=9)
        assert [t.total_compute for t in a] == [t.total_compute for t in b]

    def test_fiber_ratio_near_paper(self):
        """~4.5 fibers per task (45,000 fibers / 10,000 tasks)."""
        specs = generate_tasks(3000, DAY_SECONDS, seed=4)
        stats = workload_statistics(specs)
        assert 3.0 < stats["fibers_per_task"] < 6.5

    def test_serial_hours_scale(self):
        """190 serial hours per 10k tasks, proportionally."""
        specs = generate_tasks(3000, DAY_SECONDS, seed=5,
                               profile=WorkloadProfile(
                                   mean_task_seconds=190 * 3600 / 10_000))
        stats = workload_statistics(specs)
        expected = 190 * 3000 / PAPER_TASKS_PER_DAY
        assert 0.6 * expected < stats["serial_hours"] < 1.6 * expected

    def test_params_round_trip(self):
        spec = TaskSpec(arrival=0.0, head_seconds=1.0,
                        child_seconds=[2.0, 3.0], service_calls=1)
        params = spec.to_params()
        # the plist the batch workflow's getf reads
        assert params[params.index(
            __import__("repro.lang.symbols",
                       fromlist=["Keyword"]).Keyword("head-seconds")) + 1] == 1.0
        assert spec.total_compute == 6.0
        assert spec.fiber_count == 3

    def test_empty_statistics(self):
        assert workload_statistics([]) == {}


class TestProductionDayRunner:
    def test_tiny_day_completes(self):
        result = run_production_day(scale=0.001, nodes=4, slots=2, seed=3)
        assert result.failed_tasks == 0
        assert result.completed_tasks == result.generated["tasks"]
        assert result.persist_writes > 0

    def test_rows_have_paper_columns(self):
        result = run_production_day(scale=0.001, nodes=4, slots=2, seed=3)
        rows = result.rows()
        metrics = [r[0] for r in rows]
        assert "tasks/day" in metrics
        assert "serial hours" in metrics
