"""Lock-manager contract suite: leases, fencing, recovery parity.

Parametrized over both backends (NFS-file-style and coordinator) so the
lease/fencing layer provably behaves identically regardless of where
lock entries are stored — the property the recovery scanner depends on.
"""

import math

import pytest

from repro.bluebox.locks import CoordinatorLockManager, FileLockManager
from repro.bluebox.store import SharedStore


class Clock:
    """A settable virtual clock for lease arithmetic."""

    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, dt):
        self.now += dt


@pytest.fixture(params=["file", "coordinator"])
def manager(request):
    clock = Clock()
    if request.param == "file":
        lm = FileLockManager(SharedStore(), clock_now=clock)
    else:
        lm = CoordinatorLockManager()
    lm.configure_leases(ttl=2.0, clock_now=clock)
    lm.test_clock = clock
    return lm


OWNER_A = "wf@node-1#m-1"
OWNER_B = "wf@node-2#m-2"


class TestLockContract:
    def test_acquire_release_round_trip(self, manager):
        assert manager.try_acquire("k", OWNER_A)
        assert manager.holder("k") == OWNER_A
        assert manager.release("k", OWNER_A)
        assert manager.holder("k") is None
        assert manager.lease_of("k") is None

    def test_reentrant_acquire(self, manager):
        assert manager.try_acquire("k", OWNER_A)
        assert manager.try_acquire("k", OWNER_A)
        # re-entrancy is not a fresh grant: one lease, one token bump
        assert manager.leases_granted == 1
        assert manager.fencing_token("k") == 1

    def test_contender_rejected_while_lease_live(self, manager):
        assert manager.try_acquire("k", OWNER_A)
        assert not manager.try_acquire("k", OWNER_B)
        assert manager.holder("k") == OWNER_A

    def test_release_by_non_owner_refused(self, manager):
        assert manager.try_acquire("k", OWNER_A)
        assert not manager.release("k", OWNER_B)
        assert manager.holder("k") == OWNER_A

    def test_release_of_free_lock_refused(self, manager):
        assert not manager.release("k", OWNER_A)

    def test_reentrant_acquire_renews_lease(self, manager):
        manager.try_acquire("k", OWNER_A)
        manager.test_clock.advance(1.5)
        manager.try_acquire("k", OWNER_A)  # heartbeat via re-entrancy
        manager.test_clock.advance(1.5)
        # 3.0s since grant but only 1.5s since renewal: still live
        assert not manager.lease_expired("k")
        assert not manager.try_acquire("k", OWNER_B)

    def test_explicit_renewal_extends_lease(self, manager):
        manager.try_acquire("k", OWNER_A)
        manager.test_clock.advance(1.9)
        assert manager.renew("k", OWNER_A)
        manager.test_clock.advance(1.9)
        assert not manager.lease_expired("k")
        assert manager.leases_renewed == 1

    def test_renewal_by_non_owner_refused(self, manager):
        manager.try_acquire("k", OWNER_A)
        assert not manager.renew("k", OWNER_B)
        assert not manager.renew("other", OWNER_A)

    def test_renew_owner_heartbeats_every_lock(self, manager):
        manager.try_acquire("k1", OWNER_A)
        manager.try_acquire("k2", OWNER_A)
        manager.try_acquire("k3", OWNER_B)
        manager.test_clock.advance(1.0)
        assert manager.renew_owner(OWNER_A) == 2
        assert manager.locks_of(OWNER_A) == ["k1", "k2"]

    def test_lapsed_lease_is_stolen(self, manager):
        manager.try_acquire("k", OWNER_A)
        manager.test_clock.advance(2.5)  # past the 2.0 TTL
        assert manager.lease_expired("k")
        assert manager.try_acquire("k", OWNER_B)
        assert manager.holder("k") == OWNER_B
        assert manager.leases_stolen == 1

    def test_fencing_token_monotonic_across_grants(self, manager):
        manager.try_acquire("k", OWNER_A)
        token_a = manager.fencing_token("k")
        manager.test_clock.advance(2.5)
        manager.try_acquire("k", OWNER_B)  # steal
        token_b = manager.fencing_token("k")
        manager.release("k", OWNER_B)
        manager.try_acquire("k", OWNER_A)  # fresh grant after release
        token_c = manager.fencing_token("k")
        assert token_a < token_b < token_c

    def test_fence_valid_only_for_current_grant(self, manager):
        manager.try_acquire("k", OWNER_A)
        token = manager.fencing_token("k")
        assert manager.fence_valid("k", OWNER_A, token)
        # a lapsed-but-unstolen lease stays valid: no second runner
        # exists, and failing it would dead-loop long windows
        manager.test_clock.advance(2.5)
        assert manager.fence_valid("k", OWNER_A, token)
        manager.try_acquire("k", OWNER_B)  # steal supersedes the grant
        assert not manager.fence_valid("k", OWNER_A, token)
        assert manager.fence_valid("k", OWNER_B,
                                   manager.fencing_token("k"))

    def test_lease_breaker_fires_before_entry_removal(self, manager):
        observed = []

        def breaker(key, owner, reason):
            # the zombie's window aborts while the entry still exists
            observed.append((key, owner, reason, manager.holder(key)))

        manager.lease_breaker = breaker
        manager.try_acquire("k", OWNER_A)
        manager.test_clock.advance(2.5)
        manager.try_acquire("k", OWNER_B)
        assert observed == [("k", OWNER_A, "lease-lapsed", OWNER_A)]

    def test_expire_lock_returns_evicted_owner(self, manager):
        manager.try_acquire("k", OWNER_A)
        assert manager.expire_lock("k", reason="operator") == OWNER_A
        assert manager.holder("k") is None
        assert manager.expire_lock("k") is None  # already free

    def test_expire_node_crash_parity(self, manager):
        """Node death: coordinator sessions expire instantly (its
        failure detector); file locks stay until the lease lapses —
        but via either path OWNER_B eventually takes the lock."""
        manager.try_acquire("k", OWNER_A)
        released = manager.expire_node("node-1")
        if isinstance(manager, CoordinatorLockManager):
            assert released == ["k"]
            assert manager.holder("k") is None
        else:
            assert released == []  # NFS is opaque: nothing to detect
            assert manager.holder("k") == OWNER_A
            manager.test_clock.advance(2.5)  # ...until the lease lapses
        assert manager.try_acquire("k", OWNER_B)

    def test_abandon_leaves_entry_and_lease(self, manager):
        manager.try_acquire("k", OWNER_A)
        assert manager.abandon("k", OWNER_A)
        assert manager.holder("k") == OWNER_A  # the entry survives
        assert manager.lease_of("k") is not None
        assert manager.locks_abandoned == 1
        assert not manager.abandon("k", OWNER_B)  # not the holder

    def test_outstanding_leases_tracks_held_locks(self, manager):
        manager.try_acquire("k1", OWNER_A)
        manager.try_acquire("k2", OWNER_B)
        assert {lease.key for lease in manager.outstanding_leases()} \
            == {"k1", "k2"}
        manager.release("k1", OWNER_A)
        assert [lease.key for lease in manager.outstanding_leases()] \
            == ["k2"]

    def test_ttl_zero_never_lapses(self, manager):
        manager.configure_leases(ttl=0.0)
        manager.try_acquire("k", OWNER_A)
        manager.test_clock.advance(1e9)
        assert not manager.lease_expired("k")
        assert not manager.try_acquire("k", OWNER_B)
        assert manager.lease_of("k").expires_at == math.inf

    def test_lease_stats_shape(self, manager):
        manager.try_acquire("k", OWNER_A)
        stats = manager.lease_stats()
        assert stats["granted"] == 1
        assert stats["outstanding"] == 1
        for key in ("renewed", "expired", "stolen", "abandoned",
                    "fence_rejections"):
            assert stats[key] == 0


class TestOwnerIdentity:
    def test_owner_node_parses_convention(self):
        assert CoordinatorLockManager.owner_node("wf@node-3#m-17") \
            == "node-3"
        assert FileLockManager.owner_node("svc@n#m") == "n"

    def test_owner_node_tolerates_nonconforming_owners(self):
        assert CoordinatorLockManager.owner_node("test-owner") is None
        assert CoordinatorLockManager.owner_node("svc@") is None
        assert CoordinatorLockManager.owner_node("svc@node") == "node"


class TestFileLockVisibilityFix:
    def test_force_release_clears_stale_visibility(self):
        clock = Clock()
        lm = FileLockManager(SharedStore(), clock_now=clock,
                             release_visibility_delay=1.0)
        lm.try_acquire("k", OWNER_A)
        lm.release("k", OWNER_A)  # seeds the visibility-cache entry
        lm.try_acquire("k", OWNER_A)
        lm.force_release("k")
        # the operator just force-freed the lock: the next acquire must
        # succeed, not hit a bogus attribute-cache wait
        assert lm.try_acquire("k", OWNER_B)

    def test_lease_steal_clears_stale_visibility(self):
        clock = Clock()
        lm = FileLockManager(SharedStore(), clock_now=clock,
                             release_visibility_delay=1.0)
        lm.configure_leases(ttl=2.0, clock_now=clock)
        lm.try_acquire("k", OWNER_A)
        lm.release("k", OWNER_A)
        lm.try_acquire("k", OWNER_A)
        clock.advance(2.5)
        assert lm.try_acquire("k", OWNER_B)  # steal, no visibility trap
