"""Discrete-event kernel tests."""

import pytest

from repro.bluebox.clock import RealClock, SimKernel, VirtualClock


class TestVirtualClock:
    def test_starts_at_zero(self):
        assert VirtualClock().now() == 0.0

    def test_custom_start(self):
        assert VirtualClock(10.0).now() == 10.0

    def test_advance(self):
        clock = VirtualClock()
        clock._advance_to(5.0)
        assert clock.now() == 5.0

    def test_no_time_travel(self):
        clock = VirtualClock(5.0)
        with pytest.raises(ValueError):
            clock._advance_to(4.0)


class TestRealClock:
    def test_monotonic(self):
        clock = RealClock()
        a = clock.now()
        b = clock.now()
        assert b >= a


class TestSimKernel:
    def test_events_run_in_time_order(self):
        kernel = SimKernel()
        order = []
        kernel.schedule(3.0, lambda: order.append("c"))
        kernel.schedule(1.0, lambda: order.append("a"))
        kernel.schedule(2.0, lambda: order.append("b"))
        kernel.run_until_idle()
        assert order == ["a", "b", "c"]

    def test_simultaneous_events_fifo(self):
        kernel = SimKernel()
        order = []
        for i in range(5):
            kernel.schedule(1.0, lambda i=i: order.append(i))
        kernel.run_until_idle()
        assert order == [0, 1, 2, 3, 4]

    def test_priority_breaks_ties(self):
        kernel = SimKernel()
        order = []
        kernel.schedule(1.0, lambda: order.append("low"), priority=9)
        kernel.schedule(1.0, lambda: order.append("high"), priority=1)
        kernel.run_until_idle()
        assert order == ["high", "low"]

    def test_clock_advances_to_event_time(self):
        kernel = SimKernel()
        seen = []
        kernel.schedule(2.5, lambda: seen.append(kernel.now))
        final = kernel.run_until_idle()
        assert seen == [2.5]
        assert final == 2.5

    def test_events_can_schedule_events(self):
        kernel = SimKernel()
        order = []

        def first():
            order.append("first")
            kernel.schedule(1.0, lambda: order.append("second"))

        kernel.schedule(1.0, first)
        kernel.run_until_idle()
        assert order == ["first", "second"]
        assert kernel.now == 2.0

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            SimKernel().schedule(-1, lambda: None)

    def test_run_until_predicate(self):
        kernel = SimKernel()
        hits = []
        for i in range(10):
            kernel.schedule(float(i + 1), lambda i=i: hits.append(i))
        satisfied = kernel.run_until(lambda: len(hits) >= 3)
        assert satisfied
        assert len(hits) == 3
        assert kernel.now == 3.0
        # remaining events still pending
        assert kernel.pending() == 7

    def test_run_until_deadline(self):
        kernel = SimKernel()
        kernel.schedule(100.0, lambda: None)
        satisfied = kernel.run_until(lambda: False, deadline=10.0)
        assert not satisfied
        assert kernel.pending() == 1  # event requeued, not lost

    def test_run_until_exhaustion_returns_predicate(self):
        kernel = SimKernel()
        kernel.schedule(1.0, lambda: None)
        assert kernel.run_until(lambda: False) is False

    def test_schedule_at(self):
        kernel = SimKernel()
        seen = []
        kernel.schedule_at(5.0, lambda: seen.append(kernel.now))
        kernel.run_until_idle()
        assert seen == [5.0]

    def test_event_limit_guards_livelock(self):
        kernel = SimKernel()
        kernel.max_events = 100

        def forever():
            kernel.schedule(1.0, forever)

        kernel.schedule(1.0, forever)
        with pytest.raises(RuntimeError):
            kernel.run_until_idle()

    def test_no_reentrancy(self):
        kernel = SimKernel()

        def reenter():
            kernel.run_until_idle()

        kernel.schedule(1.0, reenter)
        with pytest.raises(RuntimeError):
            kernel.run_until_idle()
