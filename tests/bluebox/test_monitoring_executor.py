"""Monitoring and load-balancing executor tests."""

import threading
import time

from repro.bluebox.executor import ExecutorShutdownError, LoadBalancingExecutor
from repro.bluebox.monitoring import ConcurrencySampler, Counters, TraceLog


class TestTraceLog:
    def test_record_and_query(self):
        log = TraceLog()
        log.record(1.0, "enqueue", task="t1")
        log.record(2.0, "deliver", task="t1")
        log.record(3.0, "enqueue", task="t2")
        assert len(log.of_kind("enqueue")) == 2
        assert len(log.for_task("t1")) == 2

    def test_disabled_records_nothing(self):
        log = TraceLog(enabled=False)
        log.record(1.0, "x")
        assert log.events == []

    def test_capacity_cap(self):
        log = TraceLog(capacity=2)
        for i in range(5):
            log.record(float(i), "e")
        assert len(log.events) == 2

    def test_render_format(self):
        log = TraceLog()
        log.record(1.5, "deliver", node="n1")
        text = log.render()
        assert "deliver" in text and "node=n1" in text

    def test_where_predicate(self):
        log = TraceLog()
        log.record(1.0, "a", n=1)
        log.record(2.0, "a", n=2)
        assert len(log.where(lambda e: e.detail["n"] > 1)) == 1


class TestCounters:
    def test_incr_get(self):
        c = Counters()
        c.incr("x")
        c.incr("x", 2)
        assert c.get("x") == 3
        assert c.get("missing") == 0

    def test_sums_and_mean(self):
        c = Counters()
        c.add("dur", 2.0)
        c.add("dur", 4.0)
        c.incr("n")
        c.incr("n")
        assert c.get_sum("dur") == 6.0
        assert c.mean("dur", "n") == 3.0
        assert c.mean("dur", "never") == 0.0

    def test_snapshot(self):
        c = Counters()
        c.incr("a")
        snap = c.snapshot()
        assert snap["counts"] == {"a": 1}


class TestConcurrencySampler:
    def test_peak_tracking(self):
        s = ConcurrencySampler()
        s.change(0.0, +1)
        s.change(1.0, +1)
        s.change(2.0, -1)
        assert s.peak == 2
        assert s.level == 1

    def test_time_weighted_mean(self):
        s = ConcurrencySampler()
        s.change(0.0, +2)   # level 2 for [0, 10)
        s.change(10.0, -1)  # level 1 for [10, 20)
        assert s.mean_until(20.0) == (2 * 10 + 1 * 10) / 20

    def test_mean_at_zero_time(self):
        assert ConcurrencySampler().mean_until(0.0) == 0.0


class TestLoadBalancingExecutor:
    def test_basic_execution(self):
        executor = LoadBalancingExecutor(capacity=2)
        try:
            f = executor.submit(lambda: 21 * 2)
            assert f.touch(timeout=5) == 42
        finally:
            executor.shutdown()

    def test_capacity_respected(self):
        """No more than `capacity` thunks run at once."""
        executor = LoadBalancingExecutor(capacity=2)
        running = []
        lock = threading.Lock()
        peak = [0]
        release = threading.Event()

        def job():
            with lock:
                running.append(1)
                peak[0] = max(peak[0], len(running))
            release.wait(timeout=5)
            with lock:
                running.pop()
            return True

        try:
            futures = [executor.submit(job) for _ in range(6)]
            time.sleep(0.2)
            assert peak[0] <= 2
            release.set()
            for f in futures:
                assert f.touch(timeout=5) is True
            assert executor.total_submitted == 6
            assert executor.peak_in_use <= 2
            assert executor.peak_queue >= 1
        finally:
            release.set()
            executor.shutdown()

    def test_failure_propagates(self):
        executor = LoadBalancingExecutor(capacity=1)
        try:
            f = executor.submit(lambda: 1 / 0)
            import pytest

            with pytest.raises(ZeroDivisionError):
                f.touch(timeout=5)
        finally:
            executor.shutdown()

    def test_queued_jobs_run_after_release(self):
        executor = LoadBalancingExecutor(capacity=1)
        try:
            fs = [executor.submit(lambda i=i: i) for i in range(5)]
            assert [f.touch(timeout=5) for f in fs] == [0, 1, 2, 3, 4]
        finally:
            executor.shutdown()

    def test_shutdown_fails_queued_futures(self):
        """Shutdown with thunks still queued must fail their futures
        with a typed error, not drop them — a later touch would
        otherwise hang forever on a future nobody will determine."""
        import pytest

        executor = LoadBalancingExecutor(capacity=1)
        release = threading.Event()
        blocker = executor.submit(lambda: release.wait(timeout=5))
        queued = [executor.submit(lambda i=i: i, label=f"queued-{i}")
                  for i in range(3)]
        # shut down from a helper thread: the pool join blocks on the
        # in-flight blocker, but the queued futures must already be
        # failed by then
        stopper = threading.Thread(target=executor.shutdown)
        stopper.start()
        try:
            for i, future in enumerate(queued):
                with pytest.raises(ExecutorShutdownError) as err:
                    future.touch(timeout=5)
                assert f"queued-{i}" in str(err.value)
        finally:
            release.set()
            stopper.join(timeout=5)
        assert blocker.touch(timeout=5) is True
