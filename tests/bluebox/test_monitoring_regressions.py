"""Regression tests for monitoring correctness fixes.

Each test pins a bug that previously passed silently: capped trace logs
dropped events without a trace, truncated logs could still vouch for
replay signatures, counters raced under real threads, and the
concurrency sampler diluted its mean with absolute (not elapsed) time.
"""

import threading

import pytest

from repro.bluebox.monitoring import (
    ConcurrencySampler,
    Counters,
    TraceLog,
    TraceTruncatedError,
)


class TestTraceLogTruncation:
    def test_drops_are_counted_not_silent(self):
        log = TraceLog(capacity=2)
        for i in range(5):
            log.record(float(i), "evt", n=i)
        assert len(log.events) == 2
        assert log.dropped == 3
        assert log.snapshot() == {"events": 2, "capacity": 2, "dropped": 3}

    def test_signature_refuses_truncated_stream(self):
        log = TraceLog(capacity=1)
        log.record(0.0, "a")
        log.record(1.0, "b")
        with pytest.raises(TraceTruncatedError):
            log.signature()

    def test_signature_works_when_nothing_dropped(self):
        log = TraceLog(capacity=10)
        log.record(0.0, "a", x=1)
        log.record(1.0, "b")
        assert log.signature() == log.signature()
        assert len(log.signature("a")) == 1

    def test_clear_resets_dropped(self):
        log = TraceLog(capacity=1)
        log.record(0.0, "a")
        log.record(1.0, "b")
        log.clear()
        assert log.dropped == 0
        log.record(2.0, "c")
        assert log.signature() != ()


class TestCountersThreadSafety:
    def test_incr_and_add_are_exact_under_threads(self):
        counters = Counters()

        def work():
            for _ in range(2000):
                counters.incr("n")
                counters.add("s", 0.5)

        threads = [threading.Thread(target=work) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert counters.get("n") == 16000
        assert counters.get_sum("s") == 8000.0
        assert counters.mean("s", "n") == 0.5


class TestConcurrencySamplerOffsetClock:
    def test_mean_uses_elapsed_not_absolute_time(self):
        # a clock that starts at t=100 (VirtualClock(start=...), real
        # clock) must not dilute the average with the 0..100 dead zone
        sampler = ConcurrencySampler()
        sampler.change(100.0, +2)
        sampler.change(101.0, -2)
        assert sampler.mean_until(102.0) == pytest.approx(1.0)
        assert sampler.peak == 2

    def test_mean_at_first_sample_instant_is_zero(self):
        sampler = ConcurrencySampler()
        sampler.change(50.0, +3)
        assert sampler.mean_until(50.0) == 0.0

    def test_no_samples_means_zero(self):
        assert ConcurrencySampler().mean_until(10.0) == 0.0
