"""Message queue tests: priorities, redelivery, statistics."""

from repro.bluebox.messagequeue import (
    MessageQueue,
    PRIORITY_INTERACTIVE,
    PRIORITY_LOW,
    PRIORITY_NORMAL,
    ReplyTo,
)


def make(queue, op="Op", prio=PRIORITY_NORMAL, service="S"):
    msg = queue.make_message(service, op, {}, priority=prio)
    queue.enqueue(msg, now=0.0)
    return msg


class TestOrdering:
    def test_fifo_same_priority(self):
        q = MessageQueue()
        m1, m2 = make(q, "A"), make(q, "B")
        assert q.pop_next("S", 0.0) is m1
        assert q.pop_next("S", 0.0) is m2

    def test_priority_order(self):
        """Interactive beats normal beats low — the paper's AwakeFiber
        prioritization (Section 5)."""
        q = MessageQueue()
        low = make(q, "low", PRIORITY_LOW)
        normal = make(q, "norm", PRIORITY_NORMAL)
        interactive = make(q, "int", PRIORITY_INTERACTIVE)
        assert q.pop_next("S", 0.0) is interactive
        assert q.pop_next("S", 0.0) is normal
        assert q.pop_next("S", 0.0) is low

    def test_pop_empty_returns_none(self):
        q = MessageQueue()
        assert q.pop_next("S", 0.0) is None

    def test_per_service_isolation(self):
        q = MessageQueue()
        make(q, service="A")
        assert q.pop_next("B", 0.0) is None
        assert q.peek_depth("A") == 1


class TestRedelivery:
    def test_requeue_increments_attempts(self):
        q = MessageQueue()
        msg = make(q)
        q.pop_next("S", 0.0)
        assert q.requeue(msg, 1.0)
        assert msg.attempts == 1
        assert q.peek_depth("S") == 1

    def test_poison_message_dropped(self):
        q = MessageQueue()
        msg = make(q)
        msg.max_attempts = 3
        q.pop_next("S", 0.0)
        assert q.requeue(msg, 0.0)
        assert q.requeue(msg, 0.0)
        assert not q.requeue(msg, 0.0)  # third strike: dropped
        assert q.dropped == 1

    def test_redelivered_counter(self):
        q = MessageQueue()
        msg = make(q)
        q.pop_next("S", 0.0)
        q.requeue(msg, 0.0)
        assert q.redelivered == 1


class TestStatistics:
    def test_wait_times_recorded(self):
        q = MessageQueue()
        msg = q.make_message("S", "Op", {})
        q.enqueue(msg, now=1.0)
        q.pop_next("S", now=4.0)
        assert q.wait_times == [3.0]
        assert q.mean_wait() == 3.0

    def test_mean_wait_empty(self):
        assert MessageQueue().mean_wait() == 0.0

    def test_total_depth(self):
        q = MessageQueue()
        make(q, service="A")
        make(q, service="B")
        make(q, service="B")
        assert q.total_depth() == 3
        assert set(q.services_with_messages()) == {"A", "B"}

    def test_ids_unique_and_increasing(self):
        q = MessageQueue()
        ids = [make(q).id for _ in range(5)]
        assert ids == sorted(ids)
        assert len(set(ids)) == 5

    def test_body_copied(self):
        q = MessageQueue()
        body = {"k": 1}
        msg = q.make_message("S", "Op", body)
        body["k"] = 2
        assert msg.body["k"] == 1


class TestReplyTo:
    def test_callback_form(self):
        hits = []
        rt = ReplyTo(callback=hits.append)
        rt.callback({"x": 1})
        assert hits == [{"x": 1}]

    def test_message_form_fields(self):
        rt = ReplyTo(service="WF", operation="ResumeFromCall",
                     extra={"fiber": "f-1"})
        assert rt.service == "WF"
        assert rt.extra["fiber"] == "f-1"
