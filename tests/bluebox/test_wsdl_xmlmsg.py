"""WSDL document and XML message tests (paper Sections 1 and 3.3)."""

from repro.bluebox.wsdl import WsdlDocument, WsdlOperation, WsdlParameter
from repro.bluebox.xmlmsg import (
    ServiceMessage,
    XmlElement,
    element_to_value,
    parse_qname,
    qname,
    value_to_element,
)
from repro.lang.symbols import Keyword, Symbol


class TestQNames:
    def test_build(self):
        assert qname("urn:svc", "Op") == "{urn:svc}Op"

    def test_parse(self):
        assert parse_qname("{urn:svc}Op") == ("urn:svc", "Op")

    def test_parse_no_namespace(self):
        assert parse_qname("Op") == (None, "Op")

    def test_empty_namespace(self):
        assert qname("", "Op") == "Op"


class TestXmlElement:
    def test_xml_round_trip(self):
        el = XmlElement("root", {"a": "1"}, [
            XmlElement("child", text="hello"),
            XmlElement("empty"),
        ])
        clone = XmlElement.from_xml(el.to_xml())
        assert clone == el

    def test_child_lookup(self):
        el = XmlElement("r", children=[XmlElement("{ns}x", text="v")])
        assert el.child("x").text == "v"
        assert el.child("missing") is None


class TestValueEncoding:
    CASES = [
        None,
        True,
        False,
        42,
        -3.5,
        "text",
        Symbol("sym"),
        Keyword("kw"),
        [1, 2, 3],
        {"a": 1, "b": [True, None]},
        [{"nested": {"deep": "x"}}],
        [],
        {},
    ]

    def test_round_trips(self):
        for value in self.CASES:
            el = value_to_element("v", value)
            # through actual XML text, not just the object model
            el2 = XmlElement.from_xml(el.to_xml())
            assert element_to_value(el2) == value, value


class TestServiceMessage:
    def test_set_get(self):
        msg = ServiceMessage("ListSessions")
        msg.set("FilterParams", {"realm": "x"})
        assert msg.get("FilterParams") == {"realm": "x"}
        assert msg.get("Missing", "dflt") == "dflt"

    def test_xml_round_trip(self):
        msg = ServiceMessage("Op", {"A": 1, "B": ["x", "y"]})
        clone = ServiceMessage.from_xml(msg.to_xml())
        assert clone == msg

    def test_interop_from_gozer(self, rt):
        """Workflow code manipulates messages via interop — Listing 2's
        (. msg (set "FilterParams" FilterParams))."""
        from repro.lang.symbols import Symbol as S

        rt.global_env.define(S("make-msg"), lambda: ServiceMessage("Op"))
        result = rt.eval_string("""
            (let ((msg (make-msg)))
              (. msg (set "X" 42))
              (. msg (get "X")))""")
        assert result == 42


class TestWsdlDocument:
    def make_wsdl(self):
        wsdl = WsdlDocument(service="SecurityManager",
                            namespace="urn:security-manager-service",
                            port="SecurityManager",
                            doc="Manages sessions.")
        wsdl.add_operation(WsdlOperation(
            name="ListSessions",
            doc="Returns a list of sessions visible to the caller.",
            parameters=[WsdlParameter("FilterParams", "map"),
                        WsdlParameter("WithinRealm", "string")],
            faults=["{urn:security-manager-service}Denied"]))
        wsdl.add_operation(WsdlOperation(name="NativeOnly", bridgeable=False))
        return wsdl

    def test_soap_action_defaulted(self):
        wsdl = self.make_wsdl()
        assert wsdl.operations["ListSessions"].soap_action == \
            "urn:security-manager-service:ListSessions"

    def test_xml_round_trip_preserves_everything(self):
        wsdl = self.make_wsdl()
        clone = WsdlDocument.from_xml(wsdl.to_xml())
        assert clone.service == wsdl.service
        assert clone.namespace == wsdl.namespace
        assert clone.doc == "Manages sessions."
        op = clone.operations["ListSessions"]
        assert op.doc.startswith("Returns a list")
        assert [p.name for p in op.parameters] == ["FilterParams", "WithinRealm"]
        assert op.faults == ["{urn:security-manager-service}Denied"]
        assert clone.operations["NativeOnly"].bridgeable is False

    def test_fault_qname_helper(self):
        wsdl = self.make_wsdl()
        assert wsdl.fault_qname("X") == "{urn:security-manager-service}X"

    def test_parameter_names(self):
        wsdl = self.make_wsdl()
        assert wsdl.operations["ListSessions"].parameter_names() == \
            ["FilterParams", "WithinRealm"]
