"""Shared store and distributed lock tests (paper Section 4.2)."""

import os

import pytest

from repro.bluebox.locks import CoordinatorLockManager, FileLockManager
from repro.bluebox.store import DirectoryStore, SharedStore, StoreError


class TestSharedStore:
    def test_write_read_round_trip(self):
        store = SharedStore()
        store.write("k", b"data")
        assert store.read("k") == b"data"

    def test_missing_key_raises(self):
        with pytest.raises(StoreError):
            SharedStore().read("missing")

    def test_delete(self):
        store = SharedStore()
        store.write("k", b"x")
        store.delete("k")
        assert not store.exists("k")
        store.delete("k")  # idempotent

    def test_keys_prefix(self):
        store = SharedStore()
        store.write("a/1", b"")
        store.write("a/2", b"")
        store.write("b/1", b"")
        assert store.keys("a/") == ["a/1", "a/2"]

    def test_non_bytes_rejected(self):
        with pytest.raises(TypeError):
            SharedStore().write("k", "string")  # type: ignore

    def test_io_cost_model(self):
        store = SharedStore(op_latency=0.01, per_byte=0.001)
        cost = store.write("k", b"abcd")
        assert cost == pytest.approx(0.01 + 4 * 0.001)
        assert store.cost(0) == 0.01

    def test_statistics(self):
        store = SharedStore()
        store.write("k", b"abc")
        store.read("k")
        store.read("k")
        assert store.writes == 1
        assert store.reads == 2
        assert store.bytes_written == 3
        assert store.bytes_read == 6

    def test_size_and_total(self):
        store = SharedStore()
        store.write("a", b"12")
        store.write("b", b"345")
        assert store.size("a") == 2
        assert store.total_bytes() == 5


class TestDirectoryStore:
    def test_persists_to_disk(self, tmp_path):
        store = DirectoryStore(str(tmp_path))
        store.write("fiber/1", b"state")
        # a second store over the same directory sees it (the NFS story)
        other = DirectoryStore(str(tmp_path))
        assert other.read("fiber/1") == b"state"

    def test_delete_removes_file(self, tmp_path):
        store = DirectoryStore(str(tmp_path))
        store.write("k", b"x")
        store.delete("k")
        assert not DirectoryStore(str(tmp_path)).exists("k")

    def test_slash_in_key_encoded(self, tmp_path):
        store = DirectoryStore(str(tmp_path))
        store.write("a/b/c", b"1")
        files = os.listdir(str(tmp_path))
        assert all("/" not in f for f in files)


class TestFileLockManager:
    def test_acquire_release(self):
        locks = FileLockManager(SharedStore())
        assert locks.try_acquire("f1", "me")
        assert locks.holder("f1") == "me"
        assert locks.release("f1", "me")
        assert locks.holder("f1") is None

    def test_contention(self):
        locks = FileLockManager(SharedStore())
        assert locks.try_acquire("f1", "a")
        assert not locks.try_acquire("f1", "b")
        assert locks.contentions == 1

    def test_reentrant_same_owner(self):
        locks = FileLockManager(SharedStore())
        assert locks.try_acquire("f1", "a")
        assert locks.try_acquire("f1", "a")

    def test_release_wrong_owner_fails(self):
        locks = FileLockManager(SharedStore())
        locks.try_acquire("f1", "a")
        assert not locks.release("f1", "b")
        assert locks.held("f1")

    def test_force_release(self):
        locks = FileLockManager(SharedStore())
        locks.try_acquire("f1", "a")
        locks.force_release("f1")
        assert locks.try_acquire("f1", "b")

    def test_nfs_visibility_quirk(self):
        """The paper's complaint: after release, other clients may still
        see the lock held for a window (attribute caching)."""
        clock = {"now": 0.0}
        locks = FileLockManager(SharedStore(),
                                clock_now=lambda: clock["now"],
                                release_visibility_delay=1.0)
        locks.try_acquire("f1", "a")
        locks.release("f1", "a")
        # immediately after release: another owner still sees it held
        assert not locks.try_acquire("f1", "b")
        clock["now"] = 2.0
        assert locks.try_acquire("f1", "b")

    def test_quirk_does_not_block_same_owner(self):
        clock = {"now": 0.0}
        locks = FileLockManager(SharedStore(),
                                clock_now=lambda: clock["now"],
                                release_visibility_delay=1.0)
        locks.try_acquire("f1", "a")
        locks.release("f1", "a")
        assert locks.try_acquire("f1", "a")  # own release is visible


class TestCoordinatorLockManager:
    def test_acquire_release(self):
        locks = CoordinatorLockManager()
        assert locks.try_acquire("f1", "session-a")
        assert not locks.try_acquire("f1", "session-b")
        assert locks.release("f1", "session-a")
        assert locks.try_acquire("f1", "session-b")

    def test_session_expiry_releases_all(self):
        """ZooKeeper semantics: a dead node's session releases its
        ephemeral locks — fixing the stale-NFS-lock problem."""
        locks = CoordinatorLockManager()
        locks.try_acquire("f1", "s1")
        locks.try_acquire("f2", "s1")
        locks.try_acquire("f3", "s2")
        released = locks.expire_session("s1")
        assert released == ["f1", "f2"]
        assert locks.holder("f1") is None
        assert locks.holder("f3") == "s2"
        assert locks.expired_sessions == 1

    def test_session_locks_listing(self):
        locks = CoordinatorLockManager()
        locks.try_acquire("b", "s")
        locks.try_acquire("a", "s")
        assert locks.session_locks("s") == ["a", "b"]

    def test_reentrant(self):
        locks = CoordinatorLockManager()
        assert locks.try_acquire("f", "s")
        assert locks.try_acquire("f", "s")

    def test_release_not_held(self):
        assert not CoordinatorLockManager().release("f", "s")
