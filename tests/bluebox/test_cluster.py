"""Cluster tests: dispatch, load balancing, failure, slots."""

import pytest

from repro.bluebox.cluster import Cluster
from repro.bluebox.messagequeue import PRIORITY_LOW, ReplyTo
from repro.bluebox.services import Deferred, Requeue, ServiceFault, simple_service


def echo_service(charge=0.1):
    def echo(ctx, body):
        ctx.charge(charge)
        return {"echo": body.get("x"), "node": ctx.node.id}

    return simple_service("Echo", {"Echo": echo})


class TestBasicCalls:
    def test_call_returns_value(self):
        cluster = Cluster(seed=0)
        cluster.add_nodes(2)
        cluster.deploy(echo_service())
        envelope = cluster.call("Echo", "Echo", {"x": 5})
        assert envelope.ok
        assert envelope.value["echo"] == 5

    def test_fault_propagates(self):
        cluster = Cluster(seed=0)
        cluster.add_node()

        def boom(ctx, body):
            raise ServiceFault("{urn:t}Boom", "no")

        cluster.deploy(simple_service("T", {"Boom": boom}))
        envelope = cluster.call("T", "Boom", {})
        assert not envelope.ok
        assert envelope.fault_qname == "{urn:t}Boom"

    def test_unknown_operation_is_fault(self):
        cluster = Cluster(seed=0)
        cluster.add_node()
        cluster.deploy(echo_service())
        envelope = cluster.call("Echo", "Nope", {})
        assert not envelope.ok
        assert "NoSuchOperation" in envelope.fault_qname

    def test_send_to_unknown_service_raises(self):
        cluster = Cluster(seed=0)
        cluster.add_node()
        with pytest.raises(KeyError):
            cluster.send("Ghost", "Op", {})

    def test_virtual_time_advances_with_charges(self):
        cluster = Cluster(seed=0, delivery_latency=0.001)
        cluster.add_node()
        cluster.deploy(echo_service(charge=2.0))
        cluster.call("Echo", "Echo", {"x": 1})
        assert cluster.kernel.now >= 2.0
        assert cluster.kernel.now < 3.0  # but not wildly more

    def test_call_timeout(self):
        cluster = Cluster(seed=0)
        cluster.add_node()

        def never(ctx, body):
            return ctx.defer()  # reply never resolved

        cluster.deploy(simple_service("T", {"Never": never}))
        with pytest.raises(TimeoutError):
            cluster.call("T", "Never", {}, timeout=5.0)


class TestLoadBalancing:
    def test_work_spreads_across_nodes(self):
        cluster = Cluster(seed=1)
        cluster.add_nodes(4)
        cluster.deploy(echo_service(charge=1.0))
        for i in range(8):
            cluster.send("Echo", "Echo", {"x": i})
        cluster.run_until_idle()
        counts = [n.processed for n in cluster.nodes.values()]
        assert sum(counts) == 8
        assert all(c == 2 for c in counts)  # perfect balance: equal cost

    def test_parallel_makespan(self):
        """4 one-second jobs on 4 nodes finish in ~1 second, not 4."""
        cluster = Cluster(seed=1, delivery_latency=0.0)
        cluster.add_nodes(4)
        cluster.deploy(echo_service(charge=1.0))
        for i in range(4):
            cluster.send("Echo", "Echo", {"x": i})
        cluster.run_until_idle()
        assert cluster.kernel.now < 1.5

    def test_queueing_when_saturated(self):
        """8 one-second jobs on 2 nodes take ~4 seconds."""
        cluster = Cluster(seed=1, delivery_latency=0.0)
        cluster.add_nodes(2)
        cluster.deploy(echo_service(charge=1.0))
        for i in range(8):
            cluster.send("Echo", "Echo", {"x": i})
        cluster.run_until_idle()
        assert 3.5 <= cluster.kernel.now <= 4.5

    def test_node_slots_multiply_capacity(self):
        cluster = Cluster(seed=1, delivery_latency=0.0)
        cluster.add_node(slots=4)
        cluster.deploy(echo_service(charge=1.0))
        for i in range(4):
            cluster.send("Echo", "Echo", {"x": i})
        cluster.run_until_idle()
        assert cluster.kernel.now < 1.5

    def test_shared_slots_block_other_services(self):
        """Two services on a 1-slot node contend — the Section 5
        phenomenon of unrelated operations blocking."""
        cluster = Cluster(seed=1, delivery_latency=0.0)
        cluster.add_node(slots=1)

        def slow(ctx, body):
            ctx.charge(10.0)
            return True

        def fast(ctx, body):
            return True

        cluster.deploy(simple_service("Slow", {"Go": slow}))
        cluster.deploy(simple_service("Fast", {"Go": fast}))
        cluster.send("Slow", "Go", {})
        done = []
        cluster.send("Fast", "Go", {},
                     reply_to=ReplyTo(callback=lambda b: done.append(
                         cluster.kernel.now)))
        cluster.run_until_idle()
        assert done and done[0] >= 10.0  # fast op waited behind slow one


class TestFailureInjection:
    def _setup(self):
        cluster = Cluster(seed=2)
        cluster.add_nodes(2)

        def slow(ctx, body):
            ctx.charge(5.0)
            return {"node": ctx.node.id}

        cluster.deploy(simple_service("S", {"Slow": slow}))
        return cluster

    def test_in_flight_message_redelivered(self):
        cluster = self._setup()
        responses = []
        cluster.send("S", "Slow", {},
                     reply_to=ReplyTo(callback=responses.append))
        cluster.run_until(
            lambda: any(e.kind == "deliver" for e in cluster.trace.events))
        victim = [e for e in cluster.trace.events
                  if e.kind == "deliver"][0].detail["node"]
        assert cluster.fail_node(victim) == 1
        cluster.run_until_idle()
        assert len(responses) == 1
        assert responses[0]["result"]["node"] != victim

    def test_failed_node_gets_no_work(self):
        cluster = self._setup()
        cluster.fail_node("node-1")
        for _ in range(4):
            cluster.send("S", "Slow", {})
        cluster.run_until_idle()
        assert cluster.nodes["node-1"].processed == 0
        assert cluster.nodes["node-2"].processed == 4

    def test_node_memory_wiped_on_failure(self):
        cluster = self._setup()
        cluster.nodes["node-1"].memory["cache"] = {"x": 1}
        cluster.fail_node("node-1")
        assert cluster.nodes["node-1"].memory == {}

    def test_restore_node_resumes_service(self):
        cluster = self._setup()
        cluster.fail_node("node-1")
        cluster.restore_node("node-1")
        for _ in range(4):
            cluster.send("S", "Slow", {})
        cluster.run_until_idle()
        assert cluster.nodes["node-1"].processed > 0

    def test_all_nodes_down_queues_work(self):
        cluster = self._setup()
        cluster.fail_node("node-1")
        cluster.fail_node("node-2")
        cluster.send("S", "Slow", {})
        cluster.run_until_idle()
        assert cluster.queue.peek_depth("S") == 1  # buffered, not lost
        cluster.restore_node("node-1")
        cluster.run_until_idle()
        assert cluster.queue.peek_depth("S") == 0


class TestDeferredAndRequeue:
    def test_deferred_reply_resolves_later(self):
        cluster = Cluster(seed=0)
        cluster.add_node()
        pending = []

        def op(ctx, body):
            deferred = ctx.defer()
            pending.append(deferred)
            return deferred

        cluster.deploy(simple_service("T", {"Op": op}))
        got = []
        cluster.send("T", "Op", {}, reply_to=ReplyTo(callback=got.append))
        cluster.run_until_idle()
        assert not got  # still deferred
        pending[0].resolve(42)
        cluster.run_until_idle()
        assert got == [{"result": 42}]

    def test_deferred_double_resolve_ignored(self):
        cluster = Cluster(seed=0)
        cluster.add_node()
        got = []
        deferred_box = []

        def op(ctx, body):
            d = ctx.defer()
            deferred_box.append(d)
            return d

        cluster.deploy(simple_service("T", {"Op": op}))
        cluster.send("T", "Op", {}, reply_to=ReplyTo(callback=got.append))
        cluster.run_until_idle()
        deferred_box[0].resolve(1)
        deferred_box[0].resolve(2)
        cluster.run_until_idle()
        assert got == [{"result": 1}]

    def test_requeue_redelivers(self):
        cluster = Cluster(seed=0)
        cluster.add_node()
        state = {"tries": 0}

        def op(ctx, body):
            state["tries"] += 1
            if state["tries"] < 3:
                return Requeue(delay=0.01)
            return "done"

        cluster.deploy(simple_service("T", {"Op": op}))
        envelope = cluster.call("T", "Op", {})
        assert envelope.value == "done"
        assert state["tries"] == 3


class TestInlineCalls:
    def test_call_inline_bypasses_queue(self):
        cluster = Cluster(seed=0)
        cluster.add_node()
        cluster.deploy(echo_service(charge=0.5))
        before = cluster.queue.enqueued
        envelope = cluster.call_inline("Echo", "Echo", {"x": 1})
        assert envelope.ok
        assert cluster.queue.enqueued == before  # no queue traffic

    def test_call_inline_charges_parent(self):
        cluster = Cluster(seed=0)
        cluster.add_nodes(2)
        cluster.deploy(echo_service(charge=0.5))

        def caller(ctx, body):
            cluster.call_inline("Echo", "Echo", {"x": 1}, parent_context=ctx)
            return True

        cluster.deploy(simple_service("C", {"Go": caller}))
        cluster.call("C", "Go", {})
        # the caller's charged time includes the inline call's cost
        assert cluster.kernel.now >= 0.5


class TestIntrospection:
    def test_utilization(self):
        cluster = Cluster(seed=0, delivery_latency=0.0)
        cluster.add_node()
        cluster.deploy(echo_service(charge=1.0))
        cluster.call("Echo", "Echo", {"x": 1})
        util = cluster.utilization()
        assert 0.5 < util <= 1.0

    def test_alive_nodes_and_slots(self):
        cluster = Cluster(seed=0)
        cluster.add_nodes(3, slots=2)
        assert len(cluster.alive_nodes()) == 3
        assert cluster.total_slots() == 6
        cluster.fail_node("node-1")
        assert cluster.total_slots() == 4
