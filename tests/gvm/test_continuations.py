"""Continuation tests: yield, push-cc, serialization, re-resumption."""

import pickle

import pytest

from repro.gvm.continuations import Continuation
from repro.gvm.vm import Done, Yielded, YieldFromNestedContext
from repro.lang.symbols import Keyword, Symbol

K = Keyword


def start(rt, text):
    return rt.start(text)


class TestYield:
    def test_yield_surfaces_value(self, rt):
        result = start(rt, "(yield :ping)")
        assert isinstance(result, Yielded)
        assert result.value == K("ping")

    def test_yield_no_value_is_nil(self, rt):
        result = start(rt, "(yield)")
        assert result.value is None

    def test_resume_delivers_value(self, rt):
        result = start(rt, "(+ 100 (yield))")
        done = rt.resume(result.continuation, 7)
        assert done == Done(107)

    def test_multiple_yields(self, rt):
        result = start(rt, "(list (yield :a) (yield :b) (yield :c))")
        values = [result.value]
        for reply in (1, 2):
            result = rt.resume(result.continuation, reply)
            values.append(result.value)
        done = rt.resume(result.continuation, 3)
        assert values == [K("a"), K("b"), K("c")]
        assert done == Done([1, 2, 3])

    def test_yield_inside_function_call(self, rt):
        result = start(rt, """
            (defun stage (x) (+ x (yield x)))
            (stage 10)""")
        assert result.value == 10
        assert rt.resume(result.continuation, 5) == Done(15)

    def test_yield_deep_in_call_stack(self, rt):
        result = start(rt, """
            (defun a (x) (b (+ x 1)))
            (defun b (x) (c (+ x 1)))
            (defun c (x) (yield x))
            (a 0)""")
        assert result.value == 2
        assert rt.resume(result.continuation, 99) == Done(99)

    def test_yield_inside_loop(self, rt):
        result = start(rt, """
            (loop for x in (list 1 2 3) collect (yield x))""")
        outs = [result.value]
        result = rt.resume(result.continuation, 10)
        outs.append(result.value)
        result = rt.resume(result.continuation, 20)
        outs.append(result.value)
        done = rt.resume(result.continuation, 30)
        assert outs == [1, 2, 3]
        assert done == Done([10, 20, 30])

    def test_locals_preserved_across_yield(self, rt):
        result = start(rt, """
            (let ((a 1) (b 2))
              (yield)
              (+ a b))""")
        assert rt.resume(result.continuation, None) == Done(3)


class TestContinuationIsolation:
    def test_resume_twice_independent(self, rt):
        """Resuming the same continuation twice replays independently —
        the property fork-and-exec's cloning relies on (Section 3.4)."""
        result = start(rt, """
            (let ((acc (list)))
              (append! acc (yield))
              acc)""")
        done_a = rt.resume(result.continuation, 1)
        done_b = rt.resume(result.continuation, 2)
        assert done_a == Done([1])
        assert done_b == Done([2])

    def test_mutation_after_capture_invisible(self, rt):
        """The continuation is a snapshot: later mutations in the
        original flow don't leak into it."""
        result = start(rt, """
            (let ((xs (list 1)))
              (yield xs)
              xs)""")
        # mutate the list we got out — the continuation must hold a copy
        result.value.append(999)
        assert rt.resume(result.continuation, None) == Done([1])


class TestSerialization:
    def test_pickle_round_trip(self, rt):
        result = start(rt, """
            (defun work (x) (+ x (yield :checkpoint)))
            (work 40)""")
        blob = pickle.dumps(result.continuation)
        restored = pickle.loads(blob)
        assert isinstance(restored, Continuation)
        assert rt.resume(restored, 2) == Done(42)

    def test_pickle_with_rich_state(self, rt):
        result = start(rt, """
            (let ((table (make-hash-table))
                  (items (list 1 "two" :three (list 4))))
              (setf (gethash :k table) items)
              (yield)
              (gethash :k table))""")
        restored = pickle.loads(pickle.dumps(result.continuation))
        done = rt.resume(restored, None)
        assert done == Done([1, "two", K("three"), [4]])

    def test_pickle_preserves_handler_stack(self, rt):
        result = start(rt, """
            (handler-case
                (progn (yield) (error "late failure") :no)
              (error (c) :caught-after-resume))""")
        restored = pickle.loads(pickle.dumps(result.continuation))
        assert rt.resume(restored, None) == Done(K("caught-after-resume"))

    def test_pickle_preserves_restarts(self, rt):
        result = start(rt, """
            (handler-bind ((error (lambda (c) (invoke-restart 'use 9))))
              (restart-case (progn (yield) (error "x"))
                (use (v) v)))""")
        restored = pickle.loads(pickle.dumps(result.continuation))
        assert rt.resume(restored, None) == Done(9)

    def test_estimated_size_positive(self, rt):
        result = start(rt, "(yield)")
        assert result.continuation.estimated_size() > 0


class TestPushCC:
    def test_push_cc_returns_continuation_object(self, rt):
        result = rt.start("(push-cc)")
        assert isinstance(result, Done)
        assert isinstance(result.value, Continuation)

    def test_push_cc_resume_redelivers(self, rt):
        result = rt.start("(list :r (push-cc))")
        done_value = result.value
        # the first run got [:r, <continuation>]
        cont = done_value[1]
        assert isinstance(cont, Continuation)
        # resume: the push-cc expression now evaluates to :injected
        done2 = rt.resume(cont, K("injected"))
        assert done2 == Done([K("r"), K("injected")])


class TestNestedContextRestrictions:
    def test_yield_from_future_rejected(self, rt):
        """Section 3.2: migration is impossible from a future's thread."""
        with pytest.raises(YieldFromNestedContext):
            rt.start("(touch (future (yield :nope)))")

    def test_yield_from_mapcar_callback_rejected(self, rt):
        with pytest.raises(YieldFromNestedContext):
            rt.start("(mapcar (lambda (x) (yield x)) (list 1))")

    def test_yield_outside_fiber_run_rejected(self, rt):
        with pytest.raises(YieldFromNestedContext):
            rt.eval_string("(yield)")  # eval_string VMs disallow yield


class TestFuturesDeterminedAtCapture:
    def test_future_in_scope_determined_before_yield(self, rt):
        """Section 4.1: capturing a continuation determines referenced
        futures; after resume the value is available immediately."""
        result = rt.start("""
            (let ((f (future (* 6 7))))
              (yield)
              (touch f))""")
        restored = pickle.loads(pickle.dumps(result.continuation))
        assert rt.resume(restored, None) == Done(42)
