"""Condition system tests (paper Section 3.7)."""

import pytest

from repro.gvm.conditions import (
    GozerCondition,
    UnhandledConditionError,
    coerce_condition,
    condition_type_matches,
    define_condition_type,
    matches,
)
from repro.lang.symbols import Keyword, Symbol

S = Symbol
K = Keyword


class TestMatching:
    def test_type_hierarchy(self):
        assert condition_type_matches("division-by-zero", "arithmetic-error")
        assert condition_type_matches("division-by-zero", "error")
        assert condition_type_matches("error", "condition")
        assert not condition_type_matches("warning", "error")

    def test_symbol_spec_matches_condition(self):
        cond = GozerCondition("m", condition_type="network-error")
        assert matches(S("error"), cond)
        assert matches(S("service-error"), cond)
        assert not matches(S("warning"), cond)

    def test_t_matches_everything(self):
        assert matches(True, GozerCondition("x"))
        assert matches(S("t"), ValueError("x"))

    def test_qname_spec(self):
        cond = GozerCondition("m", qname="{urn:svc}Connect")
        assert matches("{urn:svc}Connect", cond)
        assert not matches("{urn:svc}Other", cond)

    def test_java_class_alias(self):
        assert matches("java.lang.Throwable", ValueError("x"))
        assert matches("java.net.SocketException", ConnectionResetError())
        assert not matches("java.net.SocketException", ValueError("x"))

    def test_python_builtin_class_name(self):
        assert matches("ValueError", ValueError("x"))
        assert not matches("ValueError", KeyError("x"))

    def test_dotted_python_path(self):
        assert matches("repro.gvm.conditions.GozerCondition",
                       GozerCondition("x"))

    def test_list_spec_any_match(self):
        cond = GozerCondition("m", condition_type="timeout-error")
        assert matches([S("network-error"), S("timeout-error")], cond)
        assert not matches([S("warning")], cond)

    def test_wrapped_exception_matches_host_class(self):
        cond = coerce_condition(ConnectionError("reset"))
        assert matches("java.net.SocketException", cond)

    def test_custom_condition_type(self):
        define_condition_type("my-error", ["service-error"])
        cond = GozerCondition("m", condition_type="my-error")
        assert matches(S("service-error"), cond)
        assert matches(S("error"), cond)


class TestCoercion:
    def test_zero_division_mapped(self):
        cond = coerce_condition(ZeroDivisionError("x"))
        assert cond.condition_type == "division-by-zero"

    def test_type_error_mapped(self):
        assert coerce_condition(TypeError("x")).condition_type == "type-error"

    def test_passthrough(self):
        original = GozerCondition("m")
        assert coerce_condition(original) is original


class TestSignalAndHandlers:
    def test_signal_without_handler_returns_nil(self, rt):
        assert rt.eval_string('(signal "nobody cares")') is None

    def test_error_without_handler_raises(self, rt):
        with pytest.raises(UnhandledConditionError):
            rt.eval_string('(error "boom")')

    def test_error_with_format_args(self, rt):
        with pytest.raises(UnhandledConditionError) as exc_info:
            rt.eval_string('(error "bad value ~a" 42)')
        assert "bad value 42" in str(exc_info.value)

    def test_handler_bind_runs_without_unwinding(self, rt):
        """A handler that declines lets execution continue after signal."""
        assert rt.eval_string("""
            (let ((seen (list)))
              (handler-bind ((error (lambda (c) (append! seen :handled))))
                (signal (make-condition "error" "m"))
                (append! seen :continued))
              seen)""") == [K("handled"), K("continued")]

    def test_handler_case_unwinds(self, rt):
        assert rt.eval_string("""
            (handler-case (progn (error "x") :never)
              (error (c) :caught))""") == K("caught")

    def test_handler_case_passes_condition(self, rt):
        assert rt.eval_string("""
            (handler-case (error "the message")
              (error (c) (condition-message c)))""") == "the message"

    def test_handler_case_type_filtering(self, rt):
        assert rt.eval_string("""
            (handler-case (signal (make-condition "warning" "w"))
              (warning (c) :warned))""") == K("warned")

    def test_inner_handler_wins(self, rt):
        assert rt.eval_string("""
            (handler-case
              (handler-case (error "x")
                (error (c) :inner))
              (error (c) :outer))""") == K("inner")

    def test_handler_decline_falls_through(self, rt):
        """An inner handler-bind that returns normally declines, so the
        outer handler-case gets its turn."""
        assert rt.eval_string("""
            (handler-case
              (handler-bind ((error (lambda (c) nil)))  ; declines
                (error "x"))
              (error (c) :outer))""") == K("outer")

    def test_handler_not_reentrant(self, rt):
        """A handler runs with itself unbound (no infinite regress)."""
        assert rt.eval_string("""
            (handler-case
              (handler-bind ((error (lambda (c) (error "again"))))
                (error "first"))
              (error (c) (condition-message c)))""") == "again"

    def test_python_exception_becomes_condition(self, rt):
        assert rt.eval_string("""
            (handler-case (/ 1 0)
              (division-by-zero (c) :div0))""") == K("div0")

    def test_unbound_variable_condition(self, rt):
        assert rt.eval_string("""
            (handler-case some-unbound-name
              (unbound-variable (c) :unbound))""") == K("unbound")

    def test_warn_returns_nil(self, rt, caplog):
        # warnings route through the ``gozer`` logger (pytest's capture
        # counts as a configured handler, so no stderr echo here)
        import logging
        with caplog.at_level(logging.WARNING, logger="gozer"):
            assert rt.eval_string('(warn "careful")') is None
        assert "careful" in caplog.text

    def test_warn_echoes_to_stderr_without_handlers(self, rt, capsys,
                                                    monkeypatch):
        # with no logging handler configured anywhere, the pre-logger
        # behaviour is preserved: the warning is echoed to stderr
        import logging
        monkeypatch.setattr(logging.Logger, "hasHandlers",
                            lambda self: False)
        assert rt.eval_string('(warn "careful")') is None
        assert "careful" in capsys.readouterr().err


class TestRestarts:
    def test_restart_case_normal_path(self, rt):
        assert rt.eval_string("""
            (restart-case 42 (ignore () :ignored))""") == 42

    def test_invoke_restart_from_handler(self, rt):
        assert rt.eval_string("""
            (handler-bind ((error (lambda (c) (invoke-restart 'use-value 7))))
              (restart-case (error "x")
                (use-value (v) (* v 2))))""") == 14

    def test_restart_with_no_args(self, rt):
        assert rt.eval_string("""
            (handler-bind ((error (lambda (c) (invoke-restart 'ignore))))
              (restart-case (error "x")
                (ignore () :skipped)))""") == K("skipped")

    def test_innermost_restart_wins(self, rt):
        assert rt.eval_string("""
            (handler-bind ((error (lambda (c) (invoke-restart 'r))))
              (restart-case
                  (restart-case (error "x") (r () :inner))
                (r () :outer)))""") == K("inner")

    def test_restart_scope_exits(self, rt):
        """A restart is deactivated once its restart-case returns."""
        assert rt.eval_string("""
            (progn
              (restart-case 1 (r () :r))
              (find-restart 'r))""") is None

    def test_find_restart(self, rt):
        assert rt.eval_string("""
            (restart-case (if (find-restart 'here) :found :missing)
              (here () nil))""") == K("found")

    def test_compute_restarts(self, rt):
        assert rt.eval_string("""
            (restart-case (compute-restarts)
              (a () nil)
              (b () nil))""") == [S("b"), S("a")]

    def test_invoke_missing_restart_errors(self, rt):
        with pytest.raises(UnhandledConditionError):
            rt.eval_string("(invoke-restart 'nonexistent)")

    def test_retry_restart_loop(self, rt):
        """The paper's retry pattern: transient failures retried without
        an explicit loop (Listing 2 / Section 3.7)."""
        rt.eval_string("""
            (setq attempts 0)
            (defun flaky ()
              (restart-case
                  (progn
                    (setq attempts (+ attempts 1))
                    (if (< attempts 3) (error "transient") :ok))
                (retry () (flaky))))""")
        assert rt.eval_string("""
            (handler-bind ((error (lambda (c) (invoke-restart 'retry))))
              (flaky))""") == K("ok")
        assert rt.eval_string("attempts") == 3

    def test_unwind_protect_runs_during_restart_transfer(self, rt):
        assert rt.eval_string("""
            (let ((trace (list)))
              (handler-bind ((error (lambda (c) (invoke-restart 'r))))
                (restart-case
                    (unwind-protect (error "x")
                      (append! trace :cleanup))
                  (r () (append! trace :restart))))
              trace)""") == [K("cleanup"), K("restart")]


class TestUnwindProtect:
    def test_normal_path_runs_cleanup(self, rt):
        assert rt.eval_string("""
            (let ((trace (list)))
              (unwind-protect (append! trace :body)
                (append! trace :cleanup))
              trace)""") == [K("body"), K("cleanup")]

    def test_value_is_protected_form(self, rt):
        assert rt.eval_string("(unwind-protect 42 1 2 3)") == 42

    def test_cleanup_on_error(self, rt):
        assert rt.eval_string("""
            (let ((trace (list)))
              (ignore-errors
                (unwind-protect (error "x") (append! trace :cleanup)))
              trace)""") == [K("cleanup")]

    def test_cleanup_on_return_from(self, rt):
        assert rt.eval_string("""
            (let ((trace (list)))
              (block b
                (unwind-protect (return-from b 1)
                  (append! trace :cleanup)))
              trace)""") == [K("cleanup")]

    def test_nested_cleanups_inner_first(self, rt):
        assert rt.eval_string("""
            (let ((trace (list)))
              (block b
                (unwind-protect
                    (unwind-protect (return-from b 1)
                      (append! trace :inner))
                  (append! trace :outer)))
              trace)""") == [K("inner"), K("outer")]

    def test_cleanup_on_unhandled_error_to_host(self, rt):
        rt.eval_string("(setq cleanup-ran nil)")
        with pytest.raises(UnhandledConditionError):
            rt.eval_string("""
                (unwind-protect (error "boom") (setq cleanup-ran t))""")
        assert rt.eval_string("cleanup-ran") is True
