"""Special (dynamic) variable tests."""

import pytest

from repro.gvm.environment import DynamicBindings, _MISSING
from repro.lang.symbols import Symbol

S = Symbol


class TestDefvar:
    def test_defvar_defines_global(self, rt):
        rt.eval_string("(defvar *g* 5)")
        assert rt.eval_string("*g*") == 5

    def test_defvar_keeps_existing_value(self, rt):
        rt.eval_string("(defvar *g* 1)")
        rt.eval_string("(defvar *g* 2)")
        assert rt.eval_string("*g*") == 1

    def test_defparameter_overwrites(self, rt):
        rt.eval_string("(defparameter *p* 1)")
        rt.eval_string("(defparameter *p* 2)")
        assert rt.eval_string("*p*") == 2

    def test_defvar_declares_special(self, rt):
        rt.eval_string("(defvar *sp* 0)")
        assert rt.global_env.is_special(S("*sp*"))


class TestDynamicScoping:
    def test_let_rebinds_dynamically(self, rt):
        """A let of a special variable is visible to callees — the
        defining property of dynamic scope."""
        rt.eval_string("""
            (defvar *depth* 0)
            (defun get-depth () *depth*)""")
        assert rt.eval_string("(let ((*depth* 7)) (get-depth))") == 7
        assert rt.eval_string("(get-depth)") == 0

    def test_nested_rebinding(self, rt):
        rt.eval_string("(defvar *lvl* 0) (defun lvl () *lvl*)")
        assert rt.eval_string("""
            (let ((*lvl* 1))
              (list (lvl) (let ((*lvl* 2)) (lvl)) (lvl)))""") == [1, 2, 1]

    def test_setq_on_dynamic_binding(self, rt):
        rt.eval_string("(defvar *v* :global)")
        assert rt.eval_string("""
            (let ((*v* :bound))
              (setq *v* :mutated)
              *v*)""") == rt.read(":mutated")
        # global untouched
        assert rt.eval_string("*v*") == rt.read(":global")

    def test_unwound_on_error(self, rt):
        rt.eval_string("(defvar *e* :outer) (defun get-e () *e*)")
        assert rt.eval_string("""
            (ignore-errors (let ((*e* :inner)) (error "x")))
            (get-e)""") == rt.read(":outer")

    def test_survives_yield_resume(self, rt):
        rt.eval_string("(defvar *w* :default) (defun get-w () *w*)")
        result = rt.start("""
            (let ((*w* :in-fiber))
              (yield)
              (get-w))""")
        done = rt.resume(result.continuation, None)
        assert done.value == rt.read(":in-fiber")


class TestDynamicBindingsUnit:
    def test_push_pop(self):
        d = DynamicBindings()
        d.push(S("x"), 1)
        d.push(S("x"), 2)
        assert d.get(S("x")) == 2
        d.pop(S("x"))
        assert d.get(S("x")) == 1
        d.pop(S("x"))
        assert d.get(S("x")) is _MISSING

    def test_set_topmost(self):
        d = DynamicBindings()
        d.push(S("x"), 1)
        assert d.set(S("x"), 9)
        assert d.get(S("x")) == 9

    def test_set_unbound_returns_false(self):
        assert not DynamicBindings().set(S("y"), 1)

    def test_snapshot(self):
        d = DynamicBindings()
        d.push(S("a"), 1)
        d.push(S("b"), 2)
        assert d.snapshot() == {S("a"): 1, S("b"): 2}
