"""Tree-walking interpreter tests + VM differential checks (bench S4c)."""

import pytest

from repro.gvm.interpreter import ContinuationsUnsupported, TreeInterpreter
from repro.lang.reader import read_string


@pytest.fixture
def interp(rt):
    return TreeInterpreter(rt.global_env, apply_fn=rt.apply)


class TestBasics:
    def test_constant(self, interp):
        assert interp.eval(42) == 42

    def test_arithmetic(self, interp):
        assert interp.eval(read_string("(+ 1 2 3)")) == 6

    def test_let(self, interp):
        assert interp.eval(read_string("(let ((x 2)) (* x x))")) == 4

    def test_let_star(self, interp):
        assert interp.eval(read_string("(let* ((x 1) (y (+ x 1))) y)")) == 2

    def test_if(self, interp):
        assert interp.eval(read_string("(if nil 1 2)")) == 2

    def test_lambda_call(self, interp):
        assert interp.eval(read_string("((lambda (x) (* 2 x)) 21)")) == 42

    def test_defun_and_recursion(self, interp):
        interp.eval(read_string(
            "(defun tfact (n) (if (<= n 1) 1 (* n (tfact (- n 1)))))"))
        assert interp.eval(read_string("(tfact 6)")) == 720

    def test_while_setq(self, interp):
        assert interp.eval(read_string("""
            (let ((i 0) (acc 0))
              (while (< i 5) (setq acc (+ acc i)) (setq i (+ i 1)))
              acc)""")) == 10

    def test_block_return_from(self, interp):
        assert interp.eval(read_string("(block b (return-from b 9) 1)")) == 9

    def test_core_macros_shared(self, interp):
        assert interp.eval(read_string(
            "(loop for x in (list 1 2 3) sum x)")) == 6

    def test_and_or(self, interp):
        assert interp.eval(read_string("(and 1 2)")) == 2
        assert interp.eval(read_string("(or nil 3)")) == 3


class TestLimitations:
    def test_yield_unsupported(self, interp):
        """The reason the GVM exists (paper Section 4.1)."""
        with pytest.raises(ContinuationsUnsupported):
            interp.eval(read_string("(yield)"))

    def test_push_cc_unsupported(self, interp):
        with pytest.raises(ContinuationsUnsupported):
            interp.eval(read_string("(push-cc)"))

    def test_future_unsupported(self, interp):
        with pytest.raises(ContinuationsUnsupported):
            interp.eval(read_string("(future 1)"))


# The VM-vs-interpreter differential programs that used to live here
# (DIFFERENTIAL_PROGRAMS) migrated to the conformance corpus as the
# ``seed-diff-*`` entries: tests/conformance/test_corpus.py replays
# them through the full oracle matrix (tree, VM, pickle-roundtripped
# continuations, distributed Vinz) instead of just two engines, and
# ``python -m repro fuzz`` extends the same check to generated
# programs.  See docs/conformance.md.
