"""Runtime clock plumbing: ``get-universal-time`` and ``sleep`` route
through the runtime's clock abstraction instead of calling the host's
``time.time()`` / ``time.sleep()`` directly, so a virtual clock makes
time-dependent programs deterministic and sleeps free."""

import time

import pytest

from repro.gvm.futures import SynchronousFutureExecutor
from repro.gvm.runtime import Runtime, RuntimeClock, VirtualClock
from repro.lang.symbols import Keyword
from repro.vinz.api import VinzEnvironment


@pytest.fixture
def virtual_rt():
    runtime = Runtime(executor=SynchronousFutureExecutor(),
                      clock=VirtualClock(start=1000.0))
    yield runtime
    runtime.shutdown()


class TestVirtualClock:
    def test_get_universal_time_reads_virtual_clock(self, virtual_rt):
        assert virtual_rt.eval_string("(get-universal-time)") == 1000.0

    def test_sleep_advances_virtual_time_not_wall_time(self, virtual_rt):
        wall_before = time.monotonic()
        value = virtual_rt.eval_string("""
            (progn (sleep 3600)
                   (get-universal-time))""")
        wall_elapsed = time.monotonic() - wall_before
        assert value == 4600.0
        assert wall_elapsed < 5.0  # an hour of virtual sleep is free
        assert virtual_rt.clock.slept == 3600.0

    def test_sleep_returns_nil_and_clamps_negative(self, virtual_rt):
        assert virtual_rt.eval_string("(sleep -5)") is None
        assert virtual_rt.eval_string("(get-universal-time)") == 1000.0

    def test_virtual_clock_advance(self):
        clock = VirtualClock(start=10.0)
        clock.advance(5.0)
        assert clock.now() == 15.0
        clock.advance(-1.0)  # negative advances are ignored
        assert clock.now() == 15.0

    def test_time_dependent_program_is_deterministic(self):
        source = """
            (let ((t0 (get-universal-time)))
              (sleep 7)
              (- (get-universal-time) t0))"""

        def run():
            runtime = Runtime(executor=SynchronousFutureExecutor(),
                              clock=VirtualClock(start=0.0))
            try:
                return runtime.eval_string(source)
            finally:
                runtime.shutdown()

        assert run() == run() == 7.0


class TestRealClock:
    def test_default_runtime_uses_wall_clock(self, rt):
        before = time.time()
        value = rt.eval_string("(get-universal-time)")
        assert before <= value <= time.time()

    def test_runtime_clock_sleep_sleeps(self):
        clock = RuntimeClock()
        start = time.monotonic()
        clock.sleep(0.05)
        assert time.monotonic() - start >= 0.04
        clock.sleep(-1)  # negative is a no-op, not an error


class TestWorkflowClock:
    def test_workflow_time_follows_the_simulation_clock(self):
        """Inside a fiber, ``get-universal-time`` reads the cluster's
        discrete-event clock (via the recorded nondet path), so
        workflow-visible time moves with ``compute``, not the host."""
        env = VinzEnvironment(nodes=2, seed=3)
        env.deploy_workflow("Clocked", """
(defun main (params)
  (let ((t0 (get-universal-time)))
    (compute 5.0)
    (list :elapsed (- (get-universal-time) t0))))
""")
        task_id = env.run("Clocked", None)
        task = env.registry.tasks[task_id]
        plist = {task.result[i].name: task.result[i + 1]
                 for i in range(0, len(task.result), 2)}
        assert plist["elapsed"] == pytest.approx(5.0, abs=1e-6) \
            or plist["elapsed"] > 5.0
        # and the whole run consumed (essentially) no wall time beyond
        # the simulation itself: the virtual clock finished past t0+5
        assert env.cluster.kernel.now >= 5.0

    def test_workflow_sleep_yields_to_the_scheduler(self):
        """``(sleep n)`` in a fiber suspends it for n virtual seconds
        (the %vinz-sleep path), not the host thread."""
        env = VinzEnvironment(nodes=2, seed=3)
        env.deploy_workflow("Sleeper", """
(defun main (params)
  (let ((t0 (get-universal-time)))
    (sleep 30)
    (list :elapsed (- (get-universal-time) t0))))
""")
        wall_before = time.monotonic()
        task_id = env.run("Sleeper", None)
        assert time.monotonic() - wall_before < 5.0
        task = env.registry.tasks[task_id]
        plist = {task.result[i].name: task.result[i + 1]
                 for i in range(0, len(task.result), 2)}
        assert plist["elapsed"] >= 30.0
