"""VM edge cases: re-entrancy guards, control-flow corners, interop."""

import pytest

from repro.gvm.conditions import UnhandledConditionError
from repro.gvm.frames import GozerFunction
from repro.gvm.vm import Done, Yielded
from repro.lang.errors import GozerRuntimeError
from repro.lang.symbols import Keyword, Symbol

K = Keyword
S = Symbol


class TestReentrancyGuards:
    def test_run_code_while_running_rejected(self, rt):
        vm = rt.new_vm()
        code = rt.compile(rt.read("1"))
        vm.frames.append(object())  # simulate mid-run state
        with pytest.raises(GozerRuntimeError):
            vm.run_code(code)

    def test_resume_while_running_rejected(self, rt):
        result = rt.start("(yield)")
        vm = rt.new_vm(allow_yield=True)
        vm.frames.append(object())
        with pytest.raises(GozerRuntimeError):
            vm.resume(result.continuation, None)

    def test_vm_call_plain_python_callable(self, rt):
        vm = rt.new_vm()
        assert vm.call(lambda a, b: a + b, [1, 2]) == 3

    def test_vm_call_non_callable_rejected(self, rt):
        with pytest.raises(GozerRuntimeError):
            rt.new_vm().call(42, [])


class TestControlFlowCorners:
    def test_return_from_restores_handler_stack(self, rt):
        """Handlers bound inside an exited block must not linger."""
        assert rt.eval_string("""
            (progn
              (block b
                (handler-bind ((error (lambda (c) (return-from b :inner))))
                  (error "x")))
              ;; the handler group above must be gone now:
              (handler-case (error "again")
                (error (c) :outer-caught)))""") == K("outer-caught")

    def test_restart_case_value_is_protected_form_when_no_invoke(self, rt):
        assert rt.eval_string("""
            (restart-case (+ 1 2) (r () :never))""") == 3

    def test_restart_clause_with_arguments(self, rt):
        assert rt.eval_string("""
            (handler-bind ((error (lambda (c) (invoke-restart 'fix 10 20))))
              (restart-case (error "x")
                (fix (a b) (+ a b))))""") == 30

    def test_yield_inside_restart_clause(self, rt):
        """Restart clauses run in the fiber's own flow, so they can
        yield (the deflink retry pattern depends on this)."""
        result = rt.start("""
            (handler-bind ((error (lambda (c) (invoke-restart 'again))))
              (restart-case (error "first try")
                (again () (yield :retrying))))""")
        assert isinstance(result, Yielded)
        assert result.value == K("retrying")
        assert rt.resume(result.continuation, 42).value == 42

    def test_deeply_nested_blocks(self, rt):
        assert rt.eval_string("""
            (block a (block b (block c (return-from a :direct))))""") == \
            K("direct")

    def test_block_shadowing_inner_wins(self, rt):
        assert rt.eval_string("""
            (block x
              (block x (return-from x :inner))
              :after-inner)""") == K("after-inner")

    def test_while_result_is_nil(self, rt):
        assert rt.eval_string("(while nil)") is None

    def test_and_or_empty(self, rt):
        assert rt.eval_string("(and)") is True
        assert rt.eval_string("(or)") is None

    def test_dynamic_unbind_after_nonlocal_exit(self, rt):
        rt.eval_string("(defvar *d* :global) (defun readit () *d*)")
        assert rt.eval_string("""
            (block b (let ((*d* :bound)) (return-from b (readit))))""") == \
            K("bound")
        assert rt.eval_string("(readit)") == K("global")


class TestPushCCInWorkflows:
    def test_push_cc_checkpoint_pattern(self, rt):
        """push-cc gives an explicit checkpoint object the program can
        store and re-enter (the paper's other capture form)."""
        rt2 = rt
        result = rt2.start("""
            (let ((cc (push-cc)))
              (if (eq cc :rerun)
                  :second-pass
                  (list :first-pass cc)))""")
        assert isinstance(result, Done)
        first, continuation = result.value
        assert first == K("first-pass")
        done = rt2.resume(continuation, K("rerun"))
        assert done.value == K("second-pass")


class TestHostInterop:
    def test_dot_chained_calls(self, rt):
        assert rt.eval_string('(. (. "a,b,c" (split ",")) (index "b"))') == 1

    def test_dot_setf_on_host_object(self, rt):
        class Box:
            value = 0

        rt.global_env.define(S("make-box"), Box)
        assert rt.eval_string("""
            (let ((b (make-box)))
              (setf (. b value) 42)
              (. b value))""") == 42

    def test_host_exception_in_dot_call_is_condition(self, rt):
        assert rt.eval_string("""
            (handler-case (. "abc" (index "z"))
              (error (c) :caught))""") == K("caught")

    def test_keyword_call_forwarding(self, rt):
        """Gozer keywords in an argument list reach &key parameters even
        through apply."""
        rt.eval_string("(defun kw-fn (&key a b) (list a b))")
        assert rt.eval_string("(apply #'kw-fn (list :b 2 :a 1))") == [1, 2]


class TestFrameAccounting:
    def test_frame_stack_flat_after_run(self, rt):
        vm = rt.new_vm()
        vm.run_code(rt.compile(rt.read("(+ 1 (* 2 3))")))
        assert vm.frames == []
        assert vm.handlers == []
        assert vm.restarts == []

    def test_frame_stack_flat_after_error(self, rt):
        vm = rt.new_vm()
        with pytest.raises(UnhandledConditionError):
            vm.run_code(rt.compile(rt.read('(error "boom")')))
        assert vm.frames == []

    def test_continuation_frames_are_frames(self, rt):
        from repro.gvm.frames import Frame

        result = rt.start("(progn (yield) 1)")
        assert all(isinstance(f, Frame)
                   for f in result.continuation.frames)


class TestRuntimeAPI:
    def test_context_manager_shutdown(self):
        from repro import make_runtime

        with make_runtime(deterministic=True) as rt:
            assert rt.eval_string("(+ 1 1)") == 2

    def test_start_with_defs_and_body(self, rt):
        result = rt.start("""
            (defun f (x) (* x 3))
            (defun g (x) (+ (f x) 1))
            (g 5)""")
        assert result == Done(16)

    def test_start_empty_source(self, rt):
        assert rt.start("") == Done(None)

    def test_compile_validates(self, rt):
        from repro.lang.bytecode import validate

        code = rt.compile(rt.read("(let ((x 1)) (if x (+ x 1) 0))"))
        assert validate(code) == []


class TestTracingHooks:
    def test_call_hook_sees_call_tree(self, rt):
        rt.eval_string("""
            (defun sq (x) (* x x))
            (defun hyp2 (a b) (+ (sq a) (sq b)))""")
        vm = rt.new_vm()
        calls = []
        vm.call_hook = lambda depth, name, args: calls.append(
            (depth, name, list(args)))
        vm.run_code(rt.compile(rt.read("(hyp2 3 4)")))
        assert calls == [(1, "hyp2", [3, 4]), (2, "sq", [3]), (2, "sq", [4])]

    def test_instruction_hook_sees_every_instruction(self, rt):
        vm = rt.new_vm()
        ops = []
        vm.instruction_hook = lambda frame, op, arg: ops.append(op)
        result = vm.run_code(rt.compile(rt.read("(+ 1 (* 2 3))")))
        assert result.value == 7
        assert ops.count("call") == 2
        assert ops[-1] == "return"

    def test_traced_loop_matches_fast_loop(self, rt):
        """Same program, hooked and unhooked: identical results and
        instruction counts."""
        program = "(let ((acc 0)) (dotimes (i 10) (incf acc i)) acc)"
        code = rt.compile(rt.read(program))
        fast = rt.new_vm()
        fast_result = fast.run_code(code)
        traced = rt.new_vm()
        traced.instruction_hook = lambda f, op, a: None
        traced_result = traced.run_code(code)
        assert fast_result.value == traced_result.value == 45
        assert fast.instruction_count == traced.instruction_count

    def test_traced_loop_supports_yield(self, rt):
        from repro.gvm.vm import Yielded

        vm = rt.new_vm(allow_yield=True)
        vm.instruction_hook = lambda f, op, a: None
        result = vm.run_code(rt.compile(rt.read("(+ 1 (yield :q))")))
        assert isinstance(result, Yielded)

    def test_repl_trace_command(self):
        import subprocess, sys, os

        repl = os.path.join(os.path.dirname(os.path.dirname(
            os.path.dirname(os.path.abspath(__file__)))),
            "examples", "repl.py")
        proc = subprocess.run(
            [sys.executable, repl],
            input="(defun d (x) (* 2 x))\n:trace (d 21)\n:quit\n",
            capture_output=True, text=True, timeout=120)
        assert "(d 21)" in proc.stdout and ";;" in proc.stdout
        assert "42" in proc.stdout
