"""VM fundamentals: evaluation, scoping, functions, truthiness."""

import pytest

from repro.gvm.vm import truthy
from repro.lang.errors import (
    GozerRuntimeError,
    UnboundVariableError,
    WrongArgumentCount,
)
from repro.gvm.conditions import UnhandledConditionError
from repro.lang.symbols import Keyword, Symbol

S = Symbol


class TestTruthiness:
    def test_nil_false(self):
        assert not truthy(None)

    def test_false_false(self):
        assert not truthy(False)

    def test_zero_truthy(self):
        assert truthy(0)

    def test_empty_list_truthy(self):
        assert truthy([])

    def test_empty_string_truthy(self):
        assert truthy("")


class TestEvaluation:
    def test_self_evaluating(self, rt):
        assert rt.eval_string("5") == 5
        assert rt.eval_string('"s"') == "s"
        assert rt.eval_string(":k") == Keyword("k")
        assert rt.eval_string("t") is True
        assert rt.eval_string("nil") is None

    def test_if_branches(self, rt):
        assert rt.eval_string("(if t 1 2)") == 1
        assert rt.eval_string("(if nil 1 2)") == 2
        assert rt.eval_string("(if nil 1)") is None

    def test_if_zero_is_true(self, rt):
        assert rt.eval_string("(if 0 :t :f)") == Keyword("t")

    def test_progn_value(self, rt):
        assert rt.eval_string("(progn 1 2 3)") == 3

    def test_progn_empty(self, rt):
        assert rt.eval_string("(progn)") is None

    def test_and_short_circuit(self, rt):
        assert rt.eval_string("""
            (let ((n 0))
              (and nil (setq n 1))
              n)""") == 0

    def test_or_short_circuit(self, rt):
        assert rt.eval_string("""
            (let ((n 0))
              (or 1 (setq n 1))
              n)""") == 0

    def test_and_returns_last(self, rt):
        assert rt.eval_string("(and 1 2 3)") == 3

    def test_or_returns_first_truthy(self, rt):
        assert rt.eval_string("(or nil 2 3)") == 2


class TestScoping:
    def test_let_binds(self, rt):
        assert rt.eval_string("(let ((x 1) (y 2)) (+ x y))") == 3

    def test_let_values_in_outer_scope(self, rt):
        # plain let evaluates all values before binding any
        assert rt.eval_string("""
            (let ((x 1))
              (let ((x 10) (y x))  ; y sees the OUTER x
                y))""") == 1

    def test_let_star_sequential(self, rt):
        assert rt.eval_string("(let* ((x 1) (y (+ x 1))) y)") == 2

    def test_shadowing_restored(self, rt):
        assert rt.eval_string("""
            (let ((x 1))
              (let ((x 2)) x)
              x)""") == 1

    def test_setq_mutates_innermost(self, rt):
        assert rt.eval_string("""
            (let ((x 1))
              (let ((x 2)) (setq x 99))
              x)""") == 1

    def test_closure_captures_environment(self, rt):
        assert rt.eval_string("""
            (let ((counter (let ((n 0)) (lambda () (setq n (+ n 1)) n))))
              (funcall counter)
              (funcall counter)
              (funcall counter))""") == 3

    def test_unbound_variable_signals(self, rt):
        with pytest.raises(UnhandledConditionError):
            rt.eval_string("this-is-unbound")

    def test_setq_unbound_creates_global(self, rt):
        rt.eval_string("(setq fresh-global 42)")
        assert rt.eval_string("fresh-global") == 42


class TestFunctions:
    def test_defun_and_call(self, rt):
        rt.eval_string("(defun add3 (a b c) (+ a b c))")
        assert rt.eval_string("(add3 1 2 3)") == 6

    def test_defun_returns_name(self, rt):
        assert rt.eval_string("(defun foo () 1)") is S("foo")

    def test_docstring_preserved(self, rt):
        rt.eval_string('(defun doc-fn (x) "Does things." x)')
        fn = rt.global_env.lookup(S("doc-fn"))
        assert fn.doc == "Does things."

    def test_docstring_only_body_is_value(self, rt):
        # a single string body is the return value, not a docstring
        rt.eval_string('(defun just-str () "hello")')
        assert rt.eval_string("(just-str)") == "hello"

    def test_lambda_immediate_call(self, rt):
        assert rt.eval_string("((lambda (x) (* x 2)) 21)") == 42

    def test_optional_defaults(self, rt):
        rt.eval_string("(defun opt (a &optional (b 10)) (+ a b))")
        assert rt.eval_string("(opt 1)") == 11
        assert rt.eval_string("(opt 1 2)") == 3

    def test_optional_default_sees_earlier_params(self, rt):
        rt.eval_string("(defun opt2 (a &optional (b (* a 2))) (list a b))")
        assert rt.eval_string("(opt2 3)") == [3, 6]

    def test_rest_parameter(self, rt):
        rt.eval_string("(defun rest-fn (a &rest more) (list a more))")
        assert rt.eval_string("(rest-fn 1 2 3)") == [1, [2, 3]]

    def test_keyword_arguments(self, rt):
        rt.eval_string("(defun kw (&key x (y 5)) (list x y))")
        assert rt.eval_string("(kw :x 1)") == [1, 5]
        assert rt.eval_string("(kw :y 2 :x 1)") == [1, 2]
        assert rt.eval_string("(kw)") == [None, 5]

    def test_unknown_keyword_errors(self, rt):
        rt.eval_string("(defun kw2 (&key x) x)")
        with pytest.raises(UnhandledConditionError):
            rt.eval_string("(kw2 :zzz 1)")

    def test_too_few_arguments(self, rt):
        rt.eval_string("(defun two (a b) a)")
        with pytest.raises(UnhandledConditionError):
            rt.eval_string("(two 1)")

    def test_too_many_arguments(self, rt):
        rt.eval_string("(defun one (a) a)")
        with pytest.raises(UnhandledConditionError):
            rt.eval_string("(one 1 2)")

    def test_recursion(self, rt):
        rt.eval_string("""
            (defun fact (n) (if (<= n 1) 1 (* n (fact (- n 1)))))""")
        assert rt.eval_string("(fact 10)") == 3628800

    def test_mutual_recursion(self, rt):
        rt.eval_string("""
            (defun my-even (n) (if (= n 0) t (my-odd (- n 1))))
            (defun my-odd (n) (if (= n 0) nil (my-even (- n 1))))""")
        assert rt.eval_string("(my-even 10)") is True

    def test_deep_tail_recursion_constant_frames(self, rt):
        """Proper tail calls keep the heap frame stack flat."""
        rt.eval_string("""
            (defun count-down (n) (if (= n 0) :done (count-down (- n 1))))""")
        assert rt.eval_string("(count-down 20000)") == Keyword("done")

    def test_calling_non_callable_errors(self, rt):
        with pytest.raises(UnhandledConditionError):
            rt.eval_string("(5 1 2)")


class TestWhile:
    def test_while_loop(self, rt):
        assert rt.eval_string("""
            (let ((i 0) (acc 0))
              (while (< i 5)
                (setq acc (+ acc i))
                (setq i (+ i 1)))
              acc)""") == 10

    def test_while_false_never_runs(self, rt):
        assert rt.eval_string("""
            (let ((n 0)) (while nil (setq n 1)) n)""") == 0


class TestBlocks:
    def test_block_normal_value(self, rt):
        assert rt.eval_string("(block b 1 2 3)") == 3

    def test_return_from(self, rt):
        assert rt.eval_string("(block b (return-from b 9) 1)") == 9

    def test_return_from_inner_block(self, rt):
        assert rt.eval_string("""
            (block outer
              (block inner (return-from inner 1))
              :after)""") == Keyword("after")

    def test_return_from_outer_skips(self, rt):
        assert rt.eval_string("""
            (block outer
              (block inner (return-from outer :jump))
              :never)""") == Keyword("jump")

    def test_return_from_across_function_call(self, rt):
        """Blocks have dynamic extent across function boundaries."""
        assert rt.eval_string("""
            (block b
              (mapcar (lambda (x) (when (= x 3) (return-from b x)))
                      (list 1 2 3 4))
              :not-found)""") == 3

    def test_return_nil_block(self, rt):
        assert rt.eval_string("(block nil (return 5) 1)") == 5

    def test_return_from_missing_block_errors(self, rt):
        with pytest.raises(UnhandledConditionError):
            rt.eval_string("(return-from nowhere 1)")

    def test_loop_stack_discipline(self, rt):
        # a return-from with values on the operand stack restores depth
        assert rt.eval_string("""
            (block b (+ 1 (return-from b 7)))""") == 7


class TestInstructionCounting:
    def test_instruction_count_increases(self, rt):
        vm = rt.new_vm()
        code = rt.compile(rt.read("(+ 1 2)"))
        vm.run_code(code)
        assert vm.instruction_count > 0
