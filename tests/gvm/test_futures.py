"""Future tests (paper Section 2): transparency, touch, pcall, executors."""

import threading

import pytest

from repro.gvm.futures import (
    GozerFuture,
    SynchronousFutureExecutor,
    ThreadPoolFutureExecutor,
    find_futures,
    force,
    is_fiber_thread,
)
from repro.lang.errors import GozerRuntimeError
from repro.gvm.conditions import UnhandledConditionError
from repro.lang.symbols import Keyword


class TestGozerFuture:
    def test_determination(self):
        f = GozerFuture("t")
        assert not f.determined
        f._determine(5)
        assert f.determined
        assert f.touch() == 5

    def test_failure_reraised_at_touch(self):
        f = GozerFuture("t")
        f._fail(ValueError("boom"))
        with pytest.raises(ValueError):
            f.touch()

    def test_touch_timeout(self):
        f = GozerFuture("t")
        with pytest.raises(GozerRuntimeError):
            f.touch(timeout=0.01)

    def test_force_passthrough(self):
        assert force(42) == 42
        f = GozerFuture("t")
        f._determine("x")
        assert force(f) == "x"

    def test_pickle_as_determined_value(self):
        import pickle

        f = GozerFuture("t")
        f._determine([1, 2])
        clone = pickle.loads(pickle.dumps(f))
        assert isinstance(clone, GozerFuture)
        assert clone.determined
        assert clone.touch() == [1, 2]


class TestLanguageLevelFutures:
    def test_future_returns_future_object(self, rt):
        value = rt.eval_string("(future 42)")
        assert isinstance(value, GozerFuture)

    def test_touch_gets_value(self, rt):
        assert rt.eval_string("(touch (future (* 6 7)))") == 42

    def test_future_transparent_to_arithmetic(self, rt):
        """Passing a future to a builtin determines it (Section 4.1)."""
        assert rt.eval_string("(+ 1 (future 2))") == 3

    def test_futures_in_data_structures(self, rt):
        """Futures can be stored in data structures and mixed freely."""
        assert rt.eval_string("""
            (let ((xs (list (future 1) 2 (future 3))))
              (apply #'+ xs))""") == 6

    def test_par_sum_squares_listing1(self, rt):
        """The paper's Listing 1 par-sum-squares."""
        rt.eval_string("""
            (defun par-sum-squares (numbers)
              (apply #'+
                (loop for number in numbers
                      collect (future (* number number)))))""")
        assert rt.eval_string("(par-sum-squares (list 1 2 3 4 5))") == 55

    def test_future_captures_lexical_scope(self, rt):
        assert rt.eval_string("""
            (let ((x 10)) (touch (future (* x x))))""") == 100

    def test_pcall_forces_arguments(self, rt):
        assert rt.eval_string("""
            (pcall #'list (future 1) (future 2) 3)""") == [1, 2, 3]

    def test_futurep_predicate(self, rt):
        assert rt.eval_string("(futurep (future 1))") is True
        assert rt.eval_string("(futurep 1)") is False

    def test_determined_p_non_future_always(self, rt):
        """'Any value that is not a future is always said to be
        determined' (Section 2)."""
        assert rt.eval_string("(determined-p 5)") is True

    def test_future_error_propagates_at_touch(self, rt):
        with pytest.raises(UnhandledConditionError):
            rt.eval_string('(touch (future (error "inside")))')

    def test_nested_futures(self, rt):
        assert rt.eval_string(
            "(touch (touch (future (future 5))))") == 5

    def test_is_fiber_thread_false_inside_future(self, rt):
        """Futures run with background-thread semantics even on the
        synchronous executor."""
        assert rt.eval_string("(touch (future (% is-fiber-thread)))") is False


class TestThreadedExecution:
    def test_real_parallel_execution(self, threaded_rt):
        value = threaded_rt.eval_string("""
            (apply #'+ (loop for i from 1 to 20 collect (future (* i i))))""")
        assert value == 2870

    def test_threaded_future_really_concurrent(self, threaded_rt):
        """Two futures that each wait on a shared barrier can only finish
        if they truly run in parallel."""
        barrier = threading.Barrier(2, timeout=5)
        threaded_rt.global_env.define(
            __import__("repro.lang.symbols", fromlist=["Symbol"]).Symbol("hit-barrier"),
            lambda: barrier.wait())
        value = threaded_rt.eval_string("""
            (let ((a (future (hit-barrier) 1))
                  (b (future (hit-barrier) 2)))
              (+ (touch a) (touch b)))""")
        assert value == 3

    def test_executor_shutdown_rejects_new_work(self):
        executor = ThreadPoolFutureExecutor(max_workers=1)
        executor.shutdown()
        with pytest.raises(GozerRuntimeError):
            executor.submit(lambda: 1)


class TestSynchronousExecutor:
    def test_runs_inline(self):
        executor = SynchronousFutureExecutor()
        f = executor.submit(lambda: 99)
        assert f.determined
        assert f.touch() == 99
        assert executor.submitted == 1

    def test_failure_stored(self):
        executor = SynchronousFutureExecutor()
        f = executor.submit(lambda: 1 / 0)
        with pytest.raises(ZeroDivisionError):
            f.touch()


class TestFindFutures:
    def test_finds_in_nested_structures(self):
        f1, f2 = GozerFuture("a"), GozerFuture("b")
        f1._determine(1)
        f2._determine(2)
        root = {"x": [f1, {"y": (f2,)}]}
        found = find_futures(root)
        assert set(id(f) for f in found) == {id(f1), id(f2)}

    def test_handles_cycles(self):
        f = GozerFuture("a")
        f._determine(None)
        lst = [f]
        lst.append(lst)  # cycle
        assert len(find_futures(lst)) == 1

    def test_searches_environments(self):
        from repro.gvm.environment import Env
        from repro.lang.symbols import Symbol

        f = GozerFuture("x")
        f._determine(0)
        env = Env()
        env.bind(Symbol("v"), f)
        child = env.child()
        assert len(find_futures(child)) == 1
