"""The durable history plane: CRC-framed batches, determinism,
fail-closed integrity under injected damage."""

import pytest

from repro.faults.campaign import run_campaign
from repro.faults.plan import (
    FaultPlan,
    HistoryFault,
    MessageFault,
    NodeFault,
)
from repro.history import (
    DroppedBatchError,
    HistoryCorruptionError,
    HistoryEvent,
    HistoryLog,
    TornHistoryError,
)
from repro.vinz.api import VinzEnvironment
from repro.vinz.persistence import FiberCodec

CHAOS = FaultPlan([
    MessageFault("drop", operation="RunFiber", nth=2, count=2),
    MessageFault("duplicate", operation="AwakeFiber", nth=1, count=2),
    NodeFault("crash", at=1.0, restart_after=2.0),
], name="chaos")


class TestHistoryLog:
    def test_batch_roundtrip(self):
        from repro.bluebox.store import SharedStore

        codec = FiberCodec()
        log = HistoryLog(SharedStore())
        events = [HistoryEvent(seq=0, kind="task-started", fiber=None,
                               payload={"root": "fiber-1"}),
                  HistoryEvent(seq=1, kind="nondet", fiber="fiber-1",
                               payload={"op": "clock", "value": 1.5})]
        log.append_batch("task-1", events, codec)
        log.append_batch("task-1",
                         [HistoryEvent(seq=2, kind="fiber-completed",
                                       fiber="fiber-1",
                                       payload={"result": 9})], codec)
        back = log.read_task("task-1", codec)
        assert [(e.seq, e.kind, e.fiber) for e in back] == \
            [(0, "task-started", None), (1, "nondet", "fiber-1"),
             (2, "fiber-completed", "fiber-1")]
        assert back[1].payload == {"op": "clock", "value": 1.5}

    def test_missing_task_is_empty(self):
        from repro.bluebox.store import SharedStore

        assert HistoryLog(SharedStore()).read_task(
            "task-none", FiberCodec()) == []


class TestDeterministicHistories:
    def test_same_seed_produces_byte_identical_logs(self):
        """Two runs of one seeded campaign leave bit-for-bit identical
        history bytes in the store — the property that makes a
        recorded history a reproducible artifact, not a trace."""
        def history_bytes(report):
            store = report.env.store
            return {key: store.snapshot_value(key)
                    for key in sorted(store.keys("history//"))}

        first = run_campaign(CHAOS, seed=29, tasks=4, history="on")
        second = run_campaign(CHAOS, seed=29, tasks=4, history="on")
        blobs = history_bytes(first)
        assert blobs, "campaign recorded no history batches"
        assert blobs == history_bytes(second)

    def test_different_seed_differs(self):
        def history_bytes(report):
            store = report.env.store
            return {key: store.snapshot_value(key)
                    for key in sorted(store.keys("history//"))}

        first = run_campaign(CHAOS, seed=29, tasks=4, history="on")
        other = run_campaign(CHAOS, seed=30, tasks=4, history="on")
        assert history_bytes(first) != history_bytes(other)


class TestHistoryFaultsFailClosed:
    """Damaged histories must surface as typed errors on replay —
    never a silently wrong re-execution."""

    def _campaign(self, fault):
        return run_campaign(FaultPlan([fault], name="hist"),
                            seed=5, tasks=3, history="on")

    def test_torn_tail_raises_typed_error(self):
        report = self._campaign(HistoryFault("torn-tail", nth=3))
        assert report.injected.get("torn-tail", 0) >= 1
        with pytest.raises(TornHistoryError):
            report.replay_all()

    def test_dropped_batch_raises_typed_error(self):
        report = self._campaign(HistoryFault("dropped-batch", nth=3))
        assert report.injected.get("dropped-batch", 0) >= 1
        with pytest.raises(HistoryCorruptionError):
            report.replay_all()

    def test_dropped_final_batch_detected(self):
        """Even a dropped *final* batch (no later index to expose the
        gap) is caught: the log remembers the highest index it
        handed out."""
        from repro.bluebox.store import SharedStore

        codec = FiberCodec()
        log = HistoryLog(SharedStore())

        class DropLast:
            def on_history_write(self, key, blob):
                return None  # every batch is lost

        log.append_batch("task-1",
                         [HistoryEvent(seq=0, kind="task-started",
                                       fiber=None, payload={})], codec)
        log.injector = DropLast()
        log.append_batch("task-1",
                         [HistoryEvent(seq=1, kind="fiber-completed",
                                       fiber="fiber-1",
                                       payload={"result": 1})], codec)
        with pytest.raises(DroppedBatchError):
            log.read_task("task-1", codec)

    def test_corrupt_frame_raises_typed_error(self):
        report = self._campaign(HistoryFault("corrupt-frame", nth=2))
        assert report.injected.get("corrupt-frame", 0) >= 1
        with pytest.raises(HistoryCorruptionError):
            report.replay_all()

    def test_memory_mirror_unaffected_by_log_damage(self):
        """The injector damages only the durable plane: the in-memory
        mirror (the recovery path's source) still replays clean."""
        report = self._campaign(HistoryFault("torn-tail", nth=3))
        env = report.env
        for task_id, task in env.registry.tasks.items():
            if task.finished:
                env.replayer.replay_task(task_id, source="memory")


class TestHistoryObservability:
    def test_summary_and_report_carry_history_section(self):
        report = run_campaign(CHAOS, seed=3, tasks=2, history="on")
        summary = report.env.summary()
        assert summary["history"]["tasks_recorded"] >= 2
        assert summary["history"]["events"] > 0
        assert summary["recovery"]["mode"] == "snapshot"
        obs = report.env.observability_report()
        assert obs["history"]["batches_written"] > 0

    def test_history_off_by_default(self):
        env = VinzEnvironment(nodes=2, seed=1)
        assert env.history is None
        assert env.summary()["history"] is None
        with pytest.raises(RuntimeError):
            env.replay_task("task-1")

    def test_invalid_configs_rejected(self):
        with pytest.raises(ValueError):
            VinzEnvironment(nodes=2, recovery="replay")  # needs history
        with pytest.raises(ValueError):
            VinzEnvironment(nodes=2, history="maybe")
        with pytest.raises(ValueError):
            VinzEnvironment(nodes=2, snapshot_interval=0)
