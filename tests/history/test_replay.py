"""Deterministic replay: verification sweeps, divergence detection,
snapshot-interval elision and replay-based crash recovery."""

import random

import pytest

from repro.faults.campaign import run_campaign
from repro.faults.plan import FaultPlan, MessageFault, NodeFault
from repro.history import ReplayDivergenceError
from repro.lang.symbols import Keyword
from repro.vinz.api import VinzEnvironment
from repro.vinz.task import COMPLETED

CHAOS = FaultPlan([
    MessageFault("drop", operation="RunFiber", nth=2, count=2),
    MessageFault("duplicate", operation="AwakeFiber", nth=1, count=2),
    NodeFault("crash", at=1.0, restart_after=2.0),
], name="chaos")

CRASHY = FaultPlan([
    NodeFault("crash", on_lock=3, restart_after=2.0),
    NodeFault("crash", on_persist=5, restart_after=2.0),
    MessageFault("drop", operation="RunFiber", nth=1, count=2),
], name="crashy")

#: a workflow exercising the recorded-nondeterminism builtins: clock
#: reads, RNG draws, gensym — all must replay from history, not rerun
NONDET_WORKFLOW = """
(defun main (params)
  (let* ((items (getf params :items))
         (t0 (get-universal-time))
         (tag (gensym "run"))
         (doubled (for-each (x in items)
                    (compute 0.1)
                    (+ (* x 2) (random 1)))))
    (list :total (apply #'+ doubled)
          :started (< t0 (get-universal-time))
          :tag (if tag 1 0))))
"""


class TestVerificationReplay:
    def test_chaos_campaign_replays_with_zero_divergences(self):
        report = run_campaign(CHAOS, seed=17, tasks=6, history="on")
        assert report.all_completed, report.statuses
        replays = report.replay_all()
        assert len(replays) == 6
        assert sum(r.windows for r in replays) > 6
        assert sum(r.instructions for r in replays) > 0
        assert report.env.cluster.metrics.counter(
            "history.replays").value == 6

    def test_nondet_builtins_replay_from_history(self):
        env = VinzEnvironment(nodes=3, seed=23, history="on")
        env.deploy_workflow("Nondet", NONDET_WORKFLOW, spawn_limit=2)
        task_id = env.run("Nondet", [Keyword("items"), [1, 2, 3, 4]])
        assert env.registry.tasks[task_id].status == COMPLETED
        kinds = {e.payload.get("op") for e in env.history.events_of(task_id)
                 if e.kind == "nondet"}
        assert "clock" in kinds
        assert "random" in kinds
        assert "gensym" in kinds
        report = env.replay_task(task_id)
        assert report.fibers_replayed == 5

    def test_divergence_pinpoints_first_mismatch(self):
        """Tamper with one recorded nondet value: replay must fail at
        exactly that event, naming the fiber and sequence number."""
        env = VinzEnvironment(nodes=3, seed=23, history="on")
        env.deploy_workflow("Nondet", NONDET_WORKFLOW, spawn_limit=2)
        task_id = env.run("Nondet", [Keyword("items"), [1, 2]])
        events = env.history.events_of(task_id)
        victim = next(e for e in events
                      if e.kind == "nondet"
                      and e.payload.get("op") == "collect")
        victim.payload = dict(victim.payload,
                              value=[("completed", 999, None)] * 2)
        with pytest.raises(ReplayDivergenceError) as info:
            env.replayer.replay_task(task_id, source="memory")
        err = info.value
        assert err.task == task_id
        assert err.fiber == victim.fiber
        assert err.seq is not None

    def test_tampered_result_detected(self):
        env = VinzEnvironment(nodes=3, seed=23, history="on")
        env.deploy_workflow("Nondet", NONDET_WORKFLOW, spawn_limit=2)
        task_id = env.run("Nondet", [Keyword("items"), [1, 2]])
        events = env.history.events_of(task_id)
        terminal = next(e for e in events if e.kind == "fiber-completed"
                        and e.fiber == env.registry.tasks[task_id].fiber_ids[0])
        terminal.payload = dict(terminal.payload, result="forged")
        with pytest.raises(ReplayDivergenceError):
            env.replayer.replay_task(task_id, source="memory")


class TestSnapshotInterval:
    def test_interval_skips_persists_and_still_completes(self):
        report = run_campaign(CHAOS, seed=17, tasks=6, history="on",
                              snapshot_interval=8)
        assert report.all_completed, report.statuses
        assert report.wrong_results() == []
        assert report.env.counters.get("persist.skipped") > 0
        report.replay_all()

    def test_interval_writes_fewer_bytes(self):
        every = run_campaign(CHAOS, seed=17, tasks=6, history="on",
                             snapshot_interval=1)
        sparse = run_campaign(CHAOS, seed=17, tasks=6, history="on",
                              snapshot_interval=8)
        assert sparse.env.counters.get_sum("persist.bytes") < \
            every.env.counters.get_sum("persist.bytes")
        assert sparse.env.counters.get("persist.writes") < \
            every.env.counters.get("persist.writes")

    def test_elided_version_rebuilt_by_replay(self):
        """Evict the fiber caches mid-run under an interval: loading a
        version that was never persisted must rebuild it from
        history (history.rebuilds ticks up) with correct results."""
        report = run_campaign(CRASHY, seed=21, tasks=4, nodes=4,
                              history="on", snapshot_interval=8,
                              locks="file", lease_ttl=1.0)
        assert report.all_completed, report.statuses
        assert report.wrong_results() == []
        assert report.env.counters.get("history.rebuilds") > 0
        report.replay_all()


class TestReplayRecovery:
    def test_replay_recovery_reads_no_continuation_snapshots(self):
        """Under ``recovery="replay"`` a crashed fiber's state comes
        back by re-execution: the fiber-state plane is write-only."""
        env = VinzEnvironment(nodes=3, seed=7, locks="file",
                              lease_ttl=1.0, history="on",
                              recovery="replay")
        state_reads = []
        original_read = env.store.read

        def spying_read(key):
            if key.startswith("fiber-state/"):
                state_reads.append(key)
            return original_read(key)

        env.store.read = spying_read
        env.deploy_workflow("Recovery", """
(defun main (params)
  (let* ((items (getf params :items))
         (doubled (for-each (x in items) (compute 0.4) (* x 2))))
    (list :id (getf params :id) :total (apply #'+ doubled))))
""", spawn_limit=2)
        rng = random.Random(7)
        inputs = {}
        for i in range(3):
            items = [rng.randint(1, 9) for _ in range(3)]
            inputs[i] = items
            env.cluster.send("Recovery", "Start",
                             {"params": [Keyword("id"), i,
                                         Keyword("items"), items]})
        env.cluster.kernel.schedule_at(1.0,
                                       lambda: env.fail_node("node-1"))
        env.cluster.run_until_idle()
        assert state_reads == []
        assert env.counters.get("history.rebuilds") > 0
        for task in env.registry.tasks.values():
            assert task.status == COMPLETED, (task.id, task.error)
            plist = {task.result[i].name: task.result[i + 1]
                     for i in range(0, len(task.result), 2)}
            assert plist["total"] == sum(x * 2
                                         for x in inputs[plist["id"]])

    def test_replay_recovery_lock_invariants(self):
        """The lease-recovery campaign's verdict, under replay-based
        recovery: nothing stuck, nothing double-run, answers right."""
        report = run_campaign(CRASHY, seed=21, tasks=4, nodes=4,
                              history="on", recovery="replay",
                              locks="file", lease_ttl=1.0)
        assert report.all_completed, report.statuses
        assert report.wrong_results() == []
        assert report.stuck_fibers() == []
        assert report.single_runner_violations() == []
        report.replay_all()

    def test_replay_recovery_matches_snapshot_recovery_results(self):
        snap = run_campaign(CRASHY, seed=33, tasks=4, history="on",
                            recovery="snapshot")
        repl = run_campaign(CRASHY, seed=33, tasks=4, history="on",
                            recovery="replay")
        def totals(report):
            out = {}
            for task in report.env.registry.tasks.values():
                plist = {task.params[i].name: task.params[i + 1]
                         for i in range(0, len(task.params), 2)}
                rlist = {task.result[i].name: task.result[i + 1]
                         for i in range(0, len(task.result), 2)}
                out[plist["id"]] = rlist["total"]
            return out
        assert totals(snap) == totals(repl)
