"""Shared fixtures for the Gozer reproduction test suite."""

from __future__ import annotations

import pytest

from repro.gvm.runtime import Runtime, make_runtime
from repro.vinz.api import VinzEnvironment


@pytest.fixture
def rt() -> Runtime:
    """A deterministic runtime (synchronous futures)."""
    runtime = make_runtime(deterministic=True)
    yield runtime
    runtime.shutdown()


@pytest.fixture
def threaded_rt() -> Runtime:
    """A runtime with a real thread-pool future executor."""
    runtime = make_runtime(deterministic=False, max_workers=4)
    yield runtime
    runtime.shutdown()


@pytest.fixture
def vinz() -> VinzEnvironment:
    """A 4-node Vinz environment with default settings."""
    return VinzEnvironment(nodes=4, seed=42)


def ev(runtime: Runtime, text: str):
    """Evaluate Gozer source, returning the last value."""
    return runtime.eval_string(text)
