"""for-each / parallel / fork-and-exec / spawn limit tests (§3.4, §3.5)."""

import pytest

from repro.lang.symbols import Keyword
from repro.vinz.api import VinzEnvironment, WorkflowError

K = Keyword


@pytest.fixture
def env():
    return VinzEnvironment(nodes=4, seed=11)


class TestForEach:
    def test_results_in_input_order(self, env):
        env.deploy_workflow("W", """
            (defun main (params)
              (for-each (x in params) (* x x)))""")
        assert env.call("W", [3, 1, 4, 1, 5]) == [9, 1, 16, 1, 25]

    def test_empty_sequence(self, env):
        env.deploy_workflow("W", """
            (defun main (params)
              (for-each (x in params) (* x x)))""")
        assert env.call("W", []) == []

    def test_single_item(self, env):
        env.deploy_workflow("W", """
            (defun main (params) (for-each (x in params) (1+ x)))""")
        assert env.call("W", [41]) == [42]

    def test_one_child_fiber_per_item(self, env):
        env.deploy_workflow("W", """
            (defun main (params) (for-each (x in params) x))""")
        task_id = env.run("W", [1, 2, 3, 4, 5])
        # 1 main + 5 children
        assert len(env.registry.tasks[task_id].fiber_ids) == 6

    def test_children_run_on_multiple_nodes(self, env):
        env.deploy_workflow("W", """
            (defun main (params)
              (for-each (x in params) (compute 1.0) x))""",
            spawn_limit=8)
        env.run("W", list(range(8)))
        busy_nodes = {e.detail["node"]
                      for e in env.cluster.trace.events
                      if e.kind == "fiber-run"}
        assert len(busy_nodes) > 1

    def test_distribution_is_actually_parallel(self, env):
        """8 children, 1 simulated second each, 4 nodes: makespan far
        below the 8 serial seconds."""
        env.deploy_workflow("W", """
            (defun main (params)
              (for-each (x in params) (compute 1.0) x))""",
            spawn_limit=8)
        env.run("W", list(range(8)))
        assert env.cluster.kernel.now < 5.0

    def test_nested_for_each(self, env):
        """Distribution 'may be nested to an arbitrary depth' (§3.1)."""
        env.deploy_workflow("W", """
            (defun main (params)
              (for-each (row in params)
                (apply #'+ (for-each (x in row) (* x x)))))""")
        assert env.call("W", [[1, 2], [3, 4]]) == [5, 25]

    def test_child_failure_propagates_to_parent(self, env):
        env.deploy_workflow("W", """
            (defun main (params)
              (for-each (x in params)
                (if (= x 13) (error "unlucky") x)))""")
        with pytest.raises(WorkflowError):
            env.call("W", [1, 13, 3])

    def test_parent_can_handle_child_failure(self, env):
        env.deploy_workflow("W", """
            (defun main (params)
              (handler-case
                  (for-each (x in params)
                    (if (= x 13) (error "unlucky") x))
                (child-fiber-error (c) :handled)))""")
        assert env.call("W", [1, 13]) == K("handled")

    def test_listing1_dist_sum_squares(self, env):
        """The paper's Listing 1, verbatim shape."""
        env.deploy_workflow("SumSquares", """
            (defun dist-sum-squares (numbers)
              (apply #'+
                (for-each (number in numbers)
                  (* number number))))
            (defun main (params) (dist-sum-squares params))""")
        assert env.call("SumSquares", list(range(1, 11))) == 385

    def test_listing4_task_var_early_exit(self, env):
        """The paper's Listing 4: a task variable as a stop flag."""
        env.deploy_workflow("W", """
            (deftaskvar exit-flag
              "A global flag. When this becomes true, stop.")
            (defun main (numbers)
              (for-each (number in numbers)
                (unless ^exit-flag^
                  (if (= -1 number)
                      (setf ^exit-flag^ t)
                      (* number number)))))""")
        result = env.call("W", [2, 3, -1, 4])
        assert result[0] == 4
        assert result[1] == 9
        # the -1 item took the setf branch, whose value is t
        assert result[2] is True
        # the item after the flag was set either ran before seeing the
        # flag (16) or skipped its body (nil) — both are legal orders
        assert result[3] in (16, None)


class TestSpawnLimit:
    def test_spawn_limit_caps_concurrency(self, env):
        """With limit L, at most L children are in flight at once."""
        env.deploy_workflow("W", """
            (defun main (params)
              (for-each (x in params) (compute 1.0) x))""",
            spawn_limit=2)
        env.run("W", list(range(6)))
        # reconstruct in-flight children over time from the trace
        events = [e for e in env.cluster.trace.events
                  if e.kind in ("fiber-fork", "fiber-complete")]
        in_flight = 0
        peak = 0
        for event in events:
            if event.kind == "fiber-fork":
                in_flight += 1
                peak = max(peak, in_flight)
            elif event.detail.get("fiber", "").startswith("fiber-") and \
                    event.detail["fiber"] != "fiber-1":
                in_flight -= 1
        assert peak <= 3  # limit 2 (+1 tolerance for fork/complete skew)

    def test_total_yields_equal_children(self, env):
        """Section 3.5: 'The total number of yield forms will be equal
        to the number of child fibers created'."""
        env.deploy_workflow("W", """
            (defun main (params) (for-each (x in params) x))""",
            spawn_limit=3)
        env.run("W", list(range(7)))
        awakes = env.cluster.counters.get("op.W.AwakeFiber")
        assert awakes >= 7

    def test_dynamic_spawn_limit_adjustment(self, env):
        env.deploy_workflow("W", """
            (defun main (params)
              (set-spawn-limit 1)
              (list (get-spawn-limit)
                    (for-each (x in params) x)))""")
        limit, results = env.call("W", [1, 2, 3])
        assert limit == 1
        assert results == [1, 2, 3]

    def test_spawn_limit_floor_is_one(self, env):
        env.deploy_workflow("W", """
            (defun main (params) (set-spawn-limit 0) (get-spawn-limit))""")
        assert env.call("W", None) == 1

    def test_high_limit_faster_than_low(self):
        """The throttle works: limit 1 serializes, limit 8 parallelizes."""
        times = {}
        for limit in (1, 8):
            env = VinzEnvironment(nodes=8, seed=1)
            env.deploy_workflow("W", """
                (defun main (params)
                  (for-each (x in params) (compute 1.0) x))""",
                spawn_limit=limit)
            env.run("W", list(range(8)))
            times[limit] = env.cluster.kernel.now
        assert times[8] < times[1] / 2


class TestChunking:
    def test_chunked_results_flattened_in_order(self, env):
        env.deploy_workflow("W", """
            (defun main (params)
              (for-each (x in params :chunk-size 3) (* x 2)))""")
        assert env.call("W", [1, 2, 3, 4, 5, 6, 7]) == \
            [2, 4, 6, 8, 10, 12, 14]

    def test_chunking_reduces_fiber_count(self, env):
        env.deploy_workflow("W", """
            (defun main (params)
              (for-each (x in params :chunk-size 5) x))""")
        task_id = env.run("W", list(range(10)))
        # 1 main + 2 chunk fibers (not 10)
        assert len(env.registry.tasks[task_id].fiber_ids) == 3

    def test_chunk_list_helper(self, env):
        env.deploy_workflow("W", """
            (defun main (params) (chunk-list params 2))""")
        assert env.call("W", [1, 2, 3, 4, 5]) == [[1, 2], [3, 4], [5]]


class TestParallel:
    def test_parallel_collects_all_forms(self, env):
        env.deploy_workflow("W", """
            (defun main (params)
              (parallel (+ 1 1) (* 2 2) (- 9 1)))""")
        assert env.call("W", None) == [2, 4, 8]

    def test_parallel_forms_run_in_fibers(self, env):
        env.deploy_workflow("W", """
            (defun main (params)
              (parallel (get-process-id) (get-process-id)))""")
        ids = env.call("W", None)
        assert len(set(ids)) == 2  # two distinct fibers

    def test_parallel_form_may_yield(self, env):
        env.deploy_workflow("W", """
            (defun main (params)
              (parallel (progn (workflow-sleep 1) :a)
                        :b))""")
        assert env.call("W", None) == [K("a"), K("b")]


class TestForkAndExec:
    def test_fork_returns_child_id(self, env):
        env.deploy_workflow("W", """
            (defun main (params)
              (fork-and-exec (lambda (x) x) :argument 1))""")
        child_id = env.call("W", None)
        assert child_id.startswith("fiber-")

    def test_fork_with_arguments_list(self, env):
        env.deploy_workflow("W", """
            (defun main (params)
              (join-process
                (fork-and-exec (lambda (a b) (+ a b))
                               :arguments (list 3 4))))""")
        assert env.call("W", None) == 7

    def test_clone_isolation(self, env):
        """Section 3.4: 'changes either fiber makes will not be visible
        to its clone'."""
        env.deploy_workflow("W", """
            (defun main (params)
              (let ((shared (list 1)))
                (let ((child (fork-and-exec
                               (lambda (x) (append! shared 99) (length shared))
                               :arguments (list nil))))
                  (append! shared 2)
                  ;; child saw its own copy: [1, 99]; we see [1, 2]
                  (list (join-process child) (length shared) shared))))""")
        child_len, parent_len, parent_list = env.call("W", None)
        assert child_len == 2
        assert parent_len == 2
        assert parent_list == [1, 2]

    def test_plain_fork_does_not_notify_parent(self, env):
        """Footnote 1: fork-and-exec fibers do not AwakeFiber the parent."""
        env.deploy_workflow("W", """
            (defun main (params)
              (fork-and-exec (lambda (x) x) :argument 1)
              (workflow-sleep 5)
              :done)""")
        env.call("W", None)
        assert env.cluster.counters.get("op.W.AwakeFiber") == 0

    def test_task_ids_shared_across_fibers(self, env):
        env.deploy_workflow("W", """
            (defun main (params)
              (let ((my-task (get-task-id)))
                (list my-task
                      (join-process
                        (fork-and-exec (lambda (x) (get-task-id))
                                       :arguments (list nil))))))""")
        parent_task, child_task = env.call("W", None)
        assert parent_task == child_task


class TestWorkflowSleep:
    def test_sleep_advances_virtual_time(self, env):
        env.deploy_workflow("W", """
            (defun main (params) (workflow-sleep 3600) :woke)""")
        env.run("W", None)
        assert env.cluster.kernel.now >= 3600

    def test_sleeping_fiber_holds_no_slot(self, env):
        env.deploy_workflow("W", """
            (defun main (params) (workflow-sleep 100) :woke)""")
        task_id = env.start("W", None)
        env.cluster.run_until(
            lambda: any(e.kind == "fiber-suspend"
                        for e in env.cluster.trace.events))
        env.cluster.run_until(lambda: not env.cluster._in_flight)
        assert all(n.busy == 0 for n in env.cluster.nodes.values())
        env.wait_for_task(task_id)
