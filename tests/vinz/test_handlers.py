"""Named handler tests: defhandler / with-handler (paper Listing 6)."""

import pytest

from repro.bluebox.services import ServiceFault, simple_service
from repro.lang.errors import CompileError
from repro.lang.symbols import Keyword
from repro.vinz.api import VinzEnvironment, WorkflowError
from repro.vinz.handlers import HandlerDefinition, parse_defhandler
from repro.lang.reader import read_all

K = Keyword


@pytest.fixture
def env():
    return VinzEnvironment(nodes=3, seed=13)


class TestParsing:
    def _parse(self, text):
        form = read_all(text)[0]
        return parse_defhandler(form[1], form[2:])

    def test_listing6_ignore_handler(self):
        definition = self._parse("""
            (defhandler ignore-handler
              :java ("java.lang.Throwable")
              :action ignore)""")
        assert definition.name == "ignore-handler"
        assert definition.typespecs == ["java.lang.Throwable"]
        assert definition.action == "ignore"

    def test_listing6_retry_handler(self):
        definition = self._parse("""
            (defhandler retry-handler
              :java ("java.net.SocketException")
              :code ("{urn:service}Connect"
                     "{urn:service}Transmit")
              :action retry
              :count 5)""")
        assert definition.typespecs == [
            "java.net.SocketException",
            "{urn:service}Connect",
            "{urn:service}Transmit",
        ]
        assert definition.action == "retry"
        assert definition.count == 5

    def test_condition_option(self):
        definition = self._parse("""
            (defhandler h :condition (network-error) :action break)""")
        assert len(definition.typespecs) == 1

    def test_no_conditions_is_error(self):
        with pytest.raises(CompileError):
            self._parse("(defhandler h :action retry)")

    def test_unknown_option_is_error(self):
        with pytest.raises(CompileError):
            self._parse("(defhandler h :java (\"X\") :bogus 1)")


class TestRetryAction:
    def _flaky_env(self, env, fail_times):
        state = {"fails": fail_times}

        def flaky(ctx, body):
            if state["fails"] > 0:
                state["fails"] -= 1
                raise ServiceFault("{urn:svc}Connect", "reset")
            return "recovered"

        env.deploy_service(simple_service("Svc", {"Tx": flaky},
                                          namespace="urn:svc"))
        return state

    def test_retry_within_count_succeeds(self, env):
        self._flaky_env(env, fail_times=3)
        env.deploy_workflow("W", """
            (deflink S :wsdl "urn:svc")
            (defhandler retry-conn
              :code ("{urn:svc}Connect")
              :action retry
              :count 5)
            (defun main (params)
              (with-handler retry-conn (S-Tx-Method)))""")
        assert env.call("W", None) == "recovered"

    def test_retry_count_exhausted_fails(self, env):
        self._flaky_env(env, fail_times=10)
        env.deploy_workflow("W", """
            (deflink S :wsdl "urn:svc")
            (defhandler retry-conn
              :code ("{urn:svc}Connect")
              :action retry
              :count 2)
            (defun main (params)
              (with-handler retry-conn (S-Tx-Method)))""")
        with pytest.raises(WorkflowError):
            env.call("W", None)

    def test_handler_only_matches_its_conditions(self, env):
        """A QName the handler doesn't list is not retried."""
        def other_fault(ctx, body):
            raise ServiceFault("{urn:svc}Unrelated", "nope")

        env.deploy_service(simple_service("Svc", {"Tx": other_fault},
                                          namespace="urn:svc"))
        env.deploy_workflow("W", """
            (deflink S :wsdl "urn:svc")
            (defhandler retry-conn
              :code ("{urn:svc}Connect")
              :action retry :count 5)
            (defun main (params)
              (with-handler retry-conn (S-Tx-Method)))""")
        with pytest.raises(WorkflowError):
            env.call("W", None)


class TestIgnoreAction:
    def test_ignore_returns_nil(self, env):
        def boom(ctx, body):
            raise ServiceFault("{urn:svc}Any", "x")

        env.deploy_service(simple_service("Svc", {"Op": boom},
                                          namespace="urn:svc"))
        env.deploy_workflow("W", """
            (deflink S :wsdl "urn:svc")
            (defhandler ignore-all
              :java ("java.lang.Throwable")
              :code ("{urn:svc}Any")
              :action ignore)
            (defun main (params)
              (list :before (with-handler ignore-all (S-Op-Method)) :after))""")
        assert env.call("W", None) == [K("before"), None, K("after")]

    def test_listing6_nested_handlers(self, env):
        """Listing 6's shape: with-handler nests."""
        state = {"fails": 1}

        def flaky(ctx, body):
            if state["fails"] > 0:
                state["fails"] -= 1
                raise ServiceFault("{urn:service}Connet", "reset")
            return "done"

        env.deploy_service(simple_service("Sock", {"Op": flaky},
                                          namespace="urn:service"))
        env.deploy_workflow("W", """
            (deflink K :wsdl "urn:service")
            (defhandler ignore-handler
              :java ("java.lang.Throwable")
              :action ignore)
            (defhandler retry-handler
              :java ("java.net.SocketException")
              :code ("{urn:service}Connet"
                     "{urn:service}Transmit")
              :action retry
              :count 5)
            (defun main (params)
              (with-handler ignore-handler
                (with-handler retry-handler
                  (K-Op-Method))))""")
        assert env.call("W", None) == "done"


class TestBreakAction:
    def test_break_terminates_fiber_returning_nil(self, env):
        """'the break action causes the currently executing fiber to
        immediately terminate cleanly and return nil to the parent
        (other fibers are unaffected)'."""
        env.deploy_workflow("W", """
            (defhandler break-on-error
              :condition (error)
              :action break)
            (defun main (params)
              (for-each (x in params)
                (with-handler break-on-error
                  (if (= x 13) (error "unlucky") (* x 10)))))""")
        assert env.call("W", [1, 13, 3]) == [10, None, 30]


class TestTerminateAction:
    def test_terminate_fails_whole_task(self, env):
        env.deploy_workflow("W", """
            (defhandler die
              :condition (error)
              :action terminate)
            (defun main (params)
              (for-each (x in params)
                (with-handler die
                  (if (= x 13) (error "fatal") x))))""")
        with pytest.raises(WorkflowError):
            env.call("W", [1, 13, 3])
        task = list(env.registry.tasks.values())[0]
        assert task.status == "error"


class TestCustomAction:
    def test_user_defined_action_function(self, env):
        """'an action is just a function, so the workflow author is free
        to define additional actions'."""
        env.deploy_workflow("W", """
            (defun log-and-ignore (c)
              (invoke-restart 'use-fallback))
            (defhandler custom
              :condition (error)
              :action log-and-ignore)
            (defun main (params)
              (with-handler custom
                (restart-case (error "x")
                  (use-fallback () :fell-back))))""")
        assert env.call("W", None) == K("fell-back")

    def test_unknown_action_errors(self, env):
        env.deploy_workflow("W", """
            (defhandler bad
              :condition (error)
              :action no-such-action)
            (defun main (params)
              (with-handler bad (error "x")))""")
        with pytest.raises(WorkflowError):
            env.call("W", None)


class TestWithHandlerErrors:
    def test_with_handler_unknown_name_compile_error(self, env):
        with pytest.raises(CompileError):
            env.deploy_workflow("W", """
                (defun main (params)
                  (with-handler never-defined 1))""")
