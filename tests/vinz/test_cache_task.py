"""Fiber cache and process registry unit tests."""

import pytest

from repro.vinz.cache import FiberCache, LruCache
from repro.vinz.task import (
    COMPLETED,
    ERROR,
    PENDING,
    ProcessRegistry,
    RUNNING,
    TERMINATED,
)


class TestLruCache:
    def test_get_put(self):
        cache = LruCache(capacity=2)
        cache.put("a", 1)
        assert cache.get("a") == 1
        assert cache.get("b") is None

    def test_eviction_order(self):
        cache = LruCache(capacity=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")       # refresh a
        cache.put("c", 3)    # evicts b (LRU)
        assert cache.get("b") is None
        assert cache.get("a") == 1
        assert cache.get("c") == 3

    def test_hit_rate(self):
        cache = LruCache(capacity=4)
        cache.put("a", 1)
        cache.get("a")
        cache.get("a")
        cache.get("miss")
        assert cache.hits == 2
        assert cache.misses == 1
        assert cache.hit_rate == pytest.approx(2 / 3)

    def test_hit_rate_empty(self):
        assert LruCache().hit_rate == 0.0

    def test_invalidate(self):
        cache = LruCache()
        cache.put("a", 1)
        cache.invalidate("a")
        assert cache.get("a") is None

    def test_overwrite_key(self):
        cache = LruCache()
        cache.put("a", 1)
        cache.put("a", 2)
        assert cache.get("a") == 2
        assert len(cache) == 1


class TestFiberCache:
    def test_continuation_keyed_by_version(self):
        """A continuation cached at version 1 must not satisfy a lookup
        for version 2 — stale state would corrupt the fiber."""
        cache = FiberCache()
        cache.put_continuation("f1", 1, "state-v1")
        assert cache.get_continuation("f1", 1) == "state-v1"
        assert cache.get_continuation("f1", 2) is None

    def test_task_env_keyed_by_task(self):
        cache = FiberCache()
        cache.put_task_env("t1", {"params": 1})
        assert cache.get_task_env("t1") == {"params": 1}
        assert cache.get_task_env("t2") is None

    def test_for_node_attaches_to_memory(self):
        class FakeNode:
            memory = {}

        node = FakeNode()
        c1 = FiberCache.for_node(node)
        c2 = FiberCache.for_node(node)
        assert c1 is c2

    def test_node_failure_loses_cache(self):
        """Cluster wipes node memory on failure; a new cache appears."""
        class FakeNode:
            def __init__(self):
                self.memory = {}

        node = FakeNode()
        c1 = FiberCache.for_node(node)
        node.memory.clear()
        c2 = FiberCache.for_node(node)
        assert c1 is not c2


class TestProcessRegistry:
    def test_task_and_fiber_creation(self):
        reg = ProcessRegistry()
        task = reg.new_task("WF", {"p": 1}, now=1.0)
        fiber = reg.new_fiber(task, now=1.0)
        assert task.status == PENDING
        assert fiber.task_id == task.id
        assert task.fiber_ids == [fiber.id]
        assert reg.task_of(fiber.id) is task

    def test_unique_ids(self):
        reg = ProcessRegistry()
        tasks = [reg.new_task("WF", None, 0.0) for _ in range(3)]
        assert len({t.id for t in tasks}) == 3

    def test_child_fiber_parentage(self):
        reg = ProcessRegistry()
        task = reg.new_task("WF", None, 0.0)
        parent = reg.new_fiber(task, 0.0)
        child = reg.new_fiber(task, 1.0, parent_id=parent.id,
                              notify_parent=True)
        assert child.parent_id == parent.id
        assert child.notify_parent
        assert not parent.notify_parent
        assert len(reg.fibers_of(task.id)) == 2

    def test_finish_task_fires_listeners_once(self):
        reg = ProcessRegistry()
        task = reg.new_task("WF", None, 0.0)
        hits = []
        task.completion_listeners.append(lambda t: hits.append(t.status))
        reg.finish_task(task, COMPLETED, now=5.0, result=42)
        reg.finish_task(task, ERROR, now=6.0)  # ignored: already finished
        assert hits == [COMPLETED]
        assert task.result == 42
        assert task.status == COMPLETED
        assert task.duration == 5.0

    def test_finish_fiber(self):
        reg = ProcessRegistry()
        task = reg.new_task("WF", None, 0.0)
        fiber = reg.new_fiber(task, 0.0)
        reg.finish_fiber(fiber, ERROR, now=2.0, error="boom")
        assert fiber.finished
        assert fiber.error == "boom"
        reg.finish_fiber(fiber, COMPLETED, now=3.0)  # no-op
        assert fiber.status == ERROR

    def test_counts_and_active(self):
        reg = ProcessRegistry()
        t1 = reg.new_task("WF", None, 0.0)
        t2 = reg.new_task("WF", None, 0.0)
        reg.finish_task(t1, TERMINATED, 1.0)
        assert reg.counts() == {TERMINATED: 1, PENDING: 1}
        assert reg.active_tasks() == [t2]

    def test_statuses(self):
        reg = ProcessRegistry()
        task = reg.new_task("WF", None, 0.0)
        assert not task.finished
        task.status = RUNNING
        assert not task.finished
        reg.finish_task(task, COMPLETED, 1.0)
        assert task.finished
