"""Tests for the Section 5 future-work extensions.

The paper closes with a list of planned improvements; this reproduction
implements four of them, each off by default (the paper's production
behaviour) and switchable:

1. locality-aware placement (``placement="affinity"``) — "devising a
   way to move the processing work to the last location of the data";
2. adaptive migration (``migration_policy="adaptive"``) — "have Vinz
   automatically learn which requests ... do or do not benefit from
   task migration";
3. sibling chaining (``for-each ... :strategy :chain``) — "as the child
   fiber died, it could simply spawn whatever sibling fiber is next
   without involving the parent";
4. deadline-aware scheduling (``scheduling_policy="edf"``) — FCFS "has
   been shown to be suboptimal in the presence of deadlines" (the
   paper's references [7] and [8]).
"""

import pytest

from repro.bluebox.services import simple_service
from repro.vinz.api import VinzEnvironment

MULTI_HOP = """
(defun main (params)
  (dotimes (i 6) (workflow-sleep 0.2))
  :done)
"""

FANOUT = """
(defun main (params)
  (for-each (x in params %STRATEGY%) (compute 0.5) (* x x)))
"""


class TestAffinityPlacement:
    def test_affinity_improves_mutable_hit_rate(self):
        rates = {}
        for placement in ("balanced", "affinity"):
            env = VinzEnvironment(nodes=6, seed=2, placement=placement)
            env.deploy_workflow("W", MULTI_HOP)
            for _ in range(4):
                env.run("W", None)
            rates[placement] = env.cache_hit_rates()["mutable"]
        assert rates["affinity"] > rates["balanced"]
        assert rates["affinity"] > 0.9  # nearly every resume is local

    def test_affinity_hint_counted(self):
        env = VinzEnvironment(nodes=4, seed=3, placement="affinity")
        env.deploy_workflow("W", MULTI_HOP)
        env.run("W", None)
        hits = env.cluster.counters.get("placement.affinity-hit")
        assert hits > 0

    def test_affinity_is_soft_busy_node_falls_back(self):
        """When the preferred node is busy, work goes elsewhere —
        affinity must never deadlock or starve."""
        env = VinzEnvironment(nodes=2, seed=4, placement="affinity")
        env.deploy_workflow("W", """
            (defun main (params)
              (for-each (x in params) (compute 1.0) x))""",
            spawn_limit=8)
        assert env.call("W", [1, 2, 3, 4, 5, 6]) == [1, 2, 3, 4, 5, 6]
        misses = env.cluster.counters.get("placement.affinity-miss")
        assert misses >= 0  # fallback path exists and is harmless

    def test_affinity_survives_node_failure(self):
        """A dead preferred node must not strand the fiber."""
        env = VinzEnvironment(nodes=3, seed=5, placement="affinity")
        env.deploy_workflow("W", MULTI_HOP)
        task = env.start("W", None)
        env.cluster.run_until(
            lambda: any(e.kind == "fiber-suspend"
                        for e in env.cluster.trace.events))
        fiber = env.registry.fibers_of(task)[0]
        env.fail_node(fiber.last_node)
        assert env.wait_for_task(task).status == "completed"

    def test_unknown_placement_rejected(self):
        with pytest.raises(ValueError):
            VinzEnvironment(nodes=1, placement="psychic")


class TestAdaptiveMigration:
    def _env(self, policy):
        env = VinzEnvironment(nodes=4, seed=6)
        env.migration_policy = policy

        def fast(ctx, body):
            ctx.charge(0.001)
            return "fast"

        def slow(ctx, body):
            ctx.charge(2.0)
            return "slow"

        env.deploy_service(simple_service(
            "Mixed", {"Fast": fast, "Slow": slow}, namespace="urn:mixed"))
        env.deploy_workflow("W", """
            (deflink M :wsdl "urn:mixed")
            (defun main (params)
              (dotimes (i 4) (M-Fast-Method))
              (M-Slow-Method))""")
        return env

    def test_programmer_policy_always_migrates(self):
        env = self._env("programmer")
        env.call("W", None)
        # every service call migrated: 5 ResumeFromCalls
        assert env.cluster.counters.get("op.W.ResumeFromCall") == 5

    def test_adaptive_learns_to_skip_migration_for_fast_ops(self):
        env = self._env("adaptive")
        env.call("W", None)   # first task explores
        env.call("W", None)   # second task exploits
        env.call("W", None)
        # fast ops stopped migrating after the first observation;
        # the slow op still migrates every time
        resumes = env.cluster.counters.get("op.W.ResumeFromCall")
        sync_fast = env.cluster.counters.get("sync.Mixed.Fast")
        assert sync_fast >= 8   # most fast calls went synchronous
        assert resumes < 15     # far fewer migrations than programmer mode
        # the learner's table has both operations
        assert any(a.endswith(":Fast") for a in env.service_latency)
        assert any(a.endswith(":Slow") for a in env.service_latency)

    def test_adaptive_keeps_migrating_slow_ops(self):
        env = self._env("adaptive")
        for _ in range(3):
            env.call("W", None)
        slow_latency = [v for k, v in env.service_latency.items()
                        if k.endswith(":Slow")][0]
        assert slow_latency > env.migration_threshold
        assert env.should_migrate("urn:mixed:Slow") is True
        assert env.should_migrate("urn:mixed:Fast") is False

    def test_unknown_operation_migrates_to_explore(self):
        env = self._env("adaptive")
        assert env.should_migrate("urn:never-seen:Op") is True

    def test_ewma_update(self):
        env = VinzEnvironment(nodes=1, seed=0)
        env.record_service_latency("a:Op", 1.0)
        assert env.service_latency["a:Op"] == 1.0
        env.record_service_latency("a:Op", 0.0)
        assert 0.5 < env.service_latency["a:Op"] < 1.0  # smoothed


class TestSiblingChaining:
    def _run(self, strategy, items, spawn_limit=2, seed=7):
        env = VinzEnvironment(nodes=4, seed=seed)
        source = FANOUT.replace("%STRATEGY%",
                                ":strategy :chain" if strategy == "chain"
                                else "")
        env.deploy_workflow("W", source, spawn_limit=spawn_limit)
        result = env.call("W", items)
        return env, result

    def test_chain_results_match_awake(self):
        items = [1, 2, 3, 4, 5, 6, 7]
        _, chain = self._run("chain", items)
        _, awake = self._run("awake", items)
        assert chain == awake == [x * x for x in items]

    def test_chain_single_parent_wakeup(self):
        """N children cost 1 AwakeFiber instead of N."""
        env, _ = self._run("chain", list(range(8)))
        assert env.cluster.counters.get("op.W.AwakeFiber") == 1

    def test_awake_strategy_wakes_parent_per_child(self):
        env, _ = self._run("awake", list(range(8)))
        assert env.cluster.counters.get("op.W.AwakeFiber") >= 8

    def test_chain_respects_spawn_limit(self):
        """At most `limit` chain children run concurrently."""
        env, _ = self._run("chain", list(range(6)), spawn_limit=2)
        events = [e for e in env.cluster.trace.events
                  if e.kind in ("fiber-run", "fiber-complete")
                  and e.detail.get("fiber") != "fiber-1"]
        running = 0
        peak = 0
        for event in events:
            if event.kind == "fiber-run":
                running += 1
                peak = max(peak, running)
            else:
                running -= 1
        assert peak <= 2

    def test_chain_parent_suspends_once(self):
        env, _ = self._run("chain", list(range(6)))
        parent_suspends = [e for e in env.cluster.trace.events
                           if e.kind == "fiber-suspend"
                           and e.detail.get("fiber") == "fiber-1"]
        assert len(parent_suspends) == 1

    def test_chain_empty_sequence(self):
        _, result = self._run("chain", [])
        assert result == []

    def test_chain_child_failure_surfaces(self):
        from repro.vinz.api import WorkflowError

        env = VinzEnvironment(nodes=4, seed=8)
        env.deploy_workflow("W", """
            (defun main (params)
              (for-each (x in params :strategy :chain)
                (if (= x 3) (error "bad") x)))""")
        with pytest.raises(WorkflowError):
            env.call("W", [1, 2, 3])

    def test_chain_with_chunking_rejected(self):
        from repro.lang.errors import CompileError

        env = VinzEnvironment(nodes=2, seed=9)
        with pytest.raises(CompileError):
            env.deploy_workflow("W", """
                (defun main (params)
                  (for-each (x in params :chunk-size 2 :strategy :chain)
                    x))""")


class TestDeadlineScheduling:
    def _run_batch(self, policy, seed=14):
        """10 one-second tasks submitted together on a 2-slot cluster;
        deadlines are INVERSE to submission order (the last-submitted
        task has the tightest deadline), so FCFS misses what EDF saves.
        All Starts are enqueued before the simulation runs, so the
        RunFibers genuinely compete in the queue."""
        env = VinzEnvironment(nodes=1, slots=2, seed=seed, trace=False)
        env.scheduling_policy = policy
        env.edf_horizon = 12.0
        env.deploy_workflow("W", """
            (defun main (params) (compute 1.0) :done)""")
        n = 10
        deadlines = []
        for i in range(n):
            deadline = 2.0 + (n - 1 - i) * 0.7  # inverse to submit order
            deadlines.append(deadline)
            env.cluster.send("W", "Start",
                             {"params": i, "deadline": deadline})
        env.cluster.run_until_idle()
        misses = 0
        for task, deadline in zip(env.registry.tasks.values(), deadlines):
            assert task.status == "completed"
            if task.finished_at > deadline:
                misses += 1
        return misses

    def test_edf_reduces_deadline_misses(self):
        fcfs = self._run_batch("fcfs")
        edf = self._run_batch("edf")
        assert edf < fcfs

    def test_fcfs_is_default(self):
        env = VinzEnvironment(nodes=1)
        assert env.scheduling_policy == "fcfs"

    def test_priority_mapping(self):
        env = VinzEnvironment(nodes=1)
        env.scheduling_policy = "edf"
        env.edf_horizon = 60.0
        from repro.vinz.task import TaskRecord

        urgent = TaskRecord(id="t", workflow="W", params=None, deadline=0.0)
        relaxed = TaskRecord(id="t2", workflow="W", params=None,
                             deadline=1000.0)
        none = TaskRecord(id="t3", workflow="W", params=None)
        assert env.message_priority(urgent, 5) == 1
        assert env.message_priority(relaxed, 5) == 8
        assert env.message_priority(none, 5) == 5

    def test_fcfs_ignores_deadlines(self):
        env = VinzEnvironment(nodes=1)
        from repro.vinz.task import TaskRecord

        task = TaskRecord(id="t", workflow="W", params=None, deadline=0.0)
        assert env.message_priority(task, 5) == 5


class TestFiberMailboxes:
    """Extension 5: 'Workflow authors have requested lighter-weight
    cross-process communication mechanisms' (Section 5)."""

    def test_ping_pong(self):
        env = VinzEnvironment(nodes=3, seed=15)
        env.deploy_workflow("W", """
            (defun pong-loop (parent)
              (loop
                (let ((m (receive-message)))
                  (if (eq m :stop)
                      (return :ponged)
                      (send-message parent (+ m 100))))))
            (defun main (params)
              (let* ((me (get-process-id))
                     (child (fork-and-exec #'pong-loop :argument me)))
                (send-message child 1)
                (let ((a (receive-message)))
                  (send-message child 2)
                  (let ((b (receive-message)))
                    (send-message child :stop)
                    (list a b (join-process child))))))""")
        from repro.lang.symbols import Keyword

        assert env.call("W", None) == [101, 102, Keyword("ponged")]

    def test_messages_queue_in_order(self):
        env = VinzEnvironment(nodes=2, seed=16)
        env.deploy_workflow("W", """
            (defun main (params)
              (let ((me (get-process-id)))
                ;; a child that fires three messages at us
                (fork-and-exec
                  (lambda (parent)
                    (send-message parent :a)
                    (send-message parent :b)
                    (send-message parent :c))
                  :argument me)
                (list (receive-message) (receive-message)
                      (receive-message))))""")
        from repro.lang.symbols import Keyword as K

        assert env.call("W", None) == [K("a"), K("b"), K("c")]

    def test_receive_fast_path_no_suspend(self):
        """A message already in the mailbox is consumed without a
        yield: the receiver sleeps (the message lands during the sleep,
        appended without waking it), then its receive pops directly --
        so the child's only persisted suspension is the sleep."""
        env = VinzEnvironment(nodes=2, seed=17)
        env.deploy_workflow("W", """
            (defun main (params)
              (let ((child (fork-and-exec
                             (lambda (x)
                               (workflow-sleep 0.5)
                               (receive-message))
                             :arguments (list nil))))
                (send-message child :gift)
                (join-process child)))""")
        from repro.lang.symbols import Keyword

        assert env.call("W", None) == Keyword("gift")
        child = [f for f in env.registry.fibers.values()
                 if f.parent_id is not None][0]
        assert child.version == 1  # the sleep; receive never suspended

    def test_message_to_finished_fiber_dropped(self):
        env = VinzEnvironment(nodes=2, seed=18)
        env.deploy_workflow("W", """
            (defun main (params)
              (let ((child (fork-and-exec (lambda (x) :done)
                                          :arguments (list nil))))
                (join-process child)
                (send-message child :too-late)
                :ok))""")
        from repro.lang.symbols import Keyword

        assert env.call("W", None) == Keyword("ok")

    def test_no_duplicate_delivery_under_lock_contention(self):
        """The regression this feature shipped with: a DeliverMessage
        re-queued against a locked receiver must not duplicate the
        payload."""
        env = VinzEnvironment(nodes=4, seed=19)
        env.deploy_workflow("W", """
            (defun main (params)
              (let ((me (get-process-id)))
                (fork-and-exec
                  (lambda (parent)
                    (dotimes (i 5) (send-message parent i)))
                  :argument me)
                (compute 0.5)  ; stay busy so deliveries hit our lock
                (list (receive-message) (receive-message)
                      (receive-message) (receive-message)
                      (receive-message))))""")
        assert env.call("W", None) == [0, 1, 2, 3, 4]

    def test_mailbox_cheaper_than_task_variables(self):
        """The motivation: task variables have 'a very high
        synchronization overhead for mutation'; mailboxes avoid the
        store+lock round trips."""
        def run(source):
            env = VinzEnvironment(nodes=3, seed=20)
            env.deploy_workflow("W", source)
            env.call("W", None)
            return env

        taskvar_env = run("""
            (deftaskvar box)
            (defun main (params)
              (dotimes (i 10) (setf ^box^ i))
              ^box^)""")
        mailbox_env = run("""
            (defun main (params)
              (let ((me (get-process-id)))
                (fork-and-exec
                  (lambda (parent)
                    (dotimes (i 10) (send-message parent i)))
                  :argument me)
                (let ((last nil))
                  (dotimes (i 10) (setq last (receive-message)))
                  last)))""")
        # task vars: one locked store write per mutation
        assert taskvar_env.counters.get("taskvar.writes") == 10
        assert mailbox_env.counters.get("taskvar.writes") == 0
        assert mailbox_env.counters.get("mailbox.delivered") == 10
        # the mailbox path writes far less to the shared store
        assert mailbox_env.store.writes < taskvar_env.store.writes


class TestAutoChunkSizing:
    """Extension 6 (Section 5): 'The for-each chunking function should
    also dynamically optimize chunk sizes based on the processing time
    of the body.'"""

    def _run(self, items, per_item, target=2.0, nodes=6):
        env = VinzEnvironment(nodes=nodes, seed=22)
        env.deploy_workflow("W", f"""
            (defun main (params)
              (for-each (x in params :chunk-size :auto)
                (compute {per_item})
                (* x 2)))""", spawn_limit=8, auto_chunk_target=target)
        result = env.call("W", items)
        task = list(env.registry.tasks.values())[0]
        decisions = env.cluster.trace.of_kind("auto-chunk")
        return env, result, task, decisions

    def test_results_correct_and_ordered(self):
        items = list(range(15))
        _, result, _, _ = self._run(items, per_item=0.5)
        assert result == [x * 2 for x in items]

    def test_chunk_size_tracks_body_time(self):
        """Slow bodies get small chunks; fast bodies get large ones."""
        _, _, _, slow = self._run(list(range(12)), per_item=2.0)
        _, _, _, fast = self._run(list(range(12)), per_item=0.05)
        assert slow[0].detail["size"] < fast[0].detail["size"]
        # slow: ~2s per item with a 2s target -> singleton chunks
        assert slow[0].detail["size"] == 1
        # fast: many items per chunk
        assert fast[0].detail["size"] >= 10

    def test_fewer_fibers_than_unchunked_for_fast_items(self):
        items = list(range(30))
        _, _, task, _ = self._run(items, per_item=0.05)
        # unchunked would be 31 fibers; auto chunking collapses the
        # fast remainder into a few chunk fibers
        assert len(task.fiber_ids) < 10

    def test_small_inputs_skip_the_probe(self):
        _, result, task, decisions = self._run([1, 2, 3], per_item=0.5)
        assert result == [2, 4, 6]
        assert not decisions  # plain distribution, no probe phase

    def test_size_clamped(self):
        env = VinzEnvironment(nodes=4, seed=23)
        env.deploy_workflow("W", """
            (defun main (params)
              (for-each (x in params :chunk-size :auto)
                x))""", auto_chunk_target=1000.0)
        result = env.call("W", list(range(10)))
        assert result == list(range(10))
        sizes = [e.detail["size"]
                 for e in env.cluster.trace.of_kind("auto-chunk")]
        assert all(1 <= s <= 64 for s in sizes)
