"""deflink tests (paper Section 3.3 / Listing 2)."""

import pytest

from repro.bluebox.services import Service, ServiceFault, simple_service
from repro.lang.errors import CompileError
from repro.lang.symbols import Keyword, Symbol
from repro.vinz.api import VinzEnvironment, WorkflowError

S = Symbol
K = Keyword


def security_manager():
    """A stand-in for the paper's SecurityManager service."""
    svc = Service("SecurityManager",
                  namespace="urn:security-manager-service",
                  doc="Session management.")

    def list_sessions(ctx, body):
        ctx.charge(0.01)
        realm = body.get("WithinRealm") or "default"
        return [f"session-{realm}-1", f"session-{realm}-2"]

    svc.add_operation(
        "ListSessions", list_sessions,
        doc="Returns a list of sessions visible to the caller.",
        parameters=["FilterParams", "WithinRealm"])
    svc.add_operation(
        "InternalOnly", lambda ctx, body: None,
        doc="Not invokable from Gozer.", bridgeable=False)
    return svc


@pytest.fixture
def env():
    environment = VinzEnvironment(nodes=3, seed=9)
    environment.deploy_service(security_manager())
    return environment


class TestGeneratedFunctions:
    def test_method_function_generated(self, env):
        env.deploy_workflow("W", """
            (deflink SM :wsdl "urn:security-manager-service"
                        :port "SecurityManager")
            (defun main (params)
              (SM-ListSessions-Method :WithinRealm "prod"))""")
        assert env.call("W", None) == ["session-prod-1", "session-prod-2"]

    def test_invoker_function_generated(self, env):
        env.deploy_workflow("W", """
            (deflink SM :wsdl "urn:security-manager-service")
            (defun main (params)
              (let ((msg (make-service-message "ListSessions")))
                (. msg (set "WithinRealm" "x"))
                (SM-ListSessions :message msg)))""")
        assert env.call("W", None) == ["session-x-1", "session-x-2"]

    def test_documentation_preserved(self, env):
        """'the documentation specified in the interface document is
        preserved for the Gozer programmer' (Section 3.3)."""
        env.deploy_workflow("W", "(defun main (p) p)" + """
            (deflink SM :wsdl "urn:security-manager-service")""")
        runtime = env.workflows["W"].runtime
        fn = runtime.global_env.lookup(S("SM-ListSessions-Method"))
        assert "Returns a list of sessions" in fn.doc

    def test_keyword_arguments_match_wsdl_parts(self, env):
        env.deploy_workflow("W", """
            (deflink SM :wsdl "urn:security-manager-service")
            (defun main (params)
              (SM-ListSessions-Method))""")  # all params optional
        assert env.call("W", None) == ["session-default-1", "session-default-2"]

    def test_unknown_namespace_fails_at_load(self, env):
        with pytest.raises(Exception):
            env.deploy_workflow("W", """
                (deflink X :wsdl "urn:does-not-exist")
                (defun main (p) p)""")


class TestErrorStubs:
    def test_unbridgeable_op_not_defined_as_function(self, env):
        env.deploy_workflow("W", """
            (deflink SM :wsdl "urn:security-manager-service")
            (defun main (p) p)""")
        runtime = env.workflows["W"].runtime
        assert runtime.global_env.lookup_or(S("SM-InternalOnly")) is None

    def test_unbridgeable_op_use_is_compile_time_error(self, env):
        """'if and only if the workflow tried to invoke that operation,
        a compile-time error will occur and the workflow will not be
        loaded' (Section 3.3)."""
        with pytest.raises(CompileError):
            env.deploy_workflow("W", """
                (deflink SM :wsdl "urn:security-manager-service")
                (defun main (p) (SM-InternalOnly))""")

    def test_unused_unbridgeable_op_loads_fine(self, env):
        env.deploy_workflow("W", """
            (deflink SM :wsdl "urn:security-manager-service")
            (defun main (p) :loaded)""")
        assert env.call("W", None) == K("loaded")


class TestFaultIntegration:
    def test_service_fault_signalled_as_condition(self, env):
        def denied(ctx, body):
            raise ServiceFault("{urn:flaky}Denied", "no access")

        env.deploy_service(simple_service("Flaky", {"Check": denied},
                                          namespace="urn:flaky"))
        env.deploy_workflow("W", """
            (deflink F :wsdl "urn:flaky")
            (defun main (params)
              (handler-case (F-Check-Method)
                (service-error (c) (list :qname (condition-qname c)
                                         :msg (condition-message c)))))""")
        result = env.call("W", None)
        assert result == [K("qname"), "{urn:flaky}Denied",
                          K("msg"), "no access"]

    def test_qname_handler_matching(self, env):
        """Listing 6 style: handlers match on XML QNames."""
        def denied(ctx, body):
            raise ServiceFault("{urn:flaky}Denied", "no")

        env.deploy_service(simple_service("Flaky", {"Check": denied},
                                          namespace="urn:flaky"))
        env.deploy_workflow("W", """
            (deflink F :wsdl "urn:flaky")
            (defun main (params)
              (handler-case (F-Check-Method)
                ("{urn:flaky}Denied" (c) :matched-by-qname)))""")
        assert env.call("W", None) == K("matched-by-qname")

    def test_unhandled_fault_fails_task(self, env):
        def denied(ctx, body):
            raise ServiceFault("{urn:flaky}Denied", "no")

        env.deploy_service(simple_service("Flaky", {"Check": denied},
                                          namespace="urn:flaky"))
        env.deploy_workflow("W", """
            (deflink F :wsdl "urn:flaky")
            (defun main (params) (F-Check-Method))""")
        with pytest.raises(WorkflowError):
            env.call("W", None)


class TestSyncModes:
    def _count_service(self, env):
        calls = {"n": 0}

        def op(ctx, body):
            calls["n"] += 1
            return calls["n"]

        env.deploy_service(simple_service("Cnt", {"Hit": op},
                                          namespace="urn:cnt"))
        return calls

    def test_static_sync_mode_skips_migration(self, env):
        self._count_service(env)
        env.deploy_workflow("W", """
            (deflink C :wsdl "urn:cnt" :sync t)
            (defun main (params) (C-Hit-Method))""")
        assert env.call("W", None) == 1
        # no ResumeFromCall happened: the call was synchronous
        assert env.cluster.counters.get("op.W.ResumeFromCall") == 0
        assert env.cluster.counters.get("sync.Cnt.Hit") == 1

    def test_dynamic_force_sync(self, env):
        """*vinz-force-sync* switches to synchronous at run time."""
        self._count_service(env)
        env.deploy_workflow("W", """
            (deflink C :wsdl "urn:cnt")
            (defun main (params)
              (let ((*vinz-force-sync* t))
                (C-Hit-Method)))""")
        assert env.call("W", None) == 1
        assert env.cluster.counters.get("op.W.ResumeFromCall") == 0

    def test_async_by_default_on_fiber_thread(self, env):
        self._count_service(env)
        env.deploy_workflow("W", """
            (deflink C :wsdl "urn:cnt")
            (defun main (params) (C-Hit-Method))""")
        assert env.call("W", None) == 1
        assert env.cluster.counters.get("op.W.ResumeFromCall") == 1

    def test_background_thread_goes_sync_automatically(self, env):
        """Section 3.2: from a future's thread, Vinz 'detects this and
        automatically makes a standard synchronous request'."""
        self._count_service(env)
        env.deploy_workflow("W", """
            (deflink C :wsdl "urn:cnt")
            (defun main (params)
              (touch (future (C-Hit-Method))))""")
        assert env.call("W", None) == 1
        assert env.cluster.counters.get("op.W.ResumeFromCall") == 0
        assert env.cluster.counters.get("sync.Cnt.Hit") == 1


class TestRestartsFromDeflink:
    def test_retry_restart_bound(self, env):
        state = {"fails": 2}

        def flaky(ctx, body):
            if state["fails"] > 0:
                state["fails"] -= 1
                raise ServiceFault("{urn:fl}Connect", "reset")
            return "ok"

        env.deploy_service(simple_service("Fl", {"Go": flaky},
                                          namespace="urn:fl"))
        env.deploy_workflow("W", """
            (deflink F :wsdl "urn:fl")
            (defun main (params)
              (handler-bind ((error (lambda (c) (invoke-restart 'retry))))
                (F-Go-Method)))""")
        assert env.call("W", None) == "ok"

    def test_ignore_restart_bound(self, env):
        def always_fails(ctx, body):
            raise ServiceFault("{urn:fl}Boom", "x")

        env.deploy_service(simple_service("Fl", {"Go": always_fails},
                                          namespace="urn:fl"))
        env.deploy_workflow("W", """
            (deflink F :wsdl "urn:fl")
            (defun main (params)
              (handler-bind ((error (lambda (c) (invoke-restart 'ignore))))
                (list :result (F-Go-Method))))""")
        assert env.call("W", None) == [K("result"), None]
