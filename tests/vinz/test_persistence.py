"""Fiber persistence codec tests (paper Section 4.2)."""

import pytest

from repro.gvm.runtime import make_runtime
from repro.vinz.persistence import (
    CodeRegistry,
    FiberCodec,
    HostFunctionRegistry,
    blob_codec_name,
    compare_codecs,
)


@pytest.fixture(params=["none", "gzip", "deflate", "custom"])
def codec(request):
    return FiberCodec(request.param)


SAMPLE_STATES = [
    {"a": 1, "b": [1, 2, 3], "c": "text" * 10},
    list(range(100)),
    {"nested": {"deep": {"deeper": [None, True, 2.5]}}},
]


class TestRoundTrip:
    @pytest.mark.parametrize("state", SAMPLE_STATES)
    def test_dumps_loads(self, codec, state):
        assert codec.loads(codec.dumps(state)) == state

    def test_blob_framed_with_magic(self, codec):
        blob = codec.dumps({"x": 1})
        assert blob[:4] == b"GZR1"

    def test_codec_name_identifiable(self, codec):
        blob = codec.dumps([1])
        assert blob_codec_name(blob) == codec.codec

    def test_any_codec_decodes_any_blob(self):
        """Blobs are self-describing: a deflate-configured node can read
        a gzip blob another node wrote."""
        registry = CodeRegistry()
        hosts = HostFunctionRegistry()
        writer = FiberCodec("gzip", registry=registry, hosts=hosts)
        reader = FiberCodec("deflate", registry=registry, hosts=hosts)
        assert reader.loads(writer.dumps([1, 2])) == [1, 2]

    def test_bad_blob_rejected(self, codec):
        with pytest.raises(ValueError):
            codec.loads(b"NOPE" + b"x" * 10)

    def test_unknown_codec_name_rejected(self):
        with pytest.raises(ValueError):
            FiberCodec("zstd")

    def test_statistics(self, codec):
        codec.dumps([1, 2, 3])
        codec.loads(codec.dumps([4]))
        assert codec.encoded == 2
        assert codec.decoded == 1
        assert codec.raw_bytes > 0
        assert codec.stored_bytes > 0


def _continuation_state():
    """A realistic payload: a captured continuation of a real program."""
    rt = make_runtime(deterministic=True)
    rt.eval_string("""
        (defun helper (x) (* x 2))
        (defun work (items)
          (let ((acc (list)))
            (dolist (item items)
              (append! acc (helper item)))
            (yield :checkpoint)
            acc))""")
    result = rt.start("(work (list 1 2 3 4 5 6 7 8 9 10))")
    return rt, result.continuation


class TestContinuationPayloads:
    def test_every_codec_round_trips_a_continuation(self):
        rt, continuation = _continuation_state()
        registry = CodeRegistry()
        hosts = HostFunctionRegistry()
        from repro.gvm.frames import GozerFunction

        for name, value in rt.global_env.variables.items():
            if isinstance(value, GozerFunction):
                registry.register_tree(value.code)
            elif callable(value):
                hosts.register(name.name, value)
        for codec_name in FiberCodec.NAMES:
            codec = FiberCodec(codec_name, registry=registry, hosts=hosts)
            restored = codec.loads(codec.dumps(continuation))
            done = rt.resume(restored, None)
            assert done.value == [2, 4, 6, 8, 10, 12, 14, 16, 18, 20], codec_name

    def test_compression_shrinks_blobs(self):
        """Section 4.2: compression is worth it — the blob is much
        smaller than the raw serialization."""
        rt, continuation = _continuation_state()
        sizes = {}
        for codec_name in ("none", "gzip", "deflate"):
            codec = FiberCodec(codec_name)
            sizes[codec_name] = len(codec.dumps(continuation))
        assert sizes["deflate"] < sizes["none"]
        assert sizes["gzip"] < sizes["none"]

    def test_custom_format_smallest(self):
        """The custom format (code by reference) beats plain deflate,
        like the paper's custom serialization for common objects."""
        rt, continuation = _continuation_state()
        registry = CodeRegistry()
        from repro.gvm.frames import GozerFunction

        for value in rt.global_env.variables.values():
            if isinstance(value, GozerFunction):
                registry.register_tree(value.code)
        deflate = FiberCodec("deflate")
        custom = FiberCodec("custom", registry=registry)
        assert len(custom.dumps(continuation)) < len(deflate.dumps(continuation))


class TestCodeRegistry:
    def test_register_idempotent(self):
        from repro.lang.bytecode import CodeObject

        registry = CodeRegistry()
        code = CodeObject("f")
        k1 = registry.register(code)
        k2 = registry.register(code)
        assert k1 == k2
        assert registry.lookup(k1) is code
        assert len(registry) == 1

    def test_register_tree_includes_nested(self):
        from repro.lang.compiler import Compiler
        from repro.lang.reader import read_string

        code = Compiler().compile_toplevel(
            read_string("(lambda (x) (lambda (y) (+ x y)))"))
        registry = CodeRegistry()
        registry.register_tree(code)
        assert len(registry) == 3

    def test_key_for_unknown_is_none(self):
        from repro.lang.bytecode import CodeObject

        assert CodeRegistry().key_for(CodeObject("x")) is None


class TestHostFunctionRegistry:
    def test_register_lookup(self):
        hosts = HostFunctionRegistry()
        fn = lambda: 1  # noqa: E731
        hosts.register("f", fn)
        assert hosts.key_for(fn) == "f"
        assert hosts.lookup("f") is fn
        assert len(hosts) == 1

    def test_unregistered_function_pickled_by_value_fails_for_locals(self):
        """A local closure NOT in the registry can't be pickled — the
        registry is what makes fiber blobs with intrinsic references
        work."""
        import pickle

        codec = FiberCodec("deflate")

        def local_fn():
            return 1

        with pytest.raises(Exception):
            codec.dumps({"fn": local_fn})


class TestCompareCodecs:
    def test_reports_all_codecs(self):
        results = compare_codecs({"x": list(range(200))})
        assert set(results) == {"none", "gzip", "deflate", "custom"}
        for metrics in results.values():
            assert metrics["bytes"] > 0
            assert metrics["encode_s"] >= 0
            assert metrics["decode_s"] >= 0

    def test_compressed_smaller_than_raw(self):
        results = compare_codecs({"x": ["repetitive data"] * 500})
        assert results["deflate"]["bytes"] < results["none"]["bytes"]
        assert results["gzip"]["bytes"] < results["none"]["bytes"]
