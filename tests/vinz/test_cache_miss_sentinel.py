"""Regression tests: a cached ``None`` is a cache *hit*.

``LruCache.get`` used to return ``None`` both for absent keys and for
keys whose cached value was legitimately ``None``, so a task whose
immutable environment serialized to ``None`` was re-fetched from the
store on every delivery and counted as a miss in the paper's Section
4.2 hit-rate statistics.  The MISS sentinel disambiguates."""

from repro.vinz.cache import MISS, FiberCache, LruCache


class TestMissSentinel:
    def test_cached_none_is_a_hit(self):
        cache = LruCache()
        cache.put("k", None)
        assert cache.get("k", MISS) is None
        assert cache.hits == 1 and cache.misses == 0

    def test_absent_key_returns_sentinel(self):
        cache = LruCache()
        assert cache.get("nope", MISS) is MISS
        assert cache.misses == 1

    def test_sentinel_reachable_from_both_classes(self):
        assert LruCache.MISS is MISS
        assert FiberCache.MISS is MISS

    def test_contains_does_not_disturb_stats_or_order(self):
        cache = LruCache(capacity=2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert "a" in cache and "c" not in cache
        assert cache.hits == 0 and cache.misses == 0
        cache.put("c", 3)  # "a" is still LRU: __contains__ didn't touch it
        assert "a" not in cache

    def test_default_still_none_for_legacy_callers(self):
        assert LruCache().get("absent") is None


class TestFiberCacheForwardsDefaults:
    def test_task_env_cached_none_round_trips(self):
        cache = FiberCache()
        cache.put_task_env("t1", None)
        assert cache.get_task_env("t1", FiberCache.MISS) is None
        assert cache.get_task_env("t2", FiberCache.MISS) is FiberCache.MISS

    def test_continuation_cached_none_round_trips(self):
        cache = FiberCache()
        cache.put_continuation("f1", 3, None)
        assert cache.get_continuation("f1", 3, MISS) is None
        assert cache.get_continuation("f1", 4, MISS) is MISS
