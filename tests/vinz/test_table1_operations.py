"""Table 1: the eight Vinz service operations, end to end."""

import pytest

from repro.bluebox.messagequeue import ReplyTo
from repro.vinz.api import VinzEnvironment, WorkflowError
from repro.vinz.task import COMPLETED, ERROR, TERMINATED

SIMPLE = """
(defun main (params)
  (+ 1 (or params 0)))
"""

SLOW = """
(defun main (params)
  (workflow-sleep 100)
  :done)
"""

CHILD_SPAWNING = """
(defun main (params)
  (for-each (x in params) (* x 10)))
"""


@pytest.fixture
def env():
    return VinzEnvironment(nodes=3, seed=5)


class TestStart:
    def test_start_returns_task_id_immediately(self, env):
        env.deploy_workflow("W", SLOW)
        task_id = env.start("W", None)
        task = env.registry.tasks[task_id]
        assert not task.finished  # asynchronous: still running

    def test_started_task_completes(self, env):
        env.deploy_workflow("W", SIMPLE)
        task_id = env.start("W", 41)
        task = env.wait_for_task(task_id)
        assert task.status == COMPLETED
        assert task.result == 42

    def test_start_creates_one_initial_fiber(self, env):
        env.deploy_workflow("W", SIMPLE)
        task_id = env.start("W", 0)
        env.wait_for_task(task_id)
        assert len(env.registry.tasks[task_id].fiber_ids) == 1

    def test_task_ids_unique(self, env):
        env.deploy_workflow("W", SIMPLE)
        ids = {env.start("W", i) for i in range(3)}
        assert len(ids) == 3


class TestRunAndCall:
    def test_run_blocks_until_done(self, env):
        env.deploy_workflow("W", SLOW)
        task_id = env.run("W", None)
        assert env.registry.tasks[task_id].finished

    def test_call_returns_last_result(self, env):
        env.deploy_workflow("W", SIMPLE)
        assert env.call("W", 9) == 10

    def test_call_failure_is_fault(self, env):
        env.deploy_workflow("W", '(defun main (p) (error "bad"))')
        with pytest.raises(WorkflowError):
            env.call("W", None)

    def test_call_with_list_params(self, env):
        env.deploy_workflow("W", CHILD_SPAWNING)
        assert env.call("W", [1, 2, 3]) == [10, 20, 30]


class TestTerminate:
    def test_terminate_running_task(self, env):
        env.deploy_workflow("W", SLOW)
        task_id = env.start("W", None)
        env.terminate(task_id)
        task = env.registry.tasks[task_id]
        assert task.status == TERMINATED

    def test_terminated_fibers_notice(self, env):
        """Queued fibers of a terminated task 'notice that the task has
        terminated in short order and also terminate' (Section 3.7)."""
        env.deploy_workflow("W", """
            (defun main (params)
              (for-each (x in params)
                (workflow-sleep 1000)
                x))""", spawn_limit=2)
        task_id = env.start("W", [1, 2, 3, 4])
        # let children get going
        env.cluster.run_until(
            lambda: len(env.registry.tasks[task_id].fiber_ids) > 1)
        env.terminate(task_id)
        env.cluster.run_until_idle()
        task = env.registry.tasks[task_id]
        for fiber in env.registry.fibers_of(task_id):
            assert fiber.finished

    def test_terminate_unknown_task_is_fault(self, env):
        env.deploy_workflow("W", SIMPLE)
        envelope = env.cluster.call("W", "Terminate", {"task": "nope"})
        assert not envelope.ok

    def test_terminate_finished_task_is_noop(self, env):
        env.deploy_workflow("W", SIMPLE)
        task_id = env.run("W", 1)
        env.terminate(task_id)
        assert env.registry.tasks[task_id].status == COMPLETED


class TestRunFiber:
    def test_runfiber_executes_workflow_code(self, env):
        env.deploy_workflow("W", SIMPLE)
        env.call("W", 1)
        runs = env.cluster.counters.get("op.W.RunFiber")
        assert runs >= 1

    def test_missing_main_is_fault(self, env):
        env.deploy_workflow("W", "(defun not-main () 1)")
        with pytest.raises(WorkflowError):
            env.call("W", None)

    def test_unknown_fiber_is_fault(self, env):
        env.deploy_workflow("W", SIMPLE)
        envelope = env.cluster.call("W", "RunFiber", {"fiber": "ghost"})
        assert not envelope.ok
        assert "NoSuchFiber" in envelope.fault_qname


class TestAwakeFiber:
    def test_children_awaken_parent(self, env):
        env.deploy_workflow("W", CHILD_SPAWNING)
        env.call("W", [1, 2, 3])
        awakes = env.cluster.counters.get("op.W.AwakeFiber")
        assert awakes >= 3  # one per child

    def test_explicit_awake_from_prelude(self, env):
        """Listing 3's (awake parent-pid) helper."""
        env.deploy_workflow("W", """
            (defun main (params)
              (let ((me (get-process-id)))
                (fork-and-exec (lambda (x) (awake me :payload))
                               :argument 1)
                (yield (%vinz-await))
                :awakened))""")
        assert env.call("W", None) == __import__(
            "repro.lang.symbols", fromlist=["Keyword"]).Keyword("awakened")


class TestResumeFromCall:
    def test_service_response_resumes_fiber(self, env):
        from repro.bluebox.services import simple_service

        def double(ctx, body):
            ctx.charge(0.5)
            return body.get("X", 0) * 2

        env.deploy_service(simple_service(
            "Math", {"Double": double}, namespace="urn:math-service",
            parameters={"Double": ["X"]}))
        env.deploy_workflow("W", """
            (deflink M :wsdl "urn:math-service")
            (defun main (params)
              (M-Double-Method :X params))""")
        assert env.call("W", 21) == 42
        assert env.cluster.counters.get("op.W.ResumeFromCall") == 1

    def test_fiber_suspended_while_service_runs(self, env):
        """Section 3.2: the fiber consumes no slot while the service
        processes — another task can use the node meanwhile."""
        from repro.bluebox.services import simple_service

        def slow(ctx, body):
            ctx.charge(10.0)
            return True

        env.deploy_service(simple_service(
            "Ext", {"Slow": slow}, namespace="urn:ext-service"))
        env.deploy_workflow("W", """
            (deflink E :wsdl "urn:ext-service")
            (defun main (params) (E-Slow-Method))""")
        task_id = env.start("W", None)
        # while the Slow service runs, the workflow's fiber is persisted
        # and not occupying any node slot
        env.cluster.run_until(
            lambda: any(e.kind == "fiber-suspend"
                        for e in env.cluster.trace.events))
        busy = sum(n.busy for n in env.cluster.nodes.values()
                   if "W" in n.services)
        # the only busy slot (if any) is the Ext service's, not the fiber
        suspended = [e for e in env.cluster.trace.events
                     if e.kind == "fiber-suspend"]
        assert suspended
        env.wait_for_task(task_id)


class TestJoinProcess:
    def test_join_fiber(self, env):
        env.deploy_workflow("W", """
            (defun main (params)
              (let ((child (fork-and-exec (lambda (x) (* x x))
                                          :argument 7)))
                (join-process child)))""")
        assert env.call("W", None) == 49

    def test_join_already_finished_fiber(self, env):
        env.deploy_workflow("W", """
            (defun main (params)
              (let ((child (fork-and-exec (lambda (x) x) :argument :fast)))
                ;; give the child time to finish first
                (workflow-sleep 10)
                (join-process child)))""")
        assert env.call("W", None) == __import__(
            "repro.lang.symbols", fromlist=["Keyword"]).Keyword("fast")

    def test_join_another_task(self, env):
        """JoinProcess works on 'any arbitrary process' — including a
        whole task of another workflow."""
        env.deploy_workflow("Inner", "(defun main (p) (* p 2))")
        env.deploy_workflow("Outer", """
            (defun main (params)
              (let ((inner-task (gethash "task"
                                  (%parse-wsdl-response
                                    (yield (%call-wsdl-operation-async
                                            "urn:inner-service:Start"
                                            (list :params 4)))))))
                (join-process inner-task)))""")
        # give Inner the expected namespace
        env.cluster.services["Inner"].namespace = "urn:inner-service"
        env.cluster.services["Inner"].wsdl.namespace = "urn:inner-service"
        assert env.call("Outer", None) == 8

    def test_join_unknown_process_is_error(self, env):
        env.deploy_workflow("W", """
            (defun main (params) (join-process "ghost-99"))""")
        with pytest.raises(WorkflowError):
            env.call("W", None)


class TestWsdlPublication:
    def test_all_eight_operations_published(self, env):
        """The workflow service's WSDL lists exactly Table 1."""
        env.deploy_workflow("W", SIMPLE)
        wsdl = env.cluster.get_wsdl("W")
        table1 = {
            "Start", "Run", "Call", "Terminate",
            "RunFiber", "AwakeFiber", "ResumeFromCall", "JoinProcess",
        }
        assert table1 <= set(wsdl.operations)
        # anything beyond Table 1 is a documented extension
        assert set(wsdl.operations) - table1 <= {"DeliverMessage"}

    def test_operation_docs_match_table1(self, env):
        env.deploy_workflow("W", SIMPLE)
        wsdl = env.cluster.get_wsdl("W")
        assert "Asynchronously begin" in wsdl.operations["Start"].doc
        assert "returning its last result" in wsdl.operations["Call"].doc
        assert "child fiber has completed" in wsdl.operations["AwakeFiber"].doc
