"""Task variable tests (paper Section 3.6)."""

import pytest

from repro.lang.symbols import Keyword
from repro.vinz.api import VinzEnvironment, WorkflowError

K = Keyword


@pytest.fixture
def env():
    return VinzEnvironment(nodes=3, seed=21)


class TestBasics:
    def test_default_value(self, env):
        env.deploy_workflow("W", """
            (deftaskvar counter "Counts things." 0)
            (defun main (params) ^counter^)""")
        assert env.call("W", None) == 0

    def test_set_and_read_back(self, env):
        env.deploy_workflow("W", """
            (deftaskvar flag)
            (defun main (params)
              (setf ^flag^ :set)
              ^flag^)""")
        assert env.call("W", None) == K("set")

    def test_setf_returns_value(self, env):
        env.deploy_workflow("W", """
            (deftaskvar v)
            (defun main (params) (setf ^v^ 42))""")
        assert env.call("W", None) == 42

    def test_undeclared_task_var_errors(self, env):
        env.deploy_workflow("W", """
            (defun main (params) (%get-task-var 'undeclared^))""")
        with pytest.raises(WorkflowError):
            env.call("W", None)

    def test_reader_macro_expansion(self, env):
        """^var^ reads as (%get-task-var 'var^) — Listing 5."""
        env.deploy_workflow("W", "(defun main (p) p)")
        service = env.workflows["W"]
        form = service.runtime.read("^exit-flag^")
        from repro.lang.symbols import Symbol

        assert form[0] is Symbol("%get-task-var")
        assert form[1][1] is Symbol("exit-flag^")

    def test_unbalanced_caret_is_reader_error(self, env):
        env.deploy_workflow("W", "(defun main (p) p)")
        service = env.workflows["W"]
        from repro.gvm.conditions import UnhandledConditionError

        with pytest.raises(UnhandledConditionError):
            service.runtime.read("^no-trailing-caret")


class TestCrossFiberVisibility:
    def test_child_sees_parent_write(self, env):
        """All fibers within a task 'will always see the latest value'."""
        env.deploy_workflow("W", """
            (deftaskvar shared "Shared state." :initial)
            (defun main (params)
              (setf ^shared^ :from-parent)
              (car (for-each (x in (list 1)) ^shared^)))""")
        assert env.call("W", None) == K("from-parent")

    def test_parent_sees_child_write(self, env):
        env.deploy_workflow("W", """
            (deftaskvar result-box)
            (defun main (params)
              (for-each (x in (list 7)) (setf ^result-box^ (* x x)))
              ^result-box^)""")
        assert env.call("W", None) == 49

    def test_isolation_between_tasks(self, env):
        """Task variables are per-task: two tasks don't share."""
        env.deploy_workflow("W", """
            (deftaskvar acc 0)
            (defun main (params)
              (setf ^acc^ (+ ^acc^ params))
              ^acc^)""")
        assert env.call("W", 5) == 5
        assert env.call("W", 3) == 3  # fresh task starts from default

    def test_value_survives_suspension(self, env):
        env.deploy_workflow("W", """
            (deftaskvar v)
            (defun main (params)
              (setf ^v^ :before-sleep)
              (workflow-sleep 10)
              ^v^)""")
        assert env.call("W", None) == K("before-sleep")


class TestOverheadAccounting:
    def test_writes_are_counted(self, env):
        env.deploy_workflow("W", """
            (deftaskvar v 0)
            (defun main (params)
              (dotimes (i 5) (setf ^v^ i))
              ^v^)""")
        env.call("W", None)
        assert env.counters.get("taskvar.writes") == 5
        assert env.counters.get("taskvar.reads") >= 1

    def test_mutation_has_high_sync_overhead(self, env):
        """Section 5: 'task variables ... have a very high
        synchronization overhead for mutation' — writes cost more
        simulated time than plain computation."""
        env.deploy_workflow("Writes", """
            (deftaskvar v 0)
            (defun main (params)
              (dotimes (i 50) (setf ^v^ i)))""")
        env.deploy_workflow("Plain", """
            (defun main (params)
              (let ((v 0)) (dotimes (i 50) (setq v i))))""")
        env.run("Writes", None)
        t_writes = env.cluster.kernel.now
        base = env.cluster.kernel.now
        env.run("Plain", None)
        t_plain = env.cluster.kernel.now - base
        assert t_writes > 5 * t_plain

    def test_docs_recorded(self, env):
        env.deploy_workflow("W", """
            (deftaskvar flag "A global flag.")
            (defun main (p) p)""")
        service = env.workflows["W"]
        assert service.task_var_docs["flag"] == "A global flag."
