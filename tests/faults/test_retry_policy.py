"""Unit tests: RetryPolicy backoff math and dead-letter accounting."""

import random

import pytest

from repro.bluebox.messagequeue import MessageQueue
from repro.faults.retry import RetryPolicy


class TestBackoffMath:
    def test_exponential_growth_without_jitter(self):
        policy = RetryPolicy(base_delay=0.1, multiplier=2.0, max_delay=100.0,
                             jitter=0.0)
        delays = [policy.backoff_delay(n) for n in range(1, 6)]
        assert delays == [0.1, 0.2, 0.4, 0.8, 1.6]

    def test_growth_is_bounded_by_max_delay(self):
        policy = RetryPolicy(base_delay=0.1, multiplier=2.0, max_delay=0.5,
                             jitter=0.0)
        assert policy.backoff_delay(50) == 0.5
        # and the bound also caps the jittered delay
        jittered = RetryPolicy(base_delay=0.1, multiplier=2.0, max_delay=0.5,
                               jitter=0.25)
        rng = random.Random(0)
        for attempt in range(1, 40):
            assert jittered.backoff_delay(attempt, rng) <= 0.5 * 1.25

    def test_first_attempt_uses_base_delay(self):
        policy = RetryPolicy(base_delay=0.07, multiplier=3.0, jitter=0.0)
        assert policy.backoff_delay(1) == pytest.approx(0.07)
        # attempt 0 (defensive) does not underflow the exponent
        assert policy.backoff_delay(0) == pytest.approx(0.07)

    def test_jitter_stays_within_band(self):
        policy = RetryPolicy(base_delay=1.0, multiplier=1.0, max_delay=1.0,
                             jitter=0.25)
        rng = random.Random(42)
        delays = [policy.backoff_delay(1, rng) for _ in range(200)]
        assert all(0.75 <= d <= 1.25 for d in delays)
        # jitter actually varies the delay
        assert len({round(d, 9) for d in delays}) > 1

    def test_jitter_is_deterministic_under_seeded_rng(self):
        policy = RetryPolicy.default()
        a = [policy.backoff_delay(n, random.Random(7)) for n in range(1, 6)]
        b = [policy.backoff_delay(n, random.Random(7)) for n in range(1, 6)]
        assert a == b

    def test_zero_jitter_ignores_rng(self):
        policy = RetryPolicy(jitter=0.0)
        rng = random.Random(1)
        before = rng.getstate()
        policy.backoff_delay(3, rng)
        assert rng.getstate() == before  # no draw — replay streams intact

    def test_platform_policy_matches_legacy_redelivery(self):
        policy = RetryPolicy.platform(redelivery_delay=0.05)
        assert policy.max_attempts is None
        for attempt in range(1, 10):
            assert policy.backoff_delay(attempt, random.Random(0)) == 0.05


class TestAttemptCapsAndTimeout:
    def test_allows_respects_own_cap(self):
        policy = RetryPolicy(max_attempts=3)
        assert policy.allows(2, fallback_cap=100)
        assert not policy.allows(3, fallback_cap=100)

    def test_allows_falls_back_to_message_cap(self):
        policy = RetryPolicy.platform()
        assert policy.allows(99, fallback_cap=100)
        assert not policy.allows(100, fallback_cap=100)

    def test_timeout_expiry(self):
        policy = RetryPolicy(timeout=2.0)
        assert not policy.expired(first_enqueued_at=1.0, now=2.5)
        assert policy.expired(first_enqueued_at=1.0, now=3.0)
        assert policy.expired(first_enqueued_at=1.0, now=10.0)

    def test_no_timeout_never_expires(self):
        policy = RetryPolicy(timeout=None)
        assert not policy.expired(first_enqueued_at=0.0, now=1e9)

    def test_with_max_attempts_is_nondestructive(self):
        policy = RetryPolicy.default()
        tighter = policy.with_max_attempts(2)
        assert tighter.max_attempts == 2
        assert policy.max_attempts == 8


class TestDeadLetterAccounting:
    def _message(self, queue, max_attempts=3):
        return queue.make_message("S", "Op", {}, max_attempts=max_attempts)

    def test_exhaustion_moves_message_to_dlq(self):
        queue = MessageQueue()
        msg = self._message(queue, max_attempts=3)
        assert queue.requeue(msg, now=0.0)       # attempt 1
        assert queue.requeue(msg, now=0.0)       # attempt 2
        assert not queue.requeue(msg, now=0.0)   # attempt 3: exhausted
        assert queue.dead_letters == [msg]
        assert queue.dead_letter_ids() == [msg.id]
        assert queue.dead_lettered == 1
        # the legacy poison-message statistic keeps counting
        assert queue.dropped == 1

    def test_redelivered_counts_only_successful_requeues(self):
        queue = MessageQueue()
        msg = self._message(queue, max_attempts=3)
        queue.requeue(msg, now=0.0)
        queue.requeue(msg, now=0.0)
        queue.requeue(msg, now=0.0)
        assert queue.redelivered == 2
        assert queue.dead_lettered == 1

    def test_cap_overrides_message_max_attempts(self):
        queue = MessageQueue()
        msg = self._message(queue, max_attempts=1000)
        assert not queue.requeue(msg, now=0.0, cap=1)
        assert queue.dead_lettered == 1

    def test_push_false_accounts_without_inserting(self):
        queue = MessageQueue()
        msg = self._message(queue, max_attempts=5)
        assert queue.requeue(msg, now=0.0, push=False)
        assert queue.peek_depth("S") == 0
        queue.push_back(msg)
        assert queue.peek_depth("S") == 1
        assert queue.pop_next("S", now=0.0) is msg

    def test_dead_lettered_message_is_not_reinserted(self):
        queue = MessageQueue()
        msg = self._message(queue, max_attempts=1)
        assert not queue.requeue(msg, now=0.0)
        assert queue.peek_depth("S") == 0
