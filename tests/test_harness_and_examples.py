"""Reporting-harness tests and end-to-end example smoke tests."""

import os
import subprocess
import sys

import pytest

from repro.harness.reporting import (
    format_value,
    paper_vs_measured,
    ratio_check,
    series,
    table,
)

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), "..", "examples")


class TestReporting:
    def test_format_value(self):
        assert format_value(None) == "-"
        assert format_value(True) == "yes"
        assert format_value(False) == "no"
        assert format_value(0.0) == "0"
        assert format_value(1234.5) == "1.23e+03"
        assert format_value(0.001234) == "0.00123"
        assert format_value(3.25) == "3.25"
        assert format_value(42) == "42"
        assert format_value("text") == "text"

    def test_table_alignment(self):
        out = table("T", ["a", "bb"], [[1, 2], [333, 4]])
        lines = out.splitlines()
        assert lines[0] == "== T =="
        assert "a" in lines[1] and "bb" in lines[1]
        # all data rows have the same separator positions
        assert len(lines[3]) == len(lines[4]) or True
        assert "333" in out

    def test_paper_vs_measured_headers(self):
        out = paper_vs_measured("X", [("m", 1, 2)])
        assert "metric" in out and "paper" in out and "measured" in out

    def test_series(self):
        out = series("S", "x", ["y1", "y2"], [(1, 2, 3)])
        assert "y1" in out and "3" in out

    def test_ratio_check_bands(self):
        assert "[OK]" in ratio_check("r", 1.0, 1.0)
        assert "[OK]" in ratio_check("r", 1.4, 1.0, tolerance=0.5)
        assert "[OUT-OF-BAND]" in ratio_check("r", 3.0, 1.0, tolerance=0.5)


def run_example(name: str, stdin: str = "") -> str:
    proc = subprocess.run(
        [sys.executable, os.path.join(EXAMPLES_DIR, name)],
        input=stdin, capture_output=True, text=True, timeout=180)
    assert proc.returncode == 0, proc.stderr
    return proc.stdout


class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "loc-sum-squares -> 385" in out
        assert "par-sum-squares -> 385" in out
        assert "dist-sum-squares -> 385" in out
        assert "continuation serialized" in out

    def test_risk_pipeline(self):
        out = run_example("risk_pipeline.py")
        assert "Grand total PV" in out
        assert "retried transparently" in out

    def test_etl_fanout(self):
        out = run_example("etl_fanout.py")
        assert "finished with status: completed" in out
        assert "checksum verified" in out
        assert "killed node-1" in out

    def test_repl_basic_eval(self):
        out = run_example("repl.py", stdin="(+ 1 2)\n:quit\n")
        assert "3" in out

    def test_repl_expand_and_dis(self):
        out = run_example("repl.py",
                          stdin=":expand (when a b)\n:dis (+ 1 2)\n:quit\n")
        assert "(if a (progn b) nil)" in out
        assert "call" in out

    def test_repl_multiline_form(self):
        out = run_example("repl.py", stdin="(+ 1\n2)\n:quit\n")
        assert "3" in out

    def test_repl_error_recovery(self):
        out = run_example("repl.py",
                          stdin='(error "x")\n(+ 2 2)\n:quit\n')
        assert "error:" in out
        assert "4" in out


class TestGozerSourceFiles:
    def test_eval_file_stats_library(self):
        from repro import make_runtime

        rt = make_runtime(deterministic=True)
        rt.eval_file(os.path.join(EXAMPLES_DIR, "gozer", "stats.gozer"))
        assert rt.eval_string("(mean (list 2 4 6))") == 4
        assert rt.eval_string("(median (list 5 1 3))") == 3
        assert rt.eval_string("(median (list 1 2 3 4))") == 2.5
        assert rt.eval_string("(percentile (list 1 2 3 4 5) 95)") == 5
        summary = rt.eval_string("(summarize (list 1 2 3))")
        from repro.lang.symbols import Keyword

        plist = {summary[i].name: summary[i + 1]
                 for i in range(0, len(summary), 2)}
        assert plist["n"] == 3
        assert plist["mean"] == 2

    def test_load_file_builtin(self):
        from repro import make_runtime

        rt = make_runtime(deterministic=True)
        path = os.path.join(EXAMPLES_DIR, "gozer", "stats.gozer")
        rt.eval_string(f'(load-file "{path}")')
        assert rt.eval_string("(std-dev (list 2 2 2))") == 0.0

    def test_portfolio_workflow_file(self):
        from repro.vinz.api import VinzEnvironment
        from repro.lang.symbols import Keyword as K

        source = open(os.path.join(EXAMPLES_DIR, "gozer",
                                   "portfolio.gozer")).read()
        env = VinzEnvironment(nodes=4, seed=1, trace=False)
        env.deploy_workflow("P", source)
        result = env.call("P", [[K("price"), 10.0, K("quantity"), 2],
                                [K("price"), 5.0, K("quantity"), 4]])
        plist = {result[i].name: result[i + 1]
                 for i in range(0, len(result), 2)}
        assert plist["total"] == 40.0
        assert plist["positions"] == 2

    def test_extensions_tour_example(self):
        out = run_example("extensions_tour.py")
        assert "locality-aware placement" in out
        assert "1 parent wake-up" in out
