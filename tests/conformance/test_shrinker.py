"""Shrinker tests: minimality, safety and the oracle-replay predicate."""

from repro.conformance import Shrinker
from repro.conformance.corpus import loads
from repro.conformance.shrinker import still_diverges
from repro.lang.printer import print_form
from repro.lang.symbols import Symbol


def program(source, feeds=()):
    text = ";; name: t\n;; stratum: pure\n"
    if feeds:
        text += ";; feeds: " + " ".join(map(str, feeds)) + "\n"
    return loads(text + source)


def contains_division(form):
    if isinstance(form, Symbol):
        return form.name == "/"
    if isinstance(form, list):
        return any(contains_division(f) for f in form)
    return False


class TestShrinker:
    def test_shrinks_to_minimal_interesting_body(self):
        # synthetic interestingness: "contains a division" — the
        # shrinker should strip all the bystander structure around it
        big = program(
            "(defun noise (x) (* x 2))\n"
            "(let ((a (noise 3)) (b (list 1 2 3)))\n"
            "  (list (length b) (+ a (/ 10 2)) (reverse b)))")
        result = Shrinker(
            lambda p: contains_division(p.body)).shrink(big)
        shrunk = result.program
        assert contains_division(shrunk.body)
        assert not shrunk.prelude  # the unused defun was dropped
        # minimal: just the division call, nothing around it
        assert print_form(shrunk.body) in ("(/ 10 2)", "(/ 0)", "(/)",
                                           "(/ 0 0)", "(/ 10 0)",
                                           "(/ 0 2)")

    def test_uninteresting_program_is_returned_unchanged(self):
        p = program("(+ 1 2)")
        result = Shrinker(lambda _: False).shrink(p)
        assert result.program.forms == p.forms

    def test_check_budget_is_respected(self):
        big = program("(list " + " ".join(str(i) for i in range(30)) + ")")
        result = Shrinker(lambda p: isinstance(p.body, list),
                          max_checks=10).shrink(big)
        assert result.checks <= 10
        assert result.exhausted

    def test_shrunk_programs_stay_well_formed(self):
        # every accepted candidate must still be readable source —
        # the corpus round trip is how repros get checked in
        from repro.lang.reader import read_all

        big = program("(let ((x (list 1 2 3)))\n"
                      "  (if (> (length x) 1) (/ 6 3) :small))")
        result = Shrinker(
            lambda p: contains_division(p.body)).shrink(big)
        assert read_all(result.program.source) == result.program.forms


class TestStillDiverges:
    def test_healthy_program_does_not_diverge(self):
        p = program("(sort (list 3 1 2))")
        assert not still_diverges(p, "vm")
        assert not still_diverges(p, "vm-pickle")
        assert not still_diverges(p, "tree")

    def test_harness_exception_counts_as_boring(self, monkeypatch):
        # a candidate that crashes the harness itself (not the engine
        # under test) must count as uninteresting, not abort the
        # shrink loop
        import repro.conformance.shrinker as mod

        def boom(*args, **kwargs):
            raise RuntimeError("harness died")

        monkeypatch.setattr(mod, "run_vm", boom)
        assert not still_diverges(program("(+ 1 2)"), "tree")

    def test_unknown_oracle_raises(self):
        import pytest

        with pytest.raises(ValueError):
            still_diverges(program("(+ 1 2)"), "bogus")
