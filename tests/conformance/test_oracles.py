"""Oracle tests: outcome algebra and the four execution backends."""

from repro.conformance import (Outcome, ProgramGenerator, run_tree,
                               run_vinz, run_vm, run_vm_pickle)
from repro.conformance.corpus import loads
from repro.conformance.grammar import DIST, SUSPEND


def program(source, stratum="pure", feeds=()):
    text = f";; name: t\n;; stratum: {stratum}\n"
    if feeds:
        text += ";; feeds: " + " ".join(map(str, feeds)) + "\n"
    return loads(text + source)


class TestOutcomeAlgebra:
    def test_values_compare_by_equality(self):
        assert Outcome.of_value([1, 2]).agrees_with(Outcome.of_value([1, 2]))
        assert not Outcome.of_value(1).agrees_with(Outcome.of_value(2))

    def test_conditions_compare_by_ctype(self):
        a = run_vm(program("(/ 1 0)"))
        b = run_vm(program("(/ 2 0)"))
        assert a.kind == "condition"
        assert a.ctype == "division-by-zero"
        assert a.agrees_with(b)

    def test_strict_ctype_toggle(self):
        type_err = run_vm(program("(+ 1 :k)"))
        div_zero = run_vm(program("(/ 1 0)"))
        assert not type_err.agrees_with(div_zero)
        # non-strict (the vinz comparison): both are conditions
        assert type_err.agrees_with(div_zero, strict_ctype=False)

    def test_value_never_agrees_with_condition(self):
        assert not Outcome.of_value(0).agrees_with(
            run_vm(program("(/ 1 0)")), strict_ctype=False)


class TestVmOracles:
    def test_vm_runs_prelude_then_body(self):
        p = program("(defun sq (x) (* x x))\n(sq 9)")
        assert run_vm(p).value == 81

    def test_pickle_roundtrip_is_transparent(self):
        p = program("(let ((acc 0))\n"
                    "  (dotimes (i 3) (setq acc (+ acc (yield))))\n"
                    "  acc)", stratum=SUSPEND, feeds=(5, 6, 7))
        base = run_vm(p)
        pickled = run_vm_pickle(p)
        assert base.value == 18
        assert base.agrees_with(pickled, compare_yields=True)

    def test_feeds_cycle_when_exhausted(self):
        p = program("(+ (yield) (yield) (yield))",
                    stratum=SUSPEND, feeds=(1, 2))
        assert run_vm(p).value == 1 + 2 + 1


class TestTreeOracle:
    def test_agrees_on_pure_program(self):
        p = program("(reverse (append (list 1 2) (list 3)))")
        assert run_tree(p).agrees_with(run_vm(p))

    def test_continuations_are_classified_unsupported(self):
        p = program("(yield)", stratum=SUSPEND, feeds=(0,))
        assert run_tree(p).kind == "unsupported"

    def test_conditions_match_vm_ctype(self):
        p = program("(/ 1 0)")
        tree, vm = run_tree(p), run_vm(p)
        assert tree.kind == "condition"
        assert tree.ctype == vm.ctype == "division-by-zero"


class TestVinzOracle:
    def test_value_survives_distribution(self):
        p = program("(for-each (x in (list 1 2 3)) (* x 10))",
                    stratum=DIST)
        vinz = run_vinz(p, seed=3, chaos=False)
        assert vinz.kind == "value"
        assert vinz.agrees_with(run_vm(p))

    def test_value_survives_chaos(self):
        p = program("(parallel (+ 1 1) (* 2 3))", stratum=DIST)
        vinz = run_vinz(p, seed=5, chaos=True)
        assert vinz.agrees_with(run_vm(p)), vinz.describe()

    def test_workflow_conditions_map_to_condition(self):
        p = program("(/ 1 0)")
        vinz = run_vinz(p, seed=1, chaos=False)
        assert vinz.kind == "condition"
        assert run_vm(p).agrees_with(vinz, strict_ctype=False)


class TestGeneratedAgreement:
    def test_sampled_generated_programs_agree(self):
        gen = ProgramGenerator(29)
        checked = 0
        for index in range(12):
            p = gen.generate(index)
            base = run_vm(p)
            assert base.kind != "engine-error", base.describe()
            pickled = run_vm_pickle(p)
            assert base.agrees_with(pickled, compare_yields=True), p.name
            checked += 1
        assert checked == 12
