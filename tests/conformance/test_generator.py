"""Generator tests: determinism, strata, analysis, sequentialization."""

import pytest

from repro.conformance import (DIST, PURE, SUSPEND, ProgramGenerator,
                               analyze, sequentialize)
from repro.conformance.grammar import (F_DIST, F_SUSPEND, F_TASKVAR,
                                       TREE_UNSUPPORTED)
from repro.lang.reader import read_all, read_string


class TestDeterminism:
    def test_same_seed_same_programs(self):
        a = ProgramGenerator(7)
        b = ProgramGenerator(7)
        for index in range(25):
            pa, pb = a.generate(index), b.generate(index)
            assert pa.source == pb.source, index
            assert pa.feeds == pb.feeds
            assert pa.stratum == pb.stratum

    def test_index_is_random_access(self):
        """Program i is a pure function of (seed, i) — order-free."""
        gen = ProgramGenerator(7)
        forward = [gen.generate(i).source for i in range(10)]
        backward = [ProgramGenerator(7).generate(i).source
                    for i in reversed(range(10))]
        assert forward == list(reversed(backward))

    def test_different_seeds_differ(self):
        a = [ProgramGenerator(1).generate(i).source for i in range(10)]
        b = [ProgramGenerator(2).generate(i).source for i in range(10)]
        assert a != b


class TestStrata:
    def test_all_strata_appear(self):
        strata = {ProgramGenerator(7).generate(i).stratum
                  for i in range(60)}
        assert strata == {PURE, SUSPEND, DIST}

    def test_suspend_programs_feed_their_yields(self):
        gen = ProgramGenerator(7)
        suspends = [gen.generate(i) for i in range(60)
                    if gen.generate(i).stratum == SUSPEND]
        assert suspends
        for program in suspends:
            assert F_SUSPEND in program.features
            assert program.feeds, program.name

    def test_dist_programs_use_distributed_forms(self):
        gen = ProgramGenerator(7)
        dists = [gen.generate(i) for i in range(60)
                 if gen.generate(i).stratum == DIST]
        assert dists
        for program in dists:
            assert program.features & {F_DIST, F_TASKVAR}, program.name


class TestAnalysis:
    def test_detects_suspend(self):
        analysis = analyze(read_all("(progn (yield) 1)"))
        assert F_SUSPEND in analysis.features

    def test_quote_bodies_are_inert(self):
        analysis = analyze(read_all("(quote (yield for-each))"))
        assert not analysis.features

    def test_marks_credit_surface_syntax(self):
        analysis = analyze(read_all("(if (evenp 2) (let ((x 1)) x) nil)"))
        assert "sf:if" in analysis.marks
        assert "sf:let" in analysis.marks
        assert "fn:evenp" in analysis.marks

    def test_tree_unsupported_is_feature_complete(self):
        # every generated feature the tree interpreter cannot run must
        # be in the skip set, or the executor would report false
        # divergences instead of classified skips
        assert F_SUSPEND in TREE_UNSUPPORTED


class TestSequentialize:
    def test_for_each_becomes_mapcar(self, rt):
        from repro.lang.printer import print_form

        form = read_string(
            "(for-each (x in (list 1 2 3) :chunk-size 2) (* x x))")
        seq = sequentialize(form)
        assert print_form(seq).startswith("(mapcar (lambda (x)")
        assert rt.eval_string(print_form(seq)) == [1, 4, 9]

    def test_parallel_becomes_list(self, rt):
        form = read_string("(parallel (+ 1 2) (* 2 2))")
        seq = sequentialize(form)
        from repro.lang.printer import print_form

        assert print_form(seq) == "(list (+ 1 2) (* 2 2))"
        assert rt.eval_string(print_form(seq)) == [3, 4]

    def test_taskvars_become_globals(self, rt):
        from repro.lang.printer import print_form

        source = "\n".join(
            print_form(sequentialize(f)) for f in read_all("""
                (deftaskvar acc^ "doc" 5)
                (progn (%set-task-var 'acc^ (+ (%get-task-var 'acc^) 2))
                       (%get-task-var 'acc^))"""))
        assert rt.eval_string(source) == 7

    def test_quote_is_untouched(self):
        form = read_string("(quote (parallel 1 2))")
        assert sequentialize(form) == form


class TestGeneratedProgramsRun:
    @pytest.mark.parametrize("index", range(0, 30, 3))
    def test_vm_accepts_generated_program(self, index):
        from repro.conformance import run_vm

        program = ProgramGenerator(13).generate(index)
        outcome = run_vm(program)
        assert outcome.kind in ("value", "condition"), outcome.describe()
