"""Suspend transparency at every instruction boundary (satellite 3).

``run_stepwise`` forces a continuation capture + pickle roundtrip +
restore at *each* instruction, then checks the program still computes
the same answer with the same total instruction count as an
uninterrupted run — capture/restore must be invisible to both the
value semantics and the cost model.
"""

import pytest

from repro.conformance import ProgramGenerator, run_stepwise, run_vm
from repro.conformance.corpus import loads
from repro.conformance.oracles import stepwise_safe


def program(source):
    return loads(";; name: t\n;; stratum: pure\n" + source)


class TestStepwiseTransparency:
    def test_loop_every_instruction(self):
        p = program("(let ((acc 0))\n"
                    "  (dotimes (i 10) (setq acc (+ acc (* i i))))\n"
                    "  acc)")
        result = run_stepwise(p, stride=1)
        assert result.outcome.kind == "value"
        assert result.outcome.value == 285
        assert result.counts_agree, (result.instructions,
                                     result.baseline_instructions)
        # the capture machinery actually engaged — one segment per
        # instruction, not one uninterrupted run
        assert result.segments >= result.baseline_instructions - 1

    def test_conditions_survive_stepping(self):
        p = program("(handler-case (/ 1 0)\n"
                    "  (division-by-zero (c) :caught))")
        result = run_stepwise(p, stride=1)
        assert result.outcome.kind == "value"
        assert result.outcome.printed == ":caught"
        assert result.counts_agree

    def test_unwind_protect_survives_stepping(self):
        p = program("(let ((log (list)))\n"
                    "  (unwind-protect (push 1 log) (push 2 log))\n"
                    "  log)")
        result = run_stepwise(p, stride=1)
        assert result.outcome.kind == "value"
        assert result.counts_agree

    def test_dynamic_bindings_survive_stepping(self):
        p = program("(defvar *depth* 1)\n"
                    "(defun probe () *depth*)\n"
                    "(let ((*depth* 5)) (+ (probe) *depth*))")
        result = run_stepwise(p, stride=1)
        assert result.outcome.kind == "value"
        assert result.outcome.value == 10
        assert result.counts_agree

    @pytest.mark.parametrize("index", range(0, 24, 2))
    def test_generated_programs_step_transparently(self, index):
        gen = ProgramGenerator(7)
        p = gen.generate(index)
        if not stepwise_safe(p):
            pytest.skip("futures schedule work outside the stepper")
        # stride > 1 keeps the suite quick; stride=1 runs above and in
        # the fuzz campaign
        result = run_stepwise(p, stride=7)
        base = run_vm(p)
        assert result.outcome.agrees_with(base), \
            f"{p.name}: {result.outcome.describe()} vs {base.describe()}"
        assert result.counts_agree, p.name
