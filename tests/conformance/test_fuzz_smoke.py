"""End-to-end fuzz campaign smoke test (small budget).

The CI conformance job runs the real campaign (seed 7, budget 200);
this keeps a fast in-process version in tier 1 so a broken campaign
driver never reaches CI silently.
"""

import json

from repro.conformance import run_fuzz
from repro.conformance.fuzz import write_report
from repro.observe import MetricsRegistry


class TestFuzzSmoke:
    def test_small_campaign_is_clean(self, tmp_path):
        metrics = MetricsRegistry()
        report = run_fuzz(seed=11, budget=12, vinz_every=6,
                          metrics=metrics,
                          repro_dir=str(tmp_path / "repros"))
        assert report.ok, report.summary()
        assert report.programs == 12
        assert report.oracle_runs["vm"] == 12
        assert report.oracle_runs["vm-pickle"] == 12
        # coverage accounting engaged
        cov = report.coverage
        assert 0 < cov.special_form_ratio <= 1
        assert 0 < cov.builtin_ratio <= 1
        assert 0 < cov.opcode_ratio <= 1
        # metrics flowed through repro.observe
        snapshot = metrics.snapshot()
        assert snapshot["counters"]["conformance.programs"] == 12
        assert "conformance.coverage.builtins" in snapshot["gauges"]

    def test_report_serializes(self, tmp_path):
        report = run_fuzz(seed=5, budget=4, vinz_every=4)
        path = tmp_path / "report.json"
        write_report(report, str(path))
        data = json.loads(path.read_text())
        assert data["programs"] == 4
        assert data["unclassified_divergences"] == 0
        assert data["coverage"]["special_forms"]["total"] > 0
        # human summary renders
        assert "conformance fuzz" in report.summary()
