"""Reader/printer round trips over generated programs (satellite 2).

The corpus persists programs as printed text, so print-then-read must
be the identity on everything the generator can emit — including
quasiquote/unquote forms, keywords, strings and nested structures.
"""

import pytest

from repro.conformance import ProgramGenerator, dumps, loads
from repro.lang.reader import read_all


@pytest.mark.parametrize("seed", [1, 7, 23])
class TestGeneratedRoundTrip:
    def test_print_read_identity(self, seed):
        gen = ProgramGenerator(seed)
        for index in range(15):
            program = gen.generate(index)
            assert read_all(program.source) == program.forms, program.name

    def test_sequential_form_roundtrips(self, seed):
        gen = ProgramGenerator(seed)
        for index in range(15):
            program = gen.generate(index)
            assert read_all(program.sequential_source) == \
                program.sequential_forms, program.name

    def test_corpus_format_roundtrips(self, seed):
        gen = ProgramGenerator(seed)
        for index in range(15):
            program = gen.generate(index)
            reloaded = loads(dumps(program))
            assert reloaded.forms == program.forms, program.name
            assert reloaded.feeds == program.feeds
            assert reloaded.stratum == program.stratum
            assert reloaded.name == program.name
            assert reloaded.seed == program.seed
            assert reloaded.index == program.index
