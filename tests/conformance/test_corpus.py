"""Replay the checked-in conformance corpus (ISSUE 10 satellite 1).

Every ``tests/conformance/corpus/*.gozer`` entry runs through the full
oracle matrix.  The corpus holds the migrated ``DIFFERENTIAL_PROGRAMS``
from tests/gvm/test_interpreter.py, representative instances of the
old ``TestVMDifferential`` property block, handcrafted suspend/dist
seeds, and shrunken repros for bugs the fuzzer found (their ``note:``
headers name the fix).
"""

import os

import pytest

from repro.conformance import DifferentialExecutor, load_dir

CORPUS_DIR = os.path.join(os.path.dirname(__file__), "corpus")
CORPUS = load_dir(CORPUS_DIR)


def test_corpus_is_populated():
    assert len(CORPUS) >= 20, "seed corpus went missing"
    names = {p.name for p in CORPUS}
    # the migrated tests and the fixed-bug repros must stay present
    assert "seed-diff-01" in names
    assert "seed-prop-factorial" in names
    assert "fixed-constantly-pickle" in names
    assert "fixed-intrinsic-pickle" in names


@pytest.mark.parametrize("program", CORPUS, ids=lambda p: p.name)
def test_corpus_entry_conforms(program):
    # vinz_every=1: corpus entries are few and precious — run the
    # distributed oracle on every entry it legally applies to
    executor = DifferentialExecutor(vinz_every=1, chaos=True)
    verdict = executor.run(program)
    assert verdict.ok, "\n".join(d.describe()
                                 for d in verdict.divergences)
    # the matrix actually ran: baseline + pickle always, and entries
    # without raw yields also reach the distributed oracle
    assert "vm" in verdict.outcomes
    assert "vm-pickle" in verdict.outcomes
    if "vinz" not in verdict.skips:
        assert "vinz" in verdict.outcomes
