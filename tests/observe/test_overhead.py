"""Tracing must be zero-cost when disabled: a traced-off run creates no
spans, allocates no per-message span state, and records no metrics."""

from repro.bluebox.services import simple_service
from repro.vinz.api import VinzEnvironment

WORKFLOW = """
(deflink SVC :wsdl "urn:overhead-svc")

(defun main (items)
  (apply #'+ (for-each (x in items)
               (+ x (SVC-Echo-Method :Value x)))))
"""


def build_env(**kwargs):
    env = VinzEnvironment(nodes=3, seed=31, **kwargs)

    def echo(ctx, body):
        ctx.charge(0.1)
        return body.get("Value", 0)

    env.deploy_service(simple_service("Overhead", {"Echo": echo},
                                      namespace="urn:overhead-svc",
                                      parameters={"Echo": ["Value"]}))
    env.deploy_workflow("Over", WORKFLOW)
    return env


def test_disabled_run_creates_no_spans_or_metrics():
    env = build_env(trace=False)
    task_id = env.run("Over", [1, 2, 3])
    assert env.registry.tasks[task_id].result == 12

    assert not env.tracer.enabled
    assert env.tracer.spans_created == 0
    assert env.tracer.spans() == []
    assert env.metrics.snapshot() == {"counters": {}, "gauges": {},
                                      "histograms": {}}
    # no span ids leaked into fiber records either
    assert all(f.span_id == 0 for f in env.registry.fibers.values())
    assert all(t.span_id == 0 for t in env.registry.tasks.values())


def test_spans_flag_decouples_tracer_from_trace_log():
    # spans on, event log off: tracer works, log stays empty
    env = build_env(trace=False, spans=True)
    env.run("Over", [1, 2])
    assert env.tracer.spans_created > 0
    assert env.cluster.trace.events == []

    # spans explicitly off even though the event log is on
    env = build_env(trace=True, spans=False)
    env.run("Over", [1, 2])
    assert env.tracer.spans_created == 0
    assert env.cluster.trace.events
