"""Unit tests for the causal span tracer (repro.observe.spans)."""

from repro.observe import SpanTracer


def test_begin_end_and_duration():
    tracer = SpanTracer()
    span_id = tracer.begin("work", kind="operation", start=1.0, node="n1")
    assert span_id == 1
    span = tracer.get(span_id)
    assert span.kind == "operation"
    assert not span.finished
    assert span.duration is None
    tracer.end(span_id, end=3.5, ok=True)
    assert span.finished
    assert span.duration == 2.5
    assert span.attrs == {"node": "n1", "ok": True}


def test_parent_links_and_queries():
    tracer = SpanTracer()
    root = tracer.begin("task:t1", kind="task", start=0.0, task="t1")
    fiber = tracer.begin("fiber:f1", kind="fiber", start=0.0,
                         parent_id=root, task="t1", fiber="f1")
    hop = tracer.begin("hop", kind="queue-hop", start=0.1, parent_id=fiber)
    assert [s.id for s in tracer.children_of(root)] == [fiber]
    assert [s.id for s in tracer.ancestors(hop)] == [fiber, root]
    assert tracer.task_root("t1").id == root
    assert [s.id for s in tracer.task_tree("t1")] == [root, fiber, hop]
    assert tracer.verify_parents() == []


def test_verify_parents_flags_dangling_ids():
    tracer = SpanTracer()
    orphan = tracer.begin("x", kind="operation", start=0.0, parent_id=999)
    assert [s.id for s in tracer.verify_parents()] == [orphan]


def test_annotations_attach_in_order():
    tracer = SpanTracer()
    span_id = tracer.begin("hop", kind="queue-hop", start=0.0)
    tracer.annotate(span_id, 0.5, "fault.drop", msg=7)
    tracer.annotate(span_id, 0.9, "dead-letter")
    span = tracer.get(span_id)
    assert [(t, n) for t, n, _ in span.annotations] == \
        [(0.5, "fault.drop"), (0.9, "dead-letter")]


def test_disabled_tracer_allocates_nothing():
    tracer = SpanTracer(enabled=False)
    span_id = tracer.begin("work", kind="operation", start=0.0)
    assert span_id == 0
    # end/annotate on the 0 sentinel are harmless no-ops
    tracer.end(span_id, end=1.0)
    tracer.annotate(span_id, 0.5, "mark")
    assert tracer.spans_created == 0
    assert tracer.spans() == []


def test_end_unknown_span_is_noop():
    tracer = SpanTracer()
    tracer.end(42, end=1.0)
    tracer.annotate(42, 1.0, "x")
    assert tracer.spans() == []


def test_summary_and_open_spans():
    tracer = SpanTracer()
    a = tracer.begin("a", kind="task", start=0.0)
    tracer.begin("b", kind="queue-hop", start=0.0, parent_id=a)
    tracer.end(a, end=1.0)
    summary = tracer.summary()
    assert summary["created"] == 2
    assert summary["open"] == 1
    assert summary["by_kind"] == {"task": 1, "queue-hop": 1}
    assert [s.kind for s in tracer.open_spans()] == ["queue-hop"]


def test_render_tree_shows_nesting_and_annotations():
    tracer = SpanTracer()
    root = tracer.begin("task:t1", kind="task", start=0.0, task="t1")
    hop = tracer.begin("hop:Run", kind="queue-hop", start=0.1,
                       parent_id=root, msg=3)
    tracer.annotate(hop, 0.2, "fault.drop")
    tracer.end(hop, end=0.3)
    tracer.end(root, end=1.0)
    text = tracer.render_tree(tracer.get(root))
    lines = text.splitlines()
    assert lines[0].startswith("task task:t1")
    assert lines[1].startswith("  queue-hop hop:Run")
    assert "msg=3" in lines[1]
    assert "@ 0.200 fault.drop" in lines[2]
