"""Unit tests for the trace exporters (repro.observe.export)."""

import json

from repro.observe import SpanTracer
from repro.observe.export import (
    chrome_trace,
    chrome_trace_events,
    json_report,
    span_tree_from_events,
    write_chrome_trace,
)
from repro.vinz.api import VinzEnvironment


def sample_tracer():
    tracer = SpanTracer()
    task = tracer.begin("task:t1", kind="task", start=0.0, task="t1")
    hop = tracer.begin("hop:Run", kind="queue-hop", start=0.1,
                       parent_id=task, msg=1)
    op = tracer.begin("op:Run", kind="operation", start=0.2,
                      parent_id=hop, node="node-0", task="t1")
    tracer.annotate(hop, 0.15, "fault.delay", delay=0.5)
    tracer.end(op, end=0.4)
    tracer.end(hop, end=0.4)
    tracer.end(task, end=0.4)
    return tracer, task, hop, op


def test_complete_events_carry_span_links_and_microseconds():
    tracer, task, hop, op = sample_tracer()
    events = chrome_trace_events(tracer)
    complete = [e for e in events if e["ph"] == "X"]
    assert len(complete) == 3
    by_span = {e["args"]["span"]: e for e in complete}
    assert by_span[op]["args"]["parent"] == hop
    assert by_span[hop]["args"]["parent"] == task
    assert by_span[op]["cat"] == "operation"
    assert by_span[op]["ts"] == 0.2 * 1e6
    assert by_span[op]["dur"] == 200000.0


def test_nodes_become_processes_queue_hops_get_queue_track():
    tracer, _task, hop, op = sample_tracer()
    events = chrome_trace_events(tracer)
    names = {e["args"]["name"]: e["pid"] for e in events
             if e["ph"] == "M" and e["name"] == "process_name"}
    assert "node-0" in names and "queue" in names
    by_span = {e["args"]["span"]: e for e in events if e["ph"] == "X"}
    assert by_span[op]["pid"] == names["node-0"]
    assert by_span[hop]["pid"] == names["queue"]


def test_annotations_become_instant_events():
    tracer, _task, hop, _op = sample_tracer()
    instants = [e for e in chrome_trace_events(tracer) if e["ph"] == "i"]
    assert len(instants) == 1
    assert instants[0]["name"] == "fault.delay"
    assert instants[0]["args"]["span"] == hop
    assert instants[0]["args"]["delay"] == 0.5


def test_round_trip_through_file(tmp_path):
    tracer, task, hop, op = sample_tracer()
    path = write_chrome_trace(tracer, str(tmp_path / "trace.json"))
    with open(path) as fh:
        doc = json.load(fh)
    assert doc["displayTimeUnit"] == "ms"
    assert doc == chrome_trace(tracer)
    tree = span_tree_from_events(doc["traceEvents"])
    assert tree == {task: 0, hop: task, op: hop}


def test_non_jsonable_attrs_are_stringified():
    tracer = SpanTracer()
    span = tracer.begin("x", kind="operation", start=0.0, payload={"a": 1})
    tracer.end(span, end=1.0)
    doc = json.dumps(chrome_trace(tracer))  # must not raise
    assert "payload" in doc


def test_json_report_covers_the_whole_environment():
    env = VinzEnvironment(nodes=2, seed=9, trace=True)
    env.deploy_workflow("Tiny", "(defun main (x) (* x 2))")
    task_id = env.run("Tiny", 21)
    assert env.registry.tasks[task_id].result == 42

    report = json_report(env)
    assert report["virtual_time"] > 0
    assert report["spans"]["created"] > 0
    assert report["spans"]["by_kind"].get("task") == 1
    assert report["trace_log"]["events"] > 0
    assert report["trace_log"]["dropped"] == 0
    assert "queue.wait" in report["metrics"]["histograms"]
    assert report["metrics"]["histograms"]["queue.wait"]["count"] > 0
    assert "mutable" in report["cache_hit_rates"]
    assert json.dumps(report)  # fully serializable

    # the same report is reachable through the public API surface
    assert env.observability_report()["spans"] == report["spans"]
