"""Unit tests for the metrics registry (repro.observe.metrics)."""

import threading

from repro.observe import MetricsRegistry
from repro.observe.metrics import exponential_buckets


def test_counter_and_gauge():
    metrics = MetricsRegistry()
    metrics.counter("tasks").inc()
    metrics.counter("tasks").inc(4)
    metrics.gauge("depth").set(7.0)
    metrics.gauge("depth").add(-2.0)
    snapshot = metrics.snapshot()
    assert snapshot["counters"] == {"tasks": 5}
    assert snapshot["gauges"] == {"depth": 5.0}


def test_histogram_percentiles_uniform():
    metrics = MetricsRegistry()
    hist = metrics.histogram("lat", buckets=exponential_buckets(1, 2, 12))
    for value in range(1, 101):
        hist.observe(float(value))
    snap = hist.snapshot()
    assert snap["count"] == 100
    assert snap["min"] == 1.0 and snap["max"] == 100.0
    assert snap["mean"] == 50.5
    # fixed-bucket interpolation: loose but ordered and in-range
    assert 1.0 <= snap["p50"] <= snap["p95"] <= snap["p99"] <= 100.0
    assert 30.0 <= snap["p50"] <= 70.0
    assert snap["p99"] >= 64.0


def test_histogram_overflow_reports_max():
    metrics = MetricsRegistry()
    hist = metrics.histogram("sz", buckets=[10.0])
    hist.observe(5000.0)
    assert hist.percentile(0.99) == 5000.0


def test_histogram_empty_snapshot():
    metrics = MetricsRegistry()
    snap = metrics.histogram("empty").snapshot()
    assert snap["count"] == 0
    assert snap["p99"] == 0.0


def test_buckets_apply_on_first_creation_only():
    metrics = MetricsRegistry()
    first = metrics.histogram("h", buckets=[1.0, 2.0])
    again = metrics.histogram("h", buckets=[99.0])
    assert again is first
    assert first.buckets == [1.0, 2.0]


def test_disabled_registry_hands_out_noops():
    metrics = MetricsRegistry(enabled=False)
    metrics.counter("c").inc()
    metrics.gauge("g").set(1.0)
    metrics.histogram("h").observe(3.0)
    assert metrics.snapshot() == {"counters": {}, "gauges": {},
                                  "histograms": {}}


def test_threaded_observations_are_exact():
    metrics = MetricsRegistry()
    hist = metrics.histogram("lat")
    counter = metrics.counter("n")

    def work():
        for _ in range(1000):
            counter.inc()
            hist.observe(0.01)

    threads = [threading.Thread(target=work) for _ in range(8)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert counter.value == 8000
    assert hist.count == 8000
