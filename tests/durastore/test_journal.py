"""Write-ahead journal: group commit, torn tails, checkpoint, recovery."""

import pytest

from repro.bluebox.store import StoreWriteError
from repro.durastore import (
    DurableStore,
    FileJournalStorage,
    MemoryJournalStorage,
    SealedBatch,
    WriteAheadJournal,
    encode_batch,
)
from repro.faults import FaultPlan, JournalFault, TORN_COMMIT
from repro.faults.injector import FaultInjector


def batch(*records):
    recs = list(records)
    return SealedBatch(recs, encode_batch(recs), 0.0)


# ---------------------------------------------------------------------------
# the journal proper
# ---------------------------------------------------------------------------

def test_append_and_replay():
    j = WriteAheadJournal()
    j.append_batch(batch(("put", "a", b"1"), ("put", "b", b"2")))
    j.append_batch(batch(("del", "a", None), ("put", "c", b"3")))
    replay = j.replay()
    assert replay["state"] == {"a": None, "b": b"2", "c": b"3"}
    assert replay["batches"] == 2 and replay["records"] == 4
    assert replay["tail_error"] is None
    assert j.commits == 2 and j.records_committed == 4


def test_torn_tail_dropped_and_repaired():
    j = WriteAheadJournal()
    j.append_batch(batch(("put", "a", b"committed")))
    # a crash mid-write(2): only a prefix of the frame lands
    torn = encode_batch([("put", "b", b"never-committed")])
    j.storage.append(torn[: len(torn) // 2])
    j._dirty_tail = True
    j.torn_appends += 1

    replay = j.replay()
    assert replay["state"] == {"a": b"committed"}
    assert replay["tail_error"] is not None
    assert replay["tail_bytes_dropped"] == len(torn) // 2

    # the next append lands on a repaired tail and replays cleanly
    j.append_batch(batch(("put", "c", b"after")))
    replay = j.replay()
    assert replay["state"] == {"a": b"committed", "c": b"after"}
    assert replay["tail_error"] is None


def test_checkpoint_truncates_and_seeds_replay():
    j = WriteAheadJournal()
    for i in range(5):
        j.append_batch(batch(("put", f"k{i}", bytes([i]))))
    size_before = j.storage.size()
    j.checkpoint({"k0": b"\x00", "frozen": b"snap"})
    assert j.checkpoints == 1
    j.append_batch(batch(("put", "later", b"x"), ("del", "k0", None)))
    replay = j.replay()
    assert replay["checkpoint_keys"] == 2
    assert replay["state"] == {"k0": None, "frozen": b"snap", "later": b"x"}
    # the log was compacted: old batches are gone
    assert j.storage.size() < size_before + 64


def test_journal_fault_tears_exactly_the_configured_fraction():
    plan = FaultPlan([JournalFault(nth=2, count=1, keep_fraction=0.25)])
    injector = FaultInjector(3, plan)
    j = WriteAheadJournal()
    j.injector = injector
    j.append_batch(batch(("put", "a", b"one")))
    good = j.storage.size()
    torn = batch(("put", "b", b"two"))
    with pytest.raises(StoreWriteError):
        j.append_batch(torn)
    assert j.torn_appends == 1
    assert injector.injected[TORN_COMMIT] == 1
    assert j.storage.size() == good + int(len(torn.framed) * 0.25)
    # replay sees only the committed prefix
    assert j.replay()["state"] == {"a": b"one"}
    # and the repaired tail accepts the retry
    j.append_batch(batch(("put", "b", b"two")))
    assert j.replay()["state"] == {"a": b"one", "b": b"two"}


def test_file_journal_storage_roundtrip(tmp_path):
    path = str(tmp_path / "wal" / "journal.bin")
    j = WriteAheadJournal(FileJournalStorage(path))
    j.append_batch(batch(("put", "a", b"disk")))
    # a fresh journal over the same file replays the same state
    fresh = WriteAheadJournal(FileJournalStorage(path))
    assert fresh.replay()["state"] == {"a": b"disk"}
    fresh.storage.truncate(fresh.storage.size() - 1)
    assert fresh.replay()["tail_error"] is not None


# ---------------------------------------------------------------------------
# DurableStore: windows, group commit, rollback, recovery
# ---------------------------------------------------------------------------

def test_window_batches_into_one_commit():
    store = DurableStore(shards=2)
    store.begin_window()
    w1 = store.write("fiber-state/f1", b"blob-one")
    w2 = store.write("fiber-thunk/f2", b"blob-two")
    d1 = store.delete("task-env/old")
    # in-window mutations defer the op latency...
    assert w1 == pytest.approx(len(b"blob-one") * store.per_byte)
    assert w2 == pytest.approx(len(b"blob-two") * store.per_byte)
    assert d1 == 0.0
    sealed = store.seal_window()
    # ...which the seal charges exactly once
    assert sealed.cost >= store.op_latency
    store.commit_batch(sealed)
    assert store.journal.commits == 1
    assert store.journal.records_committed == 3
    assert store.read("fiber-state/f1") == b"blob-one"


def test_empty_window_seals_to_nothing():
    store = DurableStore(shards=2)
    store.begin_window()
    assert store.seal_window() is None
    store.commit_batch(None)  # no-op
    assert store.journal.commits == 0


def test_reopening_a_window_is_refused():
    store = DurableStore(shards=2)
    store.begin_window()
    with pytest.raises(RuntimeError):
        store.begin_window()


def test_out_of_window_mutations_auto_commit():
    store = DurableStore(shards=2)
    store.write("a", b"1")
    store.delete("a")
    assert store.auto_commits == 2
    assert store.journal.replay()["state"] == {"a": None}


def test_aborted_window_never_reaches_the_log():
    store = DurableStore(shards=2)
    store.begin_window()
    store.write("ghost", b"rolled-back")
    store.abort_window()
    assert store.windows_aborted == 1
    assert "ghost" not in store.journal.replay()["state"]


def test_discarded_batch_never_reaches_the_log():
    store = DurableStore(shards=2)
    store.begin_window()
    store.write("ghost", b"node-died")
    sealed = store.seal_window()
    store.discard_batch(sealed)
    assert store.batches_discarded == 1
    assert "ghost" not in store.journal.replay()["state"]


def test_rollback_scrubs_the_open_window():
    store = DurableStore(shards=2)
    store.write("k", b"old")
    store.begin_window()
    store.write("k", b"new")
    store.rollback_value("k", b"old")
    store.write("other", b"kept")
    store.commit_batch(store.seal_window())
    assert store.read("k") == b"old"
    # the rolled-back write never journaled; the kept one did
    state = store.journal.replay()["state"]
    assert "other" in state and state["k"] == b"old"


def test_group_commit_shares_flushes_within_interval():
    clock = [0.0]
    store = DurableStore(shards=2)
    store.now_fn = lambda: clock[0]

    def window(key, at):
        clock[0] = at
        store.begin_window()
        store.write(key, b"v")
        store.commit_batch(store.seal_window())

    window("a", 10.0)              # pays its own flush
    window("b", 10.0005)           # within op_latency: piggybacks
    window("c", 10.0015)           # still within the same horizon
    window("d", 10.5)              # a fresh flush
    assert store.journal.commits == 4
    assert store.journal.flushes == 2
    assert store.shared_flushes == 2


def test_checkpoint_interval_compacts_the_log():
    store = DurableStore(shards=2, checkpoint_interval=4)
    for i in range(9):
        store.begin_window()
        store.write(f"k{i}", b"x" * 50)
        store.commit_batch(store.seal_window())
    assert store.journal.checkpoints == 2
    replay = store.journal.replay()
    assert sum(1 for v in replay["state"].values() if v is not None) == 9


def test_recover_rebuilds_committed_state_only():
    store = DurableStore(shards=2)
    store.begin_window()
    store.write("committed/a", b"alpha")
    store.write("committed/b", b"beta")
    store.commit_batch(store.seal_window())
    store.begin_window()
    store.delete("committed/b")
    store.commit_batch(store.seal_window())
    # an uncommitted straggler sits in the backends but not the log
    store._put("uncommitted/c", b"ghost")

    report = store.recover()
    assert report["recovered_keys"] == 1
    assert report["deleted_keys"] == 1
    assert store.read("committed/a") == b"alpha"
    assert not store.exists("committed/b")
    assert not store.exists("uncommitted/c")
    assert store.recoveries == 1


def test_recover_drops_torn_tail():
    store = DurableStore(shards=2)
    store.begin_window()
    store.write("good", b"committed")
    store.commit_batch(store.seal_window())
    torn = encode_batch([("put", "bad", b"torn-away")])
    store.journal.storage.append(torn[:7])
    store._put("bad", b"torn-away")

    report = store.recover()
    assert report["tail_error"] is not None
    assert report["tail_bytes_dropped"] == 7
    assert store.read("good") == b"committed"
    assert not store.exists("bad")


def test_stats_snapshot_shape():
    store = DurableStore(shards=2)
    store.begin_window()
    store.write("k", b"v")
    store.commit_batch(store.seal_window())
    snap = store.stats_snapshot()
    assert snap["kind"] == "DurableStore"
    assert snap["journal"]["commits"] == 1
    assert snap["group_commit"]["windows_sealed"] == 1
    assert snap["group_commit"]["deferred_ops"] == 1
    assert set(snap["shards"]) == {"shard-0", "shard-1"}
