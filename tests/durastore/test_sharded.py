"""Consistent-hash sharding: placement, stats, rebalance, outages."""

import pytest

from repro.bluebox.store import StoreError, StoreWriteError
from repro.durastore import MemoryBackend, ShardedStore, memory_backends
from repro.faults import SHARD_OUTAGE, FaultPlan, ShardFault
from repro.faults.injector import FaultInjector


def filled(shards=4, keys=200):
    store = ShardedStore(shards=shards)
    for i in range(keys):
        store.write(f"fiber-state/f{i}", b"x" * (10 + i % 7))
    return store


def test_placement_is_stable_and_total():
    store = filled()
    for key in store.keys():
        shard = store.shard_for(key)
        assert store.shard_for(key) == shard
        assert store.backends[shard].contains(key)
    assert sum(store.key_distribution().values()) == 200


def test_distribution_is_roughly_even():
    dist = filled(shards=4, keys=400).key_distribution()
    assert len(dist) == 4
    assert min(dist.values()) > 0
    # 64 vnodes/shard keeps the spread within a small factor
    assert max(dist.values()) < 4 * min(dist.values())


def test_reads_route_and_count_per_shard():
    store = filled(keys=50)
    for i in range(50):
        store.read(f"fiber-state/f{i}")
    snap = store.stats_snapshot()
    assert sum(s["reads"] for s in snap["shards"].values()) == 50
    assert sum(s["writes"] for s in snap["shards"].values()) == 50
    assert snap["kind"] == "ShardedStore"


def test_delete_counts_per_shard_and_charges():
    store = filled(keys=10)
    shard = store.shard_for("fiber-state/f0")
    cost = store.delete("fiber-state/f0")
    assert cost == pytest.approx(store.op_latency)
    assert store.shard_stats[shard].deletes == 1
    assert not store.exists("fiber-state/f0")


def test_add_shard_moves_a_fraction():
    store = filled(shards=4, keys=400)
    report = store.add_shard(MemoryBackend("shard-4"))
    # consistent hashing: only ~1/N of keys move to the newcomer
    assert 0 < report["moved_keys"] < 200
    assert report["total_keys"] == 400
    assert report["shards"] == [f"shard-{i}" for i in range(5)]
    # every key still readable at its new home
    for key in store.keys():
        assert store.backends[store.shard_for(key)].contains(key)
    assert sum(store.key_distribution().values()) == 400


def test_remove_shard_migrates_everything_off():
    store = filled(shards=4, keys=300)
    victim_keys = set(store.backends["shard-2"].keys())
    report = store.remove_shard("shard-2")
    assert report["moved_keys"] == len(victim_keys)
    assert "shard-2" not in store.backends
    for key in victim_keys:
        assert store.read(key) is not None
    assert sum(store.key_distribution().values()) == 300


def test_remove_last_shard_refused():
    store = ShardedStore(shards=1)
    with pytest.raises(ValueError):
        store.remove_shard("shard-0")
    with pytest.raises(KeyError):
        store.remove_shard("no-such-shard")


def test_duplicate_shard_name_refused():
    store = ShardedStore(shards=2)
    with pytest.raises(ValueError):
        store.add_shard(MemoryBackend("shard-1"))


def test_backends_can_be_supplied_explicitly():
    store = ShardedStore(backends=[MemoryBackend("east"),
                                   MemoryBackend("west")])
    store.write("k", b"v")
    assert store.shard_names() == ["east", "west"]
    assert store.read("k") == b"v"


class _Env:
    """The minimal environment FaultInjector.install needs."""

    def __init__(self, store):
        self.store = store
        self.cluster = None


def test_shard_outage_vetoes_io_in_window():
    store = ShardedStore(shards=2)
    plan = FaultPlan([ShardFault(shard="shard-0", nth=1, count=3)])
    injector = FaultInjector(7, plan)
    store.injector = injector

    hit = vetoed = 0
    for i in range(40):
        key = f"k{i}"
        if store.shard_for(key) != "shard-0":
            continue
        hit += 1
        if hit > 3:
            break
        with pytest.raises(StoreWriteError):
            store.write(key, b"v")
        vetoed += 1
    assert vetoed == 3
    assert store.faulted_ops == 3
    assert injector.injected[SHARD_OUTAGE] == 3
    # the other shard never faulted
    other = next(k for k in (f"k{i}" for i in range(100))
                 if store.shard_for(k) == "shard-1")
    store.write(other, b"v")
