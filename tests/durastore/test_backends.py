"""Storage backends: byte planes, disk mirroring, name escaping."""

import os
import string

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.bluebox.store import DirectoryStore, SharedStore, StoreError
from repro.durastore import DirectoryBackend, MemoryBackend, StoreBackend, \
    memory_backends


def test_memory_backend_roundtrip():
    b = MemoryBackend("shard-0")
    assert isinstance(b, StoreBackend)
    b.put("a/b", b"one")
    b.put("c", b"two!")
    assert b.get("a/b") == b"one"
    assert b.contains("c") and not b.contains("missing")
    assert sorted(b.keys()) == ["a/b", "c"]
    assert b.nbytes() == 7
    b.remove("a/b")
    b.remove("a/b")  # idempotent
    assert b.get("a/b") is None
    assert b.keys() == ["c"]


def test_memory_backends_factory_names():
    planes = memory_backends(3)
    assert [p.name for p in planes] == ["shard-0", "shard-1", "shard-2"]


def test_directory_backend_mirrors_and_hydrates(tmp_path):
    root = str(tmp_path / "plane")
    b = DirectoryBackend("shard-0", root)
    b.put("fiber-state/f1", b"alpha")
    b.put("odd%2Fkey", b"beta")
    b.remove("fiber-state/f1")
    b.put("fiber-state/f1", b"gamma")

    # a fresh backend over the same directory sees the same state —
    # the process-crash pickup path
    fresh = DirectoryBackend("shard-0", root)
    assert sorted(fresh.keys()) == ["fiber-state/f1", "odd%2Fkey"]
    assert fresh.get("fiber-state/f1") == b"gamma"
    assert fresh.get("odd%2Fkey") == b"beta"


def test_directory_backend_skips_tmp_files(tmp_path):
    root = str(tmp_path / "plane")
    b = DirectoryBackend("shard-0", root)
    b.put("k", b"v")
    # a crash can leave a half-written temp file behind
    with open(os.path.join(root, "junk.tmp"), "wb") as fh:
        fh.write(b"partial")
    fresh = DirectoryBackend("shard-0", root)
    assert fresh.keys() == ["k"]


# ---------------------------------------------------------------------------
# the escaped file-name encoding (satellite: % escaped before /)
# ---------------------------------------------------------------------------

#: keys mixing the escape character, the separator, and pre-escaped
#: sequences — the inputs where a wrong escape order loses information
tricky_keys = st.text(
    alphabet=string.ascii_letters + string.digits + "%/2F5.-_", max_size=40)


@given(tricky_keys)
def test_directory_store_name_encoding_inverts(key):
    encoded = DirectoryStore._encode_name(key)
    assert "/" not in encoded
    assert DirectoryStore._decode_name(encoded) == key


@given(tricky_keys)
def test_directory_backend_name_encoding_inverts(key):
    encoded = DirectoryBackend._encode_name(key)
    assert "/" not in encoded
    assert DirectoryBackend._decode_name(encoded) == key


def test_encoding_distinguishes_escape_collisions():
    # the regression the %-first order fixes: a key literally containing
    # "%2F" must not collide with one containing "/"
    a = DirectoryStore._encode_name("a%2Fb")
    b = DirectoryStore._encode_name("a/b")
    assert a != b
    assert DirectoryStore._decode_name(a) == "a%2Fb"
    assert DirectoryStore._decode_name(b) == "a/b"


def test_directory_store_roundtrips_tricky_keys(tmp_path):
    store = DirectoryStore(str(tmp_path))
    store.write("a%2Fb", b"escaped")
    store.write("a/b", b"nested")
    fresh = DirectoryStore(str(tmp_path))
    assert fresh.read("a%2Fb") == b"escaped"
    assert fresh.read("a/b") == b"nested"


# ---------------------------------------------------------------------------
# satellites: delete is IO too; missing-key probes share the read path
# ---------------------------------------------------------------------------

def test_delete_charges_and_counts():
    store = SharedStore()
    store.write("k", b"data")
    before_ops = store.io_ops
    cost = store.delete("k")
    assert cost == pytest.approx(store.op_latency)
    assert store.deletes == 1
    assert store.io_ops == before_ops + 1
    # deleting a missing key is a no-op but still a round trip
    assert store.delete("k") == pytest.approx(store.op_latency)
    assert store.deletes == 2


def test_delete_consults_injector():
    class Veto:
        def on_store_write(self, key):
            raise StoreError(f"vetoed {key}")

        def on_store_read(self, key):
            pass

    store = SharedStore()
    store._put("k", b"data")
    store.injector = Veto()
    with pytest.raises(StoreError):
        store.delete("k")
    assert store.faulted_ops == 1
    assert store.exists("k"), "vetoed delete must not mutate"


def test_read_cost_and_size_share_missing_key_path():
    store = SharedStore()
    with pytest.raises(StoreError):
        store.read("nope")
    with pytest.raises(StoreError):
        store.read_cost("nope")
    with pytest.raises(StoreError):
        store.size("nope")


def test_read_cost_and_size_consult_injector():
    class Blackout:
        def on_store_read(self, key):
            raise StoreError(f"blackout {key}")

    store = SharedStore()
    store._put("k", b"data")
    store.injector = Blackout()
    for probe in (store.read_cost, store.size):
        with pytest.raises(StoreError):
            probe("k")
    assert store.faulted_ops == 2
