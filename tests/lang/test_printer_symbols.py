"""Printer and symbol-interning tests."""

import pickle

from repro.lang.printer import princ_form, print_form
from repro.lang.reader import Char, read_string
from repro.lang.symbols import Keyword, Symbol, gensym


class TestSymbolInterning:
    def test_same_name_same_object(self):
        assert Symbol("abc") is Symbol("abc")

    def test_different_names_differ(self):
        assert Symbol("a") is not Symbol("b")

    def test_keyword_interning(self):
        assert Keyword("k") is Keyword("k")

    def test_symbol_keyword_not_equal(self):
        assert Symbol("x") != Keyword("x")

    def test_symbol_pickle_reinterns(self):
        sym = Symbol("pickle-me")
        clone = pickle.loads(pickle.dumps(sym))
        assert clone is sym

    def test_keyword_pickle_reinterns(self):
        kw = Keyword("pickle-me")
        assert pickle.loads(pickle.dumps(kw)) is kw

    def test_gensym_unique(self):
        assert gensym("x") is not gensym("x")

    def test_gensym_prefix(self):
        assert gensym("loop").name.startswith("#:loop")

    def test_task_variable_detection(self):
        assert Symbol("^flag^").is_task_variable
        assert not Symbol("flag").is_task_variable
        assert not Symbol("^flag").is_task_variable

    def test_symbol_hashable_as_dict_key(self):
        d = {Symbol("a"): 1}
        assert d[Symbol("a")] == 1


class TestPrintForm:
    def test_nil(self):
        assert print_form(None) == "nil"

    def test_t(self):
        assert print_form(True) == "t"

    def test_false(self):
        assert print_form(False) == "false"

    def test_integer(self):
        assert print_form(42) == "42"

    def test_float(self):
        assert print_form(2.5) == "2.5"

    def test_string_quoted_and_escaped(self):
        assert print_form('a"b\nc') == '"a\\"b\\nc"'

    def test_symbol_bare(self):
        assert print_form(Symbol("foo")) == "foo"

    def test_keyword_colon(self):
        assert print_form(Keyword("k")) == ":k"

    def test_list(self):
        assert print_form([1, Symbol("x"), "s"]) == '(1 x "s")'

    def test_char(self):
        assert print_form(Char("a")) == "#\\a"

    def test_char_space(self):
        assert print_form(Char(" ")) == "#\\Space"


class TestPrincForm:
    def test_string_unquoted(self):
        assert princ_form("hi") == "hi"

    def test_char_bare(self):
        assert princ_form(Char("z")) == "z"

    def test_list_recurses_princ(self):
        assert princ_form(["a", 1]) == "(a 1)"


class TestRoundTrip:
    CASES = [
        "42", "-1", "2.5", "foo", ":kw", '"str"', "(1 2 3)",
        "(a (b c) d)", "nil", "t", "#\\x", '("nested" (1.5 :k))',
    ]

    def test_print_read_round_trip(self):
        for case in self.CASES:
            value = read_string(case)
            assert read_string(print_form(value)) == value, case
