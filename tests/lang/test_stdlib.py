"""Standard library tests, exercised through the full pipeline."""

import pytest

from repro.gvm.conditions import UnhandledConditionError
from repro.lang.symbols import Keyword, Symbol

S = Symbol
K = Keyword


class TestArithmetic:
    def test_add_varargs(self, rt):
        assert rt.eval_string("(+ 1 2 3 4)") == 10

    def test_add_empty(self, rt):
        assert rt.eval_string("(+)") == 0

    def test_sub_unary_negates(self, rt):
        assert rt.eval_string("(- 5)") == -5

    def test_sub_chain(self, rt):
        assert rt.eval_string("(- 10 3 2)") == 5

    def test_mul(self, rt):
        assert rt.eval_string("(* 2 3 4)") == 24

    def test_div_exact_integers(self, rt):
        assert rt.eval_string("(/ 10 2)") == 5

    def test_div_inexact(self, rt):
        assert rt.eval_string("(/ 7 2)") == 3.5

    def test_div_reciprocal(self, rt):
        assert rt.eval_string("(/ 4)") == 0.25

    def test_comparison_chains(self, rt):
        assert rt.eval_string("(< 1 2 3)") is True
        assert rt.eval_string("(< 1 3 2)") is False
        assert rt.eval_string("(<= 1 1 2)") is True
        assert rt.eval_string("(> 3 2 1)") is True
        assert rt.eval_string("(>= 3 3 1)") is True

    def test_num_eq(self, rt):
        assert rt.eval_string("(= 2 2 2)") is True
        assert rt.eval_string("(= 2 3)") is False

    def test_num_neq_pairwise(self, rt):
        assert rt.eval_string("(/= 1 2 3)") is True
        assert rt.eval_string("(/= 1 2 1)") is False

    def test_incr_decr(self, rt):
        assert rt.eval_string("(1+ 5)") == 6
        assert rt.eval_string("(1- 5)") == 4

    def test_mod(self, rt):
        assert rt.eval_string("(mod 7 3)") == 1

    def test_expt(self, rt):
        assert rt.eval_string("(expt 2 10)") == 1024

    def test_sqrt(self, rt):
        assert rt.eval_string("(sqrt 9)") == 3.0

    def test_floor_ceiling_round(self, rt):
        assert rt.eval_string("(floor 7 2)") == 3
        assert rt.eval_string("(ceiling 7 2)") == 4
        assert rt.eval_string("(round 7 2)") == 4  # banker's: 3.5 -> 4

    def test_min_max_abs(self, rt):
        assert rt.eval_string("(min 3 1 2)") == 1
        assert rt.eval_string("(max 3 1 2)") == 3
        assert rt.eval_string("(abs -4)") == 4

    def test_predicates(self, rt):
        assert rt.eval_string("(zerop 0)") is True
        assert rt.eval_string("(evenp 4)") is True
        assert rt.eval_string("(oddp 3)") is True
        assert rt.eval_string("(plusp 1)") is True
        assert rt.eval_string("(minusp -1)") is True
        assert rt.eval_string("(numberp 1.5)") is True
        assert rt.eval_string('(numberp "x")') is False
        assert rt.eval_string("(integerp 3)") is True
        assert rt.eval_string("(floatp 3.0)") is True

    def test_division_by_zero_signals(self, rt):
        with pytest.raises(UnhandledConditionError):
            rt.eval_string("(/ 1 0)")


class TestEquality:
    def test_eq_symbols(self, rt):
        assert rt.eval_string("(eq 'a 'a)") is True

    def test_eql_numbers(self, rt):
        assert rt.eval_string("(eql 2 2)") is True
        assert rt.eval_string("(eql 2 2.0)") is False

    def test_equal_lists(self, rt):
        assert rt.eval_string("(equal (list 1 2) (list 1 2))") is True

    def test_not_and_null(self, rt):
        assert rt.eval_string("(not nil)") is True
        assert rt.eval_string("(not 0)") is False  # 0 is truthy
        assert rt.eval_string("(null (list))") is False  # empty list truthy!
        assert rt.eval_string("(null nil)") is True


class TestLists:
    def test_list_and_length(self, rt):
        assert rt.eval_string("(length (list 1 2 3))") == 3

    def test_cons(self, rt):
        assert rt.eval_string("(cons 1 (list 2 3))") == [1, 2, 3]

    def test_car_cdr(self, rt):
        assert rt.eval_string("(car (list 1 2))") == 1
        assert rt.eval_string("(cdr (list 1 2 3))") == [2, 3]
        assert rt.eval_string("(car (list))") is None
        assert rt.eval_string("(cdr (list))") == []

    def test_first_second_third(self, rt):
        assert rt.eval_string("(second (list 1 2 3))") == 2
        assert rt.eval_string("(third (list 1 2 3))") == 3

    def test_nth_and_out_of_range(self, rt):
        assert rt.eval_string("(nth 1 (list 4 5 6))") == 5
        assert rt.eval_string("(nth 9 (list 4))") is None

    def test_last_butlast(self, rt):
        assert rt.eval_string("(last (list 1 2 3))") == [3]
        assert rt.eval_string("(butlast (list 1 2 3))") == [1, 2]

    def test_append(self, rt):
        assert rt.eval_string("(append (list 1) (list 2 3) (list))") == [1, 2, 3]

    def test_append_bang_mutates(self, rt):
        assert rt.eval_string("""
            (let ((xs (list 1 2)))
              (append! xs 3)
              xs)""") == [1, 2, 3]

    def test_reverse(self, rt):
        assert rt.eval_string("(reverse (list 1 2 3))") == [3, 2, 1]

    def test_member(self, rt):
        assert rt.eval_string("(member 2 (list 1 2 3))") == [2, 3]
        assert rt.eval_string("(member 9 (list 1 2 3))") is None

    def test_assoc(self, rt):
        assert rt.eval_string("(assoc :b (list (list :a 1) (list :b 2)))") == \
            [K("b"), 2]

    def test_getf(self, rt):
        assert rt.eval_string("(getf (list :a 1 :b 2) :b)") == 2
        assert rt.eval_string("(getf (list :a 1) :z 99)") == 99

    def test_subseq(self, rt):
        assert rt.eval_string("(subseq (list 1 2 3 4) 1 3)") == [2, 3]

    def test_position_count_remove(self, rt):
        assert rt.eval_string("(position 3 (list 1 3 5))") == 1
        assert rt.eval_string("(count 1 (list 1 2 1))") == 2
        assert rt.eval_string("(remove 1 (list 1 2 1 3))") == [2, 3]

    def test_remove_duplicates(self, rt):
        assert rt.eval_string("(remove-duplicates (list 1 2 1 3 2))") == [1, 2, 3]

    def test_range(self, rt):
        assert rt.eval_string("(range 3)") == [0, 1, 2]
        assert rt.eval_string("(range 1 7 2)") == [1, 3, 5]

    def test_set_car_bang(self, rt):
        assert rt.eval_string("""
            (let ((xs (list 1 2))) (setf (car xs) 9) xs)""") == [9, 2]

    def test_set_nth_bang(self, rt):
        assert rt.eval_string("""
            (let ((xs (list 1 2 3))) (setf (nth 1 xs) 9) xs)""") == [1, 9, 3]


class TestHigherOrder:
    def test_mapcar(self, rt):
        assert rt.eval_string("(mapcar #'1+ (list 1 2 3))") == [2, 3, 4]

    def test_mapcar_two_lists(self, rt):
        assert rt.eval_string("(mapcar #'+ (list 1 2) (list 10 20))") == [11, 22]

    def test_mapcan(self, rt):
        assert rt.eval_string(
            "(mapcan (lambda (x) (list x x)) (list 1 2))") == [1, 1, 2, 2]

    def test_filter(self, rt):
        assert rt.eval_string("(filter #'evenp (list 1 2 3 4))") == [2, 4]

    def test_remove_if(self, rt):
        assert rt.eval_string("(remove-if #'evenp (list 1 2 3 4))") == [1, 3]

    def test_reduce(self, rt):
        assert rt.eval_string("(reduce #'+ (list 1 2 3))") == 6

    def test_reduce_initial(self, rt):
        assert rt.eval_string("(reduce #'+ (list 1 2) 10)") == 13

    def test_find_if(self, rt):
        assert rt.eval_string("(find-if #'evenp (list 1 3 4 5))") == 4

    def test_every_some(self, rt):
        assert rt.eval_string("(every #'evenp (list 2 4))") is True
        assert rt.eval_string("(some #'evenp (list 1 3 4))") is True
        assert rt.eval_string("(some #'evenp (list 1 3))") is None

    def test_sort_default(self, rt):
        assert rt.eval_string("(sort (list 3 1 2))") == [1, 2, 3]

    def test_sort_predicate(self, rt):
        assert rt.eval_string("(sort (list 1 3 2) #'>)") == [3, 2, 1]

    def test_funcall(self, rt):
        assert rt.eval_string("(funcall #'+ 1 2)") == 3

    def test_apply_spread(self, rt):
        assert rt.eval_string("(apply #'+ 1 (list 2 3))") == 6

    def test_apply_lambda(self, rt):
        assert rt.eval_string("(apply (lambda (a b) (* a b)) (list 3 4))") == 12


class TestStrings:
    def test_case(self, rt):
        assert rt.eval_string('(string-upcase "abc")') == "ABC"
        assert rt.eval_string('(string-downcase "ABC")') == "abc"

    def test_string_eq(self, rt):
        assert rt.eval_string('(string= "a" "a")') is True

    def test_concat(self, rt):
        assert rt.eval_string('(concat "a" "b" 1)') == "ab1"

    def test_split_join(self, rt):
        assert rt.eval_string('(string-split "a,b" ",")') == ["a", "b"]
        assert rt.eval_string('(string-join (list "a" "b") "-")') == "a-b"

    def test_starts_ends_with(self, rt):
        assert rt.eval_string('(starts-with-p "foobar" "foo")') is True
        assert rt.eval_string('(ends-with-p "foobar" "bar")') is True

    def test_parse_numbers(self, rt):
        assert rt.eval_string('(parse-integer "42")') == 42
        assert rt.eval_string('(parse-float "2.5")') == 2.5

    def test_symbol_name_and_intern(self, rt):
        assert rt.eval_string("(symbol-name 'abc)") == "abc"
        assert rt.eval_string('(intern "xyz")') is S("xyz")

    def test_subseq_on_strings(self, rt):
        assert rt.eval_string('(subseq "hello" 1 3)') == "el"

    def test_char_code_round_trip(self, rt):
        assert rt.eval_string("(code-char (char-code #\\A))").value == "A"


class TestHashTables:
    def test_make_set_get(self, rt):
        assert rt.eval_string("""
            (let ((h (make-hash-table)))
              (setf (gethash :k h) 5)
              (gethash :k h))""") == 5

    def test_gethash_default(self, rt):
        assert rt.eval_string(
            "(gethash :missing (make-hash-table) :dflt)") == K("dflt")

    def test_remhash(self, rt):
        assert rt.eval_string("""
            (let ((h (make-hash-table)))
              (setf (gethash :k h) 5)
              (remhash :k h)
              (gethash :k h))""") is None

    def test_hash_count_keys(self, rt):
        assert rt.eval_string("""
            (let ((h (make-hash-table)))
              (setf (gethash :a h) 1)
              (setf (gethash :b h) 2)
              (list (hash-count h) (length (hash-keys h))))""") == [2, 2]

    def test_list_key_hashable(self, rt):
        assert rt.eval_string("""
            (let ((h (make-hash-table)))
              (setf (gethash (list 1 2) h) :v)
              (gethash (list 1 2) h))""") == K("v")


class TestFormat:
    def test_format_nil_returns_string(self, rt):
        assert rt.eval_string('(format nil "x=~a" 5)') == "x=5"

    def test_format_s_readable(self, rt):
        assert rt.eval_string('(format nil "~s" "str")') == '"str"'

    def test_format_d(self, rt):
        assert rt.eval_string('(format nil "~d items" 3)') == "3 items"

    def test_format_percent_newline(self, rt):
        assert rt.eval_string('(format nil "a~%b")') == "a\nb"

    def test_format_tilde_tilde(self, rt):
        assert rt.eval_string('(format nil "~~")') == "~"

    def test_princ_prin1_to_string(self, rt):
        assert rt.eval_string('(princ-to-string "x")') == "x"
        assert rt.eval_string('(prin1-to-string "x")') == '"x"'


class TestTypePredicates:
    def test_consp_listp_atom(self, rt):
        assert rt.eval_string("(consp (list 1))") is True
        assert rt.eval_string("(consp (list))") is False
        assert rt.eval_string("(listp (list))") is True
        assert rt.eval_string("(listp nil)") is True
        assert rt.eval_string("(atom 5)") is True
        assert rt.eval_string("(atom (list 1))") is False

    def test_stringp_symbolp_keywordp(self, rt):
        assert rt.eval_string('(stringp "s")') is True
        assert rt.eval_string("(symbolp 'a)") is True
        assert rt.eval_string("(keywordp :a)") is True
        assert rt.eval_string("(keywordp 'a)") is False

    def test_functionp(self, rt):
        assert rt.eval_string("(functionp #'car)") is True
        assert rt.eval_string("(functionp (lambda (x) x))") is True
        assert rt.eval_string("(functionp 5)") is False


class TestInterop:
    def test_dot_method_call(self, rt):
        assert rt.eval_string('(. "hello" (upper))') == "HELLO"

    def test_dot_method_with_args(self, rt):
        assert rt.eval_string('(. "a-b-c" (split "-"))') == ["a", "b", "c"]

    def test_percent_intrinsic(self, rt):
        # outside a fiber this is false
        assert rt.eval_string("(% is-fiber-thread)") in (False, True)

    def test_eval(self, rt):
        assert rt.eval_string("(eval '(+ 1 2))") == 3

    def test_read_from_string(self, rt):
        assert rt.eval_string('(read-from-string "(+ 1 2)")') == \
            [S("+"), 1, 2]

    def test_macroexpand(self, rt):
        expansion = rt.eval_string("(macroexpand '(when a b))")
        assert expansion[0] is S("if")
