"""Reader tests: tokens, literals, reader macros, error handling."""

import pytest

from repro.lang.errors import IncompleteFormError, ReaderError
from repro.lang.reader import (
    Char,
    NO_VALUE,
    CharStream,
    ReadTable,
    Reader,
    read_all,
    read_string,
)
from repro.lang.symbols import Keyword, Symbol

S = Symbol
K = Keyword


class TestAtoms:
    def test_integer(self):
        assert read_string("42") == 42

    def test_negative_integer(self):
        assert read_string("-7") == -7

    def test_positive_sign(self):
        assert read_string("+7") == 7

    def test_float(self):
        assert read_string("3.25") == 3.25

    def test_float_exponent(self):
        assert read_string("1e3") == 1000.0

    def test_symbol(self):
        assert read_string("foo") is S("foo")

    def test_symbol_with_dashes_and_stars(self):
        assert read_string("*global-var*") is S("*global-var*")

    def test_symbol_plus_alone(self):
        assert read_string("+") is S("+")

    def test_symbol_minus_alone(self):
        assert read_string("-") is S("-")

    def test_symbol_1plus(self):
        assert read_string("1+") is S("1+")

    def test_keyword(self):
        assert read_string(":key") == K("key")

    def test_t_reads_as_true(self):
        assert read_string("t") is True

    def test_nil_reads_as_none(self):
        assert read_string("nil") is None

    def test_false(self):
        assert read_string("false") is False

    def test_string(self):
        assert read_string('"hello"') == "hello"

    def test_string_escapes(self):
        assert read_string(r'"a\nb\tc\"d\\e"') == 'a\nb\tc"d\\e'

    def test_empty_string(self):
        assert read_string('""') == ""

    def test_char_literal(self):
        assert read_string("#\\a") == Char("a")

    def test_named_char_space(self):
        assert read_string("#\\Space") == Char(" ")

    def test_named_char_newline(self):
        assert read_string("#\\Newline") == Char("\n")

    def test_unknown_named_char_errors(self):
        with pytest.raises(ReaderError):
            read_string("#\\bogus")

    def test_ratio(self):
        from fractions import Fraction

        assert read_string("1/3") == Fraction(1, 3)


class TestLists:
    def test_empty_list(self):
        assert read_string("()") == []

    def test_flat_list(self):
        assert read_string("(a b c)") == [S("a"), S("b"), S("c")]

    def test_nested_list(self):
        assert read_string("(a (b c) d)") == [S("a"), [S("b"), S("c")], S("d")]

    def test_mixed_literals(self):
        assert read_string('(1 2.5 "x" :k sym)') == [1, 2.5, "x", K("k"), S("sym")]

    def test_commas_are_whitespace(self):
        assert read_string("(1, 2, 3)") == [1, 2, 3]

    def test_unbalanced_close_errors(self):
        with pytest.raises(ReaderError):
            read_string(")")

    def test_unterminated_list_is_incomplete(self):
        with pytest.raises(IncompleteFormError):
            read_string("(a b")

    def test_unterminated_string_is_incomplete(self):
        with pytest.raises(IncompleteFormError):
            read_string('"abc')


class TestQuoting:
    def test_quote(self):
        assert read_string("'x") == [S("quote"), S("x")]

    def test_quote_list(self):
        assert read_string("'(1 2)") == [S("quote"), [1, 2]]

    def test_function_quote(self):
        assert read_string("#'car") == [S("function"), S("car")]

    def test_quasiquote(self):
        assert read_string("`x") == [S("quasiquote"), S("x")]

    def test_unquote_tilde(self):
        assert read_string("`(a ~b)") == \
            [S("quasiquote"), [S("a"), [S("unquote"), S("b")]]]

    def test_unquote_splicing(self):
        assert read_string("`(a ~@b)") == \
            [S("quasiquote"), [S("a"), [S("unquote-splicing"), S("b")]]]


class TestComments:
    def test_line_comment(self):
        assert read_string("; a comment\n42") == 42

    def test_comment_inside_list(self):
        assert read_string("(1 ; two\n 3)") == [1, 3]

    def test_block_comment(self):
        assert read_string("#| block |# 7") == 7

    def test_nested_block_comment(self):
        assert read_string("#| outer #| inner |# still |# 9") == 9

    def test_unterminated_block_comment(self):
        with pytest.raises(IncompleteFormError):
            read_string("#| never ends")


class TestReadAll:
    def test_multiple_forms(self):
        assert read_all("1 2 3") == [1, 2, 3]

    def test_empty_input(self):
        assert read_all("") == []

    def test_whitespace_only(self):
        assert read_all("  \n\t ") == []

    def test_defun_then_call(self):
        forms = read_all("(defun f (x) x) (f 1)")
        assert len(forms) == 2
        assert forms[0][0] is S("defun")


class TestReaderMacros:
    def test_custom_terminating_macro(self):
        table = ReadTable()
        table.set_macro_character("!", lambda rdr, stream, ch: 99)
        assert Reader(table).read_string("!") == 99

    def test_custom_macro_reads_ahead(self):
        table = ReadTable()

        def bracket(reader, stream, ch):
            value = reader.read(stream)
            return [Symbol("wrapped"), value]

        table.set_macro_character("!", bracket)
        assert Reader(table).read_string("!42") == [S("wrapped"), 42]

    def test_non_terminating_macro_mid_token(self):
        """A non-terminating macro char reads as a constituent inside a
        token — the property Vinz's ^var^ macro requires (Listing 5)."""
        table = ReadTable()
        table.set_macro_character("^", lambda rdr, s, c: S("caret"),
                                  non_terminating=True)
        reader = Reader(table)
        # at token start: macro fires
        assert reader.read_string("^") is S("caret")
        # mid-token: plain constituent
        assert reader.read_string("foo^bar") is S("foo^bar")

    def test_terminating_macro_ends_token(self):
        table = ReadTable()
        table.set_macro_character("!", lambda rdr, s, c: S("bang"))
        assert Reader(table).read_all("ab!cd") == [S("ab"), S("bang"), S("cd")]

    def test_readtable_copy_isolation(self):
        table = ReadTable()
        reader1 = Reader(table)
        reader1.readtable.set_macro_character("!", lambda r, s, c: 1)
        reader2 = Reader(table)
        # reader2 copied the original table, before the ! macro
        assert reader2.read_string("!x") is S("!x")


class TestCharStream:
    def test_read_peek_unread(self):
        stream = CharStream("ab")
        assert stream.peek_char() == "a"
        assert stream.read_char() == "a"
        stream.unread_char()
        assert stream.read_char() == "a"
        assert stream.read_char() == "b"
        assert stream.read_char() is None
        assert stream.at_eof()

    def test_line_column_tracking(self):
        stream = CharStream("a\nbc")
        stream.read_char()
        assert stream.line == 1
        stream.read_char()  # newline
        assert stream.line == 2
        stream.read_char()
        assert stream.column == 1

    def test_unread_at_start_errors(self):
        with pytest.raises(ReaderError):
            CharStream("x").unread_char()


class TestDispatch:
    def test_vector_literal(self):
        assert read_string("#(1 2 3)") == [S("vector"), 1, 2, 3]

    def test_uninterned_symbol(self):
        sym = read_string("#:temp")
        assert isinstance(sym, Symbol)
        assert sym.name == "#:temp"

    def test_unknown_dispatch_errors(self):
        with pytest.raises(ReaderError):
            read_string("#zoo")
