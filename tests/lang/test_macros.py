"""Core macro tests: expansion shapes and end-to-end behaviour."""

import pytest

from repro.lang.errors import CompileError
from repro.lang.macros import CORE_MACROS, expand_quasiquote, macroexpand
from repro.lang.reader import read_string
from repro.lang.symbols import Keyword, Symbol

S = Symbol


class TestConditionalMacros:
    def test_when_true(self, rt):
        assert rt.eval_string("(when t 1 2 3)") == 3

    def test_when_false(self, rt):
        assert rt.eval_string("(when nil 1)") is None

    def test_unless(self, rt):
        assert rt.eval_string("(unless nil :yes)") == Keyword("yes")
        assert rt.eval_string("(unless t :yes)") is None

    def test_cond_first_match(self, rt):
        assert rt.eval_string("""
            (let ((x 2))
              (cond ((= x 1) :one)
                    ((= x 2) :two)
                    (t :other)))""") == Keyword("two")

    def test_cond_otherwise(self, rt):
        assert rt.eval_string("(cond (nil 1) (otherwise :def))") == Keyword("def")

    def test_cond_empty(self, rt):
        assert rt.eval_string("(cond)") is None

    def test_cond_test_only_clause(self, rt):
        assert rt.eval_string("(cond (nil) (42))") == 42

    def test_case(self, rt):
        assert rt.eval_string("""
            (let ((x 2)) (case x (1 :one) ((2 3) :few) (otherwise :many)))
        """) == Keyword("few")

    def test_case_otherwise(self, rt):
        assert rt.eval_string("(case 99 (1 :one) (otherwise :other))") == \
            Keyword("other")


class TestSequencingMacros:
    def test_prog1(self, rt):
        assert rt.eval_string("""
            (let ((x 0)) (prog1 x (setq x 9)))""") == 0

    def test_prog2(self, rt):
        assert rt.eval_string("(prog2 1 2 3)") == 2


class TestIterationMacros:
    def test_dolist(self, rt):
        assert rt.eval_string("""
            (let ((acc 0))
              (dolist (x (list 1 2 3)) (setq acc (+ acc x)))
              acc)""") == 6

    def test_dolist_result_form(self, rt):
        assert rt.eval_string(
            "(let ((n 0)) (dolist (x (list 1 2) n) (setq n (1+ n))))") == 2

    def test_dotimes(self, rt):
        assert rt.eval_string("""
            (let ((acc 0)) (dotimes (i 5) (setq acc (+ acc i))) acc)""") == 10

    def test_loop_collect(self, rt):
        assert rt.eval_string(
            "(loop for x in (list 1 2 3) collect (* x 10))") == [10, 20, 30]

    def test_loop_when_collect(self, rt):
        assert rt.eval_string(
            "(loop for x in (list 1 2 3 4) when (evenp x) collect x)") == [2, 4]

    def test_loop_unless_collect(self, rt):
        assert rt.eval_string(
            "(loop for x in (list 1 2 3 4) unless (evenp x) collect x)") == [1, 3]

    def test_loop_sum(self, rt):
        assert rt.eval_string("(loop for x in (list 1 2 3) sum x)") == 6

    def test_loop_count(self, rt):
        assert rt.eval_string(
            "(loop for x in (list 1 2 3 4) count (evenp x))") == 2

    def test_loop_append(self, rt):
        assert rt.eval_string(
            "(loop for x in (list 1 2) append (list x x))") == [1, 1, 2, 2]

    def test_loop_maximize_minimize(self, rt):
        assert rt.eval_string("(loop for x in (list 3 1 4) maximize x)") == 4
        assert rt.eval_string("(loop for x in (list 3 1 4) minimize x)") == 1

    def test_loop_from_to(self, rt):
        assert rt.eval_string("(loop for i from 1 to 4 collect i)") == [1, 2, 3, 4]

    def test_loop_from_below(self, rt):
        assert rt.eval_string("(loop for i from 0 below 3 collect i)") == [0, 1, 2]

    def test_loop_by_step(self, rt):
        assert rt.eval_string("(loop for i from 0 to 6 by 2 collect i)") == \
            [0, 2, 4, 6]

    def test_loop_downto(self, rt):
        assert rt.eval_string("(loop for i from 3 downto 1 collect i)") == \
            [3, 2, 1]

    def test_loop_repeat(self, rt):
        assert rt.eval_string("(loop repeat 3 collect :x)") == \
            [Keyword("x")] * 3

    def test_loop_while(self, rt):
        assert rt.eval_string("""
            (let ((n 0))
              (loop while (< n 3) do (setq n (+ n 1)))
              n)""") == 3

    def test_loop_for_on(self, rt):
        assert rt.eval_string(
            "(loop for tail on (list 1 2 3) collect (length tail))") == [3, 2, 1]

    def test_loop_do(self, rt):
        assert rt.eval_string("""
            (let ((acc (list)))
              (loop for x in (list 1 2) do (append! acc x) (append! acc x))
              acc)""") == [1, 1, 2, 2]

    def test_infinite_loop_with_return(self, rt):
        assert rt.eval_string("""
            (let ((n 0))
              (loop (setq n (+ n 1)) (when (= n 5) (return n))))""") == 5

    def test_empty_loop_is_error(self):
        with pytest.raises(CompileError):
            CORE_MACROS[S("loop")]([])


class TestPlaceMacros:
    def test_incf(self, rt):
        assert rt.eval_string("(let ((x 1)) (incf x) x)") == 2

    def test_incf_delta(self, rt):
        assert rt.eval_string("(let ((x 1)) (incf x 10) x)") == 11

    def test_decf(self, rt):
        assert rt.eval_string("(let ((x 5)) (decf x 2) x)") == 3

    def test_push(self, rt):
        assert rt.eval_string("(let ((xs (list 2))) (push 1 xs) xs)") == [1, 2]

    def test_incf_hash_place(self, rt):
        assert rt.eval_string("""
            (let ((h (make-hash-table)))
              (setf (gethash :n h) 1)
              (incf (gethash :n h))
              (gethash :n h))""") == 2


class TestQuasiquote:
    def test_plain_template(self, rt):
        assert rt.eval_string("`(1 2 3)") == [1, 2, 3]

    def test_unquote(self, rt):
        assert rt.eval_string("(let ((x 5)) `(a ~x))") == [S("a"), 5]

    def test_unquote_splicing(self, rt):
        assert rt.eval_string("(let ((xs (list 1 2))) `(0 ~@xs 3))") == \
            [0, 1, 2, 3]

    def test_nested_lists(self, rt):
        assert rt.eval_string("(let ((x 1)) `((~x) (2)))") == [[1], [2]]

    def test_splicing_outside_list_errors(self):
        with pytest.raises(CompileError):
            expand_quasiquote(read_string("~@x"))


class TestUserMacros:
    def test_defmacro_simple(self, rt):
        rt.eval_string("(defmacro my-if (c a b) `(if ~c ~a ~b))")
        assert rt.eval_string("(my-if t :yes :no)") == Keyword("yes")

    def test_defmacro_body_runs_at_expansion(self, rt):
        rt.eval_string("""
            (defmacro swap-args (form)
              (list (first form) (third form) (second form)))""")
        assert rt.eval_string("(swap-args (- 1 10))") == 9

    def test_macro_sees_earlier_macro(self, rt):
        rt.eval_string("""
            (defmacro m1 (x) `(+ ~x 1))
            (defmacro m2 (x) `(m1 (m1 ~x)))""")
        assert rt.eval_string("(m2 0)") == 2

    def test_macroexpand_driver(self, rt):
        form = read_string("(when a b)")
        expanded = macroexpand(form, rt.global_env, rt.apply)
        assert expanded[0] is S("if")

    def test_defmacro_with_rest(self, rt):
        rt.eval_string("(defmacro all-of (&rest forms) `(and ~@forms))")
        assert rt.eval_string("(all-of t t 3)") == 3


class TestIgnoreErrors:
    def test_ignore_errors_returns_nil_on_error(self, rt):
        assert rt.eval_string('(ignore-errors (error "x"))') is None

    def test_ignore_errors_passes_value(self, rt):
        assert rt.eval_string("(ignore-errors 42)") == 42


class TestDestructuringBind:
    def test_flat(self, rt):
        assert rt.eval_string("""
            (destructuring-bind (a b c) (list 1 2 3) (list c b a))""") == \
            [3, 2, 1]

    def test_nested(self, rt):
        assert rt.eval_string("""
            (destructuring-bind (a (b (c))) (list 1 (list 2 (list 3)))
              (+ a b c))""") == 6

    def test_rest(self, rt):
        assert rt.eval_string("""
            (destructuring-bind (head &rest tail) (list 1 2 3)
              (list head tail))""") == [1, [2, 3]]

    def test_optional_with_default(self, rt):
        assert rt.eval_string("""
            (destructuring-bind (a &optional (b 99)) (list 1)
              (list a b))""") == [1, 99]

    def test_optional_supplied(self, rt):
        assert rt.eval_string("""
            (destructuring-bind (a &optional (b 99)) (list 1 2)
              (list a b))""") == [1, 2]


class TestRotatef:
    def test_two_places(self, rt):
        assert rt.eval_string(
            "(let ((a 1) (b 2)) (rotatef a b) (list a b))") == [2, 1]

    def test_three_places(self, rt):
        assert rt.eval_string(
            "(let ((a 1) (b 2) (c 3)) (rotatef a b c) (list a b c))") == \
            [2, 3, 1]

    def test_hash_places(self, rt):
        assert rt.eval_string("""
            (let ((h (make-hash-table)))
              (setf (gethash :x h) 1 (gethash :y h) 2)
              (rotatef (gethash :x h) (gethash :y h))
              (list (gethash :x h) (gethash :y h)))""") == [2, 1]


class TestAssert:
    def test_passes_silently(self, rt):
        assert rt.eval_string("(progn (assert (= 1 1)) :ok)") == \
            rt.read(":ok")

    def test_failure_signals(self, rt):
        from repro.gvm.conditions import UnhandledConditionError

        import pytest as _pytest

        with _pytest.raises(UnhandledConditionError):
            rt.eval_string('(assert (= 1 2) "one is not two")')

    def test_continue_restart(self, rt):
        assert rt.eval_string("""
            (handler-bind ((error (lambda (c) (invoke-restart 'continue))))
              (assert nil "always fails")
              :continued)""") == rt.read(":continued")


class TestRadixLiterals:
    def test_hex(self, rt):
        assert rt.eval_string("#xff") == 255
        assert rt.eval_string("#XFF") == 255

    def test_octal_binary(self, rt):
        assert rt.eval_string("#o777") == 511
        assert rt.eval_string("#b1011") == 11

    def test_negative(self, rt):
        assert rt.eval_string("#x-10") == -16

    def test_bad_digits_error(self, rt):
        from repro.lang.errors import ReaderError
        from repro.lang.reader import read_string

        import pytest as _pytest

        with _pytest.raises(ReaderError):
            read_string("#b102")
