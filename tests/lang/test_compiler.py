"""Compiler tests: special forms, lambda lists, bytecode well-formedness."""

import pytest

from repro.lang.bytecode import CodeObject, nested_code_objects, validate
from repro.lang.compiler import Compiler
from repro.lang.errors import CompileError
from repro.lang.reader import read_string
from repro.lang.symbols import Symbol

S = Symbol


@pytest.fixture
def compiler():
    return Compiler()


def compile_text(compiler, text):
    return compiler.compile_toplevel(read_string(text))


class TestBasicCompilation:
    def test_constant(self, compiler):
        code = compile_text(compiler, "42")
        assert code.instructions[0] == ("const", 42)
        assert code.instructions[-1][0] == "return"

    def test_symbol_load(self, compiler):
        code = compile_text(compiler, "x")
        assert code.instructions[0] == ("load", S("x"))

    def test_call(self, compiler):
        code = compile_text(compiler, "(f 1 2)")
        ops = [op for op, _ in code.instructions]
        assert "call" in ops
        call_arg = [arg for op, arg in code.instructions if op == "call"][0]
        assert call_arg == 2

    def test_quote(self, compiler):
        code = compile_text(compiler, "'(1 2)")
        assert ("const", [1, 2]) in code.instructions

    def test_if_has_two_jumps(self, compiler):
        code = compile_text(compiler, "(if a b c)")
        ops = [op for op, _ in code.instructions]
        assert "jump-if-false" in ops and "jump" in ops

    def test_empty_list_constant(self, compiler):
        code = compile_text(compiler, "()")
        assert code.instructions[0] == ("const", [])


class TestValidation:
    """All emitted bytecode passes the static validator."""

    PROGRAMS = [
        "42",
        "(+ 1 2)",
        "(if a b c)",
        "(let ((x 1) (y 2)) (+ x y))",
        "(let* ((x 1) (y (+ x 1))) y)",
        "(lambda (a b) (+ a b))",
        "(defun f (x) (* x x))",
        "(while (< i 10) (setq i (+ i 1)))",
        "(and a b c)",
        "(or a b c)",
        "(block b (return-from b 1))",
        "(setf x 1)",
        "(progn 1 2 3)",
        "(cond ((= x 1) :one) ((= x 2) :two) (t :other))",
        "(when x 1 2)",
        "(unless x 1 2)",
        "(dolist (x xs) (print x))",
        "(dotimes (i 10) (print i))",
        "(loop for x in xs collect (* x x))",
        "(loop for i from 0 to 10 by 2 sum i)",
        "(unwind-protect (f) (cleanup))",
        "(handler-bind ((error (lambda (c) c))) (f))",
        "(restart-case (f) (retry () (f)) (ignore () nil))",
        "(future (+ 1 2))",
        "(yield)",
        "(push-cc)",
        "(. obj (method 1 2))",
        "(. obj field)",
        "(% is-fiber-thread)",
        "`(a ~b ~@c)",
        "(case x (1 :one) ((2 3) :few) (otherwise :many))",
    ]

    def test_all_programs_validate(self, compiler):
        for text in self.PROGRAMS:
            code = compile_text(compiler, text)
            for obj in nested_code_objects(code):
                problems = validate(obj)
                assert not problems, f"{text}: {problems}"


class TestLambdaLists:
    def test_required_only(self, compiler):
        spec = compiler.parse_lambda_list(read_string("(a b c)"))
        assert [p.name for p in spec.required] == ["a", "b", "c"]
        assert spec.max_positional == 3

    def test_optional(self, compiler):
        spec = compiler.parse_lambda_list(read_string("(a &optional b (c 7))"))
        assert len(spec.optional) == 2
        assert spec.optional[0][1] is None
        assert spec.optional[1][1] is not None  # compiled default

    def test_rest(self, compiler):
        spec = compiler.parse_lambda_list(read_string("(a &rest more)"))
        assert spec.rest is S("more")
        assert spec.max_positional is None

    def test_keys(self, compiler):
        spec = compiler.parse_lambda_list(read_string("(&key x (y 2))"))
        assert len(spec.keys) == 2

    def test_bad_lambda_list(self, compiler):
        with pytest.raises(CompileError):
            compiler.parse_lambda_list(read_string("(1 2)"))

    def test_arity_description(self, compiler):
        spec = compiler.parse_lambda_list(read_string("(a &optional b)"))
        assert spec.arity_description() == "1 to 2"


class TestErrors:
    BAD = [
        "(if)",
        "(quote)",
        "(quote a b)",
        "(let x 1)",
        "(lambda)",
        "(defun 42 () 1)",
        "(setq 42 1)",
        "(setq x)",
        "(setf (unknown-place x) 1)",
        "(block 42 x)",
        "(function 42)",
        "(the x)",
        "(. obj)",
    ]

    def test_bad_forms_raise_compile_error(self, compiler):
        for text in self.BAD:
            with pytest.raises(CompileError):
                compile_text(compiler, text)


class TestSetfPlaces:
    def test_setf_symbol_is_setq(self, compiler):
        code = compile_text(compiler, "(setf x 1)")
        assert ("store", S("x")) in code.instructions

    def test_setf_gethash(self, compiler):
        code = compile_text(compiler, '(setf (gethash "k" h) 2)')
        loads = [arg for op, arg in code.instructions if op == "load"]
        assert S("%sethash") in loads

    def test_setf_car(self, compiler):
        code = compile_text(compiler, "(setf (car x) 2)")
        loads = [arg for op, arg in code.instructions if op == "load"]
        assert S("set-car!") in loads

    def test_setf_pairs(self, compiler):
        code = compile_text(compiler, "(setf a 1 b 2)")
        stores = [arg for op, arg in code.instructions if op == "store"]
        assert stores == [S("a"), S("b")]

    def test_setf_task_var(self, compiler):
        code = compile_text(compiler, "(setf (%get-task-var 'f^) t)")
        loads = [arg for op, arg in code.instructions if op == "load"]
        assert S("%set-task-var") in loads


class TestTailCalls:
    def test_tail_position_in_defun(self, compiler):
        code = compile_text(compiler, "(defun f (x) (f x))")
        inner = [arg for op, arg in code.instructions if op == "closure"][0]
        ops = [op for op, _ in inner.instructions]
        assert "tail-call" in ops

    def test_non_tail_not_tail_call(self, compiler):
        code = compile_text(compiler, "(defun f (x) (+ 1 (f x)))")
        inner = [arg for op, arg in code.instructions if op == "closure"][0]
        # the recursive call is an argument — not a tail call
        calls = [op for op, _ in inner.instructions if op == "call"]
        assert len(calls) >= 1

    def test_tail_through_if(self, compiler):
        code = compile_text(compiler, "(defun f (x) (if x (f x) nil))")
        inner = [arg for op, arg in code.instructions if op == "closure"][0]
        assert "tail-call" in [op for op, _ in inner.instructions]


class TestDisassembler:
    def test_disassemble_output(self, compiler):
        code = compile_text(compiler, "(+ 1 2)")
        text = code.disassemble()
        assert "const" in text
        assert "call" in text

    def test_nested_code_objects_found(self, compiler):
        code = compile_text(compiler, "(lambda (x) (lambda (y) (+ x y)))")
        assert len(nested_code_objects(code)) == 3
