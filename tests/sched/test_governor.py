"""AIMD spawn-governor tests: the control law in isolation, the
``(vinz-auto-spawn-limit)`` opt-in path, and the chaos campaign proving
the governor converges (backs off, then recovers) under an injected
node slow-down."""

from repro.faults.campaign import run_campaign
from repro.faults.plan import FaultPlan, NodeFault
from repro.sched.governor import GovernorConfig
from repro.vinz.api import VinzEnvironment


def make_env(**kw):
    return VinzEnvironment(nodes=2, seed=11, **kw)


class TestControlLaw:
    def test_additive_increase_with_headroom(self):
        env = make_env()
        g = env.governor
        base = g.limit
        limits = [g.current_limit((i + 1) * g.config.interval)
                  for i in range(5)]
        # an idle cluster is all headroom: +increase per interval
        assert limits == [base + g.config.increase * (i + 1)
                          for i in range(5)]
        assert g.increases == 5 and g.decreases == 0

    def test_multiplicative_decrease_on_queue_depth(self):
        env = make_env()
        g = env.governor
        q = env.cluster.queue
        slots = env.cluster.total_slots()
        for _ in range(int(g.config.depth_high * slots) + slots):
            q.enqueue(q.make_message("S", "Op", {}), now=0.0)
        before = g.limit
        g.current_limit(g.config.interval)
        assert g.limit == max(g.config.min_limit,
                              int(before * g.config.decrease))
        assert g.decreases == 1

    def test_decrease_on_interval_queue_wait(self):
        env = make_env()
        g = env.governor
        q = env.cluster.queue
        q.enqueue(q.make_message("S", "Op", {}), now=0.0)
        q.pop_next("S", now=1.0)  # one delivery that waited >= wait_high
        before = g.limit
        g.current_limit(1.0)
        assert g.limit < before

    def test_limit_clamped_to_bounds(self):
        env = make_env(governor=GovernorConfig(initial=2, max_limit=6,
                                               interval=0.1))
        g = env.governor
        for i in range(1, 20):
            g.current_limit(i * 0.1)
        assert g.limit == 6
        # now congest hard: repeated halving stops at min_limit
        q = env.cluster.queue
        for _ in range(50):
            q.enqueue(q.make_message("S", "Op", {}), now=2.0)
        for i in range(20, 40):
            g.current_limit(i * 0.1)
        assert g.limit == g.config.min_limit

    def test_at_most_one_decision_per_interval(self):
        env = make_env()
        g = env.governor
        g.current_limit(g.config.interval)
        decided = g.decisions
        g.current_limit(g.config.interval)  # same instant: no re-decide
        assert g.decisions == decided

    def test_history_and_summary_track_changes(self):
        env = make_env()
        g = env.governor
        g.current_limit(g.config.interval)
        summary = g.summary()
        assert summary["limit"] == g.limit
        assert summary["max_seen"] == g.limit
        assert g.history[0][1] == g.config.initial

    def test_spawn_limit_gauge_published(self):
        env = make_env()
        env.governor.current_limit(env.governor.config.interval)
        assert env.cluster.metrics.gauge("sched.spawn_limit").value == \
            env.governor.limit


class TestAutoSpawnLimitOptIn:
    def test_auto_spawn_limit_intrinsic_reads_governor(self):
        env = make_env()
        env.deploy_workflow("W", """
            (defun main (params)
              (auto-spawn-limit))""")
        assert env.call("W", None) == env.governor.limit

    def test_auto_task_reads_limit_through_governor(self):
        env = make_env()
        env.deploy_workflow("W", """
            (defun main (params)
              (auto-spawn-limit)
              (get-spawn-limit))""")
        assert env.call("W", None) == env.governor.limit

    def test_deploy_with_auto_limit(self):
        env = make_env()
        env.deploy_workflow("W", """
            (defun main (params)
              (get-spawn-limit))""", spawn_limit="auto")
        assert env.call("W", None) == env.governor.limit

    def test_static_limit_ignores_governor(self):
        env = make_env()
        env.deploy_workflow("W", """
            (defun main (params)
              (get-spawn-limit))""", spawn_limit=7)
        assert env.call("W", None) == 7


class TestChaosConvergence:
    """The ISSUE's convergence proof: a chaos campaign injects a 10x
    node slow-down mid-run and the governor's history must show the
    AIMD shape — additive ramp while calm, multiplicative cuts once the
    injected latency lands — with the campaign still completing every
    task correctly, bit-identically on replay."""

    FAULT_AT = 8.0
    PLAN = FaultPlan([NodeFault(action="slow", node="node-1", at=FAULT_AT,
                                factor=10.0, duration=5.0)],
                     name="slow-node")
    #: thresholds calibrated to the campaign topology (2 nodes, wide
    #: fan-outs saturate ~11 messages/slot even when healthy), so the
    #: *latency* signal is the discriminating one
    CONFIG = dict(interval=0.25, depth_high=30.0, depth_low=15.0,
                  wait_high=3.0, wait_low=2.0, latency_factor=2.0)

    def _run(self, plan=PLAN, seed=23):
        return run_campaign(plan, seed=seed, tasks=6, nodes=2,
                            adaptive_spawn=True,
                            governor=GovernorConfig(**self.CONFIG),
                            items_range=(8, 16))

    def test_governor_converges_under_injected_slowdown(self):
        report = self._run()
        g = report.env.governor
        assert report.all_completed
        assert not report.wrong_results()
        # calm phase: the limit ramped additively above its start
        ramped = [t for t, limit in g.history
                  if t < self.FAULT_AT and limit > g.config.initial]
        assert g.increases >= 1 and ramped
        # fault phase: the injected latency forced multiplicative cuts
        assert g.decreases >= 1
        cuts = [(t1, l1) for (_t0, l0), (t1, l1)
                in zip(g.history, g.history[1:]) if l1 < l0]
        assert cuts and all(t >= self.FAULT_AT for t, _ in cuts)
        assert g.limit < g.summary()["max_seen"]

    def test_no_fault_baseline_never_backs_off(self):
        report = self._run(plan=FaultPlan())
        g = report.env.governor
        assert report.all_completed
        assert g.increases >= 1 and g.decreases == 0

    def test_convergence_trace_replays_bit_identically(self):
        first = self._run()
        second = self._run()
        assert first.env.governor.history == second.env.governor.history
        assert first.signature() == second.signature()
