"""Scheduling-policy property tests.

Two invariants pin the fair scheduler down:

* **starvation freedom** — under a sustained interactive-priority flood
  a normal-priority message is still delivered within the priority-aging
  bound.  The strict seed policy is *expected to fail* this guarantee
  (the flood harness asserts that too, so the suite documents exactly
  the failure mode the fair policy exists to fix);
* **per-workflow FIFO** — whatever the interleaving of flows,
  priorities and pop instants, messages of one flow leave in arrival
  order, and every message pushed is popped exactly once.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bluebox.messagequeue import (
    MessageQueue,
    PRIORITY_INTERACTIVE,
    PRIORITY_LOW,
    PRIORITY_NORMAL,
)
from repro.sched.fair import (
    CONTROL_FLOW,
    DeficitRoundRobinPolicy,
    StrictPriorityPolicy,
    default_flow_of,
    make_policy,
)


def flood_until_victim_served(policy, steps=80, step=0.1):
    """A hog workflow floods interactive-priority messages while one
    normal-priority victim waits.  Each step enqueues a fresh hog
    message and pops once.  Returns the virtual time the victim was
    served, or None if it starved for the whole flood."""
    q = MessageQueue(policy=policy)
    victim = q.make_message("S", "Work", {"task": "victim"},
                            priority=PRIORITY_NORMAL)
    q.enqueue(victim, now=0.0)
    for i in range(steps):
        now = i * step
        hog = q.make_message("S", "Work", {"task": "hog"},
                             priority=PRIORITY_INTERACTIVE)
        q.enqueue(hog, now=now)
        if q.pop_next("S", now=now) is victim:
            return now
    return None


class TestStarvationFreedom:
    def test_strict_heap_starves_normal_priority(self):
        """The seed policy never serves the victim under a flood — the
        bug this subsystem fixes.  If this assertion ever fails, strict
        priority grew an aging mechanism and the fair policy's reason
        to exist should be re-examined."""
        assert flood_until_victim_served(StrictPriorityPolicy()) is None

    def test_fair_serves_victim_within_aging_bound(self):
        served_at = flood_until_victim_served(DeficitRoundRobinPolicy())
        # NORMAL (5) ages into the INTERACTIVE band (2) after
        # (5 - 2) / aging_rate = 3 virtual seconds; one rotation later
        # the victim must come off the queue
        assert served_at is not None
        assert served_at <= 3.5

    def test_fair_counts_the_aged_promotion(self):
        policy = DeficitRoundRobinPolicy()
        assert flood_until_victim_served(policy) is not None
        assert policy.aged_promotions >= 1

    @given(st.floats(min_value=0.25, max_value=4.0))
    @settings(max_examples=20, deadline=None)
    def test_aging_bound_scales_with_rate(self, rate):
        policy = DeficitRoundRobinPolicy(aging_rate=rate)
        served_at = flood_until_victim_served(policy, steps=400, step=0.05)
        assert served_at is not None
        bound = (PRIORITY_NORMAL - PRIORITY_INTERACTIVE) / rate
        assert served_at <= bound + 1.0


#: a random workload: (flow id, priority, inter-arrival gap)
arrival_plans = st.lists(
    st.tuples(st.integers(min_value=0, max_value=3),
              st.sampled_from([PRIORITY_INTERACTIVE, PRIORITY_NORMAL,
                               PRIORITY_LOW]),
              st.floats(min_value=0.0, max_value=0.5)),
    min_size=1, max_size=40)


def _fill(queue, plan):
    """Enqueue the plan; returns ({flow key: [message, ...]}, end time)."""
    now = 0.0
    pushed = {}
    for flow_id, prio, gap in plan:
        now += gap
        msg = queue.make_message("S", "Op", {"task": f"flow-{flow_id}"},
                                 priority=prio)
        queue.enqueue(msg, now=now)
        pushed.setdefault(f"flow-{flow_id}", []).append(msg)
    return pushed, now


class TestPerWorkflowFifo:
    @given(arrival_plans, st.floats(min_value=0.0, max_value=1.0))
    @settings(max_examples=100, deadline=None)
    def test_drr_preserves_flow_order_and_conserves_messages(
            self, plan, pop_gap):
        q = MessageQueue(policy=DeficitRoundRobinPolicy())
        pushed, now = _fill(q, plan)
        popped = {}
        while q.total_depth():
            now += pop_gap
            msg = q.pop_next("S", now=now)
            popped.setdefault(default_flow_of(msg), []).append(msg)
        assert sum(len(v) for v in popped.values()) == len(plan)
        for key, msgs in pushed.items():
            assert [m.id for m in popped.get(key, [])] == \
                [m.id for m in msgs]

    @given(arrival_plans, st.floats(min_value=0.0, max_value=1.0))
    @settings(max_examples=50, deadline=None)
    def test_peek_and_pop_agree_at_the_same_instant(self, plan, pop_gap):
        """The cluster dispatch loop peeks, places, then pops — all at
        one virtual instant — and relies on the three answers naming
        the same message."""
        q = MessageQueue(policy=DeficitRoundRobinPolicy())
        _pushed, now = _fill(q, plan)
        while q.total_depth():
            now += pop_gap
            peeked = q.peek_message("S", now=now)
            prio_key = q.peek_priority("S", now=now)
            msg = q.pop_next("S", now=now)
            assert peeked is msg
            assert prio_key is not None

    def test_control_flow_gathers_anonymous_messages(self):
        q = MessageQueue(policy=DeficitRoundRobinPolicy())
        msg = q.make_message("S", "Ping", {})
        assert default_flow_of(msg) == CONTROL_FLOW


class TestPolicyPlumbing:
    def test_make_policy_specs(self):
        assert isinstance(make_policy(None), StrictPriorityPolicy)
        assert isinstance(make_policy("strict"), StrictPriorityPolicy)
        assert isinstance(make_policy("fair"), DeficitRoundRobinPolicy)
        custom = DeficitRoundRobinPolicy(aging_rate=0.5)
        assert make_policy(custom) is custom
        with pytest.raises(ValueError):
            make_policy("lottery")

    def test_drr_parameter_validation(self):
        with pytest.raises(ValueError):
            DeficitRoundRobinPolicy(aging_rate=-1.0)
        with pytest.raises(ValueError):
            DeficitRoundRobinPolicy(quantum=0.5)

    def test_queue_default_policy_is_strict(self):
        assert MessageQueue().policy.name == "strict"
