"""Admission-control tests: watermark verdicts in isolation, then the
full backpressure loop end-to-end — an overloaded service sheds with a
retryable ``{urn:bluebox}ServerBusy`` fault, a Gozer ``defhandler``
retries it to success, and every decision is visible as ``sched.*``
metrics and ``sched``-kind spans in the Chrome trace export."""

import pytest

from repro.bluebox.services import simple_service
from repro.observe.export import chrome_trace_events
from repro.sched.admission import (
    ACCEPT,
    DELAY,
    SERVER_BUSY_QNAME,
    SHED,
    AdmissionConfig,
    AdmissionController,
    make_admission,
)
from repro.vinz.api import VinzEnvironment
from repro.vinz.task import COMPLETED


class TestWatermarks:
    def test_accept_below_delay_watermark(self):
        c = AdmissionController()
        assert c.decide("S", "Op", backlog=3, slots=1,
                        sheddable=True) == (ACCEPT, 0.0)

    def test_delay_between_watermarks(self):
        c = AdmissionController()
        verdict, delay = c.decide("S", "Op", backlog=6, slots=1,
                                  sheddable=True)
        assert verdict == DELAY and delay > 0.0

    def test_shed_above_shed_watermark(self):
        c = AdmissionController()
        verdict, delay = c.decide("S", "Op", backlog=20, slots=1,
                                  sheddable=True)
        assert verdict == SHED and delay == 0.0

    def test_unsheddable_request_is_delayed_not_shed(self):
        """No reply_to means nobody to hand the fault to — the deepest
        overload still only delays."""
        c = AdmissionController()
        verdict, delay = c.decide("S", "Op", backlog=50, slots=1,
                                  sheddable=False)
        assert verdict == DELAY and delay > 0.0

    def test_exempt_operations_always_accepted(self):
        c = AdmissionController()
        for op in ("RunFiber", "AwakeFiber", "ResumeFromCall",
                   "JoinProcess", "DeliverMessage", "Terminate"):
            assert c.decide("S", op, backlog=500, slots=1,
                            sheddable=True) == (ACCEPT, 0.0)

    def test_backlog_normalised_by_slots(self):
        c = AdmissionController()
        assert c.decide("S", "Op", backlog=20, slots=8,
                        sheddable=True)[0] == ACCEPT

    def test_deeper_overload_backs_off_harder(self):
        c = AdmissionController()
        shallow = c.decide("S", "Op", 5, 1, False)[1]
        deep = c.decide("S", "Op", 40, 1, False)[1]
        assert deep > shallow

    def test_decisions_are_counted(self):
        c = AdmissionController()
        c.decide("S", "Op", 0, 1, True)
        c.decide("S", "Op", 6, 1, True)
        c.decide("S", "Op", 20, 1, True)
        assert c.summary() == {"accepted": 1, "delayed": 1, "shed": 1}

    def test_scoped_to_named_services(self):
        c = AdmissionController(AdmissionConfig(
            services=frozenset({"Backend"})))
        # ungoverned service: any backlog is accepted
        assert c.decide("Workflow", "Start", backlog=100, slots=1,
                        sheddable=True) == (ACCEPT, 0.0)
        # governed service still sheds
        assert c.decide("Backend", "Op", backlog=100, slots=1,
                        sheddable=True)[0] == SHED

    def test_make_admission_specs(self):
        assert make_admission(None) is None
        assert make_admission(False) is None
        assert isinstance(make_admission(True), AdmissionController)
        cfg = AdmissionConfig(delay_watermark=1.0)
        controller = make_admission(cfg)
        assert controller.config is cfg
        assert make_admission(controller) is controller
        with pytest.raises(ValueError):
            make_admission("open-door")


class TestEndToEndBackpressure:
    def _overloaded_env(self):
        """Twelve concurrent workflows all call one slow two-slot
        service: backlog rockets past the shed watermark, so some calls
        are answered with ServerBusy, and the workflow-side handler
        retries them until the cluster drains."""
        env = VinzEnvironment(
            nodes=2, seed=5,
            admission=AdmissionConfig(delay_watermark=0.5,
                                      shed_watermark=1.0,
                                      services=frozenset({"Svc"})))
        calls = {"n": 0}

        def tx(ctx, body):
            calls["n"] += 1
            ctx.charge(0.5)
            return "ok"

        env.deploy_service(simple_service("Svc", {"Tx": tx},
                                          namespace="urn:svc"))
        env.deploy_workflow("W", """
            (deflink S :wsdl "urn:svc")
            (defhandler busy-retry
              :code ("{urn:bluebox}ServerBusy")
              :action retry
              :count 1000)
            (defun main (params)
              (with-handler busy-retry (S-Tx-Method)))""")
        return env, calls

    def test_overload_sheds_then_gozer_retry_succeeds(self):
        env, calls = self._overloaded_env()
        tasks = [env.start("W", i) for i in range(12)]
        env.cluster.run_until_idle()
        # every task survived the overload...
        assert all(env.registry.tasks[t].status == COMPLETED
                   for t in tasks)
        # ...the service actually shed (the handler had work to do)...
        admission = env.cluster.admission
        assert admission.shed > 0
        # ...and each task's call executed exactly once: sheds happen at
        # the front door, before the service runs
        assert calls["n"] == 12

    def test_decisions_visible_as_metrics_and_spans(self):
        env, _calls = self._overloaded_env()
        tasks = [env.start("W", i) for i in range(12)]
        env.cluster.run_until_idle()
        assert all(env.registry.tasks[t].status == COMPLETED
                   for t in tasks)
        # sched.* metrics
        metrics = env.cluster.metrics
        assert metrics.counter("sched.admission.shed").value > 0
        assert metrics.gauge("sched.backlog.Svc").value >= 0
        # monitoring counters mirror the controller's tallies
        counters = env.cluster.counters
        assert counters.get("admission.shed") == env.cluster.admission.shed
        # sched-kind spans, present in the Chrome trace export
        shed_spans = [s for s in env.cluster.tracer.of_kind("sched")
                      if s.name.startswith("sched:shed")]
        assert shed_spans
        names = {e.get("name") for e in
                 chrome_trace_events(env.cluster.tracer)}
        assert any(n and n.startswith("sched:shed") for n in names)

    def test_shed_fault_is_the_documented_qname(self):
        """A caller with no handler sees the raw retryable fault."""
        env = VinzEnvironment(
            nodes=1, seed=5,
            admission=AdmissionConfig(delay_watermark=0.1,
                                      shed_watermark=0.1))
        replies = []

        def probe(ctx, body):
            ctx.charge(1.0)
            return "slow"

        env.deploy_service(simple_service("Svc", {"Px": probe},
                                          namespace="urn:svc"))
        from repro.bluebox.messagequeue import ReplyTo
        # two sends back-to-back: the second finds backlog >= watermark
        env.cluster.send("Svc", "Px", {},
                         reply_to=ReplyTo(callback=replies.append))
        env.cluster.send("Svc", "Px", {},
                         reply_to=ReplyTo(callback=replies.append))
        env.cluster.run_until_idle()
        # callbacks receive the serialized reply body
        faults = [r for r in replies if "fault" in r]
        assert faults and faults[0]["fault"] == SERVER_BUSY_QNAME

    def test_admission_off_by_default(self):
        env = VinzEnvironment(nodes=1, seed=5)
        assert env.cluster.admission is None
