"""Ablation benches for the Section 5 future-work extensions.

The paper's closing section sketches improvements; we implemented three
and measure each against the paper's baseline behaviour:

* E1 locality-aware placement vs. queue-only placement — does the fiber
  cache stop being "only somewhat effective"?
* E2 adaptive migration vs. always-migrate — does learning recover the
  overhead the programmer would otherwise have to guess away?
* E3 sibling chaining vs. AwakeFiber-per-spawn — does the low-spawn-
  limit permission overhead disappear?
"""

import pytest

from repro.bluebox.services import simple_service
from repro.harness.reporting import paper_vs_measured, series
from repro.vinz.api import VinzEnvironment

MULTI_HOP = """
(defun main (params)
  (dotimes (i 6) (workflow-sleep 0.2))
  :done)
"""


def test_e1_affinity_placement(benchmark, bench_report):
    def run(placement):
        env = VinzEnvironment(nodes=8, seed=11, placement=placement,
                              trace=False)
        env.deploy_workflow("W", MULTI_HOP)
        for i in range(10):
            env.cluster.send("W", "Start", {"params": i})
        env.cluster.run_until_idle()
        return env

    benchmark.pedantic(lambda: run("affinity"), rounds=1, iterations=1)

    results = {p: run(p) for p in ("balanced", "affinity")}
    rows = []
    for placement, env in results.items():
        rates = env.cache_hit_rates()
        rows.append((placement,
                     round(rates["mutable"], 3),
                     round(rates["immutable"], 3),
                     env.store.reads,
                     round(env.cluster.kernel.now, 2)))
    bench_report("ext_affinity", series(
        "E1 — locality-aware placement vs queue-only "
        "(paper §4.2 cache problem, §5 Swarm idea)",
        "placement",
        ["mutable hit rate", "immutable hit rate", "store reads",
         "makespan (virt s)"],
        rows))

    balanced = results["balanced"].cache_hit_rates()["mutable"]
    affinity = results["affinity"].cache_hit_rates()["mutable"]
    assert affinity > 2 * balanced
    assert results["affinity"].store.reads < results["balanced"].store.reads


def test_e2_adaptive_migration(benchmark, bench_report):
    def run(policy, tasks=6):
        env = VinzEnvironment(nodes=4, seed=12, trace=False)
        env.migration_policy = policy

        def fast(ctx, body):
            ctx.charge(0.001)
            return 1

        def slow(ctx, body):
            ctx.charge(2.0)
            return 2

        env.deploy_service(simple_service(
            "Mixed", {"Fast": fast, "Slow": slow}, namespace="urn:mixed"))
        env.deploy_workflow("W", """
            (deflink M :wsdl "urn:mixed")
            (defun main (params)
              (dotimes (i 6) (M-Fast-Method))
              (M-Slow-Method))""")
        for _ in range(tasks):
            env.call("W", None)
        return env

    benchmark.pedantic(lambda: run("adaptive"), rounds=1, iterations=1)

    results = {p: run(p) for p in ("programmer", "adaptive")}
    rows = []
    for policy, env in results.items():
        rows.append((policy,
                     env.cluster.counters.get("op.W.ResumeFromCall"),
                     env.counters.get("persist.writes"),
                     env.cluster.counters.get("sync.Mixed.Fast"),
                     round(env.cluster.kernel.now, 2)))
    bench_report("ext_adaptive_migration", series(
        "E2 — adaptive migration vs always-migrate "
        "(§5: 'learn which requests do or do not benefit')",
        "policy",
        ["migrations (ResumeFromCall)", "persists", "sync fast calls",
         "total virt s"],
        rows))

    prog = results["programmer"]
    adap = results["adaptive"]
    # adaptive eliminates most fast-call migrations and their persists
    assert adap.counters.get("persist.writes") < \
        prog.counters.get("persist.writes") / 2
    # and still migrates the slow calls (fibers don't block 2s slots)
    assert adap.cluster.counters.get("op.W.ResumeFromCall") >= 6


def test_e3_sibling_chaining(benchmark, bench_report):
    children = 12

    def run(strategy, limit):
        env = VinzEnvironment(nodes=8, seed=13, trace=False)
        opt = ":strategy :chain" if strategy == "chain" else ""
        env.deploy_workflow("W", f"""
            (defun main (params)
              (for-each (x in params {opt}) (compute 1.0) x))""",
            spawn_limit=limit)
        env.run("W", list(range(children)))
        return env

    benchmark.pedantic(lambda: run("chain", 4), rounds=1, iterations=1)

    rows = []
    stats = {}
    for strategy in ("awake", "chain"):
        for limit in (2, 4, 8):
            env = run(strategy, limit)
            stats[(strategy, limit)] = env
            rows.append((f"{strategy} / limit {limit}",
                         round(env.cluster.kernel.now, 2),
                         env.cluster.counters.get("op.W.AwakeFiber"),
                         env.counters.get("persist.writes"),
                         env.cluster.queue.delivered))
    bench_report("ext_sibling_chain", series(
        f"E3 — sibling chaining vs AwakeFiber-per-spawn "
        f"({children} children x 1s)",
        "strategy / spawn limit",
        ["makespan (virt s)", "AwakeFiber msgs", "persists",
         "messages delivered"],
        rows))

    for limit in (2, 4, 8):
        awake_env = stats[("awake", limit)]
        chain_env = stats[("chain", limit)]
        # one parent wake-up instead of N
        assert chain_env.cluster.counters.get("op.W.AwakeFiber") == 1
        assert awake_env.cluster.counters.get("op.W.AwakeFiber") >= children
        # fewer messages and parent persists overall
        assert chain_env.cluster.queue.delivered < \
            awake_env.cluster.queue.delivered
        # and never slower
        assert chain_env.cluster.kernel.now <= \
            awake_env.cluster.kernel.now * 1.05


def test_e4_deadline_scheduling(benchmark, bench_report):
    """E4: FCFS (the paper's production scheduler, 'shown to be
    suboptimal in the presence of deadlines') vs the EDF policy built
    from the paper's references [7] and [8]."""
    def run(policy, n=16, seed=14):
        env = VinzEnvironment(nodes=2, slots=2, seed=seed, trace=False)
        env.scheduling_policy = policy
        env.edf_horizon = 10.0
        env.deploy_workflow("W", """
            (defun main (params) (compute 1.0) :done)""")
        deadlines = []
        for i in range(n):
            deadline = 1.6 + (n - 1 - i) * 0.3  # inverse to submit order
            deadlines.append(deadline)
            env.cluster.send("W", "Start",
                             {"params": i, "deadline": deadline})
        env.cluster.run_until_idle()
        misses = 0
        total_lateness = 0.0
        for task, deadline in zip(env.registry.tasks.values(), deadlines):
            assert task.status == "completed"
            if task.finished_at > deadline:
                misses += 1
                total_lateness += task.finished_at - deadline
        return {"misses": misses, "lateness": total_lateness,
                "makespan": env.cluster.kernel.now, "n": n}

    benchmark.pedantic(lambda: run("edf"), rounds=1, iterations=1)

    results = {p: run(p) for p in ("fcfs", "edf")}
    rows = [(policy, r["n"], r["misses"], round(r["lateness"], 2),
             round(r["makespan"], 2))
            for policy, r in results.items()]
    bench_report("ext_deadline_scheduling", series(
        "E4 — FCFS vs deadline-aware (EDF) scheduling "
        "(16 x 1s tasks, 4 slots, deadlines inverse to submission)",
        "policy", ["tasks", "deadline misses", "total lateness (s)",
                   "makespan (virt s)"],
        rows))

    assert results["edf"]["misses"] < results["fcfs"]["misses"]
    # same work, same cluster: throughput is unchanged
    assert abs(results["edf"]["makespan"] - results["fcfs"]["makespan"]) < 1.0
