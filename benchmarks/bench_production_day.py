"""Experiment S5a — the production day (Section 5).

"A typical 24-hour period will see around 10,000 new top-level tasks
comprising about 45,000 individual fibers.  Tasks ... may run for as
long as 12 hours or as little as 20 milliseconds, with the average
being about a minute.  If these 10,000 tasks were run back-to-back,
they would require about 190 hours to complete."

We run a scaled production day (task counts and window scaled by the
same factor; per-task durations unscaled) and check that the generated
workload matches the paper's statistics and that the cluster absorbs it
within the day (190 serial hours fitting into 24 wall hours requires a
sustained concurrency around 8; the cluster provides it).
"""

import pytest

from repro.harness.reporting import paper_vs_measured
from repro.workloads.production import (
    PAPER_FIBERS_PER_DAY,
    PAPER_MEAN_SECONDS,
    PAPER_SERIAL_HOURS,
    PAPER_TASKS_PER_DAY,
    run_production_day,
)


def test_production_day(benchmark, bench_report):
    result = benchmark.pedantic(
        lambda: run_production_day(scale=0.02, nodes=12, slots=4, seed=2010),
        rounds=1, iterations=1)

    g = result.generated
    scale = g["tasks"] / PAPER_TASKS_PER_DAY
    rows = [
        ("tasks (scaled to /day)", PAPER_TASKS_PER_DAY, g["tasks"] / scale),
        ("fibers (scaled to /day)", PAPER_FIBERS_PER_DAY,
         result.total_fibers / scale),
        ("fibers per task", 4.5, result.total_fibers / g["tasks"]),
        ("min task seconds", 0.02, g["min_seconds"]),
        ("max task seconds (12h)", 43200, g["max_seconds"]),
        ("mean task seconds", PAPER_MEAN_SECONDS, g["mean_seconds"]),
        ("serial hours (scaled to /day)", PAPER_SERIAL_HOURS,
         g["serial_hours"] / scale),
        ("makespan vs day window", "fits",
         f"{result.makespan_hours:.2f}h vs {24 * scale:.2f}h window"),
        ("completed tasks", g["tasks"], result.completed_tasks),
        ("failed tasks", 0, result.failed_tasks),
        ("peak task concurrency", None, result.peak_task_concurrency),
        ("mean task concurrency", None,
         round(result.mean_task_concurrency, 2)),
        ("peak fiber concurrency", None, result.peak_fiber_concurrency),
        ("cluster utilization", None, round(result.utilization, 3)),
        ("queue mean wait (s)", None, round(result.queue_mean_wait, 4)),
        ("persist writes", None, result.persist_writes),
        ("cache hit rate (mutable)", 0.18,
         round(result.cache_hit_rates["mutable"], 3)),
        ("cache hit rate (immutable)", 0.66,
         round(result.cache_hit_rates["immutable"], 3)),
    ]
    bench_report("production_day", paper_vs_measured(
        "Section 5 — a (2%-scale) production day", rows))

    # hard checks: everything completed, inside ~the scaled day window
    assert result.failed_tasks == 0
    assert result.completed_tasks == g["tasks"]
    # fibers/task in the paper's ballpark (4.5)
    assert 2.5 < result.total_fibers / g["tasks"] < 7.5
    # the cluster actually ran tasks concurrently
    assert result.peak_task_concurrency > 1


def test_production_day_deterministic():
    """Same seed => identical outcome (the simulation is reproducible)."""
    a = run_production_day(scale=0.003, nodes=6, slots=2, seed=77)
    b = run_production_day(scale=0.003, nodes=6, slots=2, seed=77)
    assert a.generated == b.generated
    assert a.makespan_hours == pytest.approx(b.makespan_hours, abs=1e-6)
    assert a.persist_writes == b.persist_writes


def test_production_day_different_seeds_differ():
    a = run_production_day(scale=0.003, nodes=6, slots=2, seed=1)
    b = run_production_day(scale=0.003, nodes=6, slots=2, seed=2)
    assert a.generated != b.generated
