"""Experiment L1 — lease-based fiber-lock recovery under crashes.

Paper Section 4.2: the distributed locks that enforce the single-runner
guarantee create the dual hazard — a JVM that dies *holding* a fiber's
lock strands the fiber, and NFS file locks give no failure detector
("the NFS server is completely opaque").  The lease layer bounds lock
ownership in virtual time; the recovery scanner expires lapsed leases
and re-awakens orphaned fibers idempotently.

This bench runs a chaos campaign under the **file** lock backend (the
worst case: only leases can recover) with crashes aimed straight at
lock holders — both ``on_lock`` (death the instant the fiber lock is
taken) and ``on_persist`` (death mid-window with state half written) —
and asserts the two invariants the subsystem exists to provide,
*jointly*:

* **no fiber permanently stuck** — every task completes with the right
  answer and no unfinished fiber remains locked by a dead owner;
* **no fiber ever double-run** — the committed-window audit shows no
  message committing twice and no per-fiber window overlap;

plus the latency bound: every scanner recovery happened within one
lease TTL plus one scan interval of the holder's last heartbeat.

The recovery report JSON (``benchmarks/out/recovery_report.json``) is
the artifact CI uploads; its ``stuck_fibers`` count must be 0.
"""

import json
import os

from repro.bluebox.locks import FileLockManager
from repro.faults import CRASH, FaultPlan, NodeFault
from repro.faults.campaign import run_campaign
from repro.harness.reporting import table

SEED = 42
NODES = 4
TASKS = 4
LEASE_TTL = 1.0

OUT_DIR = os.path.join(os.path.dirname(__file__), "out")


def test_lock_recovery_campaign(benchmark, bench_report):
    """Crash lease holders mid-window under file locks; prove recovery."""

    def run():
        plan = FaultPlan([
            # die the instant a fiber lock is taken: nothing persisted,
            # the NFS entry survives, only the lease can free it
            NodeFault(CRASH, on_lock=2, restart_after=2.0),
            NodeFault(CRASH, on_lock=9, restart_after=2.0),
            # die mid-persist: rollback + lease recovery + retry
            NodeFault(CRASH, on_persist=5, restart_after=2.0),
        ], name="lock-recovery-smoke")
        return run_campaign(plan, seed=SEED, tasks=TASKS, nodes=NODES,
                            locks="file", lease_ttl=LEASE_TTL)

    campaign = benchmark.pedantic(run, rounds=1, iterations=1)
    env = campaign.env
    assert isinstance(env.locks, FileLockManager)

    # the campaign actually exercised what it claims: nodes crashed
    # while holding fiber locks, and those locks were abandoned
    crashes = sum(count for action, count in campaign.injected.items()
                  if action.startswith("crash"))
    assert crashes >= 2, campaign.injected
    lease_stats = env.locks.lease_stats()
    assert lease_stats["abandoned"] >= 1, lease_stats

    # invariant 1: no fiber permanently stuck — every task finished
    # with the right answer, nothing left locked by a dead owner
    stuck = campaign.stuck_fibers()
    assert stuck == [], f"stranded fibers: {stuck}"
    assert campaign.all_completed, campaign.statuses
    assert campaign.wrong_results() == []

    # invariant 2: no fiber ever double-run
    violations = campaign.single_runner_violations()
    assert violations == [], f"single-runner violations: {violations}"

    # the scanner did the recovering (file locks have no failure
    # detector), within the documented latency bound
    recovery = env.recovery.summary()
    assert recovery["locks_expired"] >= 1, recovery
    latency_bound = LEASE_TTL + env.recovery.interval + 1e-6
    assert recovery["max_recovery_latency"] <= latency_bound, recovery

    payload = {
        "campaign": campaign.name,
        "seed": campaign.seed,
        "lock_backend": type(env.locks).__name__,
        "lease_ttl": LEASE_TTL,
        "scan_interval": env.recovery.interval,
        "faults_injected": dict(campaign.injected),
        "stuck_fibers": len(stuck),
        "double_runs": len(violations),
        "tasks_completed": campaign.completed,
        "committed_windows": len(env.runner_audit),
        "leases": lease_stats,
        "recovery": recovery,
        "recovery_latency_bound": latency_bound,
    }
    os.makedirs(OUT_DIR, exist_ok=True)
    out_path = os.path.join(OUT_DIR, "recovery_report.json")
    with open(out_path, "w") as fh:
        json.dump(payload, fh, indent=2, default=str)

    text = table(
        "L1  lease-based lock recovery (file backend, crash campaign)",
        ["metric", "value"],
        [("faults injected", dict(campaign.injected)),
         ("locks abandoned by dead holders", lease_stats["abandoned"]),
         ("leases expired by scanner", recovery["locks_expired"]),
         ("fibers re-awakened", recovery["fibers_reawakened"]),
         ("stuck fibers", len(stuck)),
         ("single-runner violations", len(violations)),
         ("committed windows audited", len(env.runner_audit)),
         ("max recovery latency", round(recovery["max_recovery_latency"], 4)),
         ("latency bound (ttl + scan)", round(latency_bound, 4)),
         ("fence rejections", lease_stats["fence_rejections"]),
         ("report artifact", out_path)])
    bench_report("bench_lock_recovery", text)
