"""Experiment D1 — durable store scaling (the durastore subsystem).

The paper's Vinz pays the shared filer's per-operation latency (~2 ms)
for *every* fiber-state write, thunk write and reclamation delete.  The
durable store's group commit batches each operation window's mutations
into one write-ahead-journal append, so a window that persisted a
continuation, wrote fork thunks and swept a finished fiber pays one
op latency instead of several.

This bench runs the same production-day workload on three store tiers —

* **flat**      — the seed :class:`~repro.bluebox.store.SharedStore`
* **sharded**   — :class:`~repro.durastore.ShardedStore` (4 shards)
* **durable**   — :class:`~repro.durastore.DurableStore` (4 shards +
  journal + group commit)

— and checks the headline claim: the durable tier performs **at least
2× fewer write-side store operations** (journal commits vs individual
writes+deletes) with write-side IO time reduced accordingly.

A second section runs a tiny crash-recovery campaign (torn journal
record + node crash) on the durable tier, replays the journal, and
writes the recovery report to ``benchmarks/out/
store_recovery_report.json`` — the artifact CI uploads.
"""

import json
import os

import pytest

from repro.bluebox.store import SharedStore
from repro.durastore import DurableStore, ShardedStore
from repro.faults import CRASH, FaultPlan, JournalFault, NodeFault
from repro.faults.campaign import run_campaign
from repro.harness.reporting import series, table
from repro.workloads.production import run_production_day

SCALE = 0.01
NODES = 8
SLOTS = 4
SEED = 2010

OUT_DIR = os.path.join(os.path.dirname(__file__), "out")


def _write_side(stats):
    """(ops, seconds) actually spent on the write path for one run."""
    if "journal" in stats:
        journal = stats["journal"]
        # one physical IO per journal *flush* (commits landing within
        # one op latency of an in-flight flush share it — group
        # commit); bytes are the whole framed batches
        ops = journal["flushes"] + journal["torn_appends"]
        op_latency = 0.002
        per_byte = 2.0e-6
        seconds = ops * op_latency + journal["bytes_appended"] * per_byte
        return ops, seconds
    ops = stats["writes"] + stats["deletes"]
    op_latency = 0.002
    per_byte = 2.0e-6
    seconds = ops * op_latency + stats["bytes_written"] * per_byte
    return ops, seconds


def test_store_scaling(benchmark, bench_report):
    def run_all():
        tiers = {}
        for name, store in (
                ("flat", SharedStore()),
                ("sharded", ShardedStore(shards=4)),
                ("durable", DurableStore(shards=4))):
            result = run_production_day(scale=SCALE, nodes=NODES,
                                        slots=SLOTS, seed=SEED,
                                        store=store)
            tiers[name] = (result, store)
        return tiers

    tiers = benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = []
    measured = {}
    for name, (result, store) in tiers.items():
        stats = result.store_stats
        ops, seconds = _write_side(stats)
        measured[name] = dict(ops=ops, seconds=seconds,
                              mutations=stats["writes"] + stats["deletes"],
                              completed=result.completed_tasks,
                              failed=result.failed_tasks)
        rows.append((name, stats["writes"] + stats["deletes"], ops,
                     round(seconds, 3), round(stats["io_seconds"], 3),
                     result.completed_tasks))

    # every tier completes the same workload correctly
    for name, m in measured.items():
        assert m["failed"] == 0, f"{name}: {m['failed']} failed tasks"
    assert len({m["completed"] for m in measured.values()}) == 1

    # the same logical mutations hit every tier (sharding and
    # journaling change *how* they are persisted, not how many)
    assert measured["flat"]["mutations"] == \
        measured["sharded"]["mutations"] == measured["durable"]["mutations"]

    # the headline: group commit performs >= 2x fewer write-side store
    # operations, and its write-side IO time drops accordingly
    op_reduction = measured["flat"]["ops"] / max(1, measured["durable"]["ops"])
    io_reduction = measured["flat"]["seconds"] / \
        max(1e-9, measured["durable"]["seconds"])
    assert op_reduction >= 2.0, \
        f"group commit only cut write ops {op_reduction:.2f}x"
    assert io_reduction > 1.0, \
        f"group commit did not reduce write-side IO time " \
        f"({io_reduction:.2f}x)"

    durable_store = tiers["durable"][1]
    dist = durable_store.key_distribution()
    snap = durable_store.stats_snapshot()

    text = series(
        "D1  store scaling: flat vs sharded vs group commit "
        f"(production day, scale={SCALE})",
        "tier",
        ["mutations", "write IOs", "write io_s", "total io_s", "tasks"],
        rows)
    text += "\n" + table(
        "D1  group-commit effect",
        ["metric", "value"],
        [("write-op reduction (flat/durable)", f"{op_reduction:.2f}x"),
         ("write-IO-time reduction", f"{io_reduction:.2f}x"),
         ("windows sealed", snap["group_commit"]["windows_sealed"]),
         ("ops deferred into batches", snap["group_commit"]["deferred_ops"]),
         ("commits sharing a flush", snap["group_commit"]["shared_flushes"]),
         ("physical journal flushes", snap["journal"]["flushes"]),
         ("journal checkpoints", snap["journal"]["checkpoints"]),
         ("live shard keys", sum(dist.values())),
         ("shard key spread", str(dist))])
    bench_report("bench_store_scaling", text)


def test_crash_recovery_campaign(benchmark, bench_report):
    """A small chaos campaign on the durable tier: torn journal commits
    plus a node crash, then journal replay.  Asserts the recovery
    contract — every committed key is reconstructed, no uncommitted
    tail survives — and publishes the recovery report JSON."""

    def run():
        store = DurableStore(shards=4)
        plan = FaultPlan([JournalFault(nth=3, count=2),
                          NodeFault(CRASH, at=0.4, restart_after=1.0)],
                         name="store-recovery-smoke")
        campaign = run_campaign(plan, seed=11, tasks=3, nodes=3,
                                store=store)
        return store, campaign

    store, campaign = benchmark.pedantic(run, rounds=1, iterations=1)

    assert campaign.all_completed, campaign.statuses
    assert campaign.wrong_results() == []
    assert campaign.injected.get("torn-commit", 0) >= 1
    assert store.journal.torn_appends >= 1

    # live state before simulated crash; then recover from the journal
    live = {key: store.read(key) for key in store.keys()}
    report = store.recover()

    # contract: replay reconstructs exactly the committed state
    assert report["recovered_keys"] == len(live)
    for key, value in live.items():
        assert store.read(key) == value
    # recovery is observable as spans
    recovery_spans = campaign.env.cluster.tracer.of_kind("recovery")
    assert len(recovery_spans) == 1

    payload = {
        "campaign": campaign.name,
        "seed": campaign.seed,
        "plan": store.journal.stats_snapshot(),
        "faults_injected": dict(campaign.injector.injected),
        "recovery": {k: v for k, v in report.items()},
        "group_commit": store.stats_snapshot()["group_commit"],
        "recovery_spans": len(recovery_spans),
    }
    os.makedirs(OUT_DIR, exist_ok=True)
    out_path = os.path.join(OUT_DIR, "store_recovery_report.json")
    with open(out_path, "w") as fh:
        json.dump(payload, fh, indent=2, default=str)

    text = table(
        "D1b  crash-recovery campaign (durable store)",
        ["metric", "value"],
        [("faults injected", dict(campaign.injector.injected)),
         ("torn journal appends", store.journal.torn_appends),
         ("batches committed", store.batches_committed),
         ("recovered keys", report["recovered_keys"]),
         ("committed deletes replayed", report["deleted_keys"]),
         ("tail error", report["tail_error"]),
         ("tail bytes dropped", report["tail_bytes_dropped"]),
         ("report artifact", out_path)])
    bench_report("bench_store_recovery", text)
