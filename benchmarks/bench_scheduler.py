"""Scheduler benchmark — static vs adaptive spawn limits on the
production-day workload (Section 5 + the repro.sched subsystem).

The paper's spawn limit is a constant the programmer must guess per
workflow (Section 3.5); Section 5 documents both failure modes of the
guess (serialization when too low, AwakeFiber burst floods when too
high — see bench_spawn_limit.py).  The AIMD spawn governor replaces
the guess with feedback control.  This sweep drives the same scaled
production day through every static limit and through
``spawn_limit="auto"``, and checks the governed run:

* matches the *best* hand-tuned static limit's makespan (within 5%) —
  a limit the programmer could only find by running this very sweep;
* beats the deployment default (8, what the seed hard-coded) on tail
  queue wait at equal-or-better makespan.
"""

from repro.harness.reporting import series
from repro.workloads.production import run_production_day

#: the load level where the static trade-off actually bites: limit 1
#: stretches the makespan ~35%, limits >= 8 triple the p99 queue wait
SCALE = 0.02
NODES = 6
SLOTS = 2
SEED = 2010
STATIC_LIMITS = (1, 2, 4, 8, 16, 32)
DEFAULT_LIMIT = 8  # what the seed's production-day bench hard-coded


def run_with(limit, scheduler=None):
    r = run_production_day(scale=SCALE, nodes=NODES, slots=SLOTS,
                           seed=SEED, spawn_limit=limit,
                           scheduler=scheduler)
    return {
        "makespan": r.makespan_hours * 3600.0,
        "p99_wait": r.queue_p99_wait,
        "mean_wait": r.queue_mean_wait,
        "completed": r.completed_tasks,
        "failed": r.failed_tasks,
        "governor": r.sched["governor"],
    }


def test_static_vs_adaptive_sweep(benchmark, bench_report):
    benchmark.pedantic(lambda: run_with(DEFAULT_LIMIT), rounds=1,
                       iterations=1)

    static = {limit: run_with(limit) for limit in STATIC_LIMITS}
    adaptive = run_with("auto")

    points = [(limit, round(r["makespan"], 1), round(r["mean_wait"], 3),
               round(r["p99_wait"], 2))
              for limit, r in static.items()]
    g = adaptive["governor"]
    points.append(("auto", round(adaptive["makespan"], 1),
                   round(adaptive["mean_wait"], 3),
                   round(adaptive["p99_wait"], 2)))
    best_static = min(static.values(), key=lambda r: r["makespan"])
    bench_report("scheduler_static_vs_adaptive", series(
        f"Static vs adaptive spawn limit — production day x{SCALE}, "
        f"{NODES} nodes x {SLOTS} slots",
        "spawn limit",
        ["makespan (virt s)", "mean queue wait (virt s)",
         "p99 queue wait (virt s)"],
        points) + f"""

Adaptive governor: {g['decisions']} decisions, {g['increases']} up /
{g['decreases']} down, limit ranged [{g['min_seen']}, {g['max_seen']}].

Reading the sweep:
 - limit 1 serializes fan-outs: makespan
   {static[1]['makespan'] / best_static['makespan']:.2f}x the best
   static run ("the overhead ... seems high", Section 3.5);
 - large limits flood the queue: at limit {DEFAULT_LIMIT} (the
   deployment default) the p99 queue wait is
   {static[DEFAULT_LIMIT]['p99_wait'] / max(adaptive['p99_wait'], 1e-9):.1f}x
   the adaptive run's;
 - the governor lands on the best static makespan
   ({adaptive['makespan']:.1f}s vs {best_static['makespan']:.1f}s)
   without the sweep a static limit needs.""")

    # every configuration finished the day
    for limit, r in list(static.items()) + [("auto", adaptive)]:
        assert r["failed"] == 0 and r["completed"] > 0, (limit, r)
    # the adaptive run matches the best static makespan within 5%...
    assert adaptive["makespan"] <= best_static["makespan"] * 1.05
    # ...beats the too-low end outright...
    assert adaptive["makespan"] < static[1]["makespan"]
    # ...and beats the deployment default on queue latency at
    # equal-or-better makespan
    assert adaptive["makespan"] <= static[DEFAULT_LIMIT]["makespan"] * 1.05
    assert adaptive["p99_wait"] < static[DEFAULT_LIMIT]["p99_wait"]
    assert adaptive["mean_wait"] < static[DEFAULT_LIMIT]["mean_wait"]
    # the governor actually exercised its control loop
    assert g["decisions"] > 0 and g["max_seen"] > g["min_seen"]


def test_adaptive_composes_with_fair_scheduler(bench_report):
    """The governed limit and the deficit-round-robin queue policy are
    independent plugs: running both still completes the day, and the
    fair policy's aging promotes waiting normal-priority messages."""
    r = run_production_day(scale=SCALE / 2, nodes=NODES, slots=SLOTS,
                           seed=SEED, spawn_limit="auto",
                           scheduler="fair")
    bench_report("scheduler_fair_adaptive", series(
        "Adaptive governor + fair (DRR) queue policy",
        "metric", ["value"],
        [("completed tasks", r.completed_tasks),
         ("failed tasks", r.failed_tasks),
         ("makespan (virt s)", round(r.makespan_hours * 3600.0, 1)),
         ("p99 queue wait (virt s)", round(r.queue_p99_wait, 2)),
         ("aged promotions", r.sched["aged_promotions"]),
         ("governor decisions", r.sched["governor"]["decisions"])]))
    assert r.failed_tasks == 0 and r.completed_tasks > 0
    assert r.sched["policy"] == "fair"
    assert r.sched["governor"]["decisions"] > 0
