"""Experiment L1 — Listing 1: loc vs par vs dist sum-of-squares.

The paper's Listing 1 presents three variants of the same computation.
This bench measures:

* real wall-clock time of ``loc`` vs ``par`` (thread-pool futures) on a
  CPU-bearing body — par should win once per-item work dominates;
* virtual-time makespan of ``dist`` as the node count grows — the
  distributed variant's makespan shrinks roughly with cluster size.
"""

import pytest

from repro.gvm.runtime import make_runtime
from repro.harness.reporting import series, table
from repro.vinz.api import VinzEnvironment

LOCAL_DEFS = """
(defun work (n)
  ;; a deliberately CPU-ish body so parallelism has something to chew
  (let ((acc 0))
    (dotimes (i 300) (setq acc (+ acc (* n n))))
    acc))

(defun loc-sum (numbers)
  (apply #'+ (loop for n in numbers collect (work n))))

(defun par-sum (numbers)
  (apply #'+ (loop for n in numbers collect (future (work n)))))
"""

DIST_WORKFLOW = """
(defun main (numbers)
  (apply #'+
    (for-each (n in numbers)
      (compute 1.0)      ; each square costs 1 simulated second
      (* n n))))
"""

NUMBERS = list(range(1, 13))
GOZER_NUMBERS = "(list " + " ".join(map(str, NUMBERS)) + ")"
EXPECTED_WORK = sum(300 * n * n for n in NUMBERS)


def run_loc():
    rt = make_runtime(deterministic=True)
    rt.eval_string(LOCAL_DEFS)
    value = rt.eval_string(f"(loc-sum {GOZER_NUMBERS})")
    assert value == EXPECTED_WORK
    return value


def run_par():
    rt = make_runtime(deterministic=False, max_workers=4)
    try:
        rt.eval_string(LOCAL_DEFS)
        value = rt.eval_string(f"(par-sum {GOZER_NUMBERS})")
        assert value == EXPECTED_WORK
        return value
    finally:
        rt.shutdown()


def dist_makespan(nodes: int) -> float:
    env = VinzEnvironment(nodes=nodes, seed=7, trace=False)
    env.deploy_workflow("SumSquares", DIST_WORKFLOW, spawn_limit=64)
    env.run("SumSquares", NUMBERS)
    return env.cluster.kernel.now


def test_listing1_loc(benchmark):
    benchmark(run_loc)


def test_listing1_par(benchmark):
    benchmark(run_par)


def test_listing1_dist_scaling(benchmark, bench_report):
    benchmark(lambda: dist_makespan(4))

    points = []
    serial_seconds = float(len(NUMBERS))  # 12 x 1s of simulated work
    for nodes in (1, 2, 4, 8, 16):
        makespan = dist_makespan(nodes)
        points.append((nodes, round(makespan, 3),
                       round(serial_seconds / makespan, 2)))
    bench_report("listing1_dist_scaling", series(
        "Listing 1 — dist-sum-squares makespan vs cluster size "
        f"({len(NUMBERS)} items x 1s simulated work)",
        "nodes", ["makespan (virt s)", "speedup vs serial"], points))

    # shape: more nodes => smaller makespan, approaching items/nodes
    makespans = {n: m for n, m, _ in points}
    assert makespans[8] < makespans[2] < makespans[1]
    assert makespans[1] >= serial_seconds  # one node can't beat serial


def test_listing1_all_variants_agree(bench_report):
    env = VinzEnvironment(nodes=4, seed=8, trace=False)
    env.deploy_workflow("Dist", """
        (defun main (numbers)
          (apply #'+ (for-each (n in numbers) (* n n))))""")
    dist_value = env.call("Dist", NUMBERS)

    rt = make_runtime(deterministic=True)
    loc_value = rt.eval_string(
        f"(apply #'+ (loop for n in {GOZER_NUMBERS} collect (* n n)))")
    par_value = rt.eval_string(
        f"(apply #'+ (loop for n in {GOZER_NUMBERS} "
        "collect (future (* n n))))")

    expected = sum(n * n for n in NUMBERS)
    bench_report("listing1_agreement", table(
        "Listing 1 — the three variants compute the same value",
        ["variant", "result", "correct"],
        [("loc-sum-squares", loc_value, loc_value == expected),
         ("par-sum-squares", par_value, par_value == expected),
         ("dist-sum-squares", dist_value, dist_value == expected)]))
    assert loc_value == par_value == dist_value == expected
