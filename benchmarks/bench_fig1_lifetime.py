"""Experiment F1 — Figure 1: Sample Workflow Lifetime.

Regenerates the paper's Figure 1 as a causally ordered event trace of
one task: Start -> RunFiber -> non-blocking service call (suspend +
persist) -> ResumeFromCall -> for-each fan-out -> AwakeFiber x N ->
completion.  The benchmark measures the end-to-end advance of one such
lifetime.
"""

from repro.bluebox.services import simple_service
from repro.harness.reporting import table
from repro.vinz.api import VinzEnvironment

SAMPLE_WORKFLOW = """
(deflink MKT :wsdl "urn:market-service")

(defun main (params)
  ;; one non-blocking service call: the fiber migrates away while the
  ;; service computes (Section 3.2)
  (let ((price (MKT-Quote-Method :Symbol params)))
    ;; then a distributed map over two positions (Section 3.5)
    (apply #'+ (for-each (qty in (list 10 20))
                 (* qty price)))))
"""


def build_env(trace=True):
    env = VinzEnvironment(nodes=3, seed=202, trace=trace)

    def quote(ctx, body):
        ctx.charge(0.5)
        return 4.25

    env.deploy_service(simple_service("Market", {"Quote": quote},
                                      namespace="urn:market-service",
                                      parameters={"Quote": ["Symbol"]}))
    env.deploy_workflow("Sample", SAMPLE_WORKFLOW)
    return env


def run_lifetime(env):
    task_id = env.run("Sample", "IBM")
    assert env.registry.tasks[task_id].result == (10 + 20) * 4.25
    return task_id


def test_figure1_lifetime(benchmark, bench_report):
    benchmark(lambda: run_lifetime(build_env(trace=False)))

    env = build_env()
    task_id = run_lifetime(env)
    events = env.cluster.trace.for_task(task_id)

    lines = ["== Figure 1 — Sample Workflow Lifetime (reproduced) ==",
             f"(one task: {task_id}; times are virtual seconds)", ""]
    for event in events:
        lines.append(repr(event))

    # summarize the phases for the experiments table
    kinds = [e.kind for e in events]
    phases = [
        ("Start creates task+fiber, persists initial state",
         "task-start" in kinds),
        ("RunFiber begins the fiber on some instance",
         "fiber-run" in kinds),
        ("service request -> yield -> persist (non-blocking)",
         "service-request" in kinds and "fiber-suspend" in kinds),
        ("ResumeFromCall restores the fiber elsewhere",
         any(e.kind == "fiber-run" and e.detail.get("resume")
             for e in events)),
        ("for-each forks child fibers", "fiber-fork" in kinds),
        ("children complete, AwakeFiber wakes the parent",
         sum(1 for k in kinds if k == "fiber-complete") >= 3),
        ("task completes", "task-complete" in kinds),
    ]
    lines.append("")
    lines.append(table("Lifetime phases", ["phase", "observed"], phases))
    bench_report("fig1_lifetime", "\n".join(lines))

    for _phase, observed in phases:
        assert observed, _phase


def test_figure1_nodes_differ():
    """The lifetime genuinely spans machines: the fiber's successive
    run events land on more than one node (migration, Section 3.1)."""
    env = build_env()
    task_id = run_lifetime(env)
    events = env.cluster.trace.for_task(task_id)
    runs = [e.detail["node"] for e in events if e.kind == "fiber-run"]
    assert len(set(runs)) >= 2
