"""Experiment F1 — Figure 1: Sample Workflow Lifetime.

Regenerates the paper's Figure 1 as a causally ordered event trace of
one task: Start -> RunFiber -> non-blocking service call (suspend +
persist) -> ResumeFromCall -> for-each fan-out -> AwakeFiber x N ->
completion.  The benchmark measures the end-to-end advance of one such
lifetime, reconstructs it as a causal span *tree* (repro.observe), and
exports a Perfetto-loadable Chrome ``trace_event`` JSON of it.
"""

import json
import os

from repro.bluebox.services import simple_service
from repro.faults.injector import FaultInjector
from repro.faults.plan import DROP, FaultPlan, MessageFault
from repro.harness.reporting import observability_tables, table, \
    write_json_report
from repro.observe.export import span_tree_from_events, write_chrome_trace
from repro.vinz.api import VinzEnvironment

SAMPLE_WORKFLOW = """
(deflink MKT :wsdl "urn:market-service")

(defun main (params)
  ;; one non-blocking service call: the fiber migrates away while the
  ;; service computes (Section 3.2)
  (let ((price (MKT-Quote-Method :Symbol params)))
    ;; then a distributed map over two positions (Section 3.5)
    (apply #'+ (for-each (qty in (list 10 20))
                 (* qty price)))))
"""


def build_env(trace=True):
    env = VinzEnvironment(nodes=3, seed=202, trace=trace)

    def quote(ctx, body):
        ctx.charge(0.5)
        return 4.25

    env.deploy_service(simple_service("Market", {"Quote": quote},
                                      namespace="urn:market-service",
                                      parameters={"Quote": ["Symbol"]}))
    env.deploy_workflow("Sample", SAMPLE_WORKFLOW)
    return env


def run_lifetime(env):
    task_id = env.run("Sample", "IBM")
    assert env.registry.tasks[task_id].result == (10 + 20) * 4.25
    return task_id


def test_figure1_lifetime(benchmark, bench_report):
    benchmark(lambda: run_lifetime(build_env(trace=False)))

    env = build_env()
    task_id = run_lifetime(env)
    events = env.cluster.trace.for_task(task_id)

    lines = ["== Figure 1 — Sample Workflow Lifetime (reproduced) ==",
             f"(one task: {task_id}; times are virtual seconds)", ""]
    for event in events:
        lines.append(repr(event))

    # summarize the phases for the experiments table
    kinds = [e.kind for e in events]
    phases = [
        ("Start creates task+fiber, persists initial state",
         "task-start" in kinds),
        ("RunFiber begins the fiber on some instance",
         "fiber-run" in kinds),
        ("service request -> yield -> persist (non-blocking)",
         "service-request" in kinds and "fiber-suspend" in kinds),
        ("ResumeFromCall restores the fiber elsewhere",
         any(e.kind == "fiber-run" and e.detail.get("resume")
             for e in events)),
        ("for-each forks child fibers", "fiber-fork" in kinds),
        ("children complete, AwakeFiber wakes the parent",
         sum(1 for k in kinds if k == "fiber-complete") >= 3),
        ("task completes", "task-complete" in kinds),
    ]
    lines.append("")
    lines.append(table("Lifetime phases", ["phase", "observed"], phases))
    bench_report("fig1_lifetime", "\n".join(lines))

    for _phase, observed in phases:
        assert observed, _phase


def test_figure1_span_tree_export(bench_report):
    """One task's full distributed lifetime as a causal span tree:
    queue hops, operation windows, fiber runs and persistence nest with
    correct parent links, and the tree survives a round trip through
    the exported Chrome ``trace_event`` JSON."""
    env = build_env()
    task_id = run_lifetime(env)
    tracer = env.tracer

    tree = tracer.task_tree(task_id)
    assert tree, "task span tree is empty"
    kinds = {span.kind for span in tree}
    for kind in ("task", "fiber", "queue-hop", "operation",
                 "fiber-run", "persistence"):
        assert kind in kinds, f"span tree lacks {kind} spans"
    assert tracer.verify_parents() == [], "dangling parent ids"

    # structural nesting: fiber-run -> operation -> queue-hop
    by_id = {span.id: span for span in tree}
    runs = [span for span in tree if span.kind == "fiber-run"]
    assert runs
    for run in runs:
        op = by_id[run.parent_id]
        assert op.kind == "operation"
        assert by_id[op.parent_id].kind == "queue-hop"
    # persistence nests under the work that did it: continuation
    # encode/decode under a fiber-run; the task-env read happens in the
    # operation window before the fiber advances
    persists = [span for span in tree if span.kind == "persistence"]
    assert persists
    for span in persists:
        assert by_id[span.parent_id].kind in ("fiber-run", "operation")
    assert any(by_id[span.parent_id].kind == "fiber-run"
               for span in persists)

    out_dir = os.path.join(os.path.dirname(__file__), "out")
    os.makedirs(out_dir, exist_ok=True)
    path = write_chrome_trace(tracer,
                              os.path.join(out_dir, "fig1_trace.json"))
    with open(path) as fh:
        doc = json.load(fh)
    assert doc["traceEvents"]
    exported = span_tree_from_events(doc["traceEvents"])
    for span in tree:
        assert exported.get(span.id) == span.parent_id

    report_path = write_json_report(
        env, os.path.join(out_dir, "fig1_observability.json"))
    with open(report_path) as fh:
        assert json.load(fh)["spans"]["created"] > 0

    root = tracer.task_root(task_id)
    bench_report(
        "fig1_span_tree",
        "== Figure 1 — causal span tree (one task) ==\n"
        f"(task {task_id}; times are virtual seconds)\n\n"
        + tracer.render_tree(root)
        + f"\n\nexported: {path} ({len(doc['traceEvents'])} events)\n"
        + f"report:   {report_path}\n\n"
        + observability_tables(env))


def test_figure1_trace_links_fault_redelivery():
    """A fault-driven redelivery opens a new queue-hop span parented to
    the message's *original* hop, so the retried lifetime stays one
    tree — the acceptance criterion for retries in the span model."""
    env = build_env()
    plan = FaultPlan([MessageFault(action=DROP, service="Sample",
                                   operation="RunFiber", nth=1)])
    FaultInjector(7, plan).install(env)
    task_id = run_lifetime(env)
    tracer = env.tracer

    retries = [span for span in tracer.of_kind("queue-hop")
               if "retry_of" in span.attrs]
    assert retries, "the dropped RunFiber produced no retry hop span"
    for hop in retries:
        origin = tracer.get(hop.attrs["retry_of"])
        assert origin is not None and origin.kind == "queue-hop"
        assert hop.parent_id == origin.id
        assert hop.attrs["attempt"] >= 1
    # the redelivered message's spans still belong to the task's tree
    tree_ids = {span.id for span in tracer.task_tree(task_id)}
    assert any(hop.id in tree_ids for hop in retries)
    # the injected drop is annotated on the original hop span
    origins = {tracer.get(hop.attrs["retry_of"]) for hop in retries}
    assert any(name == "fault.drop"
               for origin in origins
               for _time, name, _attrs in origin.annotations)
    assert tracer.verify_parents() == []


def test_figure1_nodes_differ():
    """The lifetime genuinely spans machines: the fiber's successive
    run events land on more than one node (migration, Section 3.1)."""
    env = build_env()
    task_id = run_lifetime(env)
    events = env.cluster.trace.for_task(task_id)
    runs = [e.detail["node"] for e in events if e.kind == "fiber-run"]
    assert len(set(runs)) >= 2
