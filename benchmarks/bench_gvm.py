"""Experiment S4c — bytecode GVM vs tree-walking interpreter (§4.1).

"Compilation to bytecode (as opposed to a tree-walking interpreter) was
introduced as an optimization for Vinz persistence."  Two measurable
consequences:

1. steady-state execution speed: compiled bytecode beats re-walking the
   source tree (macro expansion and dispatch are paid once, at compile
   time — the effect is largest for macro-heavy code, which is what
   workflow code is);
2. persistence: the tree-walker fundamentally *cannot* checkpoint (its
   state is the host stack), while the GVM's heap frames serialize in a
   few hundred bytes.

The two engines get *separate* global environments so neither's
function definitions shadow the other's.
"""

import pickle
import time

import pytest

from repro.gvm.interpreter import ContinuationsUnsupported, TreeInterpreter
from repro.gvm.runtime import make_runtime
from repro.harness.reporting import series
from repro.lang.reader import read_string

PROGRAMS = {
    "fib(17) — call-heavy": (
        "(defun bfib (n) (if (< n 2) n (+ (bfib (- n 1)) (bfib (- n 2)))))",
        "(bfib 17)",
        1597,
    ),
    "loop-sum 30000 — branch-heavy": (
        "(defun bsum (n) (let ((acc 0) (i 0)) "
        "(while (< i n) (setq acc (+ acc i)) (setq i (+ i 1))) acc))",
        "(bsum 30000)",
        sum(range(30000)),
    ),
    "dolist/when/incf x300 — macro-heavy": (
        "(defun process (items) (let ((acc 0)) "
        "(dolist (x items) (when (evenp x) (incf acc (* x x)))) acc))",
        "(dotimes (rep 300 (process (list 1 2 3 4 5 6 7 8)))"
        " (process (list 1 2 3 4 5 6 7 8)))",
        4 + 16 + 36 + 64,
    ),
}


def engines_for(defs: str):
    """Build a (compiled-code-runner, tree-runner) pair with isolated
    global environments."""
    vm_rt = make_runtime(deterministic=True)
    vm_rt.eval_string(defs)
    tree_rt = make_runtime(deterministic=True)
    interp = TreeInterpreter(tree_rt.global_env, apply_fn=tree_rt.apply)
    interp.eval(read_string(defs))
    return vm_rt, interp


def timed(fn, repeats=3):
    best = float("inf")
    value = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        value = fn()
        best = min(best, time.perf_counter() - t0)
    return value, best


def test_bytecode_vs_tree(benchmark, bench_report):
    points = []
    speedups = []
    for name, (defs, call, expected) in PROGRAMS.items():
        vm_rt, interp = engines_for(defs)
        code = vm_rt.compile(read_string(call))
        form = read_string(call)

        vm_value, vm_s = timed(lambda: vm_rt.new_vm().run_code(code).value)
        tree_value, tree_s = timed(lambda: interp.eval(form))
        assert vm_value == tree_value == expected, name
        speedup = tree_s / vm_s
        speedups.append(speedup)
        points.append((name, round(vm_s * 1e3, 2), round(tree_s * 1e3, 2),
                       round(speedup, 2)))

    lines = [series(
        "Section 4.1 — bytecode GVM vs tree-walking interpreter",
        "program", ["bytecode ms", "tree-walk ms", "speedup"], points)]

    # the persistence half of the claim
    rt = make_runtime(deterministic=True)
    t0 = time.perf_counter()
    result = rt.start("(progn (yield :cp) :done)")
    capture_s = time.perf_counter() - t0
    blob = pickle.dumps(result.continuation)
    lines.append("")
    lines.append(
        f"Persistence: a GVM checkpoint captures in {capture_s * 1e3:.2f} ms "
        f"and pickles to {len(blob)} bytes; the tree-walker cannot "
        "checkpoint at all (its state is the host stack — yield raises "
        "ContinuationsUnsupported).")
    bench_report("gvm_vs_tree", "\n".join(lines))

    # the bytecode engine wins on every program
    assert all(s > 1.0 for s in speedups), points
    # and decisively overall
    assert sum(speedups) / len(speedups) > 1.25, points

    tree_rt = make_runtime(deterministic=True)
    interp = TreeInterpreter(tree_rt.global_env, apply_fn=tree_rt.apply)
    with pytest.raises(ContinuationsUnsupported):
        interp.eval(read_string("(yield)"))

    vm_rt, _ = engines_for(PROGRAMS["fib(17) — call-heavy"][0])
    fib_code = vm_rt.compile(read_string("(bfib 12)"))
    benchmark(lambda: vm_rt.new_vm().run_code(fib_code))


def test_tree_walk_benchmark(benchmark):
    _, interp = engines_for(PROGRAMS["fib(17) — call-heavy"][0])
    call = read_string("(bfib 12)")
    benchmark(lambda: interp.eval(call))


def test_instruction_throughput(benchmark, bench_report):
    """Raw GVM dispatch rate (instructions/second), for the record."""
    rt = make_runtime(deterministic=True)
    rt.eval_string(PROGRAMS["loop-sum 30000 — branch-heavy"][0])
    code = rt.compile(read_string("(bsum 5000)"))

    def run():
        vm = rt.new_vm()
        vm.run_code(code)
        return vm.instruction_count

    instructions = run()
    result = benchmark(run)
    assert result == instructions
    stats_mean = benchmark.stats.stats.mean
    bench_report("gvm_throughput",
                 f"GVM dispatch rate: {instructions} instructions in "
                 f"{stats_mean * 1e3:.2f} ms = "
                 f"{instructions / stats_mean / 1e6:.2f} M instr/s")
