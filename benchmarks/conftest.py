"""Shared helpers for the benchmark suite.

Every benchmark regenerates one paper artifact (table, figure, or
quantitative claim — see DESIGN.md §4) and writes its report to
``benchmarks/out/<name>.txt`` in addition to printing it, so that
EXPERIMENTS.md can be assembled from a single
``pytest benchmarks/ --benchmark-only`` run.
"""

import os

import pytest

OUT_DIR = os.path.join(os.path.dirname(__file__), "out")


def report(name: str, text: str) -> None:
    """Print a report and persist it under benchmarks/out/."""
    os.makedirs(OUT_DIR, exist_ok=True)
    with open(os.path.join(OUT_DIR, name + ".txt"), "w") as fh:
        fh.write(text + "\n")
    print("\n" + text)


@pytest.fixture
def bench_report():
    return report
