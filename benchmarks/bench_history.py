"""Experiment H1 — event-sourced history: replay fidelity and the
snapshot-interval persistence trade-off.

The history plane records every nondeterministic observation a fiber
makes; the GVM is deterministic, so re-executing the recorded bytecode
against that stream must land on exactly the recorded suspensions and
final results.  This bench puts that claim under load and measures the
optimization it unlocks:

* **replay fidelity** — a 200-task chaos campaign (node crashes +
  dropped/duplicated queue messages) is replayed task by task from the
  durable log; any divergence between re-execution and the recorded
  history fails the bench.  Zero divergences is the event-sourcing
  contract.
* **replay-based recovery** — the lock-recovery invariants (no stuck
  fibers, no double runs, correct answers) must hold when crashed
  fibers are rebuilt by replay with the continuation-snapshot plane
  *never read*.
* **snapshot-interval elision** — with histories durable, continuation
  snapshots become an optimization: persisting every Nth suspension
  must cut persisted bytes per suspension by >= 2x at N >= 8, with the
  elided versions rebuilt from history on demand.

The report JSON (``benchmarks/out/history_replay_report.json``) is the
artifact CI uploads; its ``divergences`` count must be 0.
"""

import json
import os

from repro.faults import CRASH, FaultPlan, MessageFault, NodeFault
from repro.faults.campaign import run_campaign
from repro.harness.reporting import table

SEED = 42
NODES = 4
TASKS = 200
SNAPSHOT_INTERVAL = 8

OUT_DIR = os.path.join(os.path.dirname(__file__), "out")

CHAOS = FaultPlan([
    MessageFault("drop", operation="RunFiber", nth=3, count=6),
    MessageFault("duplicate", operation="AwakeFiber", nth=2, count=6),
    MessageFault("drop", operation="ResumeFromCall", nth=4, count=3),
    NodeFault(CRASH, at=2.0, restart_after=2.0),
    NodeFault(CRASH, at=8.0, restart_after=2.0),
    NodeFault(CRASH, on_persist=40, restart_after=2.0),
], name="history-chaos")


def test_history_replay_campaign(benchmark, bench_report):
    """Replay all 200 chaos-campaign tasks; prove zero divergences and
    the >= 2x bytes/suspension win from snapshot-interval elision."""

    def run():
        return run_campaign(CHAOS, seed=SEED, tasks=TASKS, nodes=NODES,
                            history="on")

    campaign = benchmark.pedantic(run, rounds=1, iterations=1)
    env = campaign.env
    assert campaign.all_completed, campaign.statuses
    assert campaign.wrong_results() == []
    crashes = sum(count for action, count in campaign.injected.items()
                  if action.startswith("crash"))
    assert crashes >= 2 and campaign.redelivered > 0, campaign.injected

    # -- replay fidelity: every task, from the durable log ------------
    replays = campaign.replay_all()   # raises on the first divergence
    assert len(replays) == TASKS
    divergences = env.cluster.metrics.counter("history.divergences").value
    assert divergences == 0
    windows = sum(r.windows for r in replays)
    instructions = sum(r.instructions for r in replays)

    # -- replay-based recovery under lock-holder crashes --------------
    recovery_plan = FaultPlan([
        NodeFault(CRASH, on_lock=2, restart_after=2.0),
        NodeFault(CRASH, on_lock=9, restart_after=2.0),
        NodeFault(CRASH, on_persist=5, restart_after=2.0),
    ], name="history-recovery")
    rec = run_campaign(recovery_plan, seed=SEED, tasks=8, nodes=NODES,
                       history="on", recovery="replay",
                       locks="file", lease_ttl=1.0)
    assert rec.all_completed, rec.statuses
    assert rec.wrong_results() == []
    stuck = rec.stuck_fibers()
    violations = rec.single_runner_violations()
    assert stuck == [], f"stranded fibers: {stuck}"
    assert violations == [], f"single-runner violations: {violations}"
    rebuilds = rec.env.counters.get("history.rebuilds")
    assert rebuilds > 0, "replay recovery never rebuilt a fiber"
    rec.replay_all()

    # -- snapshot-interval elision: bytes persisted per suspension ----
    # wide fan-outs (items >> spawn limit) make the root fiber suspend
    # well past the interval, so the sparse run still takes snapshots
    # and the ratio is a finite bytes-per-suspension comparison
    def persisted_per_suspension(interval):
        report = run_campaign(CHAOS, seed=SEED, tasks=40, nodes=NODES,
                              items_range=(10, 14),
                              history="on", snapshot_interval=interval)
        assert report.all_completed and report.wrong_results() == []
        report.replay_all()
        bytes_written = report.env.counters.get_sum("persist.bytes")
        suspensions = (report.env.counters.get("persist.writes")
                       + report.env.counters.get("persist.skipped"))
        return bytes_written, suspensions, report

    every_bytes, every_susp, _ = persisted_per_suspension(1)
    sparse_bytes, sparse_susp, sparse = persisted_per_suspension(
        SNAPSHOT_INTERVAL)
    per_every = every_bytes / max(1, every_susp)
    per_sparse = sparse_bytes / max(1, sparse_susp)
    ratio = per_every / max(1e-9, per_sparse)
    assert ratio >= 2.0, (
        f"snapshot_interval={SNAPSHOT_INTERVAL} saved only {ratio:.2f}x "
        f"({per_every:.0f} -> {per_sparse:.0f} bytes/suspension)")

    payload = {
        "campaign": campaign.name,
        "seed": SEED,
        "tasks": TASKS,
        "faults_injected": dict(campaign.injected),
        "tasks_replayed": len(replays),
        "divergences": int(divergences),
        "windows_replayed": windows,
        "instructions_replayed": instructions,
        "partial_fibers": sum(len(r.partial_fibers) for r in replays),
        "history": env.summary()["history"],
        "recovery_mode_campaign": {
            "stuck_fibers": len(stuck),
            "double_runs": len(violations),
            "rebuilds": rebuilds,
        },
        "snapshot_interval": {
            "interval": SNAPSHOT_INTERVAL,
            "bytes_per_suspension_every": round(per_every, 1),
            "bytes_per_suspension_sparse": round(per_sparse, 1),
            "ratio": round(ratio, 2),
            "persists_skipped":
                sparse.env.counters.get("persist.skipped"),
            "rebuilds": sparse.env.counters.get("history.rebuilds"),
        },
    }
    os.makedirs(OUT_DIR, exist_ok=True)
    out_path = os.path.join(OUT_DIR, "history_replay_report.json")
    with open(out_path, "w") as fh:
        json.dump(payload, fh, indent=2, default=str)

    text = table(
        "H1  event-sourced history: replay fidelity + interval elision",
        ["metric", "value"],
        [("chaos tasks replayed", len(replays)),
         ("divergences", int(divergences)),
         ("windows re-executed", windows),
         ("instructions re-executed", instructions),
         ("faults injected", dict(campaign.injected)),
         ("replay-recovery stuck fibers", len(stuck)),
         ("replay-recovery double runs", len(violations)),
         ("replay-recovery rebuilds", rebuilds),
         (f"bytes/suspension @interval=1", round(per_every, 1)),
         (f"bytes/suspension @interval={SNAPSHOT_INTERVAL}",
          round(per_sparse, 1)),
         ("bytes/suspension ratio", f"{ratio:.2f}x"),
         ("report artifact", out_path)])
    bench_report("bench_history", text)
