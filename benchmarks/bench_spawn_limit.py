"""Experiment S5b — the spawn-limit analysis (Section 5).

The paper analyzes two failure modes of the spawn-limit implementation:

* **no/high limit**: when n children finish together, "n AwakeFiber
  messages will be placed on the message queue ... n-1 of those
  AwakeFiber operations will be forced to wait while a single instance
  reads and updates the persistence information ... for some period of
  time all n instances will be unavailable to process other activity"
  — bursty lock contention that blocks unrelated work;
* **low limit**: "the overhead of sending an AwakeFiber message for
  permission to spawn the next child seems high" — serialization
  stretches the makespan.

The sweep below reproduces both ends: makespan falls as the limit
rises, while AwakeFiber lock-waits (the burstiness cost) rise.
"""

import pytest

from repro.harness.reporting import series
from repro.vinz.api import VinzEnvironment

FANOUT_WORKFLOW = """
(defun main (params)
  (for-each (x in params)
    (compute 1.0)       ; children take ~the same time (the paper's case)
    x))
"""

CHILDREN = 16
NODES = 8


def run_with_limit(limit: int, seed: int = 3):
    env = VinzEnvironment(nodes=NODES, seed=seed, trace=False)
    env.deploy_workflow("Fan", FANOUT_WORKFLOW, spawn_limit=limit,
                        awake_patience=0.02)
    env.run("Fan", list(range(CHILDREN)))
    return {
        "makespan": env.cluster.kernel.now,
        "lock_waits": env.counters.get("awake.lock-wait"),
        "requeues": env.cluster.queue.redelivered,
        "awakes": env.cluster.counters.get("op.Fan.AwakeFiber"),
    }


def test_spawn_limit_sweep(benchmark, bench_report):
    benchmark.pedantic(lambda: run_with_limit(4), rounds=1, iterations=1)

    points = []
    results = {}
    for limit in (1, 2, 4, 8, 16, 32):
        r = run_with_limit(limit)
        results[limit] = r
        points.append((limit, round(r["makespan"], 2), r["awakes"],
                       r["lock_waits"], r["requeues"]))
    bench_report("spawn_limit_sweep", series(
        f"Section 5 — spawn-limit sweep ({CHILDREN} children x 1s, "
        f"{NODES} nodes)",
        "spawn limit",
        ["makespan (virt s)", "AwakeFiber msgs", "lock waits",
         "requeued msgs"],
        points) + """

Reading the sweep (the paper's analysis):
 - limit 1 serializes the children: makespan ~= children x 1s, and the
   per-child AwakeFiber permission round-trip adds overhead on top
   ("the overhead of sending an AwakeFiber message for permission to
   spawn the next child seems high");
 - a high limit minimizes makespan but the simultaneous completions
   make the AwakeFibers collide on the parent's fiber lock: waiting
   AwakeFibers occupy instance slots ("all n instances will be
   unavailable to process other activity").""")

    # shape assertions: both ends of the trade-off
    assert results[1]["makespan"] > results[16]["makespan"] * 2
    assert results[32]["lock_waits"] + results[32]["requeues"] > \
        results[1]["lock_waits"] + results[1]["requeues"]
    # exactly one AwakeFiber per child, regardless of the limit
    for limit, r in results.items():
        assert r["awakes"] >= CHILDREN, (limit, r)


def test_awake_burst_blocks_unrelated_work(bench_report):
    """The Section 5 complaint, directly: during an AwakeFiber burst,
    unrelated service operations wait for slots."""
    from repro.bluebox.messagequeue import ReplyTo
    from repro.bluebox.services import simple_service

    env = VinzEnvironment(nodes=4, seed=4, trace=False)
    env.deploy_workflow("Fan", FANOUT_WORKFLOW, spawn_limit=32,
                        awake_patience=0.25)  # long patience = long block
    env.deploy_service(simple_service(
        "Other", {"Ping": lambda ctx, body: "pong"}))
    task = env.start("Fan", list(range(12)))

    # when children start completing, probe the unrelated service
    env.cluster.run_until(
        lambda: env.cluster.counters.get("op.Fan.AwakeFiber") >= 1)
    latencies = []

    def probe():
        sent = env.cluster.kernel.now
        env.cluster.send("Other", "Ping", {},
                         reply_to=ReplyTo(callback=lambda b: latencies.append(
                             env.cluster.kernel.now - sent)))

    probe()
    env.wait_for_task(task)
    env.cluster.run_until_idle()
    baseline = 2 * env.cluster.delivery_latency + 0.002
    bench_report("awake_burst_blocking", series(
        "Unrelated-operation latency during an AwakeFiber burst",
        "probe", ["latency (virt s)", "unloaded baseline (virt s)"],
        [(i + 1, round(lat, 4), round(baseline, 4))
         for i, lat in enumerate(latencies)]))
    assert latencies, "probe never answered"
    # the probe was measurably delayed by the burst
    assert latencies[0] > baseline
