"""Experiment S3a — non-blocking service requests (Section 3.2).

"Overall, this allows many more tasks to be in progress at any one
time.  Wall-clock time, CPU resources and memory that would otherwise
have been wasted blocking can now be used by a different task to make
progress."

The experiment: N workflow tasks each call a slow backend service once.
In *blocking* mode (static :sync), the calling fiber occupies its
instance slot for the whole service time; in *non-blocking* mode the
fiber yields, persists, and frees the slot.  With fewer slots than
tasks, non-blocking mode finishes the batch far sooner.
"""

import pytest

from repro.bluebox.services import simple_service
from repro.harness.reporting import paper_vs_measured, series
from repro.vinz.api import VinzEnvironment

SERVICE_SECONDS = 2.0
TASKS = 12


def build_env(sync: bool, nodes: int = 2, slots: int = 1, seed: int = 6):
    env = VinzEnvironment(nodes=nodes, slots=slots, seed=seed, trace=False)
    workflow_nodes = list(env.cluster.nodes)
    env.backend_peak = 0

    def slow(ctx, body):
        # how many requests are being serviced simultaneously?  In
        # blocking mode each pins a workflow slot (so <= slots); in
        # non-blocking mode every suspended task can have one in flight
        # at the backend.
        queued = sum(1 for r in env.cluster._in_flight
                     if r.message.service == "Backend")
        pinned = sum(env.cluster.nodes[nid].busy for nid in workflow_nodes)
        env.backend_peak = max(env.backend_peak, queued + pinned)
        ctx.charge(SERVICE_SECONDS)
        return body.get("X", 0) * 2

    # the backend runs on its own ample set of extra nodes so it is
    # never the bottleneck — the contended resource is the workflow's
    # own instance slots
    extra = env.cluster.add_nodes(TASKS)
    backend = simple_service("Backend", {"Slow": slow},
                             namespace="urn:backend-service",
                             parameters={"Slow": ["X"]})
    env.cluster.deploy(backend, node_ids=[n.id for n in extra])
    source = f"""
        (deflink B :wsdl "urn:backend-service" {":sync t" if sync else ""})
        (defun main (params)
          (B-Slow-Method :X params))"""
    env.deploy_workflow("Caller", source, node_ids=workflow_nodes)
    return env


def run_batch(sync: bool) -> dict:
    env = build_env(sync)
    for i in range(TASKS):
        env.cluster.send("Caller", "Start", {"params": i})
    env.cluster.run_until_idle()
    counts = env.registry.counts()
    assert counts.get("completed") == TASKS, counts
    return {
        "makespan": env.cluster.kernel.now,
        "peak_in_service": env.backend_peak,
        "persists": env.counters.get("persist.writes"),
    }


def test_nonblocking_vs_blocking(benchmark, bench_report):
    benchmark.pedantic(lambda: run_batch(sync=False), rounds=1, iterations=1)

    blocking = run_batch(sync=True)
    nonblocking = run_batch(sync=False)

    rows = [
        ("makespan, blocking (virt s)", None, round(blocking["makespan"], 2)),
        ("makespan, non-blocking (virt s)", None,
         round(nonblocking["makespan"], 2)),
        ("speedup from non-blocking", ">1",
         round(blocking["makespan"] / nonblocking["makespan"], 2)),
        ("peak requests in service, blocking (slot-capped)", None,
         blocking["peak_in_service"]),
        ("peak requests in service, non-blocking ('many more tasks')",
         None, nonblocking["peak_in_service"]),
        ("checkpoints written (non-blocking only)", None,
         nonblocking["persists"]),
    ]
    bench_report("nonblocking_requests", paper_vs_measured(
        f"Section 3.2 — {TASKS} tasks x one {SERVICE_SECONDS}s service "
        "call, 2 workflow slots", rows))

    # the paper's claims, as hard shape checks
    assert nonblocking["makespan"] < blocking["makespan"] / 2
    assert nonblocking["peak_in_service"] > blocking["peak_in_service"]
    assert blocking["persists"] == 0  # sync calls never checkpoint
    assert nonblocking["persists"] >= TASKS


def test_failure_during_service_call(bench_report):
    """Robustness: an instance dies while fibers are suspended awaiting
    a service response; 'other instances automatically compensate'."""
    env = build_env(sync=False, nodes=3)
    for i in range(6):
        env.cluster.send("Caller", "Start", {"params": i})
    env.cluster.run_until(
        lambda: env.counters.get("persist.writes") >= 3)
    env.fail_node("node-1")
    env.cluster.run_until_idle()
    counts = env.registry.counts()
    bench_report("nonblocking_failure", paper_vs_measured(
        "Section 3.2 — node failure while fibers awaited responses",
        [("tasks completed", 6, counts.get("completed", 0)),
         ("tasks lost", 0, 6 - counts.get("completed", 0)),
         ("messages redelivered", None, env.cluster.queue.redelivered)]))
    assert counts.get("completed") == 6
