"""Experiment T1 — Table 1: the Vinz service operations.

Exercises all eight operations and reports each one's behaviour and
client-observed virtual-time latency, regenerating Table 1 with a
"measured" column.
"""

import pytest

from repro.bluebox.messagequeue import ReplyTo
from repro.harness.reporting import table
from repro.vinz.api import VinzEnvironment

WORKFLOW = """
(deflink EC :wsdl "urn:echo-service")

(defun main (params)
  (let ((child (fork-and-exec (lambda (x) (* x x)) :argument 6)))
    (let ((mapped (for-each (x in (list 1 2)) (+ x 10)))
          (echoed (EC-Echo-Method :X 1)))   ; exercises ResumeFromCall
      (list (join-process child) mapped (or params 0)))))
"""

SLOW_WORKFLOW = """
(defun main (params) (workflow-sleep 1000) :late)
"""


def fresh_env():
    from repro.bluebox.services import simple_service

    env = VinzEnvironment(nodes=4, seed=101)
    env.deploy_service(simple_service(
        "Echo", {"Echo": lambda ctx, body: body.get("X")},
        namespace="urn:echo-service", parameters={"Echo": ["X"]}))
    env.deploy_workflow("WF", WORKFLOW)
    env.deploy_workflow("Slow", SLOW_WORKFLOW)
    return env


def run_all_operations(env):
    """One pass that causes every Table 1 operation to execute."""
    measurements = {}

    t0 = env.cluster.kernel.now
    task_id = env.start("WF", 5)          # Start
    measurements["Start"] = env.cluster.kernel.now - t0

    t0 = env.cluster.kernel.now
    env.wait_for_task(task_id)            # drives RunFiber/Awake/Join
    measurements["RunFiber"] = env.cluster.kernel.now - t0

    t0 = env.cluster.kernel.now
    env.run("WF", 5)                      # Run
    measurements["Run"] = env.cluster.kernel.now - t0

    t0 = env.cluster.kernel.now
    result = env.call("WF", 5)            # Call
    measurements["Call"] = env.cluster.kernel.now - t0
    assert result == [36, [11, 12], 5]

    t0 = env.cluster.kernel.now
    slow_task = env.start("Slow", None)
    env.terminate(slow_task)              # Terminate
    measurements["Terminate"] = env.cluster.kernel.now - t0
    return measurements


def test_table1_all_operations(benchmark, bench_report):
    measurements = benchmark(lambda: run_all_operations(fresh_env()))

    env = fresh_env()
    run_all_operations(env)
    counts = {op: env.cluster.counters.get(f"op.WF.{op}")
              for op in ("Start", "Run", "Call", "Terminate", "RunFiber",
                         "AwakeFiber", "ResumeFromCall", "JoinProcess")}
    counts["Terminate"] = env.cluster.counters.get("op.Slow.Terminate")
    counts["Start"] += env.cluster.counters.get("op.Slow.Start")

    wsdl = env.cluster.get_wsdl("WF")
    rows = []
    for op_name in ("Start", "Run", "Call", "Terminate", "RunFiber",
                    "AwakeFiber", "ResumeFromCall", "JoinProcess"):
        rows.append((
            op_name,
            wsdl.operations[op_name].doc,
            counts.get(op_name, 0),
            f"{measurements.get(op_name, 0) * 1000:.1f} ms (virt)"
            if op_name in measurements else "-",
        ))
    bench_report("table1_operations", table(
        "Table 1 — Vinz Service Operations (reproduced)",
        ["Operation", "Description (from WSDL)", "invocations", "latency"],
        rows))

    # every operation actually ran
    for op_name in ("Start", "RunFiber", "AwakeFiber", "JoinProcess"):
        assert counts[op_name] >= 1, op_name


def test_table1_wsdl_is_complete():
    env = fresh_env()
    wsdl = env.cluster.get_wsdl("WF")
    table1 = {"Start", "Run", "Call", "Terminate", "RunFiber",
              "AwakeFiber", "ResumeFromCall", "JoinProcess"}
    assert table1 <= set(wsdl.operations)
    # anything extra is a documented extension operation
    assert set(wsdl.operations) - table1 <= {"DeliverMessage"}
