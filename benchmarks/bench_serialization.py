"""Experiment S4a — Section 4.2's serialization findings.

Three claims to reproduce in shape:

1. "compressing the serialized data before writing it to NFS was a net
   win by reducing IO costs considerably" — compressed blob IO time +
   compression CPU < raw blob IO time, under the store's cost model;
2. "plain deflate can be made to perform approximately 30% better than
   the more robust and space-efficient gzip format" — raw-deflate at a
   light level encodes meaningfully faster than full gzip framing at
   its robust level, at comparable sizes;
3. the custom format (program objects by reference) stores fibers in
   far fewer bytes than generic serialization.
"""

import time

import pytest

from repro.bluebox.store import SharedStore
from repro.gvm.frames import GozerFunction
from repro.gvm.runtime import make_runtime
from repro.harness.reporting import ratio_check, table
from repro.vinz.persistence import (
    CodeRegistry,
    FiberCodec,
    HostFunctionRegistry,
)

PROGRAM = """
(defun helper-a (x) (* x 17))
(defun helper-b (x) (+ (helper-a x) 3))
(defun busy-work (items)
  (let ((table (make-hash-table))
        (acc (list)))
    (dolist (item items)
      (setf (gethash item table) (helper-b item))
      (append! acc (list item (helper-b item) "intermediate state")))
    (yield :checkpoint)
    (list acc (hash-count table))))
"""


def realistic_continuation():
    """A captured continuation of a program with real data on board."""
    rt = make_runtime(deterministic=True)
    rt.eval_string(PROGRAM)
    result = rt.start("(busy-work (loop for i from 0 below 120 collect i))")
    registry = CodeRegistry()
    hosts = HostFunctionRegistry()
    for name, value in rt.global_env.variables.items():
        if isinstance(value, GozerFunction):
            registry.register_tree(value.code)
        elif callable(value):
            hosts.register(name.name, value)
    return rt, result.continuation, registry, hosts


def measure(codec_name, continuation, registry, hosts, repeats=30):
    codec = FiberCodec(codec_name, registry=registry, hosts=hosts)
    blob = codec.dumps(continuation)
    t0 = time.perf_counter()
    for _ in range(repeats):
        codec.dumps(continuation)
    encode_s = (time.perf_counter() - t0) / repeats
    t0 = time.perf_counter()
    for _ in range(repeats):
        codec.loads(blob)
    decode_s = (time.perf_counter() - t0) / repeats
    return {"bytes": len(blob), "encode_s": encode_s, "decode_s": decode_s}


@pytest.fixture(scope="module")
def payload():
    return realistic_continuation()


def test_codec_comparison(benchmark, payload, bench_report):
    rt, continuation, registry, hosts = payload
    deflate_codec = FiberCodec("deflate", registry=registry, hosts=hosts)
    benchmark(lambda: deflate_codec.dumps(continuation))

    results = {name: measure(name, continuation, registry, hosts)
               for name in ("none", "gzip", "deflate", "custom")}

    store = SharedStore()  # the NFS cost model
    rows = []
    for name, metrics in results.items():
        io_s = store.cost(int(metrics["bytes"]))
        rows.append((name, int(metrics["bytes"]),
                     metrics["encode_s"] * 1e3,
                     metrics["decode_s"] * 1e3,
                     io_s * 1e3,
                     (metrics["encode_s"] + io_s) * 1e3))
    lines = [table(
        "Section 4.2 — fiber serialization codecs "
        "(realistic captured continuation)",
        ["codec", "bytes", "encode ms", "decode ms",
         "NFS IO ms (model)", "total write ms"],
        rows)]

    none_total = results["none"]["encode_s"] + store.cost(int(results["none"]["bytes"]))
    deflate_total = results["deflate"]["encode_s"] + store.cost(int(results["deflate"]["bytes"]))
    gzip_encode = results["gzip"]["encode_s"]
    deflate_encode = results["deflate"]["encode_s"]
    speedup = (gzip_encode - deflate_encode) / gzip_encode * 100

    lines.append("")
    lines.append("Paper claims (shape checks):")
    lines.append(ratio_check(
        "compression is a net win (deflate total / raw total < 1)",
        deflate_total / none_total, 0.5, tolerance=1.0))
    lines.append(
        f"   deflate encodes {speedup:.0f}% faster than gzip "
        "(paper: ~30% better)")
    lines.append(ratio_check(
        "custom format size vs deflate",
        results["custom"]["bytes"] / results["deflate"]["bytes"],
        0.4, tolerance=1.0))
    bench_report("serialization_codecs", "\n".join(lines))

    # hard shape assertions
    assert results["deflate"]["bytes"] < results["none"]["bytes"]
    assert deflate_total < none_total, "compression must be a net win"
    assert deflate_encode < gzip_encode, "raw deflate must beat gzip CPU"
    assert results["custom"]["bytes"] < results["deflate"]["bytes"]

    # round-trip correctness for every codec
    for name in ("none", "gzip", "deflate", "custom"):
        codec = FiberCodec(name, registry=registry, hosts=hosts)
        restored = codec.loads(codec.dumps(continuation))
        done = rt.resume(restored, None)
        assert done.value[1] == 120


def test_decode_benchmark(benchmark, payload):
    """Reconstituting a fiber 'is still relatively slow' — this is the
    cost the fiber cache (S4b) exists to avoid."""
    _rt, continuation, registry, hosts = payload
    codec = FiberCodec("custom", registry=registry, hosts=hosts)
    blob = codec.dumps(continuation)
    benchmark(lambda: codec.loads(blob))


# ---------------------------------------------------------------------------
# Experiment S4c — incremental continuation snapshots (format v2)
# ---------------------------------------------------------------------------

LOOP_HEAVY_WORKFLOW = """
(defun main (params)
  (let ((carried (loop for i from 0 below 400 collect
                       (list i "carried-payload-block" (* i 7))))
        (acc (list)))
    (dolist (i params)
      (workflow-sleep 1)
      (append! acc (* i 2)))
    (list (length carried) (length acc))))
"""

SUSPENSIONS = 16


def run_workflow(snapshots):
    from repro.vinz.api import VinzEnvironment

    env = VinzEnvironment(nodes=3, seed=5)
    env.deploy_workflow("W", LOOP_HEAVY_WORKFLOW, snapshots=snapshots)
    result = env.call("W", list(range(SUSPENSIONS)))
    assert result == [400, SUSPENSIONS]
    writes = env.counters.get("persist.writes")
    nbytes = env.counters.get_sum("persist.bytes")
    return env, writes, nbytes


def test_incremental_snapshot_dedup(benchmark, bench_report):
    """A loop-heavy workflow persists ~the same carried state at every
    suspension; chunk-level dedup must cut bytes-per-suspension by at
    least 2x versus whole-blob v1 persistence."""
    import json
    import os

    from repro.bluebox.store import SharedStore
    from repro.persistsnap import SnapshotPipeline

    _v1_env, v1_writes, v1_bytes = run_workflow("v1")
    v2_env, v2_writes, v2_bytes = run_workflow("v2")
    assert v1_writes >= 10 and v2_writes >= 10

    v1_per = v1_bytes / v1_writes
    v2_per = v2_bytes / v2_writes
    bytes_ratio = v1_per / v2_per
    snap_stats = v2_env.summary()["snapshots"]

    # restore latency: a captured loop-heavy continuation through the
    # v1 codec vs the v2 chunk-fetch path
    rt = make_runtime(deterministic=True)
    rt.eval_string(PROGRAM)
    captured = rt.start(
        "(busy-work (loop for i from 0 below 400 collect i))")
    registry = CodeRegistry()
    hosts = HostFunctionRegistry()
    for name, value in rt.global_env.variables.items():
        if isinstance(value, GozerFunction):
            registry.register_tree(value.code)
        elif callable(value):
            hosts.register(name.name, value)
    codec = FiberCodec("deflate", registry=registry, hosts=hosts)
    v1_blob = codec.dumps(captured.continuation)
    pipeline = SnapshotPipeline(codec, SharedStore())
    write = pipeline.encode("fiber-state/bench", captured.continuation,
                            fiber_id="bench")
    pipeline.store.write("fiber-state/bench", write.blob)

    repeats = 20
    t0 = time.perf_counter()
    for _ in range(repeats):
        codec.loads(v1_blob)
    v1_restore_ms = (time.perf_counter() - t0) / repeats * 1e3
    t0 = time.perf_counter()
    for _ in range(repeats):
        pipeline.load(write.blob, fiber_id="bench")
    v2_restore_ms = (time.perf_counter() - t0) / repeats * 1e3

    benchmark(lambda: pipeline.encode("fiber-state/bench",
                                      captured.continuation,
                                      fiber_id="bench"))

    rows = [
        ("v1 whole blob", v1_writes, int(v1_bytes), int(v1_per),
         f"{v1_restore_ms:.2f}"),
        ("v2 incremental", v2_writes, int(v2_bytes), int(v2_per),
         f"{v2_restore_ms:.2f}"),
    ]
    lines = [table(
        "Incremental snapshots — bytes persisted per suspension "
        f"(loop-heavy workflow, {SUSPENSIONS} suspensions)",
        ["format", "persists", "total bytes", "bytes/suspension",
         "restore ms"],
        rows)]
    lines.append("")
    lines.append(ratio_check(
        "v1 / v2 bytes per suspension (acceptance: >= 2x)",
        bytes_ratio, 2.0, tolerance=10.0))
    lines.append(f"   pipeline dedup ratio (raw/written): "
                 f"{snap_stats['dedup_ratio']:.2f}")
    lines.append(f"   chunks new {snap_stats['chunks_new']}, "
                 f"reused {snap_stats['chunks_reused']}")
    bench_report("persistsnap_dedup", "\n".join(lines))

    payload = {
        "suspensions": SUSPENSIONS,
        "v1_persists": v1_writes,
        "v2_persists": v2_writes,
        "v1_bytes": int(v1_bytes),
        "v2_bytes": int(v2_bytes),
        "v1_bytes_per_suspension": v1_per,
        "v2_bytes_per_suspension": v2_per,
        "bytes_ratio": bytes_ratio,
        "dedup_ratio": snap_stats["dedup_ratio"],
        "chunks_new": snap_stats["chunks_new"],
        "chunks_reused": snap_stats["chunks_reused"],
        "v1_restore_ms": v1_restore_ms,
        "v2_restore_ms": v2_restore_ms,
    }
    out_dir = os.path.join(os.path.dirname(__file__), "out")
    os.makedirs(out_dir, exist_ok=True)
    with open(os.path.join(out_dir, "persistsnap_dedup.json"), "w") as fh:
        json.dump(payload, fh, indent=2)

    # the issue's acceptance bar
    assert bytes_ratio >= 2.0, (
        f"incremental snapshots only cut per-suspension bytes by "
        f"{bytes_ratio:.2f}x (need >= 2x)")
    # restore must stay the same order of magnitude as v1
    assert v2_restore_ms < v1_restore_ms * 10
