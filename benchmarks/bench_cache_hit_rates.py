"""Experiment S4b — the fiber cache hit rates (Section 4.2).

"Because Vinz executes no control over where a fiber will be asked to
run (leaving that in the hands of the message queue), the cache is only
somewhat effective.  Empirical measurements show cache hit rates of
about 18% and 66% for mutable and immutable data, respectively."

We run a multi-suspension workload across a load-balanced cluster and
measure both rates.  The *shape* expected: mutable (per-version
continuation) hit rate well below the immutable (per-task environment)
hit rate, both strictly between 0 and 1, with mutable in the tens of
percent at most.
"""

import pytest

from repro.harness.reporting import paper_vs_measured, series
from repro.vinz.api import VinzEnvironment

#: a workflow whose fibers suspend many times (each suspend = one
#: chance for the next run to land on a different node)
MULTI_HOP_WORKFLOW = """
(defun main (params)
  (let ((phases (for-each (x in params)
                  (workflow-sleep 0.5)
                  (compute 0.2)
                  (workflow-sleep 0.5)
                  (* x x))))
    (workflow-sleep 1)
    (apply #'+ phases)))
"""


def run_workload(nodes: int, tasks: int = 20, seed: int = 42):
    env = VinzEnvironment(nodes=nodes, seed=seed, trace=False)
    env.deploy_workflow("MultiHop", MULTI_HOP_WORKFLOW, spawn_limit=4,
                        cache_capacity=512)
    for i in range(tasks):
        env.cluster.kernel.schedule(
            i * 0.3,
            lambda i=i: env.cluster.send("MultiHop", "Start",
                                         {"params": [i, i + 1, i + 2]}))
    env.cluster.run_until_idle()
    assert env.registry.counts().get("completed") == tasks
    return env.cache_hit_rates()


def test_cache_hit_rates(benchmark, bench_report):
    rates = benchmark.pedantic(lambda: run_workload(nodes=6),
                               rounds=1, iterations=1)

    rows = [
        ("mutable-data hit rate", 0.18, rates["mutable"]),
        ("immutable-data hit rate", 0.66, rates["immutable"]),
    ]
    lines = [paper_vs_measured(
        "Section 4.2 — fiber cache effectiveness under queue-controlled "
        "placement", rows)]

    # the paper's qualitative findings
    lines.append("")
    lines.append("Shape checks:")
    lines.append(f"   immutable >> mutable: "
                 f"{rates['immutable']:.2f} > {rates['mutable']:.2f} -> "
                 f"{'OK' if rates['immutable'] > rates['mutable'] else 'FAIL'}")
    lines.append(f"   cache 'only somewhat effective' (mutable < 50%): "
                 f"{'OK' if rates['mutable'] < 0.5 else 'FAIL'}")
    bench_report("cache_hit_rates", "\n".join(lines))

    assert 0.0 < rates["mutable"] < 0.5
    assert rates["immutable"] > rates["mutable"]


def test_cache_rate_vs_cluster_size(bench_report):
    """More nodes => random placement hits any one node's cache less —
    the structural reason the paper's cache underperforms."""
    points = []
    for nodes in (1, 2, 4, 8, 12):
        rates = run_workload(nodes=nodes, tasks=12)
        points.append((nodes, round(rates["mutable"], 3),
                       round(rates["immutable"], 3)))
    bench_report("cache_vs_cluster_size", series(
        "Cache hit rates vs cluster size (queue-controlled placement)",
        "nodes", ["mutable hit rate", "immutable hit rate"], points))
    by_nodes = {n: m for n, m, _ in points}
    # a single node always hits; a large cluster hits much less
    assert by_nodes[1] > 0.95
    assert by_nodes[12] < by_nodes[2]


def test_cache_disabled_costs_more_io(bench_report):
    """The cache exists because 'reconstituting a fiber from its
    persisted state is still relatively slow': with the cache off,
    every resume pays a store read."""
    results = {}
    for enabled in (True, False):
        env = VinzEnvironment(nodes=4, seed=5, trace=False)
        env.deploy_workflow("MultiHop", MULTI_HOP_WORKFLOW, cache=enabled)
        for i in range(6):
            env.cluster.send("MultiHop", "Start", {"params": [1, 2, 3]})
        env.cluster.run_until_idle()
        results[enabled] = env.store.reads
    bench_report("cache_io_savings", paper_vs_measured(
        "Store reads with and without the fiber cache",
        [("store reads (cache on)", None, results[True]),
         ("store reads (cache off)", None, results[False])]))
    assert results[True] < results[False]
