"""Printing Gozer values back to readable source text.

``print_form`` (Lisp ``prin1``) produces text the reader can read back;
``princ_form`` produces human-friendly text (strings unquoted).  Used by
the REPL example, error reports, and the reader round-trip property
tests.
"""

from __future__ import annotations

from typing import Any

from .reader import Char
from .symbols import Keyword, Symbol

_STRING_ESCAPES = {"\\": "\\\\", '"': '\\"', "\n": "\\n", "\t": "\\t", "\r": "\\r"}


def print_form(value: Any) -> str:
    """Render ``value`` as reader-compatible Gozer source text."""
    if value is None:
        return "nil"
    if value is True:
        return "t"
    if value is False:
        return "false"
    if isinstance(value, Symbol):
        return value.name
    if isinstance(value, Keyword):
        return ":" + value.name
    if isinstance(value, str):
        out = "".join(_STRING_ESCAPES.get(ch, ch) for ch in value)
        return f'"{out}"'
    if isinstance(value, Char):
        reverse = {" ": "Space", "\n": "Newline", "\t": "Tab", "\r": "Return"}
        name = reverse.get(value.value, value.value)
        return f"#\\{name}"
    if isinstance(value, float):
        text = repr(value)
        return text
    if isinstance(value, bool):  # pragma: no cover - caught above
        return "t" if value else "false"
    if isinstance(value, (int,)):
        return str(value)
    if isinstance(value, (list, tuple)):
        return "(" + " ".join(print_form(item) for item in value) + ")"
    if isinstance(value, dict):
        inner = " ".join(
            f"{print_form(k)} {print_form(v)}" for k, v in value.items()
        )
        return "{" + inner + "}"
    return str(value)


def princ_form(value: Any) -> str:
    """Render ``value`` for human display (strings and chars bare)."""
    if isinstance(value, str):
        return value
    if isinstance(value, Char):
        return value.value
    if isinstance(value, (list, tuple)):
        return "(" + " ".join(princ_form(item) for item in value) + ")"
    return print_form(value)
