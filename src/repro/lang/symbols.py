"""Symbols and keywords — the atoms of Gozer source code.

Symbols are interned: two occurrences of ``foo`` in source text read as
the *same* object, which makes ``eq`` comparisons cheap and lets the
compiler use symbols directly as dictionary keys.  Interning survives
pickling (fibers are serialized and migrated between cluster nodes, see
Section 4.2 of the paper), so both :class:`Symbol` and :class:`Keyword`
reduce to their interning constructor.

Gozer is case-sensitive but conventionally lower-case, like Clojure and
unlike Common Lisp's default read table.
"""

from __future__ import annotations

import contextlib
import itertools
import threading
from typing import Dict


class Symbol:
    """An interned identifier.

    Use :func:`intern_symbol` (or the :class:`Symbol` constructor, which
    delegates to the intern table) to obtain instances.
    """

    __slots__ = ("name",)

    _table: Dict[str, "Symbol"] = {}
    _lock = threading.Lock()

    def __new__(cls, name: str) -> "Symbol":
        if not isinstance(name, str):
            raise TypeError(f"symbol name must be a string, not {type(name).__name__}")
        table = cls._table
        sym = table.get(name)
        if sym is None:
            with cls._lock:
                sym = table.get(name)
                if sym is None:
                    sym = object.__new__(cls)
                    sym.name = name
                    table[name] = sym
        return sym

    def __repr__(self) -> str:
        return self.name

    def __reduce__(self):
        return (Symbol, (self.name,))

    # Interning makes identity the correct equality, so we deliberately
    # keep object's C-level __hash__/__eq__: symbol-keyed dict lookups
    # are the hottest operation in the VM (variable access), and a
    # Python-level __hash__ would dominate the interpreter's profile.

    def __copy__(self):
        return self

    def __deepcopy__(self, memo):
        return self

    @property
    def is_task_variable(self) -> bool:
        """True for ``^earmuffed^`` task-variable names (Section 3.6)."""
        return len(self.name) >= 2 and self.name.startswith("^") and self.name.endswith("^")


class Keyword:
    """A self-evaluating ``:keyword`` constant, also interned.

    Keywords are used for named function arguments (``&key``), plist
    keys, and the option syntax of macros like ``deflink`` and
    ``defhandler``.
    """

    __slots__ = ("name",)

    _table: Dict[str, "Keyword"] = {}
    _lock = threading.Lock()

    def __new__(cls, name: str) -> "Keyword":
        if not isinstance(name, str):
            raise TypeError(f"keyword name must be a string, not {type(name).__name__}")
        table = cls._table
        kw = table.get(name)
        if kw is None:
            with cls._lock:
                kw = table.get(name)
                if kw is None:
                    kw = object.__new__(cls)
                    kw.name = name
                    table[name] = kw
        return kw

    def __repr__(self) -> str:
        return ":" + self.name

    def __reduce__(self):
        return (Keyword, (self.name,))

    # interned: identity IS equality (see Symbol above)

    def __copy__(self):
        return self

    def __deepcopy__(self, memo):
        return self


def intern_symbol(name: str) -> Symbol:
    """Return the unique :class:`Symbol` named ``name``."""
    return Symbol(name)


def intern_keyword(name: str) -> Keyword:
    """Return the unique :class:`Keyword` named ``name``."""
    return Keyword(name)


_gensym_counter = itertools.count(1)


@contextlib.contextmanager
def gensym_scope(start: int = 1):
    """Draw gensyms from a fresh counter inside the ``with`` block.

    Compiling the same program always expands to the same gensym names,
    no matter what else the process compiled before — which keeps
    serialized fiber state byte-identical across repeated runs (the
    fault-injection subsystem's replay guarantee depends on it).  Safe
    because gensym uniqueness only matters *within* one expansion scope:
    the outer counter is restored, not advanced, on exit.
    """
    global _gensym_counter
    saved = _gensym_counter
    _gensym_counter = itertools.count(start)
    try:
        yield
    finally:
        _gensym_counter = saved


def gensym(prefix: str = "g") -> Symbol:
    """Return a fresh symbol guaranteed not to collide with read symbols.

    Used by macro expansions (``for-each``, ``deflink``...) to introduce
    hygienic temporaries.  The counter is zero-padded so gensym names
    have stable lengths: serialized fiber state then has stable sizes,
    which keeps the simulation's IO-cost accounting reproducible across
    repeated runs in one process.
    """
    return Symbol(f"#:{prefix}{next(_gensym_counter):07d}")


# Widely used symbols, pre-interned for convenience and speed.
S_NIL = Symbol("nil")
S_T = Symbol("t")
S_QUOTE = Symbol("quote")
S_QUASIQUOTE = Symbol("quasiquote")
S_UNQUOTE = Symbol("unquote")
S_UNQUOTE_SPLICING = Symbol("unquote-splicing")
S_FUNCTION = Symbol("function")
S_LAMBDA = Symbol("lambda")
S_AMP_REST = Symbol("&rest")
S_AMP_KEY = Symbol("&key")
S_AMP_OPTIONAL = Symbol("&optional")
S_DOT = Symbol(".")
S_PERCENT = Symbol("%")
