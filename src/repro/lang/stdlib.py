"""The Gozer standard library.

Built-in functions installed into every runtime's global environment.
Gozer's flavour is Common Lisp with Clojure/Groovy touches (paper
Section 1): list primitives operate on Python lists, ``nil`` is
``None``, and host interop is one ``.`` away.

Two kinds of builtins:

* plain Python callables — the VM forces any future arguments before
  the call (the determination rule of paper Section 4.1);
* VM builtins (marked ``needs_vm``) — receive the running VM first, for
  operations that call back into Gozer code (``mapcar``, ``sort``) or
  touch VM state (``signal``, ``invoke-restart``).
"""

from __future__ import annotations

import logging
import math
import random as _host_random
import sys
import time
from typing import Any, Callable, Dict, List, Optional

from ..gvm.conditions import (
    GozerCondition,
    coerce_condition,
    define_condition_type,
    make_condition,
)
from ..gvm.frames import GozerFunction
from ..gvm.futures import GozerFuture, force, is_fiber_thread
from .errors import GozerRuntimeError
from .printer import princ_form, print_form
from .reader import Char
from .symbols import Keyword, Symbol, gensym

_S = Symbol

_REGISTRY: Dict[str, Callable] = {}
_VM_REGISTRY: Dict[str, Callable] = {}


def builtin(*names: str):
    """Register a plain builtin under one or more Gozer names."""

    def register(fn):
        for name in names:
            _REGISTRY[name] = fn
        return fn

    return register


def vm_builtin(*names: str):
    """Register a builtin that receives the running VM as first arg."""

    def register(fn):
        fn.needs_vm = True
        for name in names:
            _VM_REGISTRY[name] = fn
        return fn

    return register


def install(runtime) -> None:
    """Install the standard library into ``runtime``'s global env."""
    env = runtime.global_env
    for name, fn in _REGISTRY.items():
        env.define(_S(name), fn)
    for name, fn in _VM_REGISTRY.items():
        env.define(_S(name), fn)
    _install_intrinsics(runtime)


# ===========================================================================
# arithmetic
# ===========================================================================

@builtin("+")
def _add(*args):
    total = 0
    for a in args:
        total = total + a
    return total


@builtin("-")
def _sub(first, *rest):
    if not rest:
        return -first
    for r in rest:
        first = first - r
    return first


@builtin("*")
def _mul(*args):
    total = 1
    for a in args:
        total = total * a
    return total


@builtin("/")
def _div(first, *rest):
    if not rest:
        return 1 / first
    for r in rest:
        if isinstance(first, int) and isinstance(r, int) and first % r == 0:
            first = first // r
        else:
            first = first / r
    return first


@builtin("1+")
def _incr(x):
    return x + 1


@builtin("1-")
def _decr(x):
    return x - 1


@builtin("mod")
def _mod(a, b):
    return a % b


@builtin("rem")
def _rem(a, b):
    return math.remainder(a, b) if isinstance(a, float) or isinstance(b, float) \
        else int(math.fmod(a, b))


def _chain_compare(op, args):
    if len(args) < 2:
        return True
    return all(op(args[i], args[i + 1]) for i in range(len(args) - 1))


@builtin("=")
def _num_eq(*args):
    return _chain_compare(lambda a, b: a == b, args)


@builtin("/=")
def _num_neq(*args):
    # all pairwise distinct (CL semantics)
    return len(set(args)) == len(args)


@builtin("<")
def _lt(*args):
    return _chain_compare(lambda a, b: a < b, args)


@builtin("<=")
def _le(*args):
    return _chain_compare(lambda a, b: a <= b, args)


@builtin(">")
def _gt(*args):
    return _chain_compare(lambda a, b: a > b, args)


@builtin(">=")
def _ge(*args):
    return _chain_compare(lambda a, b: a >= b, args)


@builtin("abs")
def _abs(x):
    return abs(x)


@builtin("min")
def _min(*args):
    return min(args)


@builtin("max")
def _max(*args):
    return max(args)


@builtin("clamp")
def _clamp(x, low, high):
    """Bound x to [low, high] (handy for workflow-side spawn-limit
    arithmetic around the adaptive governor)."""
    if low > high:
        raise ValueError(f"clamp: empty range [{low}, {high}]")
    return min(max(x, low), high)


@builtin("expt")
def _expt(base, power):
    return base ** power


@builtin("sqrt")
def _sqrt(x):
    return math.sqrt(x)


@builtin("floor")
def _floor(x, divisor=1):
    return math.floor(x / divisor)


@builtin("ceiling")
def _ceiling(x, divisor=1):
    return math.ceil(x / divisor)


@builtin("round")
def _round(x, divisor=1):
    return round(x / divisor)


@builtin("truncate")
def _truncate(x, divisor=1):
    return math.trunc(x / divisor)


@builtin("gcd")
def _gcd(*args):
    return math.gcd(*args) if args else 0


@builtin("zerop")
def _zerop(x):
    return x == 0


@builtin("plusp")
def _plusp(x):
    return x > 0


@builtin("minusp")
def _minusp(x):
    return x < 0


@builtin("evenp")
def _evenp(x):
    return x % 2 == 0


@builtin("oddp")
def _oddp(x):
    return x % 2 != 0


@builtin("numberp")
def _numberp(x):
    return isinstance(x, (int, float)) and not isinstance(x, bool)


@builtin("integerp")
def _integerp(x):
    return isinstance(x, int) and not isinstance(x, bool)


@builtin("floatp")
def _floatp(x):
    return isinstance(x, float)


# ===========================================================================
# equality and logic
# ===========================================================================

@builtin("not", "null")
def _not(x):
    return x is None or x is False


@builtin("eq")
def _eq(a, b):
    return a is b or (isinstance(a, (int, Symbol, Keyword)) and a == b
                      and type(a) is type(b))


@builtin("eql")
def _eql(a, b):
    if a is b:
        return True
    if isinstance(a, (int, float, str, Symbol, Keyword, Char)) and type(a) is type(b):
        return a == b
    return False


@builtin("equal", "equalp")
def _equal(a, b):
    return a == b


@builtin("identity")
def _identity(x):
    return x


class _Constantly:
    """Picklable ``constantly`` result.

    A plain ``lambda`` here breaks continuation persistence: a fiber
    suspended while a ``constantly`` closure sits in a frame could not
    be pickled for migration (surfaced by the conformance fuzzer's
    stepwise capture oracle).
    """

    __slots__ = ("value",)

    def __init__(self, value):
        self.value = value

    def __call__(self, *args):
        return self.value


@builtin("constantly")
def _constantly(x):
    return _Constantly(x)


# ===========================================================================
# lists
# ===========================================================================

@builtin("list")
def _list(*args):
    return list(args)


@builtin("list*")
def _list_star(*args):
    if not args:
        return []
    *front, last = args
    return list(front) + _to_list(last)


@builtin("cons")
def _cons(head, tail):
    return [head] + _to_list(tail)


@builtin("car", "first")
def _car(lst):
    if lst is None or len(lst) == 0:
        return None
    return lst[0]


@builtin("cdr", "rest")
def _cdr(lst):
    if lst is None or len(lst) <= 1:
        return []
    return lst[1:]


@builtin("second")
def _second(lst):
    return lst[1] if lst is not None and len(lst) > 1 else None


@builtin("third")
def _third(lst):
    return lst[2] if lst is not None and len(lst) > 2 else None


@builtin("nth")
def _nth(n, lst):
    if lst is None or n >= len(lst):
        return None
    return lst[n]


@builtin("nthcdr")
def _nthcdr(n, lst):
    if lst is None:
        return []
    return lst[n:]


@builtin("elt")
def _elt(seq, n):
    return seq[n]


@builtin("last")
def _last(lst, n=1):
    if lst is None or not lst:
        return []
    return lst[-n:]


@builtin("butlast")
def _butlast(lst, n=1):
    if lst is None:
        return []
    return lst[:-n] if n else list(lst)


@builtin("length")
def _length(seq):
    if seq is None:
        return 0
    return len(seq)


@builtin("append")
def _append(*lists):
    out: List[Any] = []
    for lst in lists:
        out.extend(_to_list(lst))
    return out


@builtin("append!")
def _append_bang(lst, item):
    """Destructively append ``item`` to ``lst`` (paper Listing 3)."""
    if lst is None:
        return [item]
    lst.append(item)
    return lst


@builtin("reverse")
def _reverse(seq):
    if seq is None:
        return []
    if isinstance(seq, str):
        return seq[::-1]
    return list(reversed(seq))


@builtin("copy-list")
def _copy_list(lst):
    return list(_to_list(lst))


@builtin("to-list")
def _to_list(value):
    if value is None:
        return []
    if isinstance(value, list):
        return value
    if isinstance(value, (tuple, set, frozenset, range)):
        return list(value)
    if isinstance(value, dict):
        return [[k, v] for k, v in value.items()]
    if isinstance(value, str):
        return [Char(c) for c in value]
    if isinstance(value, GozerFuture):
        return _to_list(value.touch())
    try:
        return list(value)
    except TypeError:
        raise GozerRuntimeError(f"cannot convert {value!r} to a list")


@builtin("vector")
def _vector(*args):
    return list(args)


@builtin("set-car!")
def _set_car(lst, value):
    lst[0] = value
    return value


@builtin("set-cdr!")
def _set_cdr(lst, tail):
    lst[1:] = _to_list(tail)
    return tail


@builtin("set-nth!")
def _set_nth(n, lst, value):
    lst[n] = value
    return value


@builtin("member")
def _member(item, lst):
    lst = _to_list(lst)
    for i, x in enumerate(lst):
        if x == item:
            return lst[i:]
    return None


@builtin("assoc")
def _assoc(key, alist):
    for entry in _to_list(alist):
        if isinstance(entry, list) and entry and entry[0] == key:
            return entry
    return None


@builtin("getf")
def _getf(plist, key, default=None):
    plist = _to_list(plist)
    for i in range(0, len(plist) - 1, 2):
        if plist[i] == key:
            return plist[i + 1]
    return default


@builtin("subseq")
def _subseq(seq, start, end=None):
    return seq[start:end] if end is not None else seq[start:]


@builtin("position")
def _position(item, seq):
    seq = _to_list(seq) if not isinstance(seq, str) else seq
    try:
        if isinstance(seq, str):
            idx = seq.index(item.value if isinstance(item, Char) else item)
        else:
            idx = seq.index(item)
        return idx
    except ValueError:
        return None
    except AttributeError:
        return None


@builtin("count")
def _count(item, seq):
    return _to_list(seq).count(item)


@builtin("remove")
def _remove(item, seq):
    return [x for x in _to_list(seq) if x != item]


@builtin("remove-duplicates")
def _remove_duplicates(seq):
    out = []
    for x in _to_list(seq):
        if x not in out:
            out.append(x)
    return out


@builtin("range")
def _range(start, stop=None, step=1):
    if stop is None:
        start, stop = 0, start
    return list(range(start, stop, step))


# -- higher-order list functions (need the VM to call Gozer closures) ------

def _callf(vm, fn, args):
    return vm.call(fn, list(args))


@vm_builtin("mapcar", "map")
def _mapcar(vm, fn, *lists):
    lists = [_to_list(l) for l in lists]
    return [_callf(vm, fn, group) for group in zip(*lists)]


@vm_builtin("mapc")
def _mapc(vm, fn, *lists):
    pylists = [_to_list(l) for l in lists]
    for group in zip(*pylists):
        _callf(vm, fn, group)
    return lists[0]


@vm_builtin("mapcan")
def _mapcan(vm, fn, *lists):
    lists = [_to_list(l) for l in lists]
    out: List[Any] = []
    for group in zip(*lists):
        out.extend(_to_list(_callf(vm, fn, group)))
    return out


@vm_builtin("filter", "remove-if-not")
def _filter(vm, fn, seq):
    from ..gvm.vm import truthy

    return [x for x in _to_list(seq) if truthy(_callf(vm, fn, [x]))]


@vm_builtin("remove-if")
def _remove_if(vm, fn, seq):
    from ..gvm.vm import truthy

    return [x for x in _to_list(seq) if not truthy(_callf(vm, fn, [x]))]


@vm_builtin("reduce")
def _reduce(vm, fn, seq, *initial):
    items = _to_list(seq)
    if initial:
        acc = initial[0]
    elif items:
        acc, items = items[0], items[1:]
    else:
        return _callf(vm, fn, [])
    for item in items:
        acc = _callf(vm, fn, [acc, item])
    return acc


@vm_builtin("find-if")
def _find_if(vm, fn, seq):
    from ..gvm.vm import truthy

    for x in _to_list(seq):
        if truthy(_callf(vm, fn, [x])):
            return x
    return None


@builtin("find")
def _find(item, seq):
    for x in _to_list(seq):
        if x == item:
            return x
    return None


@vm_builtin("position-if")
def _position_if(vm, fn, seq):
    from ..gvm.vm import truthy

    for i, x in enumerate(_to_list(seq)):
        if truthy(_callf(vm, fn, [x])):
            return i
    return None


@vm_builtin("count-if")
def _count_if(vm, fn, seq):
    from ..gvm.vm import truthy

    return sum(1 for x in _to_list(seq) if truthy(_callf(vm, fn, [x])))


@vm_builtin("every")
def _every(vm, fn, seq):
    from ..gvm.vm import truthy

    return all(truthy(_callf(vm, fn, [x])) for x in _to_list(seq))


@vm_builtin("some")
def _some(vm, fn, seq):
    from ..gvm.vm import truthy

    for x in _to_list(seq):
        value = _callf(vm, fn, [x])
        if truthy(value):
            return value
    return None


@vm_builtin("sort")
def _sort(vm, seq, predicate=None, key=None):
    import functools

    items = list(_to_list(seq))
    if key is not None:
        keyfn = lambda x: _callf(vm, key, [x])  # noqa: E731
    else:
        keyfn = None
    if predicate is None:
        return sorted(items, key=keyfn)
    from ..gvm.vm import truthy

    def cmp(a, b):
        if truthy(_callf(vm, predicate, [a, b])):
            return -1
        if truthy(_callf(vm, predicate, [b, a])):
            return 1
        return 0

    if keyfn is not None:
        items = sorted(items, key=keyfn)
        return items
    return sorted(items, key=functools.cmp_to_key(cmp))


@vm_builtin("funcall")
def _funcall(vm, fn, *args):
    return _callf(vm, fn, args)


@vm_builtin("apply")
def _apply(vm, fn, *args):
    if not args:
        return _callf(vm, fn, [])
    *front, last = args
    return _callf(vm, fn, list(front) + _to_list(last))


# ===========================================================================
# futures (paper Section 2)
# ===========================================================================

@builtin("touch")
def _touch(value):
    """Await determination of ``value`` (paper's ``touch`` operator)."""
    return force(value)


@vm_builtin("pcall")
def _pcall(vm, fn, *args):
    """Apply ``fn`` only after all its arguments are determined."""
    return _callf(vm, fn, [force(a) for a in args])


# futurep / determined-p are vm_builtins so that the VM's "force futures
# before host calls" rule does not determine their argument first —
# they need to observe the raw (possibly undetermined) future.

@vm_builtin("future-p", "futurep")
def _futurep(vm, value):
    return isinstance(value, GozerFuture)


@vm_builtin("determined-p")
def _determined_p(vm, value):
    """Any non-future value is always determined (paper Section 2)."""
    if isinstance(value, GozerFuture):
        return value.determined
    return True


# ===========================================================================
# hash tables
# ===========================================================================

@builtin("make-hash-table")
def _make_hash_table(*_options):
    return {}


@builtin("gethash")
def _gethash(key, table, default=None):
    return table.get(_hash_key(key), default)


@builtin("remhash")
def _remhash(key, table):
    return table.pop(_hash_key(key), None)


@builtin("hash-keys")
def _hash_keys(table):
    return list(table.keys())


@builtin("hash-values")
def _hash_values(table):
    return list(table.values())


@builtin("hash-count")
def _hash_count(table):
    return len(table)


@builtin("hash-contains-p")
def _hash_contains(key, table):
    return _hash_key(key) in table


def _hash_key(key):
    if isinstance(key, list):
        return tuple(key)
    return key


# ===========================================================================
# strings, symbols, characters
# ===========================================================================

@builtin("string-upcase")
def _string_upcase(s):
    return s.upper()


@builtin("string-downcase")
def _string_downcase(s):
    return s.lower()


@builtin("string-trim")
def _string_trim(chars, s):
    return s.strip(chars)


@builtin("string=")
def _string_eq(a, b):
    return _stringify(a) == _stringify(b)


@builtin("string<")
def _string_lt(a, b):
    return _stringify(a) < _stringify(b)


@builtin("concat", "concatenate-strings")
def _concat(*parts):
    return "".join(princ_form(p) if not isinstance(p, str) else p for p in parts)


@builtin("string-split")
def _string_split(s, sep=None):
    return s.split(sep)


@builtin("string-join")
def _string_join(parts, sep=""):
    return sep.join(princ_form(p) if not isinstance(p, str) else p
                    for p in _to_list(parts))


@builtin("starts-with-p")
def _starts_with(s, prefix):
    return s.startswith(prefix)


@builtin("ends-with-p")
def _ends_with(s, suffix):
    return s.endswith(suffix)


@builtin("string-contains-p")
def _string_contains(s, needle):
    return needle in s


@builtin("parse-integer")
def _parse_integer(s, radix=10):
    return int(s, radix)


@builtin("parse-float")
def _parse_float(s):
    return float(s)


def _stringify(x):
    if isinstance(x, str):
        return x
    if isinstance(x, Symbol):
        return x.name
    if isinstance(x, Keyword):
        return x.name
    if isinstance(x, Char):
        return x.value
    return princ_form(x)


@builtin("string")
def _string(x):
    return _stringify(x)


@builtin("symbol-name")
def _symbol_name(sym):
    return sym.name


@builtin("intern")
def _intern(name):
    return _S(name)


@builtin("make-keyword", "keyword")
def _make_keyword(name):
    return Keyword(_stringify(name))


@vm_builtin("gensym")
def _gensym(vm, prefix="g"):
    execution = getattr(vm, "vinz", None)
    if execution is not None:
        # the gensym counter's state at replay time differs from what
        # the live run saw: record the drawn symbol as nondeterminism
        return execution.nondet(
            "gensym", lambda: gensym(_stringify(prefix)))
    return gensym(_stringify(prefix))


@builtin("char-code")
def _char_code(c):
    return ord(c.value if isinstance(c, Char) else c)


@builtin("code-char")
def _code_char(n):
    return Char(chr(n))


@builtin("number-to-string")
def _number_to_string(n):
    return str(n)


@builtin("princ-to-string")
def _princ_to_string(x):
    return princ_form(x)


@builtin("prin1-to-string")
def _prin1_to_string(x):
    return print_form(x)


# ===========================================================================
# type predicates
# ===========================================================================

@builtin("consp")
def _consp(x):
    return isinstance(x, list) and len(x) > 0


@builtin("listp")
def _listp(x):
    return x is None or isinstance(x, list)


@builtin("atom")
def _atom(x):
    return not (isinstance(x, list) and len(x) > 0)


@builtin("stringp")
def _stringp(x):
    return isinstance(x, str)


@builtin("symbolp")
def _symbolp(x):
    return isinstance(x, Symbol)


@builtin("keywordp")
def _keywordp(x):
    return isinstance(x, Keyword)


@builtin("characterp")
def _characterp(x):
    return isinstance(x, Char)


@builtin("functionp")
def _functionp(x):
    return isinstance(x, GozerFunction) or callable(x)


@builtin("hash-table-p")
def _hash_table_p(x):
    return isinstance(x, dict)


@builtin("booleanp")
def _booleanp(x):
    return isinstance(x, bool)


# ===========================================================================
# formatted output
# ===========================================================================

def format_string(control: str, args: List[Any]) -> str:
    """A practical subset of CL FORMAT: ~a ~s ~d ~f ~% ~& ~~."""
    out: List[str] = []
    arg_iter = iter(args)
    i = 0
    while i < len(control):
        ch = control[i]
        if ch != "~":
            out.append(ch)
            i += 1
            continue
        i += 1
        if i >= len(control):
            out.append("~")
            break
        directive = control[i]
        i += 1
        lower = directive.lower()
        if lower == "a":
            out.append(princ_form(next(arg_iter)))
        elif lower == "s":
            out.append(print_form(next(arg_iter)))
        elif lower == "d":
            out.append(str(int(force(next(arg_iter)))))
        elif lower == "f":
            out.append(f"{float(force(next(arg_iter)))}")
        elif lower == "%" or lower == "&":
            out.append("\n")
        elif directive == "~":
            out.append("~")
        else:
            raise GozerRuntimeError(f"format: unsupported directive ~{directive}")
    return "".join(out)


@builtin("format")
def _format(destination, control, *args):
    text = format_string(control, [force(a) for a in args])
    if destination is True:
        sys.stdout.write(text)
        return None
    return text


@builtin("print")
def _print(x):
    sys.stdout.write("\n" + print_form(x) + " ")
    return x


@builtin("princ")
def _princ(x):
    sys.stdout.write(princ_form(x))
    return x


@builtin("prin1")
def _prin1(x):
    sys.stdout.write(print_form(x))
    return x


@builtin("terpri")
def _terpri():
    sys.stdout.write("\n")
    return None


@builtin("log")
def _log(*args):
    """Lightweight logging (Listing 2's ``(log "...")``)."""
    logging.getLogger("gozer").info(" ".join(princ_form(a) for a in args))
    return None


# ===========================================================================
# time and randomness
# ===========================================================================

#: host-side fallback RNG for ``(random n)`` outside any platform —
#: inside a fiber the draw comes from the cluster's seeded RNG and is
#: recorded as history nondeterminism
_FALLBACK_RNG = _host_random.Random()


@vm_builtin("get-universal-time")
def _get_universal_time(vm):
    execution = getattr(vm, "vinz", None)
    if execution is not None:
        # a clock read is nondeterminism the fiber observes: draw it
        # from the platform's virtual clock and record it for replay
        return execution.nondet("clock", execution.clock_now)
    clock = getattr(vm, "clock", None)
    if clock is not None:
        return clock.now()
    return time.time()  # bare VM with no runtime clock


@vm_builtin("sleep", "%clock-sleep")
def _sleep(vm, seconds):
    # Inside a fiber this builtin is shadowed by the Vinz prelude's
    # (defun sleep ...), which yields to the platform timer; here the
    # runtime clock decides — a VirtualClock makes (sleep 3600) free
    # and deterministic instead of blocking the host for an hour.
    clock = getattr(vm, "clock", None)
    if clock is not None:
        clock.sleep(seconds)
        return None
    time.sleep(seconds)  # bare VM with no runtime clock
    return None


@vm_builtin("random")
def _random(vm, n):
    """(random n): int in [0, n) for an integer bound, uniform float
    in [0, n) otherwise — Common Lisp semantics."""
    execution = getattr(vm, "vinz", None)
    if execution is not None:
        return execution.nondet("random",
                                lambda: execution.random_draw(n))
    if isinstance(n, int) and not isinstance(n, bool):
        return _FALLBACK_RNG.randrange(n) if n > 0 else 0
    return _FALLBACK_RNG.uniform(0.0, float(n))


# ===========================================================================
# condition system entry points (paper Section 3.7)
# ===========================================================================

@vm_builtin("signal")
def _signal(vm, condition, *args):
    cond = _build_condition(condition, args)
    return vm.signal(cond, error_p=False)


@vm_builtin("error")
def _error(vm, condition, *args):
    cond = _build_condition(condition, args)
    vm.signal(cond, error_p=True)


@vm_builtin("warn")
def _warn(vm, condition, *args):
    cond = _build_condition(condition, args, default_type="warning")
    vm.signal(cond, error_p=False)
    logger = logging.getLogger("gozer")
    logger.warning("%s", cond.message)
    if not logger.hasHandlers():
        # nothing is listening (no logging configured): keep the
        # historical stderr echo so warnings stay visible
        sys.stderr.write(f"WARNING: {cond.message}\n")
    return None


def _build_condition(designator, args, default_type="simple-error") -> GozerCondition:
    if isinstance(designator, GozerCondition):
        return designator
    if isinstance(designator, str):
        message = format_string(designator, list(args)) if args else designator
        return make_condition(default_type, message)
    if isinstance(designator, Symbol):
        message = format_string(args[0], list(args[1:])) if args else designator.name
        return make_condition(designator.name, message)
    return coerce_condition(designator, default_type)


@builtin("make-condition")
def _make_condition(condition_type, message="", *rest):
    qname = None
    data = None
    i = 0
    rest = list(rest)
    while i + 1 < len(rest) + 1 and i < len(rest):
        key = rest[i]
        if isinstance(key, Keyword) and i + 1 < len(rest):
            if key.name == "qname":
                qname = rest[i + 1]
            elif key.name == "data":
                data = rest[i + 1]
            i += 2
        else:
            i += 1
    return make_condition(_stringify(condition_type), message,
                          qname=qname, data=data)


@builtin("define-condition")
def _define_condition(name, parents=None):
    parent_names = [_stringify(p) for p in _to_list(parents)] or ["error"]
    define_condition_type(_stringify(name), parent_names)
    return name


@builtin("condition-message")
def _condition_message(c):
    return getattr(c, "message", str(c))


@builtin("condition-type")
def _condition_type(c):
    return _S(getattr(c, "condition_type", "error"))


@builtin("condition-qname")
def _condition_qname(c):
    return getattr(c, "qname", None)


@vm_builtin("invoke-restart")
def _invoke_restart(vm, name, *args):
    vm.invoke_restart(name, list(args))


@vm_builtin("find-restart")
def _find_restart(vm, name):
    record = vm.find_restart(name)
    return record.name if record is not None else None


@vm_builtin("compute-restarts")
def _compute_restarts(vm):
    return [r.name for r in reversed(vm.restarts)]


# ===========================================================================
# intrinsics — reachable as (% name ...) and as %name
# ===========================================================================

def _install_intrinsics(runtime) -> None:
    env = runtime.global_env

    def defvar_intrinsic(name, value, keep_existing):
        env.declare_special(name)
        if keep_existing and env.is_bound(name):
            return name
        env.define(name, value)
        return name

    env.define_intrinsic("defvar", defvar_intrinsic)

    # runtime-independent intrinsics live at module level (not as
    # closures) so continuations that hold a reference to them — e.g. a
    # fiber suspended between the ``load-global`` of ``sethash`` and
    # its ``call`` — stay picklable for migration
    env.define_intrinsic("dot", _dot_intrinsic)
    env.define_intrinsic("dot-field", _dot_field_intrinsic)
    env.define_intrinsic("dot-setf", _dot_setf_intrinsic)
    env.define_intrinsic("sethash", _sethash_intrinsic)
    env.define(_S("sethash"), _sethash_intrinsic)

    env.define_intrinsic("is-fiber-thread", lambda: is_fiber_thread())

    def get_task_var(name):
        raise GozerRuntimeError(
            f"task variable {name} accessed outside of a Vinz workflow"
        )

    def set_task_var(name, value):
        raise GozerRuntimeError(
            f"task variable {name} mutated outside of a Vinz workflow"
        )

    # Vinz overrides these two when it prepares a fiber's environment.
    env.define_intrinsic("get-task-var", get_task_var)
    env.define_intrinsic("set-task-var", set_task_var)

    def set_macro_character(char, fn, non_terminating=None):
        ch = char.value if isinstance(char, Char) else str(char)

        def adapter(reader, stream, c):
            return runtime.apply(fn, [stream, Char(c)])

        runtime.readtable.set_macro_character(
            ch, adapter, non_terminating=bool(non_terminating))
        return True

    env.define(_S("set-macro-character"), set_macro_character)

    def read_fn(stream, *_ignored):
        value = runtime.reader().read(stream)
        return value

    env.define(_S("read"), read_fn)

    def read_from_string(text):
        return runtime.reader().read_string(text)

    env.define(_S("read-from-string"), read_from_string)

    def eval_fn(form):
        return runtime.eval_form(form)

    env.define(_S("eval"), eval_fn)

    def load_file(path):
        return runtime.eval_file(str(path))

    env.define(_S("load-file"), load_file)

    def macroexpand_fn(form):
        from .macros import macroexpand

        return macroexpand(form, env, runtime.apply)

    env.define(_S("macroexpand"), macroexpand_fn)


def _dot_intrinsic(obj, member, *args):
    obj = force(obj)
    attr = getattr(obj, _method_name(member))
    return attr(*[force(a) for a in args])


def _dot_field_intrinsic(obj, member):
    return getattr(force(obj), _method_name(member))


def _dot_setf_intrinsic(obj, member, value):
    setattr(force(obj), _method_name(member), value)
    return value


def _sethash_intrinsic(key, table, value):
    table[_hash_key(key)] = value
    return value


def _method_name(member) -> str:
    if isinstance(member, Symbol):
        return member.name
    if isinstance(member, str):
        return member
    raise GozerRuntimeError(f"bad member designator {member!r}")
