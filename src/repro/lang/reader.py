"""The Gozer reader: source text -> s-expression data.

The reader is the first stage of the Gozer pipeline
(read -> macroexpand -> compile -> run on the GVM).  It is modelled on
the Common Lisp reader and, crucially for the paper's Section 3.6, it is
*programmable*: macro characters can be installed at runtime with
:func:`set_macro_character`, which is how Vinz turns every occurrence of
``^task-var^`` into ``(%get-task-var 'task-var^)`` (paper Listing 5).

Data representation (Clojure-flavoured, per the paper's influences):

====================  =========================================
Source                Python value
====================  =========================================
``(a b c)``           ``[Symbol('a'), Symbol('b'), Symbol('c')]``
``foo``               ``Symbol('foo')``
``:key``              ``Keyword('key')``
``"str"``             ``str``
``12`` / ``1.5``      ``int`` / ``float``
``t`` / ``nil``       ``True`` / ``None``
``#\\a``              :class:`Char`
``'x``                ``[Symbol('quote'), x]``
``#'f``               ``[Symbol('function'), Symbol('f')]``
```x`` , ``,x`` , ``,@x``   quasiquote / unquote / unquote-splicing
====================  =========================================

Truthiness follows Clojure: only ``nil`` (``None``) and ``false``
(``False``) are false; the empty list is true.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from .errors import IncompleteFormError, ReaderError
from .symbols import (
    Keyword,
    S_FUNCTION,
    S_QUASIQUOTE,
    S_QUOTE,
    S_UNQUOTE,
    S_UNQUOTE_SPLICING,
    Symbol,
)

_WHITESPACE = " \t\n\r\f\v,"  # comma is whitespace, as in Clojure
_TERMINATING = "()\"';"

_NAMED_CHARS = {
    "space": " ",
    "newline": "\n",
    "tab": "\t",
    "return": "\r",
    "nul": "\0",
    "backspace": "\b",
    "page": "\f",
}


class Char:
    """A character literal, e.g. ``#\\a``.

    Kept distinct from one-character strings so that reader macros that
    receive "the macro character" (paper Listing 5) can distinguish the
    two, and so ``princ`` prints them without quotes.
    """

    __slots__ = ("value",)

    def __init__(self, value: str):
        if len(value) != 1:
            raise ValueError("Char must wrap exactly one character")
        self.value = value

    def __repr__(self) -> str:
        return f"#\\{self.value}"

    def __eq__(self, other) -> bool:
        return isinstance(other, Char) and other.value == self.value

    def __hash__(self) -> int:
        return hash((Char, self.value))


class CharStream:
    """A character stream with one-character lookahead and position info.

    Reader macro functions receive this stream object and may call
    :meth:`read_char`, :meth:`peek_char`, :meth:`unread_char` and the
    owning reader's ``read`` — the same protocol as the Lisp-side
    ``(read the-stream ...)`` in the paper's Listing 5.
    """

    def __init__(self, text: str):
        self._text = text
        self._pos = 0
        self.line = 1
        self.column = 0

    def read_char(self) -> Optional[str]:
        """Consume and return the next character, or None at EOF."""
        if self._pos >= len(self._text):
            return None
        ch = self._text[self._pos]
        self._pos += 1
        if ch == "\n":
            self.line += 1
            self.column = 0
        else:
            self.column += 1
        return ch

    def peek_char(self) -> Optional[str]:
        """Return the next character without consuming it."""
        if self._pos >= len(self._text):
            return None
        return self._text[self._pos]

    def unread_char(self) -> None:
        """Push the most recently read character back onto the stream."""
        if self._pos == 0:
            raise ReaderError("cannot unread at start of stream")
        self._pos -= 1
        ch = self._text[self._pos]
        if ch == "\n":
            self.line -= 1
            self.column = 0
        else:
            self.column -= 1

    def at_eof(self) -> bool:
        return self._pos >= len(self._text)


MacroFunction = Callable[["Reader", CharStream, str], object]


class ReadTable:
    """Maps macro characters to reader macro functions.

    A fresh :class:`Reader` copies the default table, so installing
    Vinz's ``^`` macro on one reader does not affect others — mirroring
    per-workflow readtables in Gozer.

    As in Common Lisp, a macro character may be *non-terminating*: it
    triggers its macro function only at the start of a token, and reads
    as an ordinary constituent in the middle of one.  Vinz's ``^``
    macro is installed non-terminating (the paper's Listing 5 passes
    ``t`` as ``set-macro-character``'s final argument) so that
    ``^exit-flag^`` reads the full ``exit-flag^`` symbol.
    """

    def __init__(self, macros: Optional[Dict[str, Tuple[MacroFunction, bool]]] = None):
        self.macros: Dict[str, Tuple[MacroFunction, bool]] = dict(macros or {})

    def copy(self) -> "ReadTable":
        return ReadTable(self.macros)

    def set_macro_character(self, char: str, fn: MacroFunction,
                            non_terminating: bool = False) -> None:
        if len(char) != 1:
            raise ValueError("macro character must be a single character")
        self.macros[char] = (fn, non_terminating)

    def get(self, char: str) -> Optional[MacroFunction]:
        entry = self.macros.get(char)
        return entry[0] if entry is not None else None

    def terminates(self, char: str) -> bool:
        """Does this char end a token being read?"""
        entry = self.macros.get(char)
        return entry is not None and not entry[1]


#: Sentinel returned by reader macros that consume input but produce no
#: value (e.g. comment readers).
NO_VALUE = object()


class Reader:
    """Reads Gozer source text into s-expression data structures."""

    def __init__(self, readtable: Optional[ReadTable] = None):
        self.readtable = readtable.copy() if readtable is not None else ReadTable()

    # -- public API ---------------------------------------------------

    def read_string(self, text: str) -> object:
        """Read exactly one form from ``text``."""
        stream = CharStream(text)
        value = self.read(stream)
        if value is NO_VALUE:
            raise IncompleteFormError("no form found in input")
        return value

    def read_all(self, text: str) -> List[object]:
        """Read every form in ``text`` and return them as a list."""
        stream = CharStream(text)
        forms: List[object] = []
        while True:
            value = self.read(stream, eof_error=False)
            if value is NO_VALUE:
                break
            forms.append(value)
        return forms

    def read(self, stream: CharStream, eof_error: bool = True) -> object:
        """Read one form from ``stream``.

        Returns :data:`NO_VALUE` at end of input when ``eof_error`` is
        false; raises :class:`IncompleteFormError` otherwise.
        """
        while True:
            self._skip_whitespace_and_comments(stream)
            ch = stream.read_char()
            if ch is None:
                if eof_error:
                    raise IncompleteFormError(
                        "unexpected end of input", stream.line, stream.column
                    )
                return NO_VALUE

            macro = self.readtable.get(ch)
            if macro is not None:
                value = macro(self, stream, ch)
                if value is NO_VALUE:
                    continue
                return value

            if ch == "(":
                return self._read_list(stream)
            if ch == ")":
                raise ReaderError("unbalanced ')'", stream.line, stream.column)
            if ch == '"':
                return self._read_string_literal(stream)
            if ch == "'":
                return [S_QUOTE, self._read_required(stream)]
            if ch == "`":
                return [S_QUASIQUOTE, self._read_required(stream)]
            if ch == "~":
                # Clojure-style unquote, accepted alongside Lisp's comma
                # (which Gozer treats as whitespace, Clojure-style).
                if stream.peek_char() == "@":
                    stream.read_char()
                    return [S_UNQUOTE_SPLICING, self._read_required(stream)]
                return [S_UNQUOTE, self._read_required(stream)]
            if ch == "#":
                value = self._read_dispatch(stream)
                if value is NO_VALUE:  # e.g. a #| block comment |#
                    continue
                return value
            return self._read_atom(stream, ch)

    # -- internals ----------------------------------------------------

    def _read_required(self, stream: CharStream) -> object:
        value = self.read(stream)
        if value is NO_VALUE:  # pragma: no cover - read() raises first
            raise IncompleteFormError("unexpected end of input")
        return value

    def _skip_whitespace_and_comments(self, stream: CharStream) -> None:
        while True:
            ch = stream.peek_char()
            if ch is None:
                return
            if ch in _WHITESPACE:
                stream.read_char()
                continue
            if ch == ";":
                while True:
                    ch = stream.read_char()
                    if ch is None or ch == "\n":
                        break
                continue
            return

    def _read_list(self, stream: CharStream) -> List[object]:
        items: List[object] = []
        while True:
            self._skip_whitespace_and_comments(stream)
            ch = stream.peek_char()
            if ch is None:
                raise IncompleteFormError("unterminated list", stream.line, stream.column)
            if ch == ")":
                stream.read_char()
                return items
            value = self.read(stream)
            if value is not NO_VALUE:
                items.append(value)

    def _read_string_literal(self, stream: CharStream) -> str:
        chunks: List[str] = []
        while True:
            ch = stream.read_char()
            if ch is None:
                raise IncompleteFormError("unterminated string", stream.line, stream.column)
            if ch == '"':
                return "".join(chunks)
            if ch == "\\":
                esc = stream.read_char()
                if esc is None:
                    raise IncompleteFormError(
                        "unterminated string escape", stream.line, stream.column
                    )
                chunks.append(
                    {"n": "\n", "t": "\t", "r": "\r", "0": "\0", "\\": "\\", '"': '"'}.get(
                        esc, esc
                    )
                )
            else:
                chunks.append(ch)

    def _read_dispatch(self, stream: CharStream) -> object:
        ch = stream.read_char()
        if ch is None:
            raise IncompleteFormError("unterminated '#' dispatch", stream.line, stream.column)
        if ch == "'":
            return [S_FUNCTION, self._read_required(stream)]
        if ch == "\\":
            return self._read_char_literal(stream)
        if ch == "|":
            self._skip_block_comment(stream)
            return NO_VALUE
        if ch == ":":
            # Uninterned-symbol syntax; we give back a gensym-looking
            # symbol.  Interning it is a benign simplification.
            token = self._read_token(stream, "")
            return Symbol("#:" + token)
        if ch == "(":
            # Vector literal (Clojure influence); we read it as a list
            # tagged with the `vector` constructor.
            items = self._read_list(stream)
            return [Symbol("vector"), *items]
        if ch in "xXoObB":
            # CL radix literals: #x1F #o17 #b1010
            token = self._read_token(stream, "")
            base = {"x": 16, "o": 8, "b": 2}[ch.lower()]
            try:
                negative = token.startswith("-")
                magnitude = token[1:] if negative else token
                value = int(magnitude, base)
                return -value if negative else value
            except ValueError:
                raise ReaderError(f"bad base-{base} literal #{ch}{token}",
                                  stream.line, stream.column)
        raise ReaderError(f"unknown dispatch macro '#{ch}'", stream.line, stream.column)

    def _skip_block_comment(self, stream: CharStream) -> None:
        depth = 1
        while depth:
            ch = stream.read_char()
            if ch is None:
                raise IncompleteFormError(
                    "unterminated block comment", stream.line, stream.column
                )
            if ch == "#" and stream.peek_char() == "|":
                stream.read_char()
                depth += 1
            elif ch == "|" and stream.peek_char() == "#":
                stream.read_char()
                depth -= 1

    def _read_char_literal(self, stream: CharStream) -> Char:
        first = stream.read_char()
        if first is None:
            raise IncompleteFormError("unterminated character literal")
        token = first
        while True:
            ch = stream.peek_char()
            if ch is None or ch in _WHITESPACE or ch in _TERMINATING:
                break
            token += stream.read_char()
        if len(token) == 1:
            return Char(token)
        named = _NAMED_CHARS.get(token.lower())
        if named is None:
            raise ReaderError(f"unknown character name #\\{token}", stream.line, stream.column)
        return Char(named)

    def _read_token(self, stream: CharStream, initial: str) -> str:
        token = initial
        while True:
            ch = stream.peek_char()
            if ch is None or ch in _WHITESPACE or ch in _TERMINATING:
                break
            if self.readtable.terminates(ch):
                break
            token += stream.read_char()
        return token

    def _read_atom(self, stream: CharStream, first: str) -> object:
        token = self._read_token(stream, first)
        return parse_token(token, stream.line, stream.column)


def parse_token(token: str, line: int | None = None, column: int | None = None) -> object:
    """Classify a bare token as number, keyword, boolean, nil or symbol."""
    if token.startswith(":") and len(token) > 1:
        return Keyword(token[1:])
    number = _try_parse_number(token)
    if number is not None:
        return number
    if token == "t" or token == "true":
        return True
    if token == "false":
        return False
    if token == "nil":
        return None
    if not token:
        raise ReaderError("empty token", line, column)
    return Symbol(token)


def _try_parse_number(token: str) -> Optional[object]:
    if not token:
        return None
    head = token[0]
    if not (head.isdigit() or (head in "+-." and len(token) > 1 and any(c.isdigit() for c in token))):
        return None
    try:
        return int(token)
    except ValueError:
        pass
    try:
        return float(token)
    except ValueError:
        pass
    if "/" in token:
        num, _, den = token.partition("/")
        try:
            from fractions import Fraction

            return Fraction(int(num), int(den))
        except ValueError:
            return None
    return None


def read_string(text: str, readtable: Optional[ReadTable] = None) -> object:
    """Convenience: read a single form from ``text``."""
    return Reader(readtable).read_string(text)


def read_all(text: str, readtable: Optional[ReadTable] = None) -> List[object]:
    """Convenience: read every form in ``text``."""
    return Reader(readtable).read_all(text)
