"""Bytecode representation for the Gozer Virtual Machine.

Section 4.1 of the paper: the JVM offers no way to capture a call stack
and re-enter it later, so the GVM implements *its own* stack-oriented
architecture whose frames are ordinary objects — the same objects used
to create the continuations requested by ``yield`` and ``push-cc``.
"Compilation to bytecode (as opposed to a tree-walking interpreter) was
introduced as an optimization for Vinz persistence."

We mirror that design exactly: :class:`CodeObject` holds a flat list of
``Instruction`` tuples; the VM (:mod:`repro.gvm.vm`) executes them with
heap-allocated frames, and a tree-walking reference interpreter
(:mod:`repro.gvm.interpreter`) provides the pre-optimization baseline
that benchmark S4c compares against.

Every constant a :class:`CodeObject` can embed is picklable, so compiled
workflow code can ride along inside a serialized fiber.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Optional, Sequence, Tuple

# An instruction is an (opcode, argument) pair.  ``None`` argument for
# nullary opcodes.  Opcodes are short strings: this is a readability
# (and picklability) choice; dispatch cost is dominated by the work each
# opcode does.
Instruction = Tuple[str, Any]

#: The complete GVM instruction set.  Documented here as the canonical
#: reference; the VM and the disassembler both consult this table.
OPCODES = {
    # -- data movement -------------------------------------------------
    "const": "push the inline constant",
    "pop": "discard the top of stack",
    "dup": "duplicate the top of stack",
    "load": "push the value of a lexical/global variable (arg: Symbol)",
    "store": "pop and assign an existing variable binding (arg: Symbol)",
    "bind": "pop and create a binding in the innermost scope (arg: Symbol)",
    "load-global": "push the value of a global variable (arg: Symbol)",
    "store-global": "pop and set a global variable (arg: Symbol)",
    "make-list": "pop N values, push them as a list (arg: N)",
    # -- scopes and closures -------------------------------------------
    "push-scope": "enter a new lexical scope (let)",
    "pop-scope": "leave the innermost lexical scope",
    "closure": "push a function closing over the current scope (arg: CodeObject)",
    # -- control flow ---------------------------------------------------
    "jump": "unconditional jump (arg: target pc)",
    "jump-if-false": "pop; jump when falsy (arg: target pc)",
    "jump-if-true": "pop; jump when truthy (arg: target pc)",
    "call": "pop N args then the callee; invoke (arg: N)",
    "call-kw": "like call, but arg is (nargs, kwnames) for keyword calls",
    "tail-call": "call in tail position, reusing the frame (arg: N)",
    "return": "pop and return the top of stack from this frame",
    "push-block": "establish a return-from target (arg: (name, exit pc))",
    "pop-block": "remove the innermost block (arg: count)",
    "return-from": "pop a value and exit the named block (arg: name)",
    # -- continuations (paper 3.1, 4.1) ----------------------------------
    "yield": "capture a continuation and return control to the VM's caller",
    "push-cc": "capture a continuation and push it without unwinding",
    # -- futures (paper 2, 4.1) ------------------------------------------
    "spawn-future": "start the inline thunk on the future executor (arg: CodeObject)",
    # -- condition system (paper 3.7) -------------------------------------
    "push-handlers": "pop a list of (typespec, fn) handler pairs and bind them",
    "pop-handlers": "remove the innermost handler group",
    "push-restarts": "pop a list of restart records and bind them",
    "pop-restarts": "remove the innermost restart group",
    # -- unwind protection -------------------------------------------------
    "push-unwind": "register a cleanup thunk (arg: CodeObject)",
    "pop-unwind": "pop and run the innermost cleanup thunk",
    # -- dynamic (special) variables ----------------------------------------
    "dyn-bind": "pop and dynamically bind a special variable (arg: Symbol)",
    "dyn-unbind": "undo the innermost dynamic binding (arg: Symbol)",
}


@dataclass
class ParamSpec:
    """A compiled lambda list.

    Supports the subset of Common Lisp lambda lists the paper's listings
    use: required parameters, ``&optional`` (with default forms compiled
    to thunks), ``&rest``, and ``&key`` (Listing 2's generated functions
    take ``&key`` arguments).
    """

    required: Tuple[Any, ...] = ()
    optional: Tuple[Tuple[Any, Optional["CodeObject"]], ...] = ()
    rest: Optional[Any] = None
    keys: Tuple[Tuple[Any, Optional["CodeObject"]], ...] = ()

    def arity_description(self) -> str:
        lo = len(self.required)
        if self.rest is not None or self.keys:
            return f"at least {lo}"
        hi = lo + len(self.optional)
        return str(lo) if lo == hi else f"{lo} to {hi}"

    @property
    def max_positional(self) -> Optional[int]:
        if self.rest is not None:
            return None
        return len(self.required) + len(self.optional)


@dataclass
class CodeObject:
    """A compiled Gozer function body.

    ``constants`` exists only for the disassembler's benefit (constants
    are stored inline in instructions); ``doc`` preserves docstrings so
    that ``deflink``-generated functions keep the service documentation
    (paper Listing 2: "the documentation specified in the interface
    document is preserved").
    """

    name: str
    params: ParamSpec = field(default_factory=ParamSpec)
    instructions: List[Instruction] = field(default_factory=list)
    doc: Optional[str] = None
    source: Any = None

    def emit(self, opcode: str, arg: Any = None) -> int:
        """Append an instruction; return its index (for jump patching)."""
        assert opcode in OPCODES, f"unknown opcode {opcode!r}"
        self.instructions.append((opcode, arg))
        return len(self.instructions) - 1

    def patch(self, index: int, arg: Any) -> None:
        """Rewrite the argument of a previously emitted instruction."""
        opcode, _ = self.instructions[index]
        self.instructions[index] = (opcode, arg)

    @property
    def here(self) -> int:
        """The pc that the *next* emitted instruction will occupy."""
        return len(self.instructions)

    def disassemble(self) -> str:
        """Human-readable listing, used by tests and the REPL's :dis."""
        lines = [f"; code {self.name} params={self.params}"]
        for pc, (op, arg) in enumerate(self.instructions):
            if arg is None:
                lines.append(f"{pc:4d}  {op}")
            elif isinstance(arg, CodeObject):
                lines.append(f"{pc:4d}  {op}  <code {arg.name}>")
            else:
                lines.append(f"{pc:4d}  {op}  {arg!r}")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return f"<CodeObject {self.name} ({len(self.instructions)} instrs)>"


def validate(code: CodeObject) -> List[str]:
    """Static sanity checks on emitted bytecode.

    Returns a list of problems (empty when the code is well-formed).
    The compiler's test suite runs this over everything it emits.
    """
    problems: List[str] = []
    n = len(code.instructions)
    if n == 0:
        problems.append("empty instruction list")
        return problems
    for pc, (op, arg) in enumerate(code.instructions):
        if op not in OPCODES:
            problems.append(f"pc {pc}: unknown opcode {op!r}")
        if op in ("jump", "jump-if-false", "jump-if-true"):
            if not isinstance(arg, int) or not (0 <= arg <= n):
                problems.append(f"pc {pc}: jump target {arg!r} out of range")
        if op in ("call", "tail-call", "make-list", "pop-block", "pop-handlers",
                  "pop-restarts"):
            if not isinstance(arg, int) or arg < 0:
                problems.append(f"pc {pc}: {op} needs a non-negative count, got {arg!r}")
        if op in ("closure", "spawn-future", "push-unwind"):
            if not isinstance(arg, CodeObject):
                problems.append(f"pc {pc}: {op} needs a CodeObject argument")
    last_op = code.instructions[-1][0]
    if last_op not in ("return", "jump"):
        problems.append(f"final instruction is {last_op!r}, expected return/jump")
    return problems


def nested_code_objects(code: CodeObject) -> Sequence[CodeObject]:
    """All code objects reachable from ``code`` (including itself)."""
    seen: List[CodeObject] = []
    stack = [code]
    while stack:
        current = stack.pop()
        if current in seen:
            continue
        seen.append(current)
        for _, arg in current.instructions:
            if isinstance(arg, CodeObject):
                stack.append(arg)
        for _, default in list(current.params.optional) + list(current.params.keys):
            if isinstance(default, CodeObject):
                stack.append(default)
    return seen
