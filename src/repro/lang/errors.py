"""Error hierarchy for the Gozer language front end and runtime.

The Gozer paper (Section 3.7) distinguishes ordinary host-platform
exceptions from *conditions* signalled through the Common-Lisp-style
condition system.  On the host side (this Python implementation) we keep
a small exception hierarchy so that tooling can tell reader errors from
compiler errors from runtime errors.
"""

from __future__ import annotations


class GozerError(Exception):
    """Base class of every error raised by the Gozer implementation."""


class ReaderError(GozerError):
    """A syntax error encountered while reading source text.

    Carries the 1-based ``line`` and ``column`` of the offending
    character when known.
    """

    def __init__(self, message: str, line: int | None = None, column: int | None = None):
        self.line = line
        self.column = column
        if line is not None:
            message = f"{message} (line {line}, column {column})"
        super().__init__(message)


class IncompleteFormError(ReaderError):
    """Raised when input ends in the middle of a form.

    Interactive front ends (the REPL of ``examples/repl.py``) use this to
    decide whether to prompt for a continuation line rather than report
    a hard syntax error.
    """


class CompileError(GozerError):
    """A semantic error found while compiling a form to bytecode."""

    def __init__(self, message: str, form: object | None = None):
        self.form = form
        super().__init__(message)


class GozerRuntimeError(GozerError):
    """An error raised while executing Gozer code on the GVM."""


class UnboundVariableError(GozerRuntimeError):
    """A reference to a variable with no lexical or global binding."""

    def __init__(self, name: object):
        self.name = name
        super().__init__(f"unbound variable: {name}")


class UndefinedFunctionError(GozerRuntimeError):
    """A call to a function name with no definition."""

    def __init__(self, name: object):
        self.name = name
        super().__init__(f"undefined function: {name}")


class WrongArgumentCount(GozerRuntimeError):
    """A function was called with an incompatible number of arguments."""

    def __init__(self, fname: object, expected: str, got: int):
        self.fname = fname
        self.expected = expected
        self.got = got
        super().__init__(f"{fname}: expected {expected} arguments, got {got}")


class ControlFlowSignal(BaseException):
    """Base for internal non-local control transfers inside the GVM.

    These deliberately derive from ``BaseException`` so that ordinary
    Gozer ``handler-bind`` logic (which maps onto ``Exception``) cannot
    accidentally swallow VM control flow.
    """
