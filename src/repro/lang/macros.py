"""Core macros and macro expansion.

Gozer's primary influence is Common Lisp (paper Section 1); the macros
here are the host-implemented core set (``when``, ``cond``, ``dolist``,
``incf`` ...) that user macros written with ``defmacro`` build on.  The
expansion driver is shared with the compiler: the compiler asks
:func:`macroexpand_1` repeatedly until the head of a form is no longer
a macro.

Host-implemented macros are plain Python callables taking the *argument
forms* (not including the macro name) and returning a replacement form.
User macros are :class:`~repro.gvm.frames.GozerMacro` objects whose
expander is a compiled Gozer function; running those requires a runtime,
which the caller supplies via ``apply_fn``.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional

from .errors import CompileError
from .symbols import (
    S_QUASIQUOTE,
    S_QUOTE,
    S_UNQUOTE,
    S_UNQUOTE_SPLICING,
    Symbol,
    gensym,
)

_S = Symbol

#: host macro table: name -> callable(arg_forms) -> form
CORE_MACROS: Dict[Symbol, Callable[[List[Any]], Any]] = {}


def core_macro(name: str):
    def register(fn):
        CORE_MACROS[_S(name)] = fn
        return fn

    return register


def is_listform(form: Any) -> bool:
    return isinstance(form, list) and len(form) > 0


def macroexpand_1(form: Any, global_env, apply_fn: Optional[Callable] = None):
    """Expand ``form`` one step.  Returns (expansion, expanded?)."""
    if not is_listform(form) or not isinstance(form[0], Symbol):
        return form, False
    head = form[0]
    user = global_env.get_macro(head) if global_env is not None else None
    if user is not None:
        if apply_fn is None:
            raise CompileError(f"macro {head} requires a runtime to expand", form)
        return apply_fn(user.function, form[1:]), True
    host = CORE_MACROS.get(head)
    if host is not None:
        return host(form[1:]), True
    return form, False


def macroexpand(form: Any, global_env, apply_fn: Optional[Callable] = None):
    """Expand the head of ``form`` until it is not a macro call."""
    while True:
        form, expanded = macroexpand_1(form, global_env, apply_fn)
        if not expanded:
            return form


# ---------------------------------------------------------------------------
# Quasiquote expansion (used by the compiler and by user macros)
# ---------------------------------------------------------------------------

def expand_quasiquote(template: Any) -> Any:
    """Rewrite a quasiquote template into list-building code."""
    if is_listform(template):
        head = template[0]
        if head is S_UNQUOTE:
            return template[1]
        if head is S_UNQUOTE_SPLICING:
            raise CompileError("unquote-splicing outside of a list", template)
        parts: List[Any] = []
        for item in template:
            if is_listform(item) and item[0] is S_UNQUOTE_SPLICING:
                parts.append(item[1])
            else:
                parts.append([_S("list"), expand_quasiquote(item)])
        if len(parts) == 1:
            inner = parts[0]
            if is_listform(inner) and inner[0] is _S("list"):
                return inner
        return [_S("append"), *parts]
    if isinstance(template, Symbol):
        return [S_QUOTE, template]
    return template


@core_macro("quasiquote")
def _m_quasiquote(args):
    if len(args) != 1:
        raise CompileError("quasiquote takes one template")
    return expand_quasiquote(args[0])


# ---------------------------------------------------------------------------
# Conditionals and sequencing
# ---------------------------------------------------------------------------

@core_macro("when")
def _m_when(args):
    if not args:
        raise CompileError("when needs a test")
    test, *body = args
    return [_S("if"), test, [_S("progn"), *body], None]


@core_macro("unless")
def _m_unless(args):
    if not args:
        raise CompileError("unless needs a test")
    test, *body = args
    return [_S("if"), test, None, [_S("progn"), *body]]


@core_macro("cond")
def _m_cond(args):
    if not args:
        return None
    clause, *rest = args
    if not is_listform(clause):
        raise CompileError("cond clause must be a list", clause)
    test, *body = clause
    if test is True or test is _S("otherwise"):
        return [_S("progn"), *body] if body else True
    if not body:
        # (cond (x) ...) returns x when truthy
        tmp = gensym("cond")
        return [
            _S("let"), [[tmp, test]],
            [_S("if"), tmp, tmp, [_S("cond"), *rest]],
        ]
    return [_S("if"), test, [_S("progn"), *body], [_S("cond"), *rest]]


@core_macro("case")
def _m_case(args):
    if not args:
        raise CompileError("case needs a key form")
    keyform, *clauses = args
    key = gensym("case")
    expansion: Any = None
    for clause in reversed(clauses):
        if not is_listform(clause):
            raise CompileError("case clause must be a list", clause)
        heads, *body = clause
        if heads is _S("otherwise") or heads is True:
            expansion = [_S("progn"), *body]
            continue
        if not isinstance(heads, list):
            heads = [heads]
        test = [_S("or"), *[[_S("eql"), key, [S_QUOTE, h]] for h in heads]]
        expansion = [_S("if"), test, [_S("progn"), *body], expansion]
    return [_S("let"), [[key, keyform]], expansion]


@core_macro("prog1")
def _m_prog1(args):
    if not args:
        raise CompileError("prog1 needs at least one form")
    first, *rest = args
    tmp = gensym("prog1")
    return [_S("let"), [[tmp, first]], *rest, tmp]


@core_macro("prog2")
def _m_prog2(args):
    if len(args) < 2:
        raise CompileError("prog2 needs at least two forms")
    first, second, *rest = args
    return [_S("progn"), first, [_S("prog1"), second, *rest]]


# ---------------------------------------------------------------------------
# Iteration
# ---------------------------------------------------------------------------

@core_macro("dolist")
def _m_dolist(args):
    if not args or not is_listform(args[0]):
        raise CompileError("dolist needs (var list [result])")
    spec, *body = args
    var = spec[0]
    listform = spec[1]
    result = spec[2] if len(spec) > 2 else None
    rest = gensym("dolist")
    return [
        _S("let"), [[rest, listform]],
        [_S("while"), [_S("consp"), rest],
         [_S("let"), [[var, [_S("car"), rest]]],
          *body,
          [_S("setq"), rest, [_S("cdr"), rest]]]],
        result,
    ]


@core_macro("dotimes")
def _m_dotimes(args):
    if not args or not is_listform(args[0]):
        raise CompileError("dotimes needs (var count [result])")
    spec, *body = args
    var = spec[0]
    count = spec[1]
    result = spec[2] if len(spec) > 2 else None
    limit = gensym("dotimes")
    return [
        _S("let"), [[limit, count], [var, 0]],
        [_S("while"), [_S("<"), var, limit],
         *body,
         [_S("setq"), var, [_S("+"), var, 1]]],
        result,
    ]


@core_macro("loop")
def _m_loop(args):
    """A practical subset of Common Lisp's LOOP.

    Supported shapes (those the paper's listings and typical workflows
    use)::

        (loop for x in xs collect expr)
        (loop for x in xs do forms...)
        (loop for x in xs when test collect expr)
        (loop for x in xs unless test collect expr)
        (loop for i from a to b [by s] collect/do/sum ...)
        (loop repeat n collect/do ...)
        (loop while test do forms...)
        (loop for x in xs sum/count/append expr)

    An unadorned ``(loop forms...)`` loops forever (use ``return``).
    """
    if not args:
        raise CompileError("empty loop")
    if not isinstance(args[0], Symbol) or args[0].name not in (
        "for", "repeat", "while", "until"
    ):
        # infinite loop with a body
        return [_S("block"), None, [_S("while"), True, *args]]
    return _expand_loop_clauses(list(args))


def _expand_loop_clauses(words: List[Any]) -> Any:
    def take() -> Any:
        if not words:
            raise CompileError("loop: unexpected end of clauses")
        return words.pop(0)

    def peek_name() -> Optional[str]:
        if words and isinstance(words[0], Symbol):
            return words[0].name
        return None

    var = None
    init_bindings: List[Any] = []
    step_forms: List[Any] = []
    test: Any = True
    kind = take().name  # for / repeat / while / until

    if kind == "for":
        var = take()
        mode = take()
        if not isinstance(mode, Symbol):
            raise CompileError("loop: expected in/from/across after variable")
        if mode.name in ("in", "across", "on"):
            seq = take()
            rest = gensym("loop-rest")
            init_bindings.append([rest, [_S("to-list"), seq]])
            init_bindings.append([var, None])
            # note: the empty list is *truthy* in Gozer (Clojure rule),
            # so the loop test must be an explicit consp check.
            test = [_S("consp"), rest]
            pre_body = [
                [_S("setq"), var,
                 rest if mode.name == "on" else [_S("car"), rest]],
                [_S("setq"), rest, [_S("cdr"), rest]],
            ]
        elif mode.name == "from":
            start = take()
            stop = None
            step: Any = 1
            direction = "to"
            while peek_name() in ("to", "below", "downto", "by", "upto"):
                word = take().name
                if word in ("to", "upto", "below", "downto"):
                    direction = "below" if word == "below" else (
                        "downto" if word == "downto" else "to")
                    stop = take()
                elif word == "by":
                    step = take()
            init_bindings.append([var, start])
            if stop is None:
                test = True
            elif direction == "to":
                test = [_S("<="), var, stop]
            elif direction == "below":
                test = [_S("<"), var, stop]
            else:
                test = [_S(">="), var, stop]
            if direction == "downto":
                step_forms.append([_S("setq"), var, [_S("-"), var, step]])
            else:
                step_forms.append([_S("setq"), var, [_S("+"), var, step]])
            pre_body = []
        else:
            raise CompileError(f"loop: unsupported iteration mode {mode}")
    elif kind == "repeat":
        count = take()
        counter = gensym("loop-n")
        init_bindings.append([counter, count])
        test = [_S(">"), counter, 0]
        step_forms.append([_S("setq"), counter, [_S("-"), counter, 1]])
        pre_body = []
    elif kind in ("while", "until"):
        cond = take()
        test = cond if kind == "while" else [_S("not"), cond]
        pre_body = []
    else:  # pragma: no cover
        raise CompileError(f"loop: unknown clause {kind}")

    # condition guard: when/unless
    guard = None
    guard_positive = True
    if peek_name() in ("when", "unless"):
        guard_positive = take().name == "when"
        guard = take()

    # accumulation / body
    acc = gensym("loop-acc")
    action = peek_name()
    body_forms: List[Any]
    result_form: Any = None
    init_acc: Any = None
    if action in ("collect", "collecting", "append", "appending",
                  "sum", "summing", "count", "counting", "maximize", "minimize"):
        take()
        expr = take()
        if action.startswith("collect"):
            init_acc = [_S("list")]
            body_forms = [[_S("append!"), acc, expr]]
            result_form = acc
        elif action.startswith("append"):
            init_acc = [_S("list")]
            body_forms = [[_S("setq"), acc, [_S("append"), acc, expr]]]
            result_form = acc
        elif action.startswith("sum"):
            init_acc = 0
            body_forms = [[_S("setq"), acc, [_S("+"), acc, expr]]]
            result_form = acc
        elif action.startswith("count"):
            init_acc = 0
            body_forms = [[_S("when"), expr, [_S("setq"), acc, [_S("+"), acc, 1]]]]
            result_form = acc
        elif action == "maximize":
            init_acc = None
            body_forms = [[_S("setq"), acc,
                           [_S("if"), [_S("null"), acc], expr,
                            [_S("max"), acc, expr]]]]
            result_form = acc
        else:  # minimize
            init_acc = None
            body_forms = [[_S("setq"), acc,
                           [_S("if"), [_S("null"), acc], expr,
                            [_S("min"), acc, expr]]]]
            result_form = acc
    elif action in ("do", "doing"):
        take()
        body_forms = list(words)
        words.clear()
    else:
        body_forms = list(words)
        words.clear()

    if words:
        raise CompileError(f"loop: trailing clauses not understood: {words}")

    inner = body_forms
    if guard is not None:
        wrapper = _S("when") if guard_positive else _S("unless")
        inner = [[wrapper, guard, *body_forms]]

    loop_body = [*pre_body, *inner, *step_forms]
    bindings = list(init_bindings)
    if result_form is not None:
        bindings.append([acc, init_acc])
    return [
        _S("block"), None,
        [_S("let*"), bindings,
         [_S("while"), test, *loop_body],
         result_form],
    ]


# ---------------------------------------------------------------------------
# Place modification sugar
# ---------------------------------------------------------------------------

@core_macro("incf")
def _m_incf(args):
    place = args[0]
    delta = args[1] if len(args) > 1 else 1
    return [_S("setf"), place, [_S("+"), place, delta]]


@core_macro("decf")
def _m_decf(args):
    place = args[0]
    delta = args[1] if len(args) > 1 else 1
    return [_S("setf"), place, [_S("-"), place, delta]]


@core_macro("push")
def _m_push(args):
    if len(args) != 2:
        raise CompileError("push needs (push value place)")
    value, place = args
    return [_S("setf"), place, [_S("cons"), value, place]]


# ---------------------------------------------------------------------------
# Error handling sugar (Section 3.7 builds on these)
# ---------------------------------------------------------------------------

@core_macro("ignore-errors")
def _m_ignore_errors(args):
    return [_S("handler-case"), [_S("progn"), *args],
            [_S("error"), [gensym("c")], None]]


@core_macro("handler-case")
def _m_handler_case(args):
    """(handler-case form (typespec (var) body...)...)

    Unlike ``handler-bind``, a matching clause *unwinds* to the
    handler-case and evaluates its body.
    """
    if not args:
        raise CompileError("handler-case needs a protected form")
    protected, *clauses = args
    blk = gensym("hc")
    bindings = []
    for clause in clauses:
        if not is_listform(clause) or len(clause) < 2:
            raise CompileError("handler-case clause must be (typespec (var) body...)", clause)
        typespec, varlist, *body = clause
        var = varlist[0] if is_listform(varlist) else gensym("c")
        handler = [
            _S("lambda"), [var],
            [_S("return-from"), blk, [_S("progn"), *body]],
        ]
        bindings.append([typespec, handler])
    return [_S("block"), blk,
            [_S("handler-bind"), bindings, protected]]


@core_macro("destructuring-bind")
def _m_destructuring_bind(args):
    """(destructuring-bind (a (b c) &rest r) expr body...)

    Nested positional destructuring with &optional and &rest, the
    pattern-matching workhorse for plist/alist-heavy workflow code.
    """
    if len(args) < 2:
        raise CompileError("destructuring-bind needs (pattern expr body...)")
    pattern, expr, *body = args
    source = gensym("db")
    bindings: list = [[source, [_S("to-list"), expr]]]

    def destructure(pat, source_sym):
        mode = "required"
        index = 0
        for item in pat:
            if isinstance(item, Symbol) and item.name == "&optional":
                mode = "optional"
                continue
            if isinstance(item, Symbol) and item.name == "&rest":
                mode = "rest"
                continue
            if mode == "rest":
                if not isinstance(item, Symbol):
                    raise CompileError("&rest needs a symbol", pat)
                bindings.append([item, [_S("nthcdr"), index, source_sym]])
                continue
            accessor = [_S("nth"), index, source_sym]
            if isinstance(item, Symbol):
                bindings.append([item, accessor])
            elif is_listform(item) and mode == "optional" and \
                    isinstance(item[0], Symbol) and len(item) == 2:
                # (name default)
                bindings.append([item[0],
                                 [_S("if"), [_S("<"), index,
                                             [_S("length"), source_sym]],
                                  accessor, item[1]]])
            elif is_listform(item):
                inner = gensym("db")
                bindings.append([inner, [_S("to-list"), accessor]])
                destructure(item, inner)
            else:
                raise CompileError(f"bad destructuring element {item!r}", pat)
            index += 1

    destructure(list(pattern), source)
    return [_S("let*"), bindings, *body]


@core_macro("rotatef")
def _m_rotatef(args):
    """(rotatef a b [c...]) — rotate the values of places left."""
    if len(args) < 2:
        raise CompileError("rotatef needs at least two places")
    temps = [gensym("rot") for _ in args]
    bindings = [[t, place] for t, place in zip(temps, args)]
    rotated = temps[1:] + temps[:1]
    sets = []
    for place, t in zip(args, rotated):
        sets.append([_S("setf"), place, t])
    return [_S("let*"), bindings, *sets, None]


@core_macro("assert")
def _m_assert(args):
    """(assert test [format args...]) — signal an error when test is
    false, with a continue restart (CL flavour)."""
    if not args:
        raise CompileError("assert needs a test")
    test, *message = args
    msg_form = message[0] if message else f"assertion failed"
    msg_args = message[1:] if len(message) > 1 else []
    return [_S("unless"), test,
            [_S("restart-case"),
             [_S("error"), msg_form, *msg_args],
             [_S("continue"), [], None]]]


@core_macro("with-simple-restart")
def _m_with_simple_restart(args):
    if not args or not is_listform(args[0]):
        raise CompileError("with-simple-restart needs (name format) body")
    (name, *_fmt), *body = args
    return [_S("restart-case"), [_S("progn"), *body], [name, [], None]]
