"""The Gozer compiler: s-expressions -> GVM bytecode.

The paper (Section 4.1) notes that compilation to bytecode "was
introduced as an optimization for Vinz persistence": a flat instruction
stream plus a small frame is far cheaper to serialize than a tree
interpreter's host stack (which could not be serialized at all).  This
compiler is a single pass over macro-expanded forms, emitting the
instruction set defined in :mod:`repro.lang.bytecode`.

The compiler is parameterized by a :class:`GlobalEnvironment` (for macro
lookup and special-variable declarations) and an ``apply_fn`` callback
used to run user ``defmacro`` expanders (which are themselves compiled
Gozer functions and therefore need the runtime).
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional

from .bytecode import CodeObject, ParamSpec
from .errors import CompileError
from .macros import is_listform, macroexpand
from .reader import Char
from .symbols import (
    Keyword,
    S_AMP_KEY,
    S_AMP_OPTIONAL,
    S_AMP_REST,
    Symbol,
    gensym,
)

_S = Symbol


class Compiler:
    """Compiles macro-expanded Gozer forms to :class:`CodeObject`."""

    def __init__(self, global_env=None, apply_fn: Optional[Callable] = None):
        self.global_env = global_env
        self.apply_fn = apply_fn
        self._special_forms = {
            "quote": self._c_quote,
            "if": self._c_if,
            "progn": self._c_progn,
            "let": self._c_let,
            "let*": self._c_let_star,
            "lambda": self._c_lambda,
            "fn": self._c_lambda,
            "defun": self._c_defun,
            "defvar": self._c_defvar,
            "defparameter": self._c_defvar,
            "setq": self._c_setq,
            "setf": self._c_setf,
            "function": self._c_function,
            "while": self._c_while,
            "and": self._c_and,
            "or": self._c_or,
            "block": self._c_block,
            "return-from": self._c_return_from,
            "return": self._c_return,
            "yield": self._c_yield,
            "push-cc": self._c_push_cc,
            "future": self._c_future,
            "unwind-protect": self._c_unwind_protect,
            "handler-bind": self._c_handler_bind,
            "restart-case": self._c_restart_case,
            "declare": self._c_declare,
            "the": self._c_the,
            ".": self._c_dot,
            "%": self._c_intrinsic,
        }
        #: additional setf place expanders: head symbol name ->
        #: fn(place_form, value_form) -> replacement form
        self.setf_expanders = dict(_DEFAULT_SETF_EXPANDERS)

    # ------------------------------------------------------------------
    # entry points
    # ------------------------------------------------------------------

    def compile_toplevel(self, form: Any, name: str = "top-level") -> CodeObject:
        """Compile one form into a zero-argument code object."""
        code = CodeObject(name=name, source=form)
        self.compile_form(form, code, tail=False)
        code.emit("return")
        return code

    def compile_function(self, name: str, lambda_list: List[Any],
                         body: List[Any], doc: Optional[str] = None) -> CodeObject:
        """Compile a function body with the given lambda list."""
        params = self.parse_lambda_list(lambda_list)
        if doc is None and len(body) > 1 and isinstance(body[0], str):
            doc, body = body[0], body[1:]
        code = CodeObject(name=name, params=params, doc=doc)
        self.compile_body(body, code, tail=True)
        code.emit("return")
        return code

    # ------------------------------------------------------------------
    # core dispatch
    # ------------------------------------------------------------------

    def compile_form(self, form: Any, code: CodeObject, tail: bool = False) -> None:
        form = macroexpand(form, self.global_env, self.apply_fn)
        if isinstance(form, Symbol):
            self._compile_symbol(form, code)
            return
        if isinstance(form, (int, float, str, bool, Keyword, Char)) or form is None:
            code.emit("const", form)
            return
        if isinstance(form, list):
            if not form:
                code.emit("const", [])
                return
            head = form[0]
            if isinstance(head, Symbol):
                handler = self._special_forms.get(head.name)
                if handler is not None:
                    handler(form, code, tail)
                    return
            self._compile_call(form, code, tail)
            return
        # any other host object compiles as itself
        code.emit("const", form)

    def compile_body(self, body: List[Any], code: CodeObject, tail: bool = False) -> None:
        """Compile a sequence of forms; value of the last is the result."""
        if not body:
            code.emit("const", None)
            return
        for form in body[:-1]:
            self.compile_form(form, code, tail=False)
            code.emit("pop")
        self.compile_form(body[-1], code, tail=tail)

    def _compile_symbol(self, sym: Symbol, code: CodeObject) -> None:
        code.emit("load", sym)

    def _compile_call(self, form: List[Any], code: CodeObject, tail: bool) -> None:
        head, *args = form
        self.compile_form(head, code, tail=False)
        for arg in args:
            self.compile_form(arg, code, tail=False)
        code.emit("tail-call" if tail else "call", len(args))

    # ------------------------------------------------------------------
    # lambda lists
    # ------------------------------------------------------------------

    def parse_lambda_list(self, lambda_list: List[Any]) -> ParamSpec:
        if not isinstance(lambda_list, list):
            raise CompileError("lambda list must be a list", lambda_list)
        required: List[Symbol] = []
        optional: List = []
        keys: List = []
        rest: Optional[Symbol] = None
        mode = "required"
        it = iter(lambda_list)
        for item in it:
            if item is S_AMP_OPTIONAL:
                mode = "optional"
                continue
            if item is S_AMP_REST:
                mode = "rest"
                continue
            if item is S_AMP_KEY:
                mode = "key"
                continue
            if mode == "required":
                if not isinstance(item, Symbol):
                    raise CompileError(f"bad required parameter {item!r}", lambda_list)
                required.append(item)
            elif mode == "optional":
                optional.append(self._parse_defaulted_param(item))
            elif mode == "key":
                keys.append(self._parse_defaulted_param(item))
            elif mode == "rest":
                if rest is not None or not isinstance(item, Symbol):
                    raise CompileError("bad &rest parameter", lambda_list)
                rest = item
        return ParamSpec(
            required=tuple(required),
            optional=tuple(optional),
            rest=rest,
            keys=tuple(keys),
        )

    def _parse_defaulted_param(self, item: Any):
        if isinstance(item, Symbol):
            return (item, None)
        if is_listform(item) and isinstance(item[0], Symbol):
            default_form = item[1] if len(item) > 1 else None
            if default_form is None:
                return (item[0], None)
            default_code = self.compile_toplevel(default_form,
                                                 name=f"default:{item[0].name}")
            return (item[0], default_code)
        raise CompileError(f"bad defaulted parameter {item!r}")

    # ------------------------------------------------------------------
    # special forms
    # ------------------------------------------------------------------

    def _c_quote(self, form, code, tail):
        if len(form) != 2:
            raise CompileError("quote takes exactly one form", form)
        code.emit("const", form[1])

    def _c_if(self, form, code, tail):
        if len(form) not in (3, 4):
            raise CompileError("if takes (if test then [else])", form)
        _, test, then = form[:3]
        els = form[3] if len(form) == 4 else None
        self.compile_form(test, code, tail=False)
        jf = code.emit("jump-if-false")
        self.compile_form(then, code, tail=tail)
        jend = code.emit("jump")
        code.patch(jf, code.here)
        self.compile_form(els, code, tail=tail)
        code.patch(jend, code.here)

    def _c_progn(self, form, code, tail):
        self.compile_body(form[1:], code, tail=tail)

    def _c_let(self, form, code, tail):
        bindings, body = self._let_parts(form)
        # evaluate all value forms in the outer scope
        names = []
        for binding in bindings:
            name, value_form = self._binding_parts(binding)
            names.append(name)
            self.compile_form(value_form, code, tail=False)
        code.emit("push-scope")
        for name in reversed(names):
            # `let` of a special variable dynamically rebinds it (CL
            # semantics); lexical names get an ordinary binding.
            code.emit("dyn-bind" if self._is_special(name) else "bind", name)
        self.compile_body(body, code, tail=False)
        for name in names:
            if self._is_special(name):
                code.emit("dyn-unbind", name)
        code.emit("pop-scope")

    def _c_let_star(self, form, code, tail):
        bindings, body = self._let_parts(form)
        code.emit("push-scope")
        names = []
        for binding in bindings:
            name, value_form = self._binding_parts(binding)
            names.append(name)
            self.compile_form(value_form, code, tail=False)
            code.emit("dyn-bind" if self._is_special(name) else "bind", name)
        self.compile_body(body, code, tail=False)
        for name in reversed(names):
            if self._is_special(name):
                code.emit("dyn-unbind", name)
        code.emit("pop-scope")

    def _is_special(self, name: Symbol) -> bool:
        return self.global_env is not None and self.global_env.is_special(name)

    @staticmethod
    def _let_parts(form):
        if len(form) < 2 or not isinstance(form[1], list):
            raise CompileError("let needs a binding list", form)
        return form[1], form[2:]

    @staticmethod
    def _binding_parts(binding):
        if isinstance(binding, Symbol):
            return binding, None
        if is_listform(binding) and isinstance(binding[0], Symbol):
            value = binding[1] if len(binding) > 1 else None
            return binding[0], value
        raise CompileError(f"bad let binding {binding!r}")

    def _c_lambda(self, form, code, tail):
        if len(form) < 2:
            raise CompileError("lambda needs a lambda list", form)
        fn_code = self.compile_function("lambda", form[1], form[2:])
        code.emit("closure", fn_code)

    def _c_defun(self, form, code, tail):
        if len(form) < 3 or not isinstance(form[1], Symbol):
            raise CompileError("defun needs (defun name (args) body...)", form)
        name = form[1]
        fn_code = self.compile_function(name.name, form[2], form[3:])
        code.emit("closure", fn_code)
        code.emit("store-global", name)
        code.emit("const", name)

    def _c_defvar(self, form, code, tail):
        """(defvar name [value [doc]]) — declare a special variable.

        ``defvar`` keeps an existing value (standard CL behaviour);
        ``defparameter`` always overwrites.  Both rewrite to a call of
        the ``%defvar`` intrinsic.
        """
        if len(form) < 2 or not isinstance(form[1], Symbol):
            raise CompileError("defvar needs a symbol", form)
        name = form[1]
        if self.global_env is not None:
            self.global_env.declare_special(name)
        value_form = form[2] if len(form) > 2 else None
        keep_existing = form[0].name == "defvar"
        call = [_S("%defvar"), [_S("quote"), name], value_form,
                True if keep_existing else None]
        self.compile_form(call, code, tail=tail)

    def _c_setq(self, form, code, tail):
        if len(form) != 3 or not isinstance(form[1], Symbol):
            raise CompileError("setq needs (setq name value)", form)
        name, value = form[1], form[2]
        self.compile_form(value, code, tail=False)
        code.emit("dup")
        code.emit("store", name)

    def _c_setf(self, form, code, tail):
        if len(form) < 3:
            raise CompileError("setf needs (setf place value)", form)
        if len(form) > 3:
            # (setf p1 v1 p2 v2 ...) pairs
            pairs = form[1:]
            if len(pairs) % 2 != 0:
                raise CompileError("setf needs place/value pairs", form)
            body = []
            for i in range(0, len(pairs), 2):
                body.append([_S("setf"), pairs[i], pairs[i + 1]])
            self.compile_body(body, code, tail=tail)
            return
        place, value = form[1], form[2]
        place = macroexpand(place, self.global_env, self.apply_fn)
        if isinstance(place, Symbol):
            self._c_setq([form[0], place, value], code, tail)
            return
        if is_listform(place) and isinstance(place[0], Symbol):
            expander = self.setf_expanders.get(place[0].name)
            if expander is not None:
                self.compile_form(expander(place, value), code, tail=tail)
                return
        raise CompileError(f"setf: don't know how to set place {place!r}", form)

    def _c_function(self, form, code, tail):
        if len(form) != 2:
            raise CompileError("function takes one name", form)
        target = form[1]
        if isinstance(target, Symbol):
            code.emit("load", target)
        elif is_listform(target) and isinstance(target[0], Symbol) and \
                target[0].name in ("lambda", "fn"):
            self._c_lambda(target, code, tail)
        else:
            raise CompileError(f"function: bad designator {target!r}", form)

    def _c_while(self, form, code, tail):
        if len(form) < 2:
            raise CompileError("while needs a test", form)
        test, body = form[1], form[2:]
        top = code.here
        self.compile_form(test, code, tail=False)
        jexit = code.emit("jump-if-false")
        for stmt in body:
            self.compile_form(stmt, code, tail=False)
            code.emit("pop")
        code.emit("jump", top)
        code.patch(jexit, code.here)
        code.emit("const", None)

    def _c_and(self, form, code, tail):
        args = form[1:]
        if not args:
            code.emit("const", True)
            return
        jumps = []
        for arg in args[:-1]:
            self.compile_form(arg, code, tail=False)
            code.emit("dup")
            jumps.append(code.emit("jump-if-false"))
            code.emit("pop")
        self.compile_form(args[-1], code, tail=tail)
        for j in jumps:
            code.patch(j, code.here)

    def _c_or(self, form, code, tail):
        args = form[1:]
        if not args:
            code.emit("const", None)
            return
        jumps = []
        for arg in args[:-1]:
            self.compile_form(arg, code, tail=False)
            code.emit("dup")
            jumps.append(code.emit("jump-if-true"))
            code.emit("pop")
        self.compile_form(args[-1], code, tail=tail)
        for j in jumps:
            code.patch(j, code.here)

    def _c_block(self, form, code, tail):
        if len(form) < 2:
            raise CompileError("block needs a name", form)
        name = form[1]
        if name is not None and not isinstance(name, Symbol):
            raise CompileError("block name must be a symbol or nil", form)
        pb = code.emit("push-block")
        self.compile_body(form[2:], code, tail=False)
        code.emit("pop-block", 1)
        code.patch(pb, (name, code.here))

    def _c_return_from(self, form, code, tail):
        if len(form) not in (2, 3):
            raise CompileError("return-from needs (return-from name [value])", form)
        name = form[1]
        if name is not None and not isinstance(name, Symbol):
            raise CompileError("return-from name must be a symbol or nil", form)
        value = form[2] if len(form) == 3 else None
        self.compile_form(value, code, tail=False)
        code.emit("return-from", name)

    def _c_return(self, form, code, tail):
        value = form[1] if len(form) > 1 else None
        self._c_return_from([form[0], None, value], code, tail)

    def _c_yield(self, form, code, tail):
        value = form[1] if len(form) > 1 else None
        self.compile_form(value, code, tail=False)
        code.emit("yield")

    def _c_push_cc(self, form, code, tail):
        code.emit("push-cc")

    def _c_future(self, form, code, tail):
        body_code = CodeObject(name="future", params=ParamSpec())
        self.compile_body(form[1:], body_code, tail=True)
        body_code.emit("return")
        code.emit("spawn-future", body_code)

    def _c_unwind_protect(self, form, code, tail):
        if len(form) < 2:
            raise CompileError("unwind-protect needs a protected form", form)
        protected, cleanup = form[1], form[2:]
        cleanup_code = CodeObject(name="unwind-cleanup", params=ParamSpec())
        self.compile_body(cleanup, cleanup_code, tail=False)
        cleanup_code.emit("return")
        code.emit("push-unwind", cleanup_code)
        self.compile_form(protected, code, tail=False)
        code.emit("pop-unwind")

    def _c_handler_bind(self, form, code, tail):
        if len(form) < 2 or not isinstance(form[1], list):
            raise CompileError("handler-bind needs a binding list", form)
        bindings, body = form[1], form[2:]
        for binding in bindings:
            if not is_listform(binding) or len(binding) != 2:
                raise CompileError("handler binding must be (typespec fn)", binding)
            typespec, fn_form = binding
            code.emit("const", self._typespec_value(typespec))
            self.compile_form(fn_form, code, tail=False)
        code.emit("make-list", 2 * len(bindings))
        code.emit("push-handlers")
        self.compile_body(body, code, tail=False)
        code.emit("pop-handlers", 1)

    @staticmethod
    def _typespec_value(typespec: Any) -> Any:
        """Handler type specs are quoted symbols/strings or lists of them."""
        if is_listform(typespec) and typespec[0] is _S("quote"):
            return typespec[1]
        return typespec

    def _c_restart_case(self, form, code, tail):
        if len(form) < 2:
            raise CompileError("restart-case needs a protected form", form)
        protected, clauses = form[1], form[2:]
        names = []
        for clause in clauses:
            if not is_listform(clause) or len(clause) < 2 or \
                    not isinstance(clause[0], Symbol):
                raise CompileError("restart clause must be (name (args) body...)",
                                   clause)
            name, arglist, *body = clause
            clause_code = self.compile_function(
                f"restart:{name.name}", arglist, list(body))
            names.append(name)
            code.emit("closure", clause_code)
        pr = code.emit("push-restarts")
        self.compile_form(protected, code, tail=False)
        code.emit("pop-restarts", 1)
        code.patch(pr, (tuple(names), code.here))

    def _c_declare(self, form, code, tail):
        code.emit("const", None)

    def _c_the(self, form, code, tail):
        if len(form) != 3:
            raise CompileError("the needs (the type form)", form)
        self.compile_form(form[2], code, tail=tail)

    def _c_dot(self, form, code, tail):
        """(. obj (method args...)) or (. obj field) — host interop."""
        if len(form) < 3:
            raise CompileError(". needs an object and a member", form)
        obj, member = form[1], form[2]
        if is_listform(member) and isinstance(member[0], Symbol):
            call = [_S("%dot"), obj, [_S("quote"), member[0]], *member[1:]]
        elif isinstance(member, Symbol):
            call = [_S("%dot-field"), obj, [_S("quote"), member]]
        else:
            raise CompileError(f". member must be a symbol or call, got {member!r}", form)
        self.compile_form(call, code, tail=tail)

    def _c_intrinsic(self, form, code, tail):
        """(% name args...) calls the host intrinsic ``name``."""
        if len(form) < 2 or not isinstance(form[1], Symbol):
            raise CompileError("% needs an intrinsic name", form)
        call = [_S("%" + form[1].name), *form[2:]]
        self.compile_form(call, code, tail=tail)


# ---------------------------------------------------------------------------
# setf place expanders
# ---------------------------------------------------------------------------

def _setf_gethash(place, value):
    _, key, table, *default = place
    return [_S("%sethash"), key, table, value]


def _setf_car(place, value):
    return [_S("set-car!"), place[1], value]


def _setf_cdr(place, value):
    return [_S("set-cdr!"), place[1], value]


def _setf_nth(place, value):
    _, n, lst = place
    return [_S("set-nth!"), n, lst, value]


def _setf_elt(place, value):
    _, lst, n = place
    return [_S("set-nth!"), n, lst, value]


def _setf_dot(place, value):
    _, obj, member = place[:3]
    if not isinstance(member, Symbol):
        raise CompileError("setf of (. obj member) needs a field symbol", place)
    return [_S("%dot-setf"), obj, [_S("quote"), member], value]


def _setf_get_task_var(place, value):
    # (setf (%get-task-var 'name) v) — produced by the ^var^ reader
    # macro (paper Listings 4 and 5).
    _, name_form = place
    return [_S("%set-task-var"), name_form, value]


_DEFAULT_SETF_EXPANDERS = {
    "gethash": _setf_gethash,
    "car": _setf_car,
    "first": _setf_car,
    "cdr": _setf_cdr,
    "rest": _setf_cdr,
    "nth": _setf_nth,
    "elt": _setf_elt,
    ".": _setf_dot,
    "%get-task-var": _setf_get_task_var,
}
