"""The Gozer language front end: reader, macros, compiler, stdlib."""

from .reader import Char, ReadTable, Reader, read_all, read_string
from .printer import princ_form, print_form
from .symbols import Keyword, Symbol, gensym
from .compiler import Compiler
from .bytecode import CodeObject, ParamSpec
from .errors import (
    CompileError,
    GozerError,
    GozerRuntimeError,
    IncompleteFormError,
    ReaderError,
    UnboundVariableError,
)

__all__ = [
    "Char", "ReadTable", "Reader", "read_all", "read_string",
    "princ_form", "print_form", "Keyword", "Symbol", "gensym",
    "Compiler", "CodeObject", "ParamSpec",
    "CompileError", "GozerError", "GozerRuntimeError",
    "IncompleteFormError", "ReaderError", "UnboundVariableError",
]
