"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``run FILE [PARAMS]`` — evaluate a ``.gozer`` file locally; if it
  defines ``(defun main ...)``, call it with PARAMS (read as a Gozer
  form);
* ``deploy FILE [PARAMS]`` — wrap the file as a Vinz workflow on a
  simulated cluster, run it to completion, and print the result plus
  cluster statistics;
* ``trace FILE [PARAMS]`` — like ``deploy`` but prints the Figure-1
  style lifetime trace of the task;
* ``dis EXPR`` — compile a Gozer expression and print its bytecode;
* ``expand EXPR`` — print the macroexpansion of an expression;
* ``repl`` — the interactive REPL (same as examples/repl.py);
* ``production-day [SCALE]`` — run the Section 5 synthetic production
  day and print the paper-vs-measured report;
* ``fuzz --seed S --budget N`` — the generative conformance campaign:
  differential execution of N generated programs across the tree
  interpreter, the bytecode VM, pickle-roundtripped continuations and
  distributed Vinz runs under chaos (docs/conformance.md).  Exits
  non-zero on any unclassified divergence.
"""

from __future__ import annotations

import argparse
import sys

from .lang.printer import print_form
from .lang.symbols import Symbol


def cmd_run(args) -> int:
    from . import make_runtime

    rt = make_runtime(deterministic=False, max_workers=args.workers)
    try:
        value = rt.eval_file(args.file)
        main = rt.global_env.lookup_or(Symbol("main"))
        if main is not None:
            params = rt.read(args.params) if args.params else None
            value = rt.apply(main, [params])
        print(print_form(value))
        return 0
    finally:
        rt.shutdown()


def _build_env(args):
    from .vinz.api import VinzEnvironment

    env = VinzEnvironment(nodes=args.nodes, slots=args.slots,
                          seed=args.seed,
                          placement=args.placement)
    if args.edf:
        env.scheduling_policy = "edf"
    if args.adaptive_migration:
        env.migration_policy = "adaptive"
    return env


def cmd_deploy(args) -> int:
    env = _build_env(args)
    with open(args.file, "r", encoding="utf-8") as fh:
        source = fh.read()
    env.deploy_workflow("Main", source, spawn_limit=args.spawn_limit)
    params = None
    if args.params:
        from .lang.reader import read_string

        params = read_string(args.params)
    result = env.call("Main", params)
    print("result:", print_form(result))
    summary = env.summary()
    print(f"virtual time : {summary['virtual_time']:.4f}s")
    print(f"fibers       : {summary['fibers_total']}")
    print(f"messages     : {summary['queue']['delivered']} delivered, "
          f"{summary['queue']['redelivered']} redelivered")
    print(f"store        : {summary['store']['writes']} writes, "
          f"{summary['store']['bytes_written']} bytes")
    print(f"cache        : mutable {summary['cache']['mutable']:.2f}, "
          f"immutable {summary['cache']['immutable']:.2f}")
    print(f"utilization  : {summary['utilization']:.1%}")
    return 0


def cmd_trace(args) -> int:
    env = _build_env(args)
    with open(args.file, "r", encoding="utf-8") as fh:
        source = fh.read()
    env.deploy_workflow("Main", source, spawn_limit=args.spawn_limit)
    params = None
    if args.params:
        from .lang.reader import read_string

        params = read_string(args.params)
    task_id = env.run("Main", params)
    print(env.cluster.trace.render(env.cluster.trace.for_task(task_id)))
    task = env.registry.tasks[task_id]
    print(f"\ntask {task_id}: {task.status}, result "
          f"{print_form(task.result)}")
    return 0 if task.status == "completed" else 1


def cmd_dis(args) -> int:
    from . import make_runtime

    rt = make_runtime(deterministic=True)
    code = rt.compile(rt.read(args.expr))
    print(code.disassemble())
    return 0


def cmd_expand(args) -> int:
    from . import make_runtime
    from .lang.macros import macroexpand

    rt = make_runtime(deterministic=True)
    print(print_form(macroexpand(rt.read(args.expr), rt.global_env,
                                 rt.apply)))
    return 0


def cmd_repl(args) -> int:
    import os
    import runpy

    repl = os.path.join(os.path.dirname(os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))), "examples", "repl.py")
    if os.path.exists(repl):
        runpy.run_path(repl, run_name="__main__")
        return 0
    # fall back to a minimal inline loop when examples/ is not shipped
    from . import make_runtime

    rt = make_runtime()
    try:
        for line in sys.stdin:
            line = line.strip()
            if not line or line == ":quit":
                break
            try:
                print(print_form(rt.eval_string(line)))
            except Exception as exc:  # noqa: BLE001 - REPL surface
                print(f"error: {exc}")
        return 0
    finally:
        rt.shutdown()


def cmd_production_day(args) -> int:
    from .harness.reporting import paper_vs_measured
    from .workloads.production import run_production_day

    result = run_production_day(scale=args.scale, nodes=args.nodes,
                                slots=args.slots, seed=args.seed)
    print(paper_vs_measured(
        f"Section 5 production day at {args.scale:.1%} scale",
        result.rows()))
    print(f"\ncache hit rates: {result.cache_hit_rates}")
    return 0 if result.failed_tasks == 0 else 1


def cmd_fuzz(args) -> int:
    from .conformance.fuzz import run_fuzz, write_report

    def progress(done, budget, divergences):
        print(f"  … {done}/{budget} programs, "
              f"{divergences} divergence(s)", file=sys.stderr)

    report = run_fuzz(seed=args.seed, budget=args.budget,
                      vinz_every=args.vinz_every,
                      chaos=not args.no_chaos,
                      repro_dir=args.repro_dir,
                      shrink_checks=args.shrink_checks,
                      progress=progress if args.verbose else None)
    print(report.summary())
    if args.report:
        write_report(report, args.report)
        print(f"report written to {args.report}")
    return 0 if report.ok else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Gozer workflow system (IPPS 2010 reproduction)")
    sub = parser.add_subparsers(dest="command", required=True)

    def cluster_flags(p):
        p.add_argument("--nodes", type=int, default=4)
        p.add_argument("--slots", type=int, default=1)
        p.add_argument("--seed", type=int, default=0)
        p.add_argument("--spawn-limit", type=int, default=4)
        p.add_argument("--placement", choices=["balanced", "affinity"],
                       default="balanced")
        p.add_argument("--edf", action="store_true",
                       help="deadline-aware scheduling")
        p.add_argument("--adaptive-migration", action="store_true")

    p = sub.add_parser("run", help="evaluate a .gozer file locally")
    p.add_argument("file")
    p.add_argument("params", nargs="?", help="Gozer form passed to (main ...)")
    p.add_argument("--workers", type=int, default=4)
    p.set_defaults(fn=cmd_run)

    p = sub.add_parser("deploy", help="run a workflow on a simulated cluster")
    p.add_argument("file")
    p.add_argument("params", nargs="?")
    cluster_flags(p)
    p.set_defaults(fn=cmd_deploy)

    p = sub.add_parser("trace", help="run a workflow and print its lifetime")
    p.add_argument("file")
    p.add_argument("params", nargs="?")
    cluster_flags(p)
    p.set_defaults(fn=cmd_trace)

    p = sub.add_parser("dis", help="disassemble a Gozer expression")
    p.add_argument("expr")
    p.set_defaults(fn=cmd_dis)

    p = sub.add_parser("expand", help="macroexpand a Gozer expression")
    p.add_argument("expr")
    p.set_defaults(fn=cmd_expand)

    p = sub.add_parser("repl", help="interactive Gozer REPL")
    p.set_defaults(fn=cmd_repl)

    p = sub.add_parser("production-day",
                       help="run the Section 5 synthetic production day")
    p.add_argument("scale", nargs="?", type=float, default=0.01)
    p.add_argument("--nodes", type=int, default=12)
    p.add_argument("--slots", type=int, default=4)
    p.add_argument("--seed", type=int, default=2010)
    p.set_defaults(fn=cmd_production_day)

    p = sub.add_parser("fuzz",
                       help="run the generative conformance campaign")
    p.add_argument("--seed", type=int, default=7)
    p.add_argument("--budget", type=int, default=200,
                   help="number of generated programs")
    p.add_argument("--vinz-every", type=int, default=10,
                   help="run the distributed oracle on every Nth "
                        "non-dist program (dist programs always run it)")
    p.add_argument("--no-chaos", action="store_true",
                   help="disable fault injection in the Vinz oracle")
    p.add_argument("--shrink-checks", type=int, default=400,
                   help="oracle-replay budget per divergence shrink")
    p.add_argument("--report", help="write a JSON report to this path")
    p.add_argument("--repro-dir",
                   help="save shrunken diverging repros here as .gozer "
                        "corpus entries")
    p.add_argument("--verbose", action="store_true",
                   help="print progress every 25 programs")
    p.set_defaults(fn=cmd_fuzz)

    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
