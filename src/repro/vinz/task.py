"""Tasks: running workflow instances (paper Section 3.1).

"Execution of a workflow is typically initiated by invoking the Start
operation ...  This causes the creation of a *task*, which uniquely
identifies that particular running instance of the workflow.  Every
task contains one or more uniquely identified *fibers* ...  A task is
somewhat analogous to an operating system process, while a fiber is
analogous to a thread within that process."

The registry below plays the role of BlueBox's "global process tracking
service" (Section 4.2).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

# task / fiber statuses
PENDING = "pending"
RUNNING = "running"
COMPLETED = "completed"
TERMINATED = "terminated"
ERROR = "error"

ACTIVE_STATUSES = (PENDING, RUNNING)


@dataclass
class TaskRecord:
    """One running workflow instance."""

    id: str
    workflow: str
    params: Any
    status: str = PENDING
    result: Any = None
    error: Optional[str] = None
    created_at: float = 0.0
    finished_at: Optional[float] = None
    fiber_ids: List[str] = field(default_factory=list)
    #: per-task spawn limit (paper Section 3.5): an int, the "auto"
    #: sentinel (delegate to the adaptive spawn governor), or None =
    #: service default
    spawn_limit: Optional[Any] = None
    #: absolute virtual-time deadline (EDF scheduling extension)
    deadline: Optional[float] = None
    #: callbacks to fire on completion (deferred Run/Call replies)
    completion_listeners: List[Callable[["TaskRecord"], None]] = \
        field(default_factory=list)
    #: fibers waiting in join-process for this whole task to finish
    join_waiters: List[str] = field(default_factory=list)
    #: sibling-chain bookkeeping for the chained for-each strategy
    #: (Section 5 future work): group id -> {parent, children, pending,
    #: remaining}
    chain_groups: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    #: causal-tracing root span for this task's lifetime (repro.observe);
    #: 0 when tracing is disabled
    span_id: int = 0

    @property
    def finished(self) -> bool:
        return self.status in (COMPLETED, TERMINATED, ERROR)

    @property
    def duration(self) -> Optional[float]:
        if self.finished_at is None:
            return None
        return self.finished_at - self.created_at


@dataclass
class FiberRecord:
    """One flow of control within a task.

    ``notify_parent`` reflects the paper's footnote 1: fibers created by
    the ``for-each``/``parallel`` macros awaken their parent on
    termination as "a property of the fiber itself"; plain
    ``fork-and-exec`` fibers do not.
    """

    id: str
    task_id: str
    parent_id: Optional[str] = None
    status: str = PENDING
    result: Any = None
    error: Optional[str] = None
    notify_parent: bool = False
    created_at: float = 0.0
    finished_at: Optional[float] = None
    #: version of the persisted continuation (bumps on every persist)
    version: int = 0
    #: highest version whose continuation actually reached the store —
    #: with ``snapshot_interval > 1`` persists are skipped between
    #: snapshots, so this can trail ``version`` (the gap is rebuilt by
    #: history replay on a cache miss)
    last_persisted_version: int = 0
    #: the node that last advanced this fiber (locality policy hint)
    last_node: Optional[str] = None
    #: sibling-chain group this fiber belongs to, if any
    chain_group: Optional[str] = None
    #: pending inter-fiber messages (the lightweight cross-process
    #: communication mechanism of the Section 5 future-work list)
    mailbox: List[Any] = field(default_factory=list)
    #: queue-message ids already appended to the mailbox — makes
    #: delivery idempotent across message re-deliveries
    seen_deliveries: set = field(default_factory=set)
    #: queue-message ids whose operation window already advanced this
    #: fiber — makes RunFiber/AwakeFiber/ResumeFromCall idempotent
    #: under duplicated (at-least-once) deliveries
    processed_deliveries: set = field(default_factory=set)
    #: total simulated seconds charged by this fiber's processing
    #: windows (drives :chunk-size :auto sizing)
    total_charged: float = 0.0
    #: why the fiber is suspended: None | "await" | "service" | "join" | "sleep"
    waiting_on: Optional[str] = None
    #: fibers waiting in join-process for this fiber to finish
    join_waiters: List[str] = field(default_factory=list)
    #: causal-tracing span covering this fiber's lifetime; 0 when
    #: tracing is disabled
    span_id: int = 0
    #: the queue message that last advanced (or is advancing) this
    #: fiber — the recovery scanner's re-awaken handle: re-enqueueing
    #: it (same message id) is idempotent under the
    #: ``processed_deliveries`` guard
    last_message: Optional[Any] = None

    @property
    def finished(self) -> bool:
        return self.status in (COMPLETED, TERMINATED, ERROR)


class ProcessRegistry:
    """Task and fiber records, shared by every workflow-service instance.

    In the real system this is a BlueBox tracking service backed by the
    message queue; in the simulation, a plain shared object is an
    equivalent (and deterministic) stand-in.
    """

    def __init__(self):
        self.tasks: Dict[str, TaskRecord] = {}
        self.fibers: Dict[str, FiberRecord] = {}
        self._task_seq = itertools.count(1)
        self._fiber_seq = itertools.count(1)

    # -- creation --------------------------------------------------------

    def new_task(self, workflow: str, params: Any, now: float) -> TaskRecord:
        task = TaskRecord(id=f"task-{next(self._task_seq)}", workflow=workflow,
                          params=params, created_at=now)
        self.tasks[task.id] = task
        return task

    def new_fiber(self, task: TaskRecord, now: float,
                  parent_id: Optional[str] = None,
                  notify_parent: bool = False) -> FiberRecord:
        fiber = FiberRecord(id=f"fiber-{next(self._fiber_seq)}",
                            task_id=task.id, parent_id=parent_id,
                            notify_parent=notify_parent, created_at=now)
        self.fibers[fiber.id] = fiber
        task.fiber_ids.append(fiber.id)
        return fiber

    # -- lookup ------------------------------------------------------------

    def task(self, task_id: str) -> TaskRecord:
        return self.tasks[task_id]

    def fiber(self, fiber_id: str) -> FiberRecord:
        return self.fibers[fiber_id]

    def task_of(self, fiber_id: str) -> TaskRecord:
        return self.tasks[self.fibers[fiber_id].task_id]

    def fibers_of(self, task_id: str) -> List[FiberRecord]:
        return [self.fibers[fid] for fid in self.tasks[task_id].fiber_ids]

    # -- transitions ---------------------------------------------------------

    def finish_task(self, task: TaskRecord, status: str, now: float,
                    result: Any = None, error: Optional[str] = None) -> None:
        if task.finished:
            return
        task.status = status
        task.result = result
        task.error = error
        task.finished_at = now
        listeners, task.completion_listeners = task.completion_listeners, []
        for listener in listeners:
            listener(task)

    def finish_fiber(self, fiber: FiberRecord, status: str, now: float,
                     result: Any = None, error: Optional[str] = None) -> None:
        if fiber.finished:
            return
        fiber.status = status
        fiber.result = result
        fiber.error = error
        fiber.finished_at = now

    # -- rollback (aborted operation windows) --------------------------------

    def discard_fiber(self, fiber_id: str) -> Optional[FiberRecord]:
        """Remove a fiber record created inside an aborted operation
        window: the window's effects never happened, so the record must
        not survive (the replayed operation will recreate it)."""
        fiber = self.fibers.pop(fiber_id, None)
        if fiber is None:
            return None
        task = self.tasks.get(fiber.task_id)
        if task is not None and fiber_id in task.fiber_ids:
            task.fiber_ids.remove(fiber_id)
        return fiber

    def discard_task(self, task_id: str) -> Optional[TaskRecord]:
        """Remove a task (and its fibers) created inside an aborted
        operation window — the retried Start will create a fresh one."""
        task = self.tasks.pop(task_id, None)
        if task is None:
            return None
        for fiber_id in list(task.fiber_ids):
            self.fibers.pop(fiber_id, None)
        return task

    # -- statistics -----------------------------------------------------------

    def active_tasks(self) -> List[TaskRecord]:
        return [t for t in self.tasks.values() if not t.finished]

    def counts(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for task in self.tasks.values():
            out[task.status] = out.get(task.status, 0) + 1
        return out
