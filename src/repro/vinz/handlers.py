"""Named error handlers: defhandler / with-handler (paper Section 3.7).

"A handler associates a list of conditions (whether Java classes or XML
QNames) with an action (usually) provided by Vinz, making it possible
to centralize condition-handling logic."  The four built-in actions:

* ``retry``  — invoke the active ``retry`` restart (deflink stubs bind
  one), up to ``:count`` times;
* ``ignore`` — invoke the active ``ignore`` restart, allowing optional
  operations to fail harmlessly;
* ``break``  — terminate the current fiber cleanly, returning nil to
  the parent (other fibers unaffected);
* ``terminate`` — terminate the fiber *and* the task with an error
  status.

"An action is just a function, so the workflow author is free to define
additional actions": an unknown action name is looked up as a global
Gozer function and called with the condition.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Optional

from ..gvm.frames import GozerFunction, GozerMacro
from ..lang.errors import CompileError, GozerRuntimeError
from ..lang.symbols import Keyword, Symbol, gensym
from .distribution import VinzBreak, VinzTerminateTask

_S = Symbol


@dataclass
class HandlerDefinition:
    """One ``defhandler`` definition."""

    name: str
    typespecs: List[Any] = field(default_factory=list)
    action: str = "ignore"
    count: int = 1
    doc: str = ""

    def typespec(self) -> List[Any]:
        """The combined condition spec for handler-bind matching."""
        return list(self.typespecs)


def parse_defhandler(name: Symbol, options: List[Any]) -> HandlerDefinition:
    """Parse (defhandler name :java (...) :code (...) :action a :count n)."""
    if not isinstance(name, Symbol):
        raise CompileError("defhandler needs a symbol name")
    definition = HandlerDefinition(name=name.name)
    i = 0
    while i < len(options):
        key = options[i]
        if not isinstance(key, Keyword):
            raise CompileError(f"defhandler: expected a keyword, got {key!r}")
        if i + 1 >= len(options):
            raise CompileError(f"defhandler: {key} needs a value")
        value = options[i + 1]
        i += 2
        if key.name == "java":
            # host exception class names (the paper's Java classes)
            definition.typespecs.extend(_string_list(value))
        elif key.name == "code":
            # service error QNames
            definition.typespecs.extend(_string_list(value))
        elif key.name == "condition":
            # Gozer condition-type symbols
            definition.typespecs.extend(
                value if isinstance(value, list) else [value])
        elif key.name == "action":
            definition.action = value.name if isinstance(value, Symbol) \
                else str(value)
        elif key.name == "count":
            definition.count = int(value)
        elif key.name == "doc":
            definition.doc = str(value)
        else:
            raise CompileError(f"defhandler: unknown option :{key.name}")
    if not definition.typespecs:
        raise CompileError(
            f"defhandler {name}: no conditions given (:java/:code/:condition)")
    return definition


def _string_list(value: Any) -> List[str]:
    if isinstance(value, str):
        return [value]
    if isinstance(value, list):
        return [str(v) for v in value]
    raise CompileError(f"defhandler: expected a string or list, got {value!r}")


def perform_action(vm, condition, definition: HandlerDefinition,
                   invocation_count: int) -> None:
    """Execute a handler's action.  Returning normally = declining."""
    action = definition.action
    if action == "retry":
        # "intended to be used to deal with possibly transient errors
        # ... without the programmer being forced to write an explicit
        # loop"; give up (decline) once :count retries are spent
        if invocation_count <= definition.count and \
                vm.find_restart(_S("retry")) is not None:
            vm.invoke_restart(_S("retry"), [])
        return
    if action == "ignore":
        if vm.find_restart(_S("ignore")) is not None:
            vm.invoke_restart(_S("ignore"), [])
        return
    if action == "break":
        raise VinzBreak("break action")
    if action == "terminate":
        message = getattr(condition, "message", str(condition))
        raise VinzTerminateTask(f"terminate action: {message}")
    # custom action: a global function of one argument
    fn = vm.global_env.lookup_or(_S(action))
    if fn is None:
        raise GozerRuntimeError(
            f"handler {definition.name}: unknown action {action!r}")
    vm.call(fn, [condition])


def install(runtime, workflow_service) -> None:
    env = runtime.global_env

    def handle_condition(vm, condition, handler_name, invocation_count):
        definition = workflow_service.handler_definitions.get(
            handler_name.name if isinstance(handler_name, Symbol)
            else str(handler_name))
        if definition is None:
            raise GozerRuntimeError(f"no handler named {handler_name}")
        perform_action(vm, condition, definition, int(invocation_count))
        return None

    handle_condition.needs_vm = True
    env.define_intrinsic("vinz-handle-condition", handle_condition)

    def m_defhandler(name, *options):
        definition = parse_defhandler(name, list(options))
        workflow_service.define_handler(definition)
        return [_S("quote"), name]

    env.define_macro(_S("defhandler"), GozerMacro(m_defhandler, "defhandler"))

    def m_with_handler(name, *body):
        if not isinstance(name, Symbol):
            raise CompileError("with-handler needs a handler name")
        definition = workflow_service.handler_definitions.get(name.name)
        if definition is None:
            raise CompileError(f"with-handler: no handler named {name.name} "
                               "(defhandler must come first)")
        counter = gensym("wh-count")
        cvar = gensym("wh-c")
        handler_fn = [
            _S("lambda"), [cvar],
            [_S("setq"), counter, [_S("+"), counter, 1]],
            [_S("%vinz-handle-condition"), cvar,
             [_S("quote"), name], counter],
        ]
        return [
            _S("let"), [[counter, 0]],
            [_S("handler-bind"),
             [[definition.typespec(), handler_fn]],
             [_S("progn"), *body]],
        ]

    env.define_macro(_S("with-handler"),
                     GozerMacro(m_with_handler, "with-handler"))
