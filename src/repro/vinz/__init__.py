"""Vinz: Gozer's distribution module (tasks, fibers, workflow services)."""

from .api import VinzEnvironment, WorkflowError
from .service import FiberExecution, WorkflowService
from .task import (
    COMPLETED,
    ERROR,
    FiberRecord,
    PENDING,
    ProcessRegistry,
    RUNNING,
    TERMINATED,
    TaskRecord,
)
from .persistence import (
    CodeRegistry,
    FiberCodec,
    HostFunctionRegistry,
    blob_codec_name,
    compare_codecs,
)
from .cache import FiberCache, LruCache
from .distribution import VinzBreak, VinzTerminateTask
from .handlers import HandlerDefinition

__all__ = [
    "VinzEnvironment", "WorkflowError", "FiberExecution", "WorkflowService",
    "COMPLETED", "ERROR", "FiberRecord", "PENDING", "ProcessRegistry",
    "RUNNING", "TERMINATED", "TaskRecord",
    "CodeRegistry", "FiberCodec", "HostFunctionRegistry",
    "blob_codec_name", "compare_codecs",
    "FiberCache", "LruCache", "VinzBreak", "VinzTerminateTask",
    "HandlerDefinition",
]
