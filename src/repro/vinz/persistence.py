"""Fiber persistence: serialization and compression (paper Section 4.2).

"Vinz writes a fiber's state and data using Java serialization, with
many customizations for efficiency" — here, pickle with the same three
optimizations the paper reports:

1. **Compression before writing**: "compressing the serialized data
   before writing it to NFS was a net win by reducing IO costs
   considerably".
2. **Raw deflate over gzip**: "plain deflate can be made to perform
   approximately 30% better than the more robust and space-efficient
   gzip format".  ``deflate`` here is raw zlib with no gzip header or
   CRC32 trailer, at a lighter compression level; ``gzip`` uses the
   full gzip framing at its default level — the same robustness-for-
   speed trade the paper describes.
3. **A custom format for the most commonly serialized objects**: the
   dominant payload in a fiber snapshot is *program code* (CodeObjects)
   and interned symbols, which never change after load.  The custom
   codec pickles them by reference into a shared
   :class:`CodeRegistry` instead of by value, the way the paper's
   custom format special-cases its hottest object types.

Serialized blobs are framed ``b"GZR1" + codec byte + payload`` so any
node can decode a blob written with any codec.
"""

from __future__ import annotations

import gzip
import io
import pickle
import struct
import zlib
from typing import Any, Dict, List, Optional, Tuple

from ..bluebox.store import StoreError
from ..lang.bytecode import CodeObject

MAGIC = b"GZR1"

#: magic of the v2 incremental-snapshot manifest (persistsnap); a v1
#: reader must recognize it to refuse it *clearly* rather than fail
#: deep inside unpickling
SNAPSHOT_V2_MAGIC = b"GZS2"


class DeserializationError(StoreError, ValueError):
    """A persisted fiber blob failed to decode.

    Carries the fiber id, the snapshot format and the codec (when
    known), so a dead-letter report names *which* fiber's state is
    undecodable instead of surfacing a bare ``zlib.error`` — the latent
    bug class this hierarchy fixes.  A :class:`~repro.bluebox.store.StoreError`
    so detection mid-fiber aborts the operation window for a
    policy-driven retry; also a :class:`ValueError` for callers probing
    blobs directly.
    """

    tunnels_through_vm = True

    def __init__(self, message: str, fiber_id: Optional[str] = None,
                 fmt: str = "v1", codec: Optional[str] = None):
        detail = []
        if fiber_id is not None:
            detail.append(f"fiber={fiber_id}")
        detail.append(f"format={fmt}")
        if codec is not None:
            detail.append(f"codec={codec}")
        super().__init__(f"{message} ({', '.join(detail)})")
        self.fiber_id = fiber_id
        self.format = fmt
        self.codec = codec

    def __str__(self) -> str:  # StoreError is a KeyError; avoid repr quoting
        return self.args[0]


class SnapshotFormatError(DeserializationError):
    """The blob's *framing* is not one this deployment can read: not a
    fiber blob at all, an unknown codec byte, or — the downgrade guard —
    a v2 manifest read by a service configured for v1 snapshots."""

CODEC_NONE = b"N"
CODEC_GZIP = b"G"
CODEC_DEFLATE = b"D"
CODEC_CUSTOM = b"C"

#: raw-deflate compression level: lighter than gzip's default 9-ish
#: work factor; this is where the ~30% CPU savings come from.
DEFLATE_LEVEL = 3
GZIP_LEVEL = 9


class CodeRegistry:
    """Shared registry of immutable program objects.

    Both serializing and deserializing nodes have the workflow program
    loaded (Vinz deploys it everywhere, Section 3.1), so code objects
    can travel as small reference tokens.  Registration is idempotent
    and keyed by a stable id.
    """

    def __init__(self):
        self._by_key: Dict[str, CodeObject] = {}
        self._by_id: Dict[int, str] = {}
        self._counter = 0

    def register(self, code: CodeObject) -> str:
        existing = self._by_id.get(id(code))
        if existing is not None:
            return existing
        key = f"code:{self._counter}:{code.name}"
        self._counter += 1
        self._by_key[key] = code
        self._by_id[id(code)] = key
        return key

    def register_tree(self, code: CodeObject) -> None:
        """Register ``code`` and every code object it references."""
        from ..lang.bytecode import nested_code_objects

        for obj in nested_code_objects(code):
            self.register(obj)

    def lookup(self, key: str) -> CodeObject:
        return self._by_key[key]

    def key_for(self, code: CodeObject) -> Optional[str]:
        return self._by_id.get(id(code))

    def __len__(self) -> int:
        return len(self._by_key)


class HostFunctionRegistry:
    """Host (Python) functions referenced by serialized fibers.

    A suspended fiber's operand stacks may hold references to builtins
    and Vinz intrinsics (e.g. ``%parse-wsdl-response`` loaded before its
    argument is evaluated).  Those are part of the *program*, present on
    every node, so — like the paper's custom format for common objects —
    they serialize as small name tokens rather than by value.
    """

    def __init__(self):
        self._by_name: Dict[str, Any] = {}
        self._by_id: Dict[int, str] = {}

    def register(self, name: str, fn: Any) -> None:
        self._by_name[name] = fn
        self._by_id[id(fn)] = name

    def key_for(self, fn: Any) -> Optional[str]:
        return self._by_id.get(id(fn))

    def lookup(self, name: str):
        return self._by_name[name]

    def __len__(self) -> int:
        return len(self._by_name)


class _RegistryPickler(pickle.Pickler):
    def __init__(self, file, registry: CodeRegistry,
                 hosts: Optional[HostFunctionRegistry],
                 ref_code: bool):
        super().__init__(file, protocol=pickle.HIGHEST_PROTOCOL)
        self._registry = registry
        self._hosts = hosts
        self._ref_code = ref_code

    def persistent_id(self, obj):
        if self._ref_code and isinstance(obj, CodeObject):
            key = self._registry.key_for(obj)
            if key is None:
                # unseen code (e.g. built interactively): register so
                # the reader side of *this* registry can resolve it.
                key = self._registry.register(obj)
            return ("code", key)
        if self._hosts is not None and callable(obj) \
                and not isinstance(obj, type):
            from ..gvm.frames import GozerFunction

            if not isinstance(obj, GozerFunction):
                key = self._hosts.key_for(obj)
                if key is not None:
                    return ("host", key)
        return None


class _RegistryUnpickler(pickle.Unpickler):
    def __init__(self, file, registry: CodeRegistry,
                 hosts: Optional[HostFunctionRegistry]):
        super().__init__(file)
        self._registry = registry
        self._hosts = hosts

    def persistent_load(self, pid):
        kind, key = pid
        if kind == "code":
            return self._registry.lookup(key)
        if kind == "host":
            return self._hosts.lookup(key)
        raise pickle.UnpicklingError(f"unknown persistent id {pid!r}")


class FiberCodec:
    """Encodes/decodes fiber state blobs with a selectable codec.

    ``codec`` is one of ``"none" | "gzip" | "deflate" | "custom"``.
    ``custom`` implies the code-registry pickling *plus* raw deflate of
    the (much smaller) remainder.
    """

    NAMES = {
        "none": CODEC_NONE,
        "gzip": CODEC_GZIP,
        "deflate": CODEC_DEFLATE,
        "custom": CODEC_CUSTOM,
    }

    def __init__(self, codec: str = "deflate",
                 registry: Optional[CodeRegistry] = None,
                 hosts: Optional[HostFunctionRegistry] = None):
        if codec not in self.NAMES:
            raise ValueError(f"unknown codec {codec!r}")
        self.codec = codec
        self.registry = registry if registry is not None else CodeRegistry()
        self.hosts = hosts if hosts is not None else HostFunctionRegistry()
        # statistics
        self.encoded = 0
        self.decoded = 0
        self.raw_bytes = 0
        self.stored_bytes = 0
        #: optional MetricsRegistry (repro.observe) for blob-size
        #: histograms; set by the owning WorkflowService
        self.metrics = None

    # -- encode ---------------------------------------------------------

    def dumps(self, state: Any) -> bytes:
        # every codec pickles host functions by reference (they are
        # program, not state); only `custom` also refs CodeObjects
        raw = self._pickle(state, ref_code=(self.codec == "custom"))
        if self.codec == "none":
            payload = raw
        elif self.codec == "gzip":
            payload = gzip.compress(raw, compresslevel=GZIP_LEVEL)
        else:  # deflate and custom
            payload = zlib.compress(raw, DEFLATE_LEVEL)
        self.encoded += 1
        self.raw_bytes += len(raw)
        blob = MAGIC + self.NAMES[self.codec] + payload
        self.stored_bytes += len(blob)
        if self.metrics is not None and self.metrics.enabled:
            from ..observe.metrics import DEFAULT_SIZE_BUCKETS
            self.metrics.histogram(
                "codec.encode_bytes",
                buckets=DEFAULT_SIZE_BUCKETS).observe(len(blob))
        return blob

    # -- decode ---------------------------------------------------------

    def loads(self, blob: bytes, fiber_id: Optional[str] = None) -> Any:
        if blob[:4] == SNAPSHOT_V2_MAGIC:
            # downgrade guard: this fiber was persisted as a v2
            # incremental-snapshot manifest; a v1-configured service
            # must refuse it loudly, not feed manifest bytes to zlib
            raise SnapshotFormatError(
                "blob is a v2 incremental-snapshot manifest; this service "
                "reads v1 — redeploy with snapshots=\"v2\" to restore it",
                fiber_id=fiber_id, fmt="v2")
        if blob[:4] != MAGIC:
            raise SnapshotFormatError("not a Gozer fiber blob",
                                      fiber_id=fiber_id)
        codec = blob[4:5]
        payload = blob[5:]
        codec_name = next(
            (name for name, byte in self.NAMES.items() if byte == codec),
            None)
        if codec_name is None:
            raise SnapshotFormatError(f"unknown codec byte {codec!r}",
                                      fiber_id=fiber_id)
        try:
            if codec == CODEC_NONE:
                raw = payload
            elif codec == CODEC_GZIP:
                raw = gzip.decompress(payload)
            else:  # deflate and custom
                raw = zlib.decompress(payload)
        except (zlib.error, gzip.BadGzipFile, EOFError, OSError) as exc:
            raise DeserializationError(
                f"fiber blob failed to decompress: {exc}",
                fiber_id=fiber_id, codec=codec_name) from exc
        state = self.deserialize_state(raw, fiber_id=fiber_id,
                                       codec_name=codec_name)
        self.decoded += 1
        if self.metrics is not None and self.metrics.enabled:
            from ..observe.metrics import DEFAULT_SIZE_BUCKETS
            self.metrics.histogram(
                "codec.decode_bytes",
                buckets=DEFAULT_SIZE_BUCKETS).observe(len(blob))
        return state

    # -- the raw (uncompressed, unframed) layer ---------------------------

    def serialize_state(self, state: Any) -> bytes:
        """Serialize without compression or framing — the input to the
        v2 chunking pipeline (compression there is per-chunk)."""
        return self._pickle(state, ref_code=(self.codec == "custom"))

    def deserialize_state(self, raw: bytes, fiber_id: Optional[str] = None,
                          fmt: str = "v1",
                          codec_name: Optional[str] = None) -> Any:
        """Deserialize raw pickled state, converting every decode
        failure into a typed :class:`DeserializationError` that names
        the fiber and format (never a swallowed ``UnpicklingError``)."""
        try:
            return self._unpickle(raw)
        except (pickle.UnpicklingError, EOFError, AttributeError, KeyError,
                IndexError, MemoryError, TypeError, ValueError, ImportError,
                OverflowError, struct.error) as exc:
            raise DeserializationError(
                f"fiber state failed to deserialize: "
                f"{type(exc).__name__}: {exc}",
                fiber_id=fiber_id, fmt=fmt, codec=codec_name) from exc

    # -- helpers ----------------------------------------------------------

    def _pickle(self, state: Any, ref_code: bool) -> bytes:
        buffer = io.BytesIO()
        _RegistryPickler(buffer, self.registry, self.hosts, ref_code).dump(state)
        return buffer.getvalue()

    def _unpickle(self, raw: bytes) -> Any:
        return _RegistryUnpickler(io.BytesIO(raw), self.registry,
                                  self.hosts).load()


class CrcFrameError(ValueError):
    """A CRC frame failed its integrity check mid-stream (not at the
    tail) — the storage is corrupt beyond a torn write."""


#: CRC frame layout: magic + u32 payload length + u32 crc32(payload)
_FRAME_HEADER = struct.Struct("<II")


def crc_frame(payload: bytes, magic: bytes) -> bytes:
    """Wrap ``payload`` in a length+CRC frame.

    The durable store's write-ahead journal and checkpoints persist
    through these frames: a torn tail (a write cut short by a crash)
    is detectable — the length or the checksum will not line up — so
    replay can drop exactly the uncommitted suffix.
    """
    return (magic + _FRAME_HEADER.pack(len(payload),
                                       zlib.crc32(payload) & 0xFFFFFFFF)
            + payload)


def parse_crc_frames(data: bytes, magic: bytes,
                     offset: int = 0) -> Tuple[List[bytes], int, Optional[str]]:
    """Parse consecutive CRC frames from ``data`` starting at ``offset``.

    Returns ``(payloads, good_offset, tail_error)``: every frame that
    passed its check, the offset just past the last good frame, and —
    when the stream ends in a torn or corrupt record — a short reason
    string (``None`` for a clean tail).  Frames after a bad one are
    never trusted: a torn record means the writer died there.
    """
    payloads: List[bytes] = []
    header_len = len(magic) + _FRAME_HEADER.size
    while offset < len(data):
        header = data[offset:offset + header_len]
        if len(header) < header_len:
            return payloads, offset, "torn-header"
        if header[:len(magic)] != magic:
            return payloads, offset, "bad-magic"
        length, crc = _FRAME_HEADER.unpack(header[len(magic):])
        start = offset + header_len
        payload = data[start:start + length]
        if len(payload) < length:
            return payloads, offset, "torn-payload"
        if zlib.crc32(payload) & 0xFFFFFFFF != crc:
            return payloads, offset, "crc-mismatch"
        payloads.append(payload)
        offset = start + length
    return payloads, offset, None


def blob_codec_name(blob: bytes) -> str:
    """Identify which codec produced ``blob`` (``"v2-manifest"`` for an
    incremental-snapshot manifest — its codec byte lives inside)."""
    if blob[:4] == SNAPSHOT_V2_MAGIC:
        return "v2-manifest"
    if blob[:4] != MAGIC:
        raise SnapshotFormatError("not a Gozer fiber blob")
    for name, byte in FiberCodec.NAMES.items():
        if blob[4:5] == byte:
            return name
    raise SnapshotFormatError(f"unknown codec byte {blob[4:5]!r}")


def compare_codecs(state: Any, registry: Optional[CodeRegistry] = None,
                   repeats: int = 1) -> Dict[str, Dict[str, float]]:
    """Measure each codec on ``state``: size and encode/decode wall time.

    The raw material of benchmark S4a; also used by tests to assert the
    size ordering (custom < deflate ≈ gzip < none).
    """
    import time

    results: Dict[str, Dict[str, float]] = {}
    for codec_name in FiberCodec.NAMES:
        codec = FiberCodec(codec_name, registry=registry)
        t0 = time.perf_counter()
        for _ in range(repeats):
            blob = codec.dumps(state)
        t1 = time.perf_counter()
        for _ in range(repeats):
            codec.loads(blob)
        t2 = time.perf_counter()
        results[codec_name] = {
            "bytes": float(len(blob)),
            "encode_s": (t1 - t0) / repeats,
            "decode_s": (t2 - t1) / repeats,
        }
    return results
