"""deflink: WSDL-driven service stub generation (paper Section 3.3).

"A macro called deflink ... requests a service's interface in the form
of an XML document, parses it, and then generates a set of functions to
invoke each operation the service publishes, together with the
appropriate placement of yield statements to make the request
non-blocking."

For every operation ``Op`` of a linked service ``SM``, deflink defines
(exactly as the paper's Listing 2):

* ``SM-Op-Method`` — the high-level entry taking ``&key`` arguments,
  building the message and delegating to:
* ``SM-Op`` — the invoker: on a fiber thread it sends the request
  asynchronously and ``yield``s (the fiber migrates away while the
  service works); on a future's background thread — or when forced
  synchronous, statically via ``:sync t`` or dynamically via
  ``*vinz-force-sync*`` — it makes a standard synchronous request.
  Restarts ``ignore`` and ``retry`` are bound around the call for the
  named-handler actions of Section 3.7.

Operations the WSDL marks un-bridgeable get a *macro* that signals a
compile-time error, "thus avoiding runtime errors" — the workflow fails
to load if and only if it tries to invoke that operation.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from ..bluebox.wsdl import WsdlDocument, WsdlOperation
from ..bluebox.xmlmsg import ServiceMessage
from ..gvm.conditions import GozerCondition
from ..gvm.frames import GozerMacro
from ..lang.errors import CompileError, GozerRuntimeError
from ..lang.symbols import Keyword, Symbol

_S = Symbol


def generate_link_forms(prefix: str, wsdl: WsdlDocument,
                        static_sync: bool = False) -> List[Any]:
    """Build the (defun ...) forms for every bridgeable operation."""
    forms: List[Any] = []
    for operation in wsdl.operations.values():
        if not operation.bridgeable:
            continue
        forms.extend(_forms_for_operation(prefix, wsdl, operation,
                                          static_sync))
    return forms


def _forms_for_operation(prefix: str, wsdl: WsdlDocument,
                         operation: WsdlOperation,
                         static_sync: bool) -> List[Any]:
    fn_name = _S(f"{prefix}-{operation.name}")
    method_name = _S(f"{prefix}-{operation.name}-Method")
    msg = _S("msg")
    message_kw = _S("message")
    doc = operation.doc or f"Invoke {wsdl.service}.{operation.name}."

    # -- SM-Op-Method: keyword interface building the message -----------
    setters = [
        [_S("."), msg, [_S("set"), param.name, _S(param.name)]]
        for param in operation.parameters
    ]
    method_form = [
        _S("defun"), method_name,
        [_S("&key"), *[_S(p.name) for p in operation.parameters]],
        doc,
        [_S("let"), [[msg, [_S("make-service-message"), operation.name]]],
         *setters,
         [fn_name, Keyword("message"), msg]],
    ]

    # -- SM-Op: the invoker with restarts and the sync/async choice ------
    sync_call = [_S("%call-wsdl-operation"), operation.soap_action, message_kw]
    async_call = [_S("yield"),
                  [_S("%call-wsdl-operation-async"), operation.soap_action,
                   message_kw]]
    if static_sync:
        request = sync_call
    else:
        request = [
            _S("if"),
            [_S("and"), [_S("%is-fiber-thread")],
             [_S("not"), _S("*vinz-force-sync*")],
             # adaptive-migration hook (Section 5 future work): under
             # the default policy this is always true
             [_S("%vinz-should-migrate"), operation.soap_action]],
            async_call,
            sync_call,
        ]
    invoker_form = [
        _S("defun"), fn_name, [_S("&key"), message_kw],
        doc,
        [_S("restart-case"),
         [_S("%parse-wsdl-response"), request],
         [_S("ignore"), [],
          [_S("log"), f"Ignoring an exception from {operation.name}"],
          None],
         [_S("retry"), [],
          [fn_name, Keyword("message"), message_kw]]],
    ]
    return [method_form, invoker_form]


def install(runtime, workflow_service) -> None:
    """Install the deflink macro and its supporting intrinsics."""
    env = runtime.global_env
    vinz = workflow_service.vinz

    # -- intrinsics the generated code uses ------------------------------

    def make_service_message(operation):
        name = operation.name if isinstance(operation, Symbol) else str(operation)
        return ServiceMessage(name)

    env.define(_S("make-service-message"), make_service_message)

    def call_async(vm, soap_action, message):
        return {"kind": "service-call",
                "soap_action": str(soap_action),
                "values": _message_values(message)}

    call_async.needs_vm = True
    env.define_intrinsic("call-wsdl-operation-async", call_async)

    def call_sync(vm, soap_action, message):
        from .distribution import CURRENT_EXECUTION

        execution = getattr(vm, "vinz", None) or CURRENT_EXECUTION.get()
        if execution is None:
            raise GozerRuntimeError(
                "synchronous service call outside a Vinz workflow")
        return execution.call_sync(str(soap_action),
                                   _message_values(message))

    call_sync.needs_vm = True
    env.define_intrinsic("call-wsdl-operation", call_sync)

    def should_migrate(vm, soap_action):
        from .distribution import CURRENT_EXECUTION

        execution = getattr(vm, "vinz", None) or CURRENT_EXECUTION.get()
        if execution is None:
            return True
        return execution.service.vinz.should_migrate(str(soap_action))

    should_migrate.needs_vm = True
    env.define_intrinsic("vinz-should-migrate", should_migrate)

    def parse_response(vm, body):
        """Unwrap a response envelope; signal faults as conditions.

        "The function arranges for this QName to be signaled as an
        error, thus integrating distributed error conditions into Vinz
        handling" (Section 3.7).
        """
        if not isinstance(body, dict):
            return body
        if "fault" in body:
            condition = GozerCondition(
                message=body.get("message", ""),
                condition_type="service-error",
                qname=body["fault"])
            vm.signal(condition, error_p=True)
        return body.get("result")

    parse_response.needs_vm = True
    env.define_intrinsic("parse-wsdl-response", parse_response)

    # -- the deflink macro itself ------------------------------------------

    def m_deflink(prefix, *options):
        if not isinstance(prefix, Symbol):
            raise CompileError("deflink needs a prefix symbol")
        namespace: Optional[str] = None
        port: Optional[str] = None
        static_sync = False
        i = 0
        opts = list(options)
        while i < len(opts):
            key = opts[i]
            if not isinstance(key, Keyword) or i + 1 >= len(opts):
                raise CompileError(f"deflink: bad option {key!r}")
            value = opts[i + 1]
            i += 2
            if key.name == "wsdl":
                namespace = str(value)
            elif key.name == "port":
                port = str(value)
            elif key.name == "sync":
                static_sync = bool(value)
            else:
                raise CompileError(f"deflink: unknown option :{key.name}")
        if namespace is None:
            raise CompileError("deflink needs :wsdl \"urn:...\"")
        wsdl = vinz.resolve_wsdl(namespace, port)
        forms = generate_link_forms(prefix.name, wsdl, static_sync)
        # un-bridgeable operations become compile-time-error macros:
        # "if and only if the workflow tried to invoke that operation, a
        # compile-time error will occur and the workflow will not be
        # loaded"
        for operation in wsdl.operations.values():
            if operation.bridgeable:
                continue
            _register_error_stub(env, prefix.name, wsdl, operation)
        return [_S("progn"), *forms, [_S("quote"), prefix]]

    env.define_macro(_S("deflink"), GozerMacro(m_deflink, "deflink"))


def _register_error_stub(env, prefix: str, wsdl: WsdlDocument,
                         operation: WsdlOperation) -> None:
    name = f"{prefix}-{operation.name}"

    def error_stub(*_args):
        raise CompileError(
            f"operation {wsdl.service}.{operation.name} cannot be "
            f"invoked from Gozer (deflink generated an error stub)")

    env.define_macro(_S(name), GozerMacro(error_stub, name))
    env.define_macro(_S(name + "-Method"), GozerMacro(error_stub,
                                                      name + "-Method"))


def _message_values(message: Any) -> Dict[str, Any]:
    if isinstance(message, ServiceMessage):
        return dict(message.values)
    if isinstance(message, dict):
        return dict(message)
    if message is None:
        return {}
    if isinstance(message, list):
        # a Gozer plist: (:name value :name2 value2 ...)
        from ..lang.symbols import Keyword, Symbol

        out: Dict[str, Any] = {}
        if len(message) % 2 != 0:
            raise GozerRuntimeError(
                f"service message plist needs key/value pairs: {message!r}")
        for i in range(0, len(message), 2):
            key = message[i]
            if isinstance(key, (Keyword, Symbol)):
                out[key.name] = message[i + 1]
            else:
                out[str(key)] = message[i + 1]
        return out
    raise GozerRuntimeError(f"bad service message: {message!r}")
