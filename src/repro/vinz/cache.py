"""The per-node fiber cache (paper Section 4.2).

"Reconstituting a fiber from its persisted state is still relatively
slow and so a cache of recently seen fibers is maintained in memory on
each instance.  Because Vinz executes no control over where a fiber
will be asked to run (leaving that in the hands of the message queue),
the cache is only somewhat effective.  Empirical measurements show
cache hit rates of about 18% and 66% for mutable and immutable data,
respectively."

The split the paper measures maps onto two caches:

* **mutable** — the fiber's continuation, re-versioned at every
  suspend; a hit requires this node to have run *that exact version*,
  so random queue placement keeps the rate low;
* **immutable** — per-task data that never changes after Start (the
  task's parameters/environment); a hit only requires this node to have
  seen *any* fiber of the task before, so the rate is much higher.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Generic, Hashable, Optional, Tuple, TypeVar

K = TypeVar("K", bound=Hashable)
V = TypeVar("V")

#: cache-miss sentinel: distinguishes "not cached" from "cached None".
#: A task whose immutable environment is legitimately ``None`` must be
#: a cache *hit* — treating it as a miss re-fetches from the store on
#: every delivery and skews the hit-rate statistics.
MISS = object()


class LruCache(Generic[K, V]):
    """A small LRU cache with hit/miss statistics."""

    #: class-level alias for callers: ``cache.get(k, LruCache.MISS)``
    MISS = MISS

    def __init__(self, capacity: int = 256):
        self.capacity = capacity
        self._data: "OrderedDict[K, V]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    def get(self, key: K, default: Any = None) -> Optional[V]:
        """The cached value, or ``default`` on a miss.  Pass
        :data:`MISS` as the default when cached ``None`` values must be
        distinguishable from absence."""
        if key in self._data:
            self._data.move_to_end(key)
            self.hits += 1
            return self._data[key]
        self.misses += 1
        return default

    def __contains__(self, key: K) -> bool:
        """Presence test; does not touch LRU order or statistics."""
        return key in self._data

    def put(self, key: K, value: V) -> None:
        self._data[key] = value
        self._data.move_to_end(key)
        while len(self._data) > self.capacity:
            self._data.popitem(last=False)

    def invalidate(self, key: K) -> None:
        self._data.pop(key, None)

    def clear(self) -> None:
        self._data.clear()

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def __len__(self) -> int:
        return len(self._data)


class FiberCache:
    """One node's in-memory cache of recently seen fibers.

    Keys: mutable entries by ``(fiber_id, version)``; immutable entries
    by ``task_id``.  The cluster wipes a node's memory on failure, which
    correctly loses the cache.
    """

    #: module-level miss sentinel, re-exported for callers
    MISS = MISS

    def __init__(self, mutable_capacity: int = 256,
                 immutable_capacity: int = 1024):
        self.mutable: LruCache[Tuple[str, int], Any] = LruCache(mutable_capacity)
        self.immutable: LruCache[str, Any] = LruCache(immutable_capacity)
        #: v2 snapshots only: continuations keyed by manifest state
        #: digest.  Content-addressed, so unlike the version-keyed
        #: mutable cache a hit needs only that this node restored *the
        #: same state bytes* before — a fiber suspending unchanged
        #: around a loop hits here without refetching or deserializing.
        #: (Content addressing also makes abort-eviction unnecessary:
        #: a digest always names the state it was cached from.)
        self.by_digest: LruCache[str, Any] = LruCache(mutable_capacity)

    def get_continuation(self, fiber_id: str, version: int,
                         default: Any = None) -> Optional[Any]:
        return self.mutable.get((fiber_id, version), default)

    def put_continuation(self, fiber_id: str, version: int, state: Any) -> None:
        self.mutable.put((fiber_id, version), state)

    def evict_continuation(self, fiber_id: str, version: int) -> None:
        """Drop a cached continuation (abort rollback: the version is
        being rolled back, so a retry re-reaching it must not resume
        from the aborted window's state)."""
        self.mutable.invalidate((fiber_id, version))

    def get_digest(self, hex_digest: str, default: Any = None) -> Optional[Any]:
        return self.by_digest.get(hex_digest, default)

    def put_digest(self, hex_digest: str, state: Any) -> None:
        self.by_digest.put(hex_digest, state)

    def get_task_env(self, task_id: str, default: Any = None) -> Optional[Any]:
        return self.immutable.get(task_id, default)

    def put_task_env(self, task_id: str, env: Any) -> None:
        self.immutable.put(task_id, env)

    @classmethod
    def for_node(cls, node, **kwargs) -> "FiberCache":
        """Get/create the cache living in a cluster node's memory."""
        cache = node.memory.get("fiber-cache")
        if cache is None:
            cache = cls(**kwargs)
            node.memory["fiber-cache"] = cache
        return cache
