"""Distribution primitives: fork-and-exec, join-process, for-each, parallel.

This module installs, into a workflow's runtime, the Gozer-visible face
of Vinz (paper Sections 3.4 and 3.5):

* ``fork-and-exec`` — clone the fiber, run a function in the child;
* ``join-process`` — suspend until another fiber/task terminates;
* ``for-each`` — the map step of map/reduce, spawn-limit throttled,
  optionally chunked for combined distributed + local parallelism;
* ``parallel`` — run each body form in its own fiber;
* ``deftaskvar`` and the ``^var^`` reader macro (Section 3.6).

The macros expand into ordinary Gozer code whose ``yield`` forms are
executed by the *fiber's own* flow of control — exactly the paper's
Listing 3 shape, generalized to a runtime loop so the spawn limit can
change dynamically.
"""

from __future__ import annotations

from typing import Any, List, Optional

from ..lang.errors import CompileError, ControlFlowSignal
from ..lang.macros import is_listform
from ..lang.symbols import Keyword, Symbol, gensym
from ..gvm.frames import GozerMacro

_S = Symbol


class VinzBreak(ControlFlowSignal):
    """The ``break`` handler action: terminate this fiber cleanly,
    returning nil to the parent (paper Section 3.7)."""


class VinzTerminateTask(ControlFlowSignal):
    """The ``terminate`` handler action: terminate the fiber *and* the
    whole task with an error status (paper Section 3.7)."""

    def __init__(self, reason: str = "terminated by handler"):
        super().__init__(reason)
        self.reason = reason


import contextvars

#: The fiber execution currently advancing on this thread of control.
#: Future bodies run on their own VM (and possibly their own thread),
#: but still belong to the fiber — the contextvar lets Vinz intrinsics
#: reach the execution from there (Section 3.2's automatic synchronous
#: fallback depends on it).
CURRENT_EXECUTION: contextvars.ContextVar = contextvars.ContextVar(
    "vinz-current-execution", default=None)


def _vinz(vm):
    execution = getattr(vm, "vinz", None)
    if execution is None:
        execution = CURRENT_EXECUTION.get()
    if execution is None:
        from ..lang.errors import GozerRuntimeError

        raise GozerRuntimeError(
            "distribution primitive used outside a Vinz workflow fiber")
    return execution


# ---------------------------------------------------------------------------
# intrinsics
# ---------------------------------------------------------------------------

def install_intrinsics(runtime) -> None:
    env = runtime.global_env

    def vinz_fork(vm, fn, args, notify):
        return _vinz(vm).fork(fn, list(args or []), bool(notify))

    vinz_fork.needs_vm = True
    env.define_intrinsic("vinz-fork", vinz_fork)

    def vinz_collect(vm, child_ids):
        return _vinz(vm).collect_results(vm, list(child_ids or []))

    vinz_collect.needs_vm = True
    env.define_intrinsic("vinz-collect", vinz_collect)

    def vinz_fork_chain(vm, fn, items):
        return _vinz(vm).fork_chain(fn, list(items or []))

    vinz_fork_chain.needs_vm = True
    env.define_intrinsic("vinz-fork-chain", vinz_fork_chain)

    def vinz_collect_chain(vm, group_id):
        return _vinz(vm).collect_chain(vm, group_id)

    vinz_collect_chain.needs_vm = True
    env.define_intrinsic("vinz-collect-chain", vinz_collect_chain)

    def vinz_auto_chunk_size(vm):
        return _vinz(vm).auto_chunk_size()

    vinz_auto_chunk_size.needs_vm = True
    env.define_intrinsic("vinz-auto-chunk-size", vinz_auto_chunk_size)

    def vinz_await(vm=None):
        return {"kind": "await"}

    vinz_await.needs_vm = True
    env.define_intrinsic("vinz-await", vinz_await)

    def vinz_join(vm, pid):
        return {"kind": "join", "target": pid}

    vinz_join.needs_vm = True
    env.define_intrinsic("vinz-join", vinz_join)

    def vinz_join_sync(vm, pid):
        return _vinz(vm).join_sync(pid)

    vinz_join_sync.needs_vm = True
    env.define_intrinsic("vinz-join-sync", vinz_join_sync)

    def vinz_sleep(vm, seconds):
        return {"kind": "sleep", "seconds": seconds}

    vinz_sleep.needs_vm = True
    env.define_intrinsic("vinz-sleep", vinz_sleep)

    def vinz_awake(vm, pid, *payload):
        return _vinz(vm).awake(pid, payload[0] if payload else None)

    vinz_awake.needs_vm = True
    env.define_intrinsic("vinz-awake", vinz_awake)

    def vinz_send_message(vm, pid, value):
        return _vinz(vm).send_fiber_message(pid, value)

    vinz_send_message.needs_vm = True
    env.define_intrinsic("vinz-send-message", vinz_send_message)

    def vinz_try_receive(vm):
        return _vinz(vm).try_receive()

    vinz_try_receive.needs_vm = True
    env.define_intrinsic("vinz-try-receive", vinz_try_receive)

    def vinz_receive(vm):
        return {"kind": "receive"}

    vinz_receive.needs_vm = True
    env.define_intrinsic("vinz-receive", vinz_receive)

    def vinz_spawn_limit(vm):
        return _vinz(vm).spawn_limit()

    vinz_spawn_limit.needs_vm = True
    env.define_intrinsic("vinz-spawn-limit", vinz_spawn_limit)

    def vinz_set_spawn_limit(vm, n):
        return _vinz(vm).set_spawn_limit(int(n))

    vinz_set_spawn_limit.needs_vm = True
    env.define_intrinsic("vinz-set-spawn-limit", vinz_set_spawn_limit)

    def vinz_auto_spawn_limit(vm):
        return _vinz(vm).auto_spawn_limit()

    vinz_auto_spawn_limit.needs_vm = True
    env.define_intrinsic("vinz-auto-spawn-limit", vinz_auto_spawn_limit)

    def vinz_current_fiber(vm):
        return _vinz(vm).fiber.id

    vinz_current_fiber.needs_vm = True
    env.define_intrinsic("vinz-current-fiber", vinz_current_fiber)

    def vinz_current_task(vm):
        return _vinz(vm).task.id

    vinz_current_task.needs_vm = True
    env.define_intrinsic("vinz-current-task", vinz_current_task)

    def vinz_break(vm, *_args):
        raise VinzBreak("break")

    vinz_break.needs_vm = True
    env.define_intrinsic("vinz-break", vinz_break)

    def vinz_terminate(vm, *reason):
        raise VinzTerminateTask(str(reason[0]) if reason else
                                "terminated by workflow")

    vinz_terminate.needs_vm = True
    env.define_intrinsic("vinz-terminate", vinz_terminate)

    def vinz_charge(vm, seconds):
        _vinz(vm).charge(float(seconds))
        return None

    vinz_charge.needs_vm = True
    env.define_intrinsic("charge", vinz_charge)

    def get_task_var(vm, name):
        return _vinz(vm).get_task_var(_taskvar_name(name))

    get_task_var.needs_vm = True
    env.define_intrinsic("get-task-var", get_task_var)

    def set_task_var(vm, name, value):
        return _vinz(vm).set_task_var(_taskvar_name(name), value)

    set_task_var.needs_vm = True
    env.define_intrinsic("set-task-var", set_task_var)


def _taskvar_name(name: Any) -> str:
    """Normalize ``^exit-flag^`` / ``exit-flag^`` / ``exit-flag``."""
    text = name.name if isinstance(name, Symbol) else str(name)
    return text.strip("^")


# ---------------------------------------------------------------------------
# the ^taskvar^ reader macro (paper Listing 5)
# ---------------------------------------------------------------------------

#: The reader macro from the paper's Listing 5, transliterated.  It is
#: installed by evaluating this source with the workflow's runtime, so
#: the mechanism (programmable reader + set-macro-character) is exactly
#: the paper's.
TASKVAR_READER_SOURCE = """
(set-macro-character #\\^
  (lambda (the-stream c)
    ;; ^foo^ -> (%get-task-var 'foo^)
    (let* ((var-name (read the-stream t nil t))
           (var-str  (symbol-name var-name)))
      (unless (ends-with-p var-str "^")
        (error "Task vars must be wrapped in ^"))
      (list '%get-task-var (list 'quote var-name))))
  t)  ;; non-terminating: ^ is a constituent inside the token
"""


# ---------------------------------------------------------------------------
# macros
# ---------------------------------------------------------------------------

def _parse_for_each_header(header: List[Any]):
    """(var in seq [:chunk-size k] [:strategy :chain])
    -> (var, seq_form, chunk_form, strategy)."""
    if not is_listform(header) or len(header) < 3 or \
            not isinstance(header[0], Symbol) or \
            not (isinstance(header[1], Symbol) and header[1].name == "in"):
        raise CompileError("for-each needs (for-each (var in seq) body...)",
                           header)
    var, _in, seq, *options = header
    chunk = None
    strategy = "awake"
    i = 0
    while i < len(options):
        opt = options[i]
        if isinstance(opt, Keyword) and opt.name == "chunk-size":
            chunk = options[i + 1]
            i += 2
        elif isinstance(opt, Keyword) and opt.name == "strategy":
            value = options[i + 1]
            strategy = value.name if isinstance(value, (Keyword, Symbol)) \
                else str(value)
            if strategy not in ("awake", "chain"):
                raise CompileError(
                    f"for-each: unknown strategy {strategy!r} "
                    "(awake or chain)", header)
            i += 2
        else:
            raise CompileError(f"for-each: unknown option {opt!r}", header)
    return var, seq, chunk, strategy


def _spawn_loop(items_form: Any, fn_form: Any) -> Any:
    """The Listing-3 pattern: spawn under the limit, yield per child.

    Expands to code that forks one notifying child per item, yielding
    (to be awakened by AwakeFiber) whenever the configured spawn limit
    is reached, then yields once per outstanding child and collects the
    results in item order.
    """
    items = gensym("fe-items")
    fn = gensym("fe-fn")
    n = gensym("fe-n")
    children = gensym("fe-children")
    i = gensym("fe-i")
    outstanding = gensym("fe-out")
    return [
        _S("let*"),
        [[items, [_S("to-list"), items_form]],
         [fn, fn_form],
         [n, [_S("length"), items]],
         [children, [_S("list")]],
         [i, 0],
         [outstanding, 0]],
        [_S("while"), [_S("<"), i, n],
         # throttle: never more than (spawn-limit) children in flight
         [_S("when"), [_S(">="), outstanding, [_S("%vinz-spawn-limit")]],
          [_S("yield"), [_S("%vinz-await")]],
          [_S("setq"), outstanding, [_S("-"), outstanding, 1]]],
         [_S("append!"), children,
          [_S("%vinz-fork"), fn, [_S("list"), [_S("nth"), i, items]], True]],
         [_S("setq"), outstanding, [_S("+"), outstanding, 1]],
         [_S("setq"), i, [_S("+"), i, 1]]],
        # drain: one yield per AwakeFiber still owed to us
        [_S("while"), [_S(">"), outstanding, 0],
         [_S("yield"), [_S("%vinz-await")]],
         [_S("setq"), outstanding, [_S("-"), outstanding, 1]]],
        [_S("%vinz-collect"), children],
    ]


def _chain_spawn(items_form: Any, fn_form: Any) -> Any:
    """Sibling-chaining expansion (Section 5 future work).

    The parent forks the whole chain in one intrinsic call and performs
    a *single* yield; the children launch each other and the last one
    sends the one AwakeFiber.
    """
    group = gensym("chain-group")
    return [
        _S("let"), [[group, [_S("%vinz-fork-chain"), fn_form,
                             [_S("to-list"), items_form]]]],
        [_S("yield"), [_S("%vinz-await")]],
        [_S("%vinz-collect-chain"), group],
    ]


def _m_for_each(*args):
    """(for-each (var in seq [:chunk-size k] [:strategy :chain]) body...)"""
    if not args:
        raise CompileError("for-each needs a header")
    header, *body = args
    var, seq, chunk, strategy = _parse_for_each_header(list(header))
    item_fn = [_S("lambda"), [var], *body]
    if strategy == "chain":
        if chunk is not None:
            raise CompileError("for-each: :chunk-size with :strategy "
                               ":chain is not supported")
        return [_S("if"), [_S("%is-fiber-thread")],
                _chain_spawn(seq, item_fn),
                _background_fallback(seq, item_fn, chunked=False)]
    if chunk is None:
        return [_S("if"), [_S("%is-fiber-thread")],
                _spawn_loop(seq, item_fn),
                # background threads cannot yield: fork a fiber to run
                # the loop and join it synchronously (paper Section 3.5)
                _background_fallback(seq, item_fn, chunked=False)]
    # chunked: each child fiber processes a whole chunk with *local*
    # parallelism (futures), giving the paper's "combination of
    # distributed and local concurrency".
    chunk_var = gensym("fe-chunk")
    chunk_fn = [
        _S("lambda"), [chunk_var],
        [_S("mapcar"), [_S("function"), _S("touch")],
         [_S("mapcar"),
          [_S("lambda"), [var], [_S("future-call"), item_fn, var]],
          chunk_var]],
    ]
    if isinstance(chunk, Keyword) and chunk.name == "auto":
        # dynamic chunk-size optimization (Section 5 future work: "The
        # for-each chunking function should also dynamically optimize
        # chunk sizes based on the processing time of the body"): run a
        # small probe of singleton items, then size the remaining
        # chunks from their measured durations.
        return [_S("if"), [_S("%is-fiber-thread")],
                _auto_chunk_spawn(seq, item_fn, chunk_fn),
                _background_fallback(seq, item_fn, chunked=False)]
    chunked_items = [_S("chunk-list"), seq, chunk]
    return [_S("if"), [_S("%is-fiber-thread")],
            [_S("apply"), [_S("function"), _S("append")],
             _spawn_loop(chunked_items, chunk_fn)],
            _background_fallback(chunked_items, chunk_fn, chunked=True)]


def _auto_chunk_spawn(seq_form: Any, item_fn: Any, chunk_fn: Any) -> Any:
    items = gensym("ac-items")
    probe_results = gensym("ac-probe")
    size = gensym("ac-size")
    chunk_results = gensym("ac-chunks")
    return [
        _S("let*"), [[items, [_S("to-list"), seq_form]]],
        [_S("if"), [_S("<="), [_S("length"), items], 3],
         # too few items for a probe to pay off: plain distribution
         _spawn_loop(items, item_fn),
         [_S("let*"),
          [[probe_results,
            _spawn_loop([_S("subseq"), items, 0, 2], item_fn)],
           # the probe children have finished: size from their timing
           [size, [_S("%vinz-auto-chunk-size")]],
           [chunk_results,
            [_S("apply"), [_S("function"), _S("append")],
             _spawn_loop([_S("chunk-list"), [_S("subseq"), items, 2],
                          size],
                         chunk_fn)]]],
          [_S("append"), probe_results, chunk_results]]],
    ]


def _background_fallback(seq_form: Any, fn_form: Any, chunked: bool) -> Any:
    """for-each on a future's thread: fork a fiber, join synchronously."""
    runner = [_S("lambda"), [_S("_ignored")],
              [_S("mapcar"), fn_form, [_S("to-list"), seq_form]]]
    fid = gensym("fe-bg")
    collect: Any = [_S("join-process"), fid]
    if chunked:
        collect = [_S("apply"), [_S("function"), _S("append")], collect]
    return [_S("let"), [[fid, [_S("%vinz-fork"), runner,
                               [_S("list"), None], False]]],
            collect]


def _m_parallel(*forms):
    """(parallel form1 form2 ...) — each form runs in its own fiber.

    Implemented on top of the for-each machinery, as the paper says the
    two macros are "conceptually layered on top of fork-and-exec": each
    body form becomes a one-argument thunk, and the child fiber calls
    its thunk directly (so a body form may itself yield).
    """
    var = gensym("p-thunk")
    thunk_list = [_S("list"),
                  *[[_S("lambda"), [gensym("pig")], form] for form in forms]]
    # the body is a direct call of the thunk held in `var` — direct so
    # the thunk body runs in the fiber's own flow of control (it may
    # contain nested for-each/service calls that yield)
    return _m_for_each([var, _S("in"), thunk_list], [var, None])


def install_macros(runtime, workflow_service) -> None:
    env = runtime.global_env

    env.define_macro(_S("for-each"), GozerMacro(_m_for_each, "for-each"))
    env.define_macro(_S("parallel"), GozerMacro(_m_parallel, "parallel"))

    def m_deftaskvar(name, *rest):
        if not isinstance(name, Symbol):
            raise CompileError("deftaskvar needs a symbol name")
        default = None
        doc = None
        for item in rest:
            if isinstance(item, str) and doc is None:
                doc = item
            else:
                default = item
        workflow_service.declare_task_var(_taskvar_name(name), default, doc)
        return [_S("quote"), name]

    env.define_macro(_S("deftaskvar"), GozerMacro(m_deftaskvar, "deftaskvar"))


# ---------------------------------------------------------------------------
# the Gozer-level prelude
# ---------------------------------------------------------------------------

PRELUDE_SOURCE = """
;; ------- Vinz prelude: distribution helpers visible to workflows -------

(defvar *vinz-force-sync* nil
  "When true, deflink-generated stubs make standard synchronous
requests instead of migrating the fiber (paper Section 3.2: the
programmer can, statically or dynamically, choose synchronous mode).")

(defun get-process-id ()
  "The id of the fiber executing this code (paper Listing 3)."
  (%vinz-current-fiber))

(defun get-task-id ()
  "The id of the task this fiber belongs to."
  (%vinz-current-task))

(defun fork-and-exec (func &key argument arguments)
  "Clone this fiber; run FUNC in the child (paper Section 3.4).
Returns the child fiber's id.  The child does NOT awaken the parent
on termination; use join-process to wait for it."
  (%vinz-fork func
              (cond (arguments arguments)
                    (argument (list argument))
                    (t (list)))
              nil))

(defun join-process (pid)
  "Suspend until fiber/task PID terminates; return its result
(paper Section 3.4: analogous to the Unix wait function).  From a
future's background thread, only that thread blocks."
  (if (%is-fiber-thread)
      (yield (%vinz-join pid))
      (%vinz-join-sync pid)))

(defun awake (pid &optional payload)
  "Send an AwakeFiber message to PID (paper Listing 3)."
  (%vinz-awake pid payload))

(defun send-message (pid value)
  "Deliver VALUE to fiber PID's mailbox (lightweight cross-process
communication, a Section 5 future-work extension).  Fire-and-forget:
messages to finished fibers are dropped."
  (%vinz-send-message pid value))

(defun receive-message ()
  "Pop the next mailbox message, suspending this fiber (consuming no
resources) until one arrives."
  (let ((m (%vinz-try-receive)))
    (if (eq m :%vinz-no-message)
        (yield (%vinz-receive))
        m)))

(defun collect-child-results (pids)
  "Collect the results of completed child fibers, in PIDS order."
  (%vinz-collect pids))

(defun funcall-direct (f)
  "Call a one-argument thunk with nil (a convenience for callbacks)."
  (funcall f nil))

(defun set-spawn-limit (n)
  "Dynamically adjust this task's spawn limit (paper Section 3.5)."
  (%vinz-set-spawn-limit n))

(defun get-spawn-limit ()
  (%vinz-spawn-limit))

(defun auto-spawn-limit ()
  "Hand this task's spawn limit to the adaptive AIMD governor
(repro.sched.governor): subsequent for-each/parallel iterations re-read
the governed limit, so fan-out width follows live cluster load.
Returns the currently governed limit."
  (%vinz-auto-spawn-limit))

(defun sleep (seconds)
  "Sleeping inside a fiber suspends it on the platform timer (zero
resources, recorded as a TimerFired in the task history); outside a
fiber the runtime clock advances instead — never the host clock."
  (if (%is-fiber-thread)
      (yield (%vinz-sleep seconds))
      (%clock-sleep seconds)))

(defun workflow-sleep (seconds)
  "Suspend this fiber for SECONDS of (simulated) time, consuming no
resources while suspended (the paper's zero-resource waiting)."
  (if (%is-fiber-thread)
      (yield (%vinz-sleep seconds))
      (sleep seconds)))

(defun compute (seconds)
  "Model SECONDS of computation (charges simulated processing time)."
  (%charge seconds))

(defun terminate-task (&optional reason)
  "Terminate the whole task with an error status."
  (%vinz-terminate reason))

(defun break-fiber ()
  "Terminate this fiber cleanly, returning nil to the parent."
  (%vinz-break))

(defun chunk-list (items size)
  "Split ITEMS into chunks of at most SIZE (for-each :chunk-size)."
  (let ((items (to-list items))
        (chunks (list))
        (current (list)))
    (dolist (item items)
      (append! current item)
      (when (>= (length current) size)
        (append! chunks current)
        (setq current (list))))
    (when (consp current)
      (append! chunks current))
    chunks))

(defun future-call (f x)
  "Run (F X) as a future (local parallelism inside a chunk)."
  (future (funcall f x)))
"""


def install(runtime, workflow_service) -> None:
    """Install everything Vinz adds to a workflow's runtime."""
    install_intrinsics(runtime)
    install_macros(runtime, workflow_service)
    runtime.eval_string(PRELUDE_SOURCE)
    # the ^taskvar^ reader macro, installed by running the paper's own
    # Listing 5 through the runtime
    runtime.eval_string(TASKVAR_READER_SOURCE)
