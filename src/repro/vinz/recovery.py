"""Orphan-fiber recovery: no crashed node may strand a suspended fiber.

Paper Section 4.2 motivates distributed locks with the single-runner
requirement — but locks create the dual hazard: a JVM that dies while
*holding* a fiber's lock leaves the fiber locked forever (NFS lock
files outlive their writers, and the paper calls the NFS behaviour
"completely opaque").  The lease layer in :mod:`repro.bluebox.locks`
bounds that ownership in virtual time; this module closes the loop:

* :class:`RecoveryScanner` watches outstanding leases (armed by the
  lock manager's ``lease_listener``, so it costs nothing while no lock
  is held) and expires the ones whose lease lapsed or whose owner node
  is dead — through the one public :meth:`LockManager.expire_lock`
  API, so the ordering invariant (zombie window aborted *before* the
  lock changes hands) holds for scanner recoveries too;
* for every reclaimed ``fiber/…`` lock it re-enqueues the fiber's last
  awaken message.  The message keeps its original id, so the
  ``processed_deliveries`` guard makes the re-awaken idempotent: if the
  fiber was in fact advanced (or another delivery of the same message
  is already looping on the queue), the duplicate is a no-op and the
  fiber is never run twice.

Together with the fencing check on fiber-state writes this yields the
two invariants the chaos campaign asserts jointly: **no fiber stays
stuck** (every orphaned lock is reclaimed within one lease TTL plus
one scan interval) and **no fiber is ever double-run**.
"""

from __future__ import annotations

import math
from typing import Any, Dict, Optional

#: slop added when scheduling a scan at a lease's expiry instant, so
#: the `now >= expires_at` comparison is decided by arithmetic, not by
#: floating-point luck
_EPSILON = 1e-6


class RecoveryScanner:
    """Detects lapsed/orphaned lock leases and re-awakens their fibers.

    Driven entirely off the cluster's discrete-event clock: a scan is
    armed when a lease is granted (or a node dies) and re-armed only
    while leases remain outstanding, so the kernel still drains to idle
    — the scanner never keeps the simulation alive on its own.
    """

    def __init__(self, vinz, interval: Optional[float] = None):
        self.vinz = vinz
        self.locks = vinz.locks
        ttl = self.locks.lease_ttl
        #: scan cadence while leases are outstanding; default half the
        #: TTL, so recovery latency is bounded by ``ttl + interval``
        self.interval = interval if interval is not None else \
            (ttl / 2.0 if ttl > 0 else 0.0)
        self.locks.lease_listener = self._on_lease_granted
        self._armed = False
        # statistics
        self.scans = 0
        self.locks_expired = 0
        self.fibers_reawakened = 0
        self.reawakens_skipped = 0
        self.max_recovery_latency = 0.0
        self.total_recovery_latency = 0.0

    # ------------------------------------------------------------------
    # arming
    # ------------------------------------------------------------------

    def _on_lease_granted(self, lease) -> None:
        if self.interval > 0:
            self._arm(self.interval)

    def on_node_failed(self, node_id: str) -> None:
        """A node just died: schedule a scan for the instant its locks'
        leases lapse (file backend — the coordinator's failure detector
        already expired them through :meth:`expire_node`)."""
        delay = self._next_delay()
        if delay is not None:
            self._arm(delay)

    def _arm(self, delay: float) -> None:
        if self._armed or self.interval <= 0:
            return
        self._armed = True
        self.vinz.cluster.kernel.schedule(delay, self._tick)

    def _next_delay(self) -> Optional[float]:
        """Seconds until the earliest outstanding lease expires, capped
        at the scan interval; None when nothing is outstanding."""
        leases = self.locks.outstanding_leases()
        if not leases or self.interval <= 0:
            return None
        earliest = min(lease.expires_at for lease in leases)
        if not math.isfinite(earliest):
            return None
        now = self.vinz.cluster.kernel.now
        return min(max(0.0, earliest - now) + _EPSILON, self.interval)

    # ------------------------------------------------------------------
    # scanning
    # ------------------------------------------------------------------

    def _tick(self) -> None:
        self._armed = False
        self.scans += 1
        cluster = self.vinz.cluster
        now = cluster.kernel.now
        for lease in self.locks.outstanding_leases():
            node_id = self.locks.owner_node(lease.owner)
            node = cluster.nodes.get(node_id) if node_id else None
            dead = node is not None and not node.alive
            if not dead and not self.locks.lease_expired(lease.key):
                continue
            reason = "owner-node-dead" if dead else "lease-lapsed"
            # the breaker aborts any zombie window before the entry is
            # removed — scanner recoveries obey the ordering invariant
            evicted = self.locks.expire_lock(lease.key, reason=reason)
            if evicted is None:
                continue
            self.locks_expired += 1
            latency = now - lease.renewed_at
            self.max_recovery_latency = max(self.max_recovery_latency,
                                            latency)
            self.total_recovery_latency += latency
            self.vinz.counters.incr("recovery.locks-expired")
            self.vinz.metrics.counter("recovery.locks_expired").inc()
            self.vinz.metrics.histogram("recovery.latency").observe(latency)
            cluster.trace.record(now, "lease-expired", key=lease.key,
                                 owner=evicted, reason=reason)
            tracer = cluster.tracer
            if tracer.enabled:
                span = tracer.begin("recovery.expire", kind="recovery",
                                    start=lease.renewed_at, key=lease.key,
                                    owner=evicted, reason=reason)
                tracer.end(span, end=now)
            if lease.key.startswith("fiber/"):
                self._reawaken(lease.key[len("fiber/"):], reason)
        delay = self._next_delay()
        if delay is not None:
            self._arm(delay)

    def _reawaken(self, fiber_id: str, reason: str) -> None:
        """Idempotently re-enqueue the orphaned fiber's awaken message.

        Same message id as the original delivery, so receivers treat it
        exactly like a queue-level duplicate: if the fiber already
        advanced under it, ``processed_deliveries`` makes it a no-op.
        """
        fiber = self.vinz.registry.fibers.get(fiber_id)
        if fiber is None or fiber.finished or fiber.last_message is None:
            self.reawakens_skipped += 1
            return
        cluster = self.vinz.cluster
        message = fiber.last_message
        cluster.queue.push_back(message, now=cluster.kernel.now)
        cluster.kernel.schedule(cluster.delivery_latency,
                                lambda s=message.service: cluster._kick(s))
        self.fibers_reawakened += 1
        self.vinz.counters.incr("recovery.reawakened")
        self.vinz.metrics.counter("recovery.reawakened").inc()
        cluster.trace.record(cluster.kernel.now, "fiber-reawakened",
                             fiber=fiber_id, msg=message.id, reason=reason)

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------

    def summary(self) -> Dict[str, Any]:
        return {
            "interval": self.interval,
            "scans": self.scans,
            "locks_expired": self.locks_expired,
            "fibers_reawakened": self.fibers_reawakened,
            "reawakens_skipped": self.reawakens_skipped,
            "max_recovery_latency": self.max_recovery_latency,
            "total_recovery_latency": self.total_recovery_latency,
        }
