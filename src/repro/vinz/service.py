"""The workflow-as-a-service wrapper: Table 1 of the paper.

"A distributed workflow begins as a Gozer program.  Vinz takes this
program and makes it available for running on the nodes of the BlueBox
cluster ... by wrapping the Gozer program up as a distinct BlueBox
service" (Section 3.1) publishing the standardized operations:

=============== ===========================================================
Start           Asynchronously begin execution of a workflow, returning
                its id.
Run             Synchronously execute a workflow, returning its id.
Call            Synchronously execute a workflow, returning its last
                result.
Terminate       Management operation to asynchronously terminate any
                running workflow.
RunFiber        Begin execution of a portion of the workflow on this
                instance.
AwakeFiber      Resume a suspended parent fiber when a child fiber has
                completed.
ResumeFromCall  Resume a suspended fiber when a remote operation
                completes.
JoinProcess     Resume a suspended fiber when any arbitrary process has
                completed.
=============== ===========================================================

The :class:`FiberExecution` object is what the Vinz intrinsics
(:mod:`repro.vinz.distribution`) talk to while a fiber advances on the
GVM.
"""

from __future__ import annotations

import pickle
from typing import Any, Dict, List, Optional

from ..bluebox.store import FencedWriteError, StoreError
from ..bluebox.messagequeue import (
    PRIORITY_LOW,
    PRIORITY_NORMAL,
    ReplyTo,
)
from ..bluebox.services import (
    Deferred,
    OperationContext,
    Requeue,
    Service,
    ServiceFault,
)
from ..gvm.conditions import GozerCondition, UnhandledConditionError
from ..gvm.frames import GozerFunction
from ..gvm.futures import enter_fiber_thread
from ..gvm.runtime import Runtime, VirtualClock
from ..gvm.vm import Done, Yielded
from ..history import recorder as hist
from ..lang.errors import GozerRuntimeError
from ..lang.symbols import Symbol, gensym_scope
from ..observe.metrics import exponential_buckets
from ..sched.governor import AUTO_SPAWN_LIMIT
from . import deflink as deflink_module
from . import distribution, handlers
from ..persistsnap.manifest import is_manifest
from .cache import FiberCache
from .persistence import FiberCodec
from .task import (
    COMPLETED,
    ERROR,
    FiberRecord,
    RUNNING,
    TERMINATED,
    TaskRecord,
)

_S = Symbol

#: histogram buckets for per-advancement GVM instruction counts
INSTRUCTION_BUCKETS = exponential_buckets(1, 2.0, 24)


class WorkflowService(Service):
    """One Gozer workflow program deployed as a BlueBox service.

    Configuration knobs (all per the paper):

    * ``spawn_limit`` — default concurrent-children throttle (§3.5);
      an int, or ``"auto"`` to delegate to the environment's AIMD
      spawn governor (repro.sched.governor);
    * ``awake_patience`` — how long an AwakeFiber holds its slot waiting
      for the fiber lock before requeueing itself (§5);
    * ``instruction_cost`` — simulated seconds charged per executed GVM
      instruction (models the fiber's compute);
    * ``codec`` — fiber persistence codec (§4.2);
    * ``cache`` — enable/disable the per-node fiber cache (§4.2).
    """

    #: fiber-lifecycle messages (RunFiber/AwakeFiber/ResumeFromCall/
    #: JoinProcess) retry effectively forever: the paper's AwakeFiber
    #: "places itself back on the message queue for later delivery"
    #: without a poison-message cap (Section 5).
    FIBER_MESSAGE_ATTEMPTS = 1_000_000

    def __init__(self, name: str, source: str, vinz_env,
                 main: str = "main",
                 spawn_limit: Any = 4,
                 awake_patience: float = 0.02,
                 requeue_delay: float = 0.02,
                 instruction_cost: float = 2e-6,
                 codec: str = "custom",
                 cache: bool = True,
                 cache_capacity: int = 256,
                 auto_chunk_target: float = 4.0,
                 snapshots: str = "v1",
                 snapshot_interval: int = 1):
        super().__init__(name, doc=f"Vinz workflow {name}")
        self.source = source
        self.vinz = vinz_env
        self.main_name = main
        self.default_spawn_limit = spawn_limit
        self.awake_patience = awake_patience
        self.requeue_delay = requeue_delay
        self.instruction_cost = instruction_cost
        self.cache_enabled = cache
        self.cache_capacity = cache_capacity
        #: target per-chunk duration for :chunk-size :auto (seconds)
        self.auto_chunk_target = auto_chunk_target
        self.codec = FiberCodec(codec)
        # blob-size histograms flow into the cluster's metrics registry
        self.codec.metrics = getattr(
            getattr(vinz_env, "cluster", None), "metrics", None)
        if snapshots not in ("v1", "v2"):
            raise ValueError(f"unknown snapshot format {snapshots!r}")
        self.snapshot_format = snapshots
        if int(snapshot_interval) < 1:
            raise ValueError("snapshot_interval must be >= 1")
        #: persist the continuation only every Nth suspension; the
        #: versions in between are rebuilt by history replay (requires
        #: ``history="on"`` on the environment to take effect)
        self.snapshot_interval = int(snapshot_interval)
        #: the incremental-snapshot pipeline (format v2); None in v1
        #: mode, where continuations persist as whole compressed blobs
        self.snapper = None
        if snapshots == "v2":
            from ..persistsnap import SnapshotPipeline

            self.snapper = SnapshotPipeline(
                self.codec, vinz_env.store, metrics=self.codec.metrics)
        self.runtime: Optional[Runtime] = None
        self.task_var_defaults: Dict[str, Any] = {}
        self.task_var_docs: Dict[str, str] = {}
        self.handler_definitions: Dict[str, handlers.HandlerDefinition] = {}
        #: Start/Run/Call dedup: queue-message id -> task id, making
        #: task creation idempotent under at-least-once delivery (a
        #: duplicated Start must not create a second task)
        self._task_by_message: Dict[int, str] = {}
        self._register_operations()

    # ------------------------------------------------------------------
    # deployment: load the program
    # ------------------------------------------------------------------

    def on_deployed(self, cluster) -> None:
        if self.runtime is not None:
            return  # already loaded (idempotent deploys)
        from ..gvm.futures import SynchronousFutureExecutor

        # the runtime clock is the cluster's virtual clock: a stdlib
        # (sleep n) outside a fiber advances simulated time, never the
        # host's, and (get-universal-time) reads virtual time
        self.runtime = Runtime(
            executor=self.vinz.future_executor_factory(),
            clock=VirtualClock(
                now_fn=lambda: self.vinz.cluster.kernel.now))
        # a scoped gensym counter makes compilation deterministic: the
        # same source always expands to the same gensym names, so
        # serialized fiber state is byte-identical across runs — the
        # replay guarantee of the fault-injection subsystem needs this
        with gensym_scope():
            distribution.install(self.runtime, self)
            handlers.install(self.runtime, self)
            deflink_module.install(self.runtime, self)
            self.runtime.eval_string(self.source)
        # register every loaded code object so the custom codec can
        # serialize fibers by reference (paper's custom format), and
        # every host function so any codec can pickle it by name
        for name, value in list(self.runtime.global_env.variables.items()):
            if isinstance(value, GozerFunction):
                self.codec.registry.register_tree(value.code)
            elif callable(value):
                self.codec.hosts.register(name.name, value)
        for macro in list(self.runtime.global_env.macros.values()):
            fn = getattr(macro, "function", None)
            if isinstance(fn, GozerFunction):
                self.codec.registry.register_tree(fn.code)

    def declare_task_var(self, name: str, default: Any, doc: Optional[str]) -> None:
        self.task_var_defaults[name] = default
        if doc:
            self.task_var_docs[name] = doc

    def define_handler(self, definition: "handlers.HandlerDefinition") -> None:
        self.handler_definitions[definition.name] = definition

    # ------------------------------------------------------------------
    # Table 1 operations
    # ------------------------------------------------------------------

    def _register_operations(self) -> None:
        self.add_operation(
            "Start", self.op_start,
            doc="Asynchronously begin execution of a workflow, returning its id.",
            parameters=["params"], output="task-id")
        self.add_operation(
            "Run", self.op_run,
            doc="Synchronously execute a workflow, returning its id.",
            parameters=["params"], output="task-id")
        self.add_operation(
            "Call", self.op_call,
            doc="Synchronously execute a workflow, returning its last result.",
            parameters=["params"], output="any")
        self.add_operation(
            "Terminate", self.op_terminate,
            doc="Management operation to asynchronously terminate any running workflow.",
            parameters=["task"], output="boolean")
        self.add_operation(
            "RunFiber", self.op_run_fiber,
            doc="Begin execution of a portion of the workflow on this instance.",
            parameters=["fiber"])
        self.add_operation(
            "AwakeFiber", self.op_awake_fiber,
            doc="Resume a suspended parent fiber when a child fiber has completed.",
            parameters=["fiber", "child"])
        self.add_operation(
            "ResumeFromCall", self.op_resume_from_call,
            doc="Resume a suspended fiber when a remote operation completes.",
            parameters=["fiber", "response"])
        self.add_operation(
            "JoinProcess", self.op_join_process,
            doc="Resume a suspended fiber when any arbitrary process has completed.",
            parameters=["fiber", "process", "result"])
        # extension operation (Section 5: "lighter-weight cross-process
        # communication mechanisms"): direct fiber-to-fiber messages
        self.add_operation(
            "DeliverMessage", self.op_deliver_message,
            doc="Deliver a message to a fiber's mailbox, resuming it "
                "if it is blocked in receive-message (extension).",
            parameters=["fiber", "value"])

    # -- lifecycle entry points -------------------------------------------

    def _create_task(self, ctx: OperationContext, params: Any,
                     deadline: Optional[float] = None) -> TaskRecord:
        registry = self.vinz.registry
        msg_id = getattr(ctx.message, "id", None)
        if msg_id is not None:
            existing_id = self._task_by_message.get(msg_id)
            existing = registry.tasks.get(existing_id) \
                if existing_id is not None else None
            if existing is not None:
                # duplicate delivery of the same creation message:
                # idempotently return the task it already created
                ctx.trace("task-start-duplicate", task=existing.id,
                          msg=msg_id)
                return existing
        task = registry.new_task(self.name, params, ctx.now)
        task.deadline = deadline
        fiber = registry.new_fiber(task, ctx.now)
        if msg_id is not None:
            self._task_by_message[msg_id] = task.id
        tracer = ctx.cluster.tracer
        if tracer.enabled:
            # the roots of this task's causal tree: the task span hangs
            # off whatever caused the Start (the creating op window),
            # and the initial fiber span hangs off the task span
            task.span_id = tracer.begin(
                f"task:{task.id}", kind="task", start=ctx.now,
                parent_id=getattr(ctx, "span_id", 0) or None,
                task=task.id, workflow=self.name)
            fiber.span_id = tracer.begin(
                f"fiber:{fiber.id}", kind="fiber", start=ctx.now,
                parent_id=task.span_id, task=task.id, fiber=fiber.id)
        # an aborted window (store fault, node death mid-window) must
        # not leak a half-created task: the retried Start makes a fresh
        # one, so discard these records and their monitoring effects
        monitored = [False]

        def undo_create() -> None:
            if msg_id is not None \
                    and self._task_by_message.get(msg_id) == task.id:
                del self._task_by_message[msg_id]
            if registry.discard_task(task.id) is not None:
                # the retried Start makes a *fresh* task id, so this
                # env blob would orphan in the backends while never
                # reaching the journal — take it back out
                self.vinz.store.rollback_value(
                    self._task_env_key(task.id), None)
                if monitored[0]:
                    self.vinz.monitor_task_discarded(task, ctx.now)
                if task.span_id:
                    tracer.end(fiber.span_id, end=ctx.now,
                               status="discarded")
                    tracer.end(task.span_id, end=ctx.now,
                               status="discarded")

        ctx.on_abort(undo_create)
        # persist the task's immutable environment once (Section 4.2's
        # immutable data: parameters + workflow identity)
        env_blob = self.codec.dumps({"workflow": self.name, "params": params})
        ctx.charge(self.vinz.store.write(self._task_env_key(task.id), env_blob))
        ctx.trace("task-start", task=task.id, fiber=fiber.id)
        self.vinz.monitor_task_started(task, ctx.now)
        monitored[0] = True
        recorder = self.vinz.history
        if recorder is not None:
            # window-buffered: an aborted Start discards this with the
            # task record itself
            recorder.record(ctx, task.id, hist.TASK_STARTED,
                            root=fiber.id, params=params,
                            workflow=self.name)
        ctx.send(self.name, "RunFiber", {"fiber": fiber.id, "task": task.id},
                 priority=self.vinz.message_priority(task, PRIORITY_NORMAL),
                 max_attempts=self.FIBER_MESSAGE_ATTEMPTS,
                 parent_span=fiber.span_id)
        return task

    def op_start(self, ctx: OperationContext, body: Dict[str, Any]) -> Any:
        task = self._create_task(ctx, body.get("params"),
                                 deadline=body.get("deadline"))
        return {"task": task.id}

    def op_run(self, ctx: OperationContext, body: Dict[str, Any]) -> Any:
        task = self._create_task(ctx, body.get("params"),
                                 deadline=body.get("deadline"))
        if task.finished:  # duplicate delivery after completion
            return {"task": task.id, "status": task.status}
        deferred = ctx.defer()
        task.completion_listeners.append(
            lambda t: deferred.resolve({"task": t.id, "status": t.status}))
        return deferred

    def op_call(self, ctx: OperationContext, body: Dict[str, Any]) -> Any:
        task = self._create_task(ctx, body.get("params"),
                                 deadline=body.get("deadline"))
        if task.finished:  # duplicate delivery after completion
            if task.status == COMPLETED:
                return task.result
            raise ServiceFault(self.wsdl.fault_qname("WorkflowFailed"),
                               task.error or task.status)
        deferred = ctx.defer()

        def finish(t: TaskRecord) -> None:
            if t.status == COMPLETED:
                deferred.resolve(t.result)
            else:
                deferred.fail(self.wsdl.fault_qname("WorkflowFailed"),
                              t.error or t.status)

        task.completion_listeners.append(finish)
        return deferred

    def op_terminate(self, ctx: OperationContext, body: Dict[str, Any]) -> Any:
        task_id = body["task"]
        registry = self.vinz.registry
        task = registry.tasks.get(task_id)
        if task is None:
            raise ServiceFault(self.wsdl.fault_qname("NoSuchTask"), task_id)
        if not task.finished:
            self._finish_task(ctx, task, TERMINATED,
                              error="terminated by management operation")
            ctx.trace("task-terminate", task=task.id)
        return True

    def _finish_task(self, ctx: OperationContext, task: TaskRecord,
                     status: str, result: Any = None,
                     error: Optional[str] = None) -> None:
        """Finish a task and sweep its unfinished fibers.

        Fibers still queued will notice ``task.finished`` when their
        message arrives; suspended fibers that would otherwise wait
        forever (e.g. a parent awaiting AwakeFiber) are terminated here
        and their persisted state reclaimed.
        """
        registry = self.vinz.registry
        registry.finish_task(task, status, ctx.now, result=result, error=error)
        self.vinz.monitor_task_finished(task, ctx.now)
        for fiber in registry.fibers_of(task.id):
            if not fiber.finished:
                registry.finish_fiber(fiber, TERMINATED, ctx.now)
                self._reclaim(ctx, self._state_key(fiber.id),
                              self._thunk_key(fiber.id))
                self.vinz.monitor_fiber_finished(fiber, ctx.now)
                self._notify_fiber_waiters(ctx, fiber)
        waiters, task.join_waiters = task.join_waiters, []
        for waiter in waiters:
            ctx.send(self.name, "JoinProcess",
                     {"fiber": waiter, "process": task.id,
                      "result": task.result},
                     max_attempts=self.FIBER_MESSAGE_ATTEMPTS)

    # -- fiber advancement --------------------------------------------------

    def op_run_fiber(self, ctx: OperationContext, body: Dict[str, Any]) -> Any:
        return self._advance(ctx, body["fiber"], resume=False, value=None,
                             patience=self.awake_patience)

    def op_awake_fiber(self, ctx: OperationContext, body: Dict[str, Any]) -> Any:
        return self._advance(ctx, body["fiber"], resume=True,
                             value={"child": body.get("child"),
                                    "result": body.get("result")},
                             patience=self.awake_patience)

    def op_resume_from_call(self, ctx: OperationContext,
                            body: Dict[str, Any]) -> Any:
        if "soap_action" in body and "sent_at" in body:
            # feed the adaptive-migration learner (Section 5 future
            # work) with the observed round-trip time
            self.vinz.record_service_latency(
                body["soap_action"], ctx.now - body["sent_at"])
        return self._advance(ctx, body["fiber"], resume=True,
                             value=body.get("response"),
                             patience=self.awake_patience)

    def op_join_process(self, ctx: OperationContext,
                        body: Dict[str, Any]) -> Any:
        return self._advance(ctx, body["fiber"], resume=True,
                             value=body.get("result"),
                             patience=self.awake_patience)

    #: resume-value sentinel: "pop the next mailbox entry under the
    #: fiber lock" — keeps delivery idempotent across requeues
    _MAILBOX = "%vinz-mailbox%"

    def op_deliver_message(self, ctx: OperationContext,
                           body: Dict[str, Any]) -> Any:
        fiber = self.vinz.registry.fibers.get(body["fiber"])
        if fiber is None:
            raise ServiceFault(self.wsdl.fault_qname("NoSuchFiber"),
                               body["fiber"])
        if fiber.finished:
            return None  # messages to dead fibers are dropped
        # idempotent append: a re-delivered message (receiver was
        # locked on the first attempt) must not duplicate the value
        if ctx.message.id not in fiber.seen_deliveries:
            fiber.seen_deliveries.add(ctx.message.id)
            fiber.mailbox.append(body.get("value"))
            self.vinz.counters.incr("mailbox.delivered")
            recorder = self.vinz.history
            if recorder is not None:
                # audit flavour: the fiber *consumes* the value via a
                # later resume or try-receive event, so replay skips
                # appends (the "append" key marks them)
                recorder.record(ctx, fiber.task_id, hist.MESSAGE_DELIVERED,
                                fiber=fiber.id, value=body.get("value"),
                                append=True)
        if fiber.waiting_on == "receive":
            # wake the receiver; the value is popped under the lock so
            # a requeued wake-up cannot double-deliver
            return self._advance(ctx, fiber.id, resume=True,
                                 value=self._MAILBOX,
                                 patience=self.awake_patience)
        return None

    def _advance(self, ctx: OperationContext, fiber_id: str, resume: bool,
                 value: Any, patience: float) -> Any:
        registry = self.vinz.registry
        fiber = registry.fibers.get(fiber_id)
        if fiber is None:
            raise ServiceFault(self.wsdl.fault_qname("NoSuchFiber"), fiber_id)
        task = registry.task(fiber.task_id)

        # a terminated task's fibers "notice that the task has
        # terminated in short order and also terminate" (Section 3.7)
        if task.finished:
            if not fiber.finished:
                registry.finish_fiber(fiber, TERMINATED, ctx.now)
                self.vinz.monitor_fiber_finished(fiber, ctx.now)
            ctx.trace("fiber-skip-terminated", task=task.id, fiber=fiber.id)
            return None
        if fiber.finished:
            return None
        # idempotence under at-least-once delivery: a duplicated
        # message whose first delivery already advanced the fiber must
        # not advance it again (aborted windows discard the marker, so
        # crash redeliveries still replay)
        msg_id = ctx.message.id
        if msg_id in fiber.processed_deliveries:
            ctx.trace("fiber-skip-duplicate", task=task.id, fiber=fiber.id,
                      msg=msg_id)
            return None

        # single-runner guarantee (Section 4.2): one node at a time.
        # The lock is held for the operation's entire *simulated*
        # processing window (released by a completion hook), which is
        # what produces the Section 5 AwakeFiber contention: siblings
        # delivered during the window find the lock held.
        locks = self.vinz.locks
        owner = f"{ctx.instance.id}#{ctx.message.id}"
        lock_key = f"fiber/{fiber.id}"
        if not locks.try_acquire(lock_key, owner):
            # hold the slot for the patience window, then give up and
            # requeue (the Section 5 burstiness behaviour)
            ctx.charge(patience)
            self.vinz.counters.incr("awake.lock-wait")
            return Requeue(delay=self.requeue_delay)
        #: the message that advances a fiber is its recovery handle: if
        #: this window's node dies holding the lock, the scanner
        #: re-enqueues exactly this Message (same id), so the
        #: processed_deliveries guard makes the re-awaken idempotent
        fiber.last_message = ctx.message

        def release_or_abandon() -> None:
            if getattr(ctx, "node_failed", False):
                # a dead JVM cannot unlink its NFS lock file: the entry
                # (and its lease) survive the crash — recovery is the
                # lease scanner's job, not a perfect-failure-detector
                # cheat
                locks.abandon(lock_key, owner)
            else:
                locks.release(lock_key, owner)

        ctx.on_complete(lambda: locks.release(lock_key, owner))
        ctx.on_abort(release_or_abandon)
        # fencing: this window's writes carry the grant's token; a
        # zombie whose lease was stolen mid-window fails fence_valid
        # and aborts instead of clobbering the new owner's state
        ctx.fence = (lock_key, owner, locks.fencing_token(lock_key))
        fiber.processed_deliveries.add(msg_id)
        ctx.on_abort(lambda: fiber.processed_deliveries.discard(msg_id))
        # single-runner audit trail: every *committed* advancement
        # window, with its virtual-time extent — campaigns assert that
        # no fiber's windows ever overlap and no message commits twice
        window_start = ctx.now
        ctx.on_complete(lambda: self.vinz.runner_audit.append(
            (fiber.id, msg_id, window_start, ctx.now)))
        injector = getattr(self.vinz, "injector", None)
        if injector is not None:
            # crash-on-lock faults fire here: the node dies the instant
            # it takes the fiber lock, before any state is touched
            injector.on_lock_acquired(ctx, fiber)
            if getattr(ctx, "node_failed", False):
                return None  # died taking the lock; window already aborted
        return self._advance_locked(ctx, task, fiber, resume, value)

    # -- the core: load state, run the GVM, act on the outcome ------------

    def _advance_locked(self, ctx: OperationContext, task: TaskRecord,
                        fiber: FiberRecord, resume: bool, value: Any) -> Any:
        registry = self.vinz.registry
        # Crash atomicity: if the node dies before this operation's
        # simulated window ends, the redelivered message must replay
        # against the *pre-window* fiber state (real Vinz gets this from
        # JMS transactions: state write + sends + ack commit together).
        ctx.on_abort(self._make_abort_undo(ctx, task, fiber))
        fiber.status = RUNNING
        if task.status != RUNNING:
            task.status = RUNNING

        metrics = ctx.cluster.metrics
        if metrics.enabled:
            # enqueue -> actual advancement: the end-to-end resume lag
            # a suspended fiber experiences (queue wait + lock waits)
            metrics.histogram("fiber.resume_latency").observe(
                ctx.now - ctx.message.enqueued_at)

        cache = self._node_cache(ctx)
        self._touch_task_env(ctx, cache, task)

        vm = self.runtime.new_vm(allow_yield=True)
        execution = FiberExecution(self, ctx, task, fiber, vm)
        vm.vinz = execution
        if metrics.enabled:
            vm.profile_sink = lambda n: metrics.histogram(
                "gvm.run_instructions",
                buckets=INSTRUCTION_BUCKETS).observe(n)
        # make the execution reachable from future bodies too (they run
        # on their own VM): Section 3.2's sync fallback needs it
        cv_token = distribution.CURRENT_EXECUTION.set(execution)
        enter_fiber_thread()

        fiber.last_node = ctx.node.id
        waited = fiber.waiting_on
        if resume and value == self._MAILBOX:
            if not fiber.mailbox:
                # a duplicate wake-up raced an earlier consumption:
                # nothing to deliver, leave the fiber suspended
                return None
            value = fiber.mailbox.pop(0)
            fiber.waiting_on = None
        recorder = self.vinz.history
        if recorder is not None and resume:
            # what resumed the fiber, with the exact value fed back in:
            # the event replay re-delivers at this suspension point
            recorder.record(ctx, task.id, hist.resume_kind_for(waited),
                            fiber=fiber.id, value=value)
        ctx.trace("fiber-run", task=task.id, fiber=fiber.id,
                  resume=resume, version=fiber.version)
        charged_before = ctx.charged
        instructions_before = vm.instruction_count
        tracer = ctx.cluster.tracer
        prev_span = ctx.span_id
        run_span = 0
        if tracer.enabled:
            # kernel time is frozen while a handler runs; sub-window
            # span boundaries use the charge model's virtual "now"
            run_span = tracer.begin(
                f"run:{fiber.id}", kind="fiber-run",
                start=ctx.now + charged_before,
                parent_id=prev_span or (fiber.span_id or None),
                task=task.id, fiber=fiber.id, resume=resume,
                version=fiber.version, node=ctx.node.id)
            # sends and persistence during this advancement parent here
            ctx.span_id = run_span
        try:
            if not resume:
                outcome = self._start_fresh(ctx, vm, task, fiber)
            else:
                continuation = self._load_continuation(ctx, cache, fiber)
                outcome = vm.resume(continuation, value)
            if isinstance(outcome, Done):
                self._fiber_completed(ctx, task, fiber, outcome.value)
                return None
            assert isinstance(outcome, Yielded)
            self._fiber_suspended(ctx, cache, task, fiber, outcome)
            return None
        except (distribution.VinzBreak,):
            self._fiber_completed(ctx, task, fiber, None)
            return None
        except distribution.VinzTerminateTask as term:
            self._fiber_failed(ctx, task, fiber, term.reason,
                               terminate_task=True)
            return None
        except UnhandledConditionError as exc:
            # An unhandled error in the *main* fiber fails the task; a
            # child fiber's failure is recorded on the child and
            # surfaces to the parent as a `child-fiber-error` condition
            # when it collects results — giving the parent's handlers a
            # chance (Section 3.7).
            self._fiber_failed(ctx, task, fiber, str(exc.condition),
                               terminate_task=(fiber.parent_id is None))
            return None
        except ServiceFault as fault:
            # a platform-level problem surfaced while advancing the
            # fiber (no main function, bad join target, ...): the task
            # fails rather than hanging its callers
            self._fiber_failed(ctx, task, fiber,
                               f"{fault.qname}: {fault.message}",
                               terminate_task=True)
            return None
        finally:
            vm.vinz = None
            distribution.CURRENT_EXECUTION.reset(cv_token)
            ctx.charge((vm.instruction_count - instructions_before)
                       * self.instruction_cost)
            fiber.total_charged += ctx.charged - charged_before
            if run_span:
                ctx.span_id = prev_span
                tracer.end(run_span, end=ctx.now + ctx.charged,
                           instructions=(vm.instruction_count
                                         - instructions_before))

    def _affinity_for(self, fiber: FiberRecord):
        """Placement hint for a message that will run ``fiber`` next.

        Under the "affinity" policy (the paper's Section 5 locality
        future-work item), resumes prefer the node whose fiber cache is
        warm; under "balanced" the queue alone decides, as in the
        paper's production system.
        """
        if self.vinz.placement == "affinity":
            return fiber.last_node
        return None

    def _make_abort_undo(self, ctx: OperationContext, task: TaskRecord,
                         fiber: FiberRecord):
        """Build the state-rollback hook for node death mid-window."""
        store = self.vinz.store
        state_key = self._state_key(fiber.id)
        prev = dict(
            version=fiber.version,
            last_persisted_version=fiber.last_persisted_version,
            fiber_status=fiber.status,
            waiting_on=fiber.waiting_on,
            fiber_finished_at=fiber.finished_at,
            fiber_result=fiber.result,
            fiber_error=fiber.error,
            task_status=task.status,
            task_finished_at=task.finished_at,
            task_result=task.result,
            blob=store.snapshot_value(state_key),
            thunk=store.snapshot_value(self._thunk_key(fiber.id)),
        )

        def undo():
            # versions persisted inside the aborted window may sit in
            # this node's fiber cache; a retry re-reaching the same
            # version number must not resume from the aborted state
            # (the group-commit abort path aborts *after* the handler
            # finished, so the cache insert has already happened)
            cache = self._node_cache(ctx)
            if cache is not None:
                for version in range(prev["version"] + 1,
                                     fiber.version + 1):
                    cache.evict_continuation(fiber.id, version)
            fiber.version = prev["version"]
            fiber.last_persisted_version = prev["last_persisted_version"]
            fiber.status = prev["fiber_status"]
            fiber.waiting_on = prev["waiting_on"]
            fiber.finished_at = prev["fiber_finished_at"]
            fiber.result = prev["fiber_result"]
            fiber.error = prev["fiber_error"]
            task.status = prev["task_status"]
            task.finished_at = prev["task_finished_at"]
            task.result = prev["task_result"]
            # rollback_value (not restore_value): a journaled store
            # also scrubs the key from its uncommitted batch, so the
            # rolled-back write can never be replayed after a crash
            store.rollback_value(state_key, prev["blob"])
            store.rollback_value(self._thunk_key(fiber.id), prev["thunk"])

        return undo

    def _start_fresh(self, ctx: OperationContext, vm, task: TaskRecord,
                     fiber: FiberRecord):
        if fiber.parent_id is None:
            main = self.runtime.global_env.lookup_or(_S(self.main_name))
            if not isinstance(main, GozerFunction):
                raise ServiceFault(
                    self.wsdl.fault_qname("NoMainFunction"),
                    f"workflow {self.name} defines no ({self.main_name} params)")
            return self._run_top_call(vm, main, [task.params])
        # child fiber: load and run its start thunk (the cloned state)
        tracer = ctx.cluster.tracer
        vstart = ctx.now + ctx.charged
        blob = self.vinz.store.read(self._thunk_key(fiber.id))
        ctx.charge(self.vinz.store.cost(len(blob)))
        fn, args = self.codec.loads(blob, fiber_id=fiber.id)
        if tracer.enabled:
            span = tracer.begin(
                "persist.decode", kind="persistence", start=vstart,
                parent_id=ctx.span_id or None, fiber=fiber.id,
                what="thunk", bytes=len(blob))
            tracer.end(span, end=ctx.now + ctx.charged)
        return self._run_top_call(vm, fn, list(args))

    @staticmethod
    def _run_top_call(vm, fn: GozerFunction, args: List[Any]):
        """Run (fn args...) as the fiber's top-level flow of control."""
        frame = vm._frame_for_call(fn, args)
        return vm._run_top(frame=frame)

    # -- outcome handling ------------------------------------------------------

    def _fiber_completed(self, ctx: OperationContext, task: TaskRecord,
                         fiber: FiberRecord, result: Any) -> None:
        registry = self.vinz.registry
        recorder = self.vinz.history
        if recorder is not None:
            recorder.record(ctx, task.id, hist.FIBER_COMPLETED,
                            fiber=fiber.id, result=result)
        registry.finish_fiber(fiber, COMPLETED, ctx.now, result=result)
        self._reclaim(ctx, self._state_key(fiber.id),
                      self._thunk_key(fiber.id))
        ctx.trace("fiber-complete", task=task.id, fiber=fiber.id)
        self.vinz.monitor_fiber_finished(fiber, ctx.now)
        self._notify_fiber_waiters(ctx, fiber)
        if fiber.chain_group is not None:
            self._advance_chain(ctx, task, fiber)
        elif fiber.notify_parent and fiber.parent_id is not None:
            # "the fibers created by these macros do [notify their
            # parent]" — as a low-priority AwakeFiber (Section 5)
            parent = self.vinz.registry.fibers.get(fiber.parent_id)
            ctx.send(self.name, "AwakeFiber",
                     {"fiber": fiber.parent_id, "child": fiber.id},
                     priority=self.vinz.message_priority(task, PRIORITY_LOW),
                     max_attempts=self.FIBER_MESSAGE_ATTEMPTS,
                     affinity=self._affinity_for(parent) if parent else None)
        if fiber.parent_id is None and not task.finished:
            self._finish_task(ctx, task, COMPLETED, result=result)
            ctx.trace("task-complete", task=task.id)

    def _advance_chain(self, ctx: OperationContext, task: TaskRecord,
                       fiber: FiberRecord) -> None:
        """Sibling chaining (Section 5 future work): a finished chain
        child launches the next pending sibling itself; only the last
        one awakens the parent."""
        group = task.chain_groups.get(fiber.chain_group)
        if group is None:  # pragma: no cover - group swept with task
            return
        if group["pending"]:
            next_child = group["pending"].pop(0)
            next_record = self.vinz.registry.fibers.get(next_child)
            ctx.send(self.name, "RunFiber",
                     {"fiber": next_child, "task": task.id},
                     priority=self.vinz.message_priority(task, PRIORITY_NORMAL),
                     max_attempts=self.FIBER_MESSAGE_ATTEMPTS,
                     parent_span=(next_record.span_id if next_record
                                  else None))
            ctx.trace("chain-next", task=task.id, fiber=fiber.id,
                      child=next_child)
        group["remaining"] -= 1
        if group["remaining"] <= 0:
            parent = self.vinz.registry.fibers.get(group["parent"])
            ctx.send(self.name, "AwakeFiber",
                     {"fiber": group["parent"], "child": fiber.id},
                     priority=self.vinz.message_priority(task, PRIORITY_LOW),
                     max_attempts=self.FIBER_MESSAGE_ATTEMPTS,
                     affinity=self._affinity_for(parent) if parent else None)

    def _fiber_failed(self, ctx: OperationContext, task: TaskRecord,
                      fiber: FiberRecord, error: str,
                      terminate_task: bool) -> None:
        registry = self.vinz.registry
        recorder = self.vinz.history
        if recorder is not None:
            # dead-letter handling arrives on an out-of-band context:
            # the recorder commits those immediately (no window)
            recorder.record(ctx, task.id, hist.FIBER_FAILED,
                            fiber=fiber.id, error=error)
        registry.finish_fiber(fiber, ERROR, ctx.now, error=error)
        self._reclaim(ctx, self._state_key(fiber.id))
        ctx.trace("fiber-error", task=task.id, fiber=fiber.id, error=error)
        self.vinz.monitor_fiber_finished(fiber, ctx.now)
        self._notify_fiber_waiters(ctx, fiber)
        if fiber.chain_group is not None:
            self._advance_chain(ctx, task, fiber)
        elif fiber.notify_parent and fiber.parent_id is not None:
            parent = self.vinz.registry.fibers.get(fiber.parent_id)
            ctx.send(self.name, "AwakeFiber",
                     {"fiber": fiber.parent_id, "child": fiber.id},
                     priority=PRIORITY_LOW,
                     max_attempts=self.FIBER_MESSAGE_ATTEMPTS,
                     affinity=self._affinity_for(parent) if parent else None)
        if terminate_task and not task.finished:
            self._finish_task(ctx, task, ERROR, error=error)
            ctx.trace("task-error", task=task.id, error=error)

    def _fiber_suspended(self, ctx: OperationContext, cache, task: TaskRecord,
                         fiber: FiberRecord, outcome: Yielded) -> None:
        descriptor = outcome.value if isinstance(outcome.value, dict) else \
            {"kind": "await"}
        kind = descriptor.get("kind", "await")
        fiber.waiting_on = kind
        self._persist_continuation(ctx, cache, fiber, outcome.continuation)
        ctx.trace("fiber-suspend", task=task.id, fiber=fiber.id, why=kind,
                  version=fiber.version)
        recorder = self.vinz.history
        if recorder is not None:
            recorder.record(
                ctx, task.id, hist.FIBER_SUSPENDED, fiber=fiber.id,
                why=kind, version=fiber.version,
                snapshot=(fiber.last_persisted_version == fiber.version))
            if kind == "service-call":
                recorder.record(ctx, task.id, hist.SERVICE_REQUESTED,
                                fiber=fiber.id,
                                soap_action=descriptor.get("soap_action"))

        if kind == "await":
            pass  # an AwakeFiber from a child will resume us
        elif kind == "receive":
            if fiber.mailbox:
                # a message arrived while we were still running (its
                # DeliverMessage found us locked): wake ourselves; the
                # sentinel pops the mailbox under the lock
                ctx.send(self.name, "JoinProcess",
                         {"fiber": fiber.id, "result": self._MAILBOX},
                         max_attempts=self.FIBER_MESSAGE_ATTEMPTS,
                         affinity=self._affinity_for(fiber))
            # otherwise the next DeliverMessage resumes us
        elif kind == "service-call":
            self._send_service_request(ctx, fiber, descriptor)
        elif kind == "join":
            self._register_join(ctx, fiber, descriptor["target"])
        elif kind == "sleep":
            seconds = float(descriptor.get("seconds", 0.0))
            ctx.send_later(seconds, self.name, "JoinProcess",
                           {"fiber": fiber.id, "result": None},
                           affinity=self._affinity_for(fiber))
        else:
            raise ServiceFault(self.wsdl.fault_qname("BadYield"),
                               f"unknown yield descriptor {kind!r}")

    def _send_service_request(self, ctx: OperationContext, fiber: FiberRecord,
                              descriptor: Dict[str, Any]) -> None:
        service_name, operation = self.vinz.resolve_soap_action(
            descriptor["soap_action"])
        ctx.trace("service-request", task=fiber.task_id, fiber=fiber.id,
                  service=service_name, operation=operation)
        ctx.send(service_name, operation, dict(descriptor.get("values") or {}),
                 reply_to=ReplyTo(service=self.name,
                                  operation="ResumeFromCall",
                                  extra={"fiber": fiber.id,
                                         "soap_action": descriptor["soap_action"],
                                         "sent_at": ctx.now},
                                  affinity=self._affinity_for(fiber)),
                 max_attempts=self.FIBER_MESSAGE_ATTEMPTS)

    def _register_join(self, ctx: OperationContext, fiber: FiberRecord,
                       target: str) -> None:
        registry = self.vinz.registry
        if target in registry.fibers:
            target_fiber = registry.fibers[target]
            if target_fiber.finished:
                ctx.send(self.name, "JoinProcess",
                         {"fiber": fiber.id, "process": target,
                          "result": target_fiber.result},
                         max_attempts=self.FIBER_MESSAGE_ATTEMPTS)
            elif fiber.id not in target_fiber.join_waiters:
                # idempotent: an aborted-window replay must not register
                # the waiter twice
                target_fiber.join_waiters.append(fiber.id)
        elif target in registry.tasks:
            target_task = registry.tasks[target]
            if target_task.finished:
                ctx.send(self.name, "JoinProcess",
                         {"fiber": fiber.id, "process": target,
                          "result": target_task.result},
                         max_attempts=self.FIBER_MESSAGE_ATTEMPTS)
            elif fiber.id not in target_task.join_waiters:
                target_task.join_waiters.append(fiber.id)
        else:
            raise ServiceFault(self.wsdl.fault_qname("NoSuchProcess"), target)

    def _notify_fiber_waiters(self, ctx: OperationContext,
                              fiber: FiberRecord) -> None:
        waiters, fiber.join_waiters = fiber.join_waiters, []
        for waiter in waiters:
            waiting_fiber = self.vinz.registry.fibers.get(waiter)
            ctx.send(self.name, "JoinProcess",
                     {"fiber": waiter, "process": fiber.id,
                      "result": fiber.result},
                     max_attempts=self.FIBER_MESSAGE_ATTEMPTS,
                     affinity=(self._affinity_for(waiting_fiber)
                               if waiting_fiber else None))

    # -- persistence and the fiber cache -----------------------------------

    def _node_cache(self, ctx: OperationContext) -> Optional[FiberCache]:
        if not self.cache_enabled:
            return None
        return FiberCache.for_node(ctx.node,
                                   mutable_capacity=self.cache_capacity,
                                   immutable_capacity=4 * self.cache_capacity)

    def _touch_task_env(self, ctx: OperationContext,
                        cache: Optional[FiberCache],
                        task: TaskRecord) -> None:
        """Load the task's immutable environment (cached per node)."""
        if cache is not None:
            # MISS sentinel: a legitimately-None environment must count
            # as a hit, not force a store re-read on every delivery
            env = cache.get_task_env(task.id, FiberCache.MISS)
            if env is not FiberCache.MISS:
                self.vinz.counters.incr("cache.immutable.hit")
                return
            self.vinz.counters.incr("cache.immutable.miss")
        key = self._task_env_key(task.id)
        if self.vinz.store.exists(key):
            tracer = ctx.cluster.tracer
            vstart = ctx.now + ctx.charged
            blob = self.vinz.store.read(key)
            ctx.charge(self.vinz.store.cost(len(blob)))
            env = self.codec.loads(blob)
            if tracer.enabled:
                span = tracer.begin(
                    "persist.decode", kind="persistence", start=vstart,
                    parent_id=ctx.span_id or None, task=task.id,
                    what="task-env", bytes=len(blob))
                tracer.end(span, end=ctx.now + ctx.charged)
        else:  # pragma: no cover - Start always writes it
            env = {"workflow": self.name, "params": task.params}
        if cache is not None:
            cache.put_task_env(task.id, env)

    def _check_fence(self, ctx: OperationContext) -> None:
        """Fencing check guarding every fiber-state write: if this
        window's lock lease was expired or stolen, a newer owner may
        already be running — the write must not land.  Raising tunnels
        through the GVM, aborts the window (rolling back everything it
        already wrote) and lets the message retry."""
        fence = getattr(ctx, "fence", None)
        if fence is None:
            return
        if not self.vinz.locks.fence_valid(*fence):
            self.vinz.locks.fence_rejections += 1
            self.vinz.counters.incr("persist.fence-rejected")
            key, owner, token = fence
            raise FencedWriteError(
                f"stale fencing token {token} for {key} (owner {owner})")

    def _skip_persist(self, ctx: OperationContext,
                      cache: Optional[FiberCache],
                      fiber: FiberRecord, continuation) -> bool:
        """Snapshot-interval elision: with history on, only every Nth
        suspension persists its continuation — the versions between
        snapshots live in the node cache and are rebuilt by replay
        after a crash or cache miss.  Fencing still applies: a zombie
        must not even bump the version."""
        recorder = self.vinz.history
        interval = self.snapshot_interval
        if recorder is None or interval <= 1:
            return False
        if (fiber.version + 1) % interval == 0:
            return False
        self._check_fence(ctx)
        fiber.version += 1
        self.vinz.counters.incr("persist.skipped")
        if cache is not None:
            cache.put_continuation(fiber.id, fiber.version, continuation)
        return True

    def _record_snapshot(self, ctx: OperationContext,
                         fiber: FiberRecord) -> None:
        fiber.last_persisted_version = fiber.version
        recorder = self.vinz.history
        if recorder is not None:
            recorder.record(ctx, fiber.task_id, hist.SNAPSHOT_TAKEN,
                            fiber=fiber.id, version=fiber.version)

    def _persist_continuation(self, ctx: OperationContext,
                              cache: Optional[FiberCache],
                              fiber: FiberRecord, continuation) -> None:
        if self.snapper is not None:
            return self._persist_continuation_v2(ctx, cache, fiber,
                                                 continuation)
        if self._skip_persist(ctx, cache, fiber, continuation):
            return
        self._check_fence(ctx)
        fiber.version += 1
        tracer = ctx.cluster.tracer
        vstart = ctx.now + ctx.charged
        blob = self.codec.dumps(continuation)
        cost = self.vinz.store.write(self._state_key(fiber.id), blob)
        ctx.charge(cost)
        if tracer.enabled:
            span = tracer.begin(
                "persist.encode", kind="persistence", start=vstart,
                parent_id=ctx.span_id or None, fiber=fiber.id,
                version=fiber.version, bytes=len(blob))
            tracer.end(span, end=ctx.now + ctx.charged)
        self.vinz.counters.incr("persist.writes")
        self.vinz.counters.add("persist.bytes", len(blob))
        self._record_snapshot(ctx, fiber)
        if cache is not None:
            cache.put_continuation(fiber.id, fiber.version, continuation)
        injector = getattr(self.vinz, "injector", None)
        if injector is not None:
            # crash-during-persistence faults fire here: the node dies
            # with the window open, the abort hooks roll the fiber (and
            # the just-written blob) back, and the message is requeued
            injector.on_persist(ctx, fiber)

    def _persist_continuation_v2(self, ctx: OperationContext,
                                 cache: Optional[FiberCache],
                                 fiber: FiberRecord, continuation) -> None:
        """Incremental persist: chunk-dedup against the fiber's prior
        manifest, write only new chunks plus a small manifest."""
        if self._skip_persist(ctx, cache, fiber, continuation):
            return
        self._check_fence(ctx)
        fiber.version += 1
        tracer = ctx.cluster.tracer
        vstart = ctx.now + ctx.charged
        injector = getattr(self.vinz, "injector", None)
        self.snapper.injector = injector
        key = self._state_key(fiber.id)
        result = self.snapper.encode(key, continuation, fiber_id=fiber.id)
        # hooks go in *before* the manifest write: if that write faults,
        # the window abort must already know how to roll the chunk and
        # refcount writes back
        self._register_snapshot_hooks(ctx, result)
        blob = result.blob
        if injector is not None:
            # a torn-manifest fault truncates the blob we are about to
            # write — the tear is silent here and detected on restore
            blob = injector.on_manifest_write(key, blob)
        cost = result.cost + self.vinz.store.write(key, blob)
        ctx.charge(cost)
        physical = result.chunk_bytes_written + len(blob)
        if tracer.enabled:
            span = tracer.begin(
                "snap.encode", kind="persistence", start=vstart,
                parent_id=ctx.span_id or None, fiber=fiber.id,
                version=fiber.version, raw=result.raw_len, bytes=physical,
                new_chunks=result.chunks_new, reused=result.chunks_reused)
            tracer.end(span, end=ctx.now + ctx.charged)
        self.vinz.counters.incr("persist.writes")
        self.vinz.counters.add("persist.bytes", physical)
        self._record_snapshot(ctx, fiber)
        if cache is not None:
            cache.put_continuation(fiber.id, fiber.version, continuation)
            cache.put_digest(result.manifest.hex_digest, continuation)
        if injector is not None:
            injector.on_persist(ctx, fiber)

    def _register_snapshot_hooks(self, ctx: OperationContext,
                                 result) -> None:
        """Tie one incremental persist to its window's lifecycle: chunk
        and refcount writes roll back on abort; the *prior* manifest's
        stale references are dropped only after the window commits (a
        retry replaying against the rolled-back manifest must still
        find every chunk it names).  Undos run newest-first so repeated
        persists in one window unwind exactly."""
        undos = getattr(ctx, "_snap_undos", None)
        if undos is None:
            undos = []
            ctx._snap_undos = undos

            def run_undos():
                for fn in reversed(undos):
                    fn()

            ctx.on_abort(run_undos)
        undos.append(result.undo)
        ctx.on_complete(result.release)

    def _load_continuation(self, ctx: OperationContext,
                           cache: Optional[FiberCache], fiber: FiberRecord):
        if cache is not None:
            cached = cache.get_continuation(fiber.id, fiber.version,
                                            FiberCache.MISS)
            if cached is not FiberCache.MISS:
                self.vinz.counters.incr("cache.mutable.hit")
                return cached
            self.vinz.counters.incr("cache.mutable.miss")
        recorder = self.vinz.history
        if recorder is not None and (
                self.vinz.recovery_mode == "replay"
                or fiber.last_persisted_version != fiber.version):
            # either the platform recovers by replay (never reads
            # continuation snapshots), or the wanted version was never
            # persisted (snapshot-interval elision) — rebuild it by
            # re-executing the fiber against its recorded history
            return self._rebuild_from_history(ctx, cache, fiber)
        continuation = self._read_persisted(ctx, cache, fiber)
        if cache is not None:
            cache.put_continuation(fiber.id, fiber.version, continuation)
        return continuation

    def _read_persisted(self, ctx: OperationContext,
                        cache: Optional[FiberCache], fiber: FiberRecord):
        """Read + decode the fiber's persisted continuation snapshot."""
        tracer = ctx.cluster.tracer
        vstart = ctx.now + ctx.charged
        blob = self.vinz.store.read(self._state_key(fiber.id))
        ctx.charge(self.vinz.store.cost(len(blob)))
        if self.snapper is not None and is_manifest(blob):
            continuation = self._restore_v2(ctx, cache, fiber, blob)
        else:
            # v1 blob — written by this service in v1 mode, or by a
            # pre-upgrade deployment (a v2 service still reads them).
            # A *manifest* reaching a v1 service trips the downgrade
            # guard inside loads.
            continuation = self.codec.loads(blob, fiber_id=fiber.id)
        if tracer.enabled:
            span = tracer.begin(
                "persist.decode", kind="persistence", start=vstart,
                parent_id=ctx.span_id or None, fiber=fiber.id,
                version=fiber.version, bytes=len(blob))
            tracer.end(span, end=ctx.now + ctx.charged)
        return continuation

    def _rebuild_from_history(self, ctx: OperationContext,
                              cache: Optional[FiberCache],
                              fiber: FiberRecord):
        """Reconstruct the continuation at ``fiber.version`` by replay.

        Under ``recovery="replay"`` the rebuild starts from the task's
        beginning (zero continuation-snapshot reads); otherwise it
        fast-forwards from the latest persisted snapshot and replays
        only the suspensions elided since.  The re-executed
        instructions are charged at the service's instruction cost —
        replay is compute traded for persistence IO.
        """
        base = None
        if self.vinz.recovery_mode != "replay" \
                and fiber.last_persisted_version > 0:
            base = (self._read_persisted(ctx, cache, fiber),
                    fiber.last_persisted_version)
        continuation, instructions = self.vinz.replayer.rebuild(
            self, fiber, fiber.version, base=base)
        ctx.charge(instructions * self.instruction_cost)
        self.vinz.counters.incr("history.rebuilds")
        ctx.trace("fiber-rebuild", task=fiber.task_id, fiber=fiber.id,
                  version=fiber.version,
                  base=(base[1] if base is not None else None))
        if cache is not None:
            cache.put_continuation(fiber.id, fiber.version, continuation)
        return continuation

    def _restore_v2(self, ctx: OperationContext,
                    cache: Optional[FiberCache], fiber: FiberRecord,
                    blob: bytes):
        """Restore from a v2 manifest: digest-cache hit first (an
        unchanged state skips chunk fetch *and* deserialization), else
        fetch + verify every chunk.  Any corruption surfaces as a typed
        :class:`~repro.persistsnap.SnapshotError` that aborts the window
        for a policy-driven retry — never a wrong-value restore."""
        injector = getattr(self.vinz, "injector", None)
        self.snapper.injector = injector
        manifest = self.snapper.read_manifest(blob, fiber_id=fiber.id)
        if cache is not None:
            hit = cache.get_digest(manifest.hex_digest, FiberCache.MISS)
            if hit is not FiberCache.MISS:
                self.vinz.counters.incr("cache.digest.hit")
                return hit
            self.vinz.counters.incr("cache.digest.miss")
        raw, fetch_cost = self.snapper.fetch_state(manifest,
                                                   fiber_id=fiber.id)
        ctx.charge(fetch_cost)
        continuation = self.codec.deserialize_state(raw, fiber_id=fiber.id,
                                                    fmt="v2")
        if cache is not None:
            cache.put_digest(manifest.hex_digest, continuation)
        return continuation

    # -- dead-letter handling -----------------------------------------------

    def on_message_dead_lettered(self, message) -> None:
        """A fiber-lifecycle message exhausted its retry policy.

        The fiber it addressed can never advance again, so fail it
        through the normal error path: the parent sees a
        ``child-fiber-error`` condition when collecting (its handlers
        get their say, Section 3.7), a main fiber fails the whole task
        (waking synchronous callers with a fault) — nothing hangs.
        """
        fiber_id = (message.body or {}).get("fiber")
        if fiber_id is None:
            return  # Start/management traffic: the reply fault suffices
        registry = self.vinz.registry
        fiber = registry.fibers.get(fiber_id)
        if fiber is None or fiber.finished:
            return
        task = registry.tasks.get(fiber.task_id)
        if task is None or task.finished:
            return
        ctx = _OutOfBandContext(self.vinz.cluster)
        error = (f"{message.operation} message #{message.id} dead-lettered "
                 f"after {message.attempts} attempts")
        self._fiber_failed(ctx, task, fiber, error,
                           terminate_task=(fiber.parent_id is None))

    # -- store keys ---------------------------------------------------------

    def _reclaim(self, ctx, *keys: str) -> None:
        """Best-effort reclamation of persisted fiber state.

        Deletes are real store IO: charged to the window, counted, and
        subject to fault injection.  But a vetoed delete must not take
        down the platform path that happens to be sweeping (finishing a
        task, dead-letter handling) — the blob is merely orphaned, for
        a later sweep to reclaim, so a write-storm campaign degrades
        cleanup without costing liveness.
        """
        store = self.vinz.store
        for key in keys:
            if self.snapper is not None:
                # a v2 state key holds a manifest: drop its chunk
                # references (GC rides the window's journal batch via
                # the commit hook; out-of-band contexts release now)
                blob = store.snapshot_value(key)
                if blob is not None and is_manifest(blob):
                    release = (lambda b=blob:
                               self.snapper.release_blob(b))
                    on_complete = getattr(ctx, "on_complete", None)
                    if on_complete is not None:
                        on_complete(release)
                    else:
                        release()
            try:
                ctx.charge(store.delete(key))
            except StoreError:
                ctx.trace("reclaim-skipped", key=key)
                self.vinz.cluster.counters.incr("store.reclaim-skipped")

    @staticmethod
    def _state_key(fiber_id: str) -> str:
        return f"fiber-state/{fiber_id}"

    @staticmethod
    def _thunk_key(fiber_id: str) -> str:
        return f"fiber-thunk/{fiber_id}"

    @staticmethod
    def _task_env_key(task_id: str) -> str:
        return f"task-env/{task_id}"

    @staticmethod
    def _task_var_key(task_id: str, name: str) -> str:
        return f"taskvar/{task_id}/{name}"


class _OutOfBandContext:
    """A minimal OperationContext stand-in for platform-initiated work
    that happens outside any message window (dead-letter handling).
    Sends are immediate — there is no operation window to make them
    transactional with."""

    def __init__(self, cluster):
        self.cluster = cluster

    @property
    def now(self) -> float:
        return self.cluster.kernel.now

    def send(self, service, operation, body, **kwargs) -> None:
        self.cluster.send(service, operation, body, **kwargs)

    def charge(self, seconds: float) -> None:
        """Out-of-band IO has no window to bill — the cost is absorbed
        (the store's own io_seconds still count it)."""

    def trace(self, kind: str, **detail) -> None:
        self.cluster.trace.record(self.now, kind, **detail)


def deliver_collected(vm, child_ids: List[str], triples) -> List[Any]:
    """Turn recorded ``(status, result, error)`` triples into the
    collect-child-results value, signalling on failed children.

    Shared by the live path and history replay so both produce the
    same control flow from the same observations."""
    results: List[Any] = []
    for child_id, (status, result, error) in zip(child_ids, triples):
        if status == COMPLETED:
            results.append(result)
        elif status in (ERROR, TERMINATED):
            condition = GozerCondition(
                message=error or status,
                condition_type="child-fiber-error",
                data=child_id)
            vm.signal(condition, error_p=True)
        else:
            raise GozerRuntimeError(
                f"collect-child-results: child {child_id} still "
                f"{status} (missing yield discipline?)")
    return results


class FiberExecution:
    """Per-advancement bridge between the GVM and Vinz.

    Attached to the VM as ``vm.vinz`` while a fiber runs; every
    distribution intrinsic goes through here.
    """

    def __init__(self, service: WorkflowService, ctx: OperationContext,
                 task: TaskRecord, fiber: FiberRecord, vm):
        self.service = service
        self.ctx = ctx
        self.task = task
        self.fiber = fiber
        self.vm = vm

    # -- nondeterminism capture ----------------------------------------------

    def nondet(self, op: str, thunk):
        """Evaluate ``thunk`` and record its value as a nondeterminism
        event.  Replay feeds the recorded value back instead of
        re-evaluating, which is what makes fiber re-execution
        deterministic (Durable-Functions-style event sourcing)."""
        value = thunk()
        recorder = self.service.vinz.history
        if recorder is not None:
            recorder.record(self.ctx, self.task.id, hist.NONDET_RECORDED,
                            fiber=self.fiber.id, op=op, value=value)
        return value

    def _mark(self, op: str) -> None:
        """Record a value-less nondet marker for an effectful intrinsic
        (send/awake/taskvar-write) so the replay cursor stays aligned
        without re-performing the side effect."""
        recorder = self.service.vinz.history
        if recorder is not None:
            recorder.record(self.ctx, self.task.id, hist.NONDET_RECORDED,
                            fiber=self.fiber.id, op=op, value=None)

    def clock_now(self) -> float:
        """Virtual wall clock as seen by this operation window."""
        return self.ctx.now + self.ctx.charged

    def random_draw(self, n):
        """Draw from the cluster's seeded RNG (recorded via nondet)."""
        rng = self.ctx.cluster.rng
        if isinstance(n, int) and not isinstance(n, bool):
            return rng.randrange(n) if n > 0 else 0
        return rng.uniform(0.0, float(n))

    # -- fiber management -----------------------------------------------------

    def fork(self, fn: GozerFunction, args: List[Any],
             notify_parent: bool) -> str:
        """fork-and-exec: clone state into a child fiber (Section 3.4).

        The clone is effected by serializing the closure: the child gets
        an independent copy of everything ``fn`` captures, so "changes
        either fiber makes will not be visible to its clone".
        """
        vinz = self.service.vinz
        child = vinz.registry.new_fiber(self.task, self.ctx.now,
                                        parent_id=self.fiber.id,
                                        notify_parent=notify_parent)
        tracer = self.ctx.cluster.tracer
        if tracer.enabled:
            child.span_id = tracer.begin(
                f"fiber:{child.id}", kind="fiber", start=self.ctx.now,
                parent_id=self.task.span_id or None, task=self.task.id,
                fiber=child.id, parent_fiber=self.fiber.id)
        # aborted window (store fault / node death): the replayed parent
        # re-forks, so this child record must not leak
        monitored = [False]

        def undo_fork() -> None:
            if vinz.registry.discard_fiber(child.id) is not None:
                # the child's thunk blob was written by the aborted
                # window: take it back out so backend state stays equal
                # to committed journal state (crash-recovery contract)
                vinz.store.rollback_value(
                    self.service._thunk_key(child.id), None)
                if monitored[0]:
                    vinz.monitor_fiber_discarded(child, self.ctx.now)
                if child.span_id:
                    tracer.end(child.span_id, end=self.ctx.now,
                               status="discarded")

        self.ctx.on_abort(undo_fork)
        blob = self.service.codec.dumps((fn, list(args)))
        self.ctx.charge(vinz.store.write(
            self.service._thunk_key(child.id), blob))
        self.ctx.trace("fiber-fork", task=self.task.id,
                       fiber=self.fiber.id, child=child.id)
        vinz.monitor_fiber_started(child, self.ctx.now)
        monitored[0] = True
        self.ctx.send(self.service.name, "RunFiber",
                      {"fiber": child.id, "task": self.task.id},
                      priority=self.service.vinz.message_priority(
                          self.task, PRIORITY_NORMAL),
                      max_attempts=self.service.FIBER_MESSAGE_ATTEMPTS,
                      parent_span=child.span_id)
        recorder = vinz.history
        if recorder is not None:
            recorder.record(self.ctx, self.task.id, hist.FIBER_FORKED,
                            fiber=self.fiber.id, child=child.id, fn=fn,
                            args=list(args), notify=notify_parent)
        return child.id

    def fork_chain(self, fn: GozerFunction, items: List[Any]) -> str:
        """The sibling-chaining spawn strategy (Section 5 future work).

        All child fiber records are created up front; only ``spawn
        limit`` RunFibers are enqueued.  As each child finishes it
        launches the next pending sibling *directly* — "it could simply
        spawn whatever sibling fiber is next without involving the
        parent" — and only the last completion awakens the parent, so a
        fan-out of N children costs one parent wake-up instead of N.
        Returns the chain group id; collect with ``%vinz-collect-chain``.
        """
        vinz = self.service.vinz
        tracer = self.ctx.cluster.tracer
        children: List[str] = []
        created: List[FiberRecord] = []
        undo_state = {"monitored": False, "group": None}

        def undo_fork_chain() -> None:
            for record in created:
                if vinz.registry.discard_fiber(record.id) is not None:
                    vinz.store.rollback_value(
                        self.service._thunk_key(record.id), None)
                    if undo_state["monitored"]:
                        vinz.monitor_fiber_discarded(record, self.ctx.now)
                    if record.span_id:
                        tracer.end(record.span_id, end=self.ctx.now,
                                   status="discarded")
            if undo_state["group"] is not None:
                self.task.chain_groups.pop(undo_state["group"], None)

        self.ctx.on_abort(undo_fork_chain)
        for item in items:
            child = vinz.registry.new_fiber(self.task, self.ctx.now,
                                            parent_id=self.fiber.id,
                                            notify_parent=False)
            if tracer.enabled:
                child.span_id = tracer.begin(
                    f"fiber:{child.id}", kind="fiber", start=self.ctx.now,
                    parent_id=self.task.span_id or None, task=self.task.id,
                    fiber=child.id, parent_fiber=self.fiber.id)
            created.append(child)
            blob = self.service.codec.dumps((fn, [item]))
            self.ctx.charge(vinz.store.write(
                self.service._thunk_key(child.id), blob))
            children.append(child.id)
        for record in created:
            vinz.monitor_fiber_started(record, self.ctx.now)
        undo_state["monitored"] = True
        group_id = f"chain:{self.fiber.id}:{len(self.task.chain_groups)}"
        undo_state["group"] = group_id
        limit = max(1, self._spawn_limit_value())
        pending = children[limit:]
        self.task.chain_groups[group_id] = {
            "parent": self.fiber.id,
            "children": children,
            "pending": pending,
            "remaining": len(children),
        }
        for child_id in children:
            vinz.registry.fibers[child_id].chain_group = group_id
        for child_id in children[:limit]:
            self.ctx.send(self.service.name, "RunFiber",
                          {"fiber": child_id, "task": self.task.id},
                          priority=self.service.vinz.message_priority(
                              self.task, PRIORITY_NORMAL),
                          max_attempts=self.service.FIBER_MESSAGE_ATTEMPTS,
                          parent_span=vinz.registry.fibers[child_id].span_id)
        self.ctx.trace("chain-fork", task=self.task.id,
                       fiber=self.fiber.id, children=len(children),
                       launched=min(limit, len(children)))
        if not children:
            # empty chain: awaken the parent immediately
            self.ctx.send(self.service.name, "AwakeFiber",
                          {"fiber": self.fiber.id, "child": None},
                          priority=PRIORITY_LOW,
                          max_attempts=self.service.FIBER_MESSAGE_ATTEMPTS)
        recorder = vinz.history
        if recorder is not None:
            recorder.record(self.ctx, self.task.id, hist.FIBER_FORKED,
                            fiber=self.fiber.id, chain=group_id,
                            children=list(children), fn=fn,
                            items=list(items))
        return group_id

    def collect_chain(self, vm, group_id: str) -> List[Any]:
        group = self.task.chain_groups.get(group_id)
        if group is None:
            raise GozerRuntimeError(f"no chain group {group_id}")
        return self.collect_results(vm, group["children"])

    def collect_results(self, vm, child_ids: List[str]) -> List[Any]:
        """Gather child results in order; signal on failed children."""
        registry = self.service.vinz.registry

        def gather():
            triples = []
            for child_id in child_ids:
                child = registry.fibers.get(child_id)
                if child is None:
                    raise GozerRuntimeError(
                        f"no such child fiber {child_id}")
                triples.append((child.status, child.result, child.error))
            return triples

        triples = self.nondet("collect", gather)
        return deliver_collected(vm, child_ids, triples)

    def join_sync(self, pid: str) -> Any:
        """join-process from a background thread (Section 3.4).

        In the discrete-event simulation a background thread cannot
        block while virtual time advances, so this succeeds only when
        the target already finished.
        """
        registry = self.service.vinz.registry

        def probe():
            record = registry.fibers.get(pid) or registry.tasks.get(pid)
            if record is None:
                raise GozerRuntimeError(
                    f"join-process: no such process {pid}")
            if record.finished:
                return record.result
            raise GozerRuntimeError(
                "join-process from a background thread on an unfinished "
                "process: unsupported in discrete-event simulation mode")

        return self.nondet("join-sync", probe)

    def awake(self, pid: str, payload: Any) -> None:
        self.ctx.send(self.service.name, "AwakeFiber",
                      {"fiber": pid, "result": payload},
                      priority=PRIORITY_LOW,
                      max_attempts=self.service.FIBER_MESSAGE_ATTEMPTS)
        self._mark("awake")

    def send_fiber_message(self, pid: str, value: Any) -> None:
        """Lightweight cross-process communication (the Section 5
        wish: cheaper than task variables for point-to-point data)."""
        self.ctx.send(self.service.name, "DeliverMessage",
                      {"fiber": pid, "value": value},
                      max_attempts=self.service.FIBER_MESSAGE_ATTEMPTS)
        self.service.vinz.counters.incr("mailbox.sent")
        self._mark("send-message")

    def auto_chunk_size(self) -> int:
        """Pick a chunk size from measured child durations (Section 5:
        "dynamically optimize chunk sizes based on the processing time
        of the body").

        Uses this fiber's most recent completed children (the probe
        phase) as the per-item cost sample; sizes chunks so each takes
        roughly ``auto_chunk_target`` simulated seconds.
        """
        def decide():
            registry = self.service.vinz.registry
            durations = [
                child.total_charged
                for child in (registry.fibers[cid]
                              for cid in self.task.fiber_ids
                              if registry.fibers[cid].parent_id
                              == self.fiber.id)
                if child.finished and child.total_charged > 0
            ]
            if not durations:
                return 1
            recent = durations[-4:]
            avg = max(sum(recent) / len(recent), 1e-6)
            size = int(self.service.auto_chunk_target / avg)
            chosen = max(1, min(size, 64))
            self.service.vinz.counters.incr("autochunk.decisions")
            self.ctx.trace("auto-chunk", task=self.task.id,
                           fiber=self.fiber.id, avg_item=round(avg, 4),
                           size=chosen)
            return chosen

        return self.nondet("auto-chunk", decide)

    def try_receive(self) -> Any:
        """Pop a pending mailbox message, or the no-message keyword."""
        from ..lang.symbols import Keyword

        def pop():
            if self.fiber.mailbox:
                return self.fiber.mailbox.pop(0)
            return Keyword("%vinz-no-message")

        return self.nondet("try-receive", pop)

    # -- spawn limit ----------------------------------------------------------

    def _spawn_limit_value(self) -> int:
        """The task's effective spawn limit right now (unrecorded)."""
        limit = self.task.spawn_limit
        if limit is None:
            limit = self.service.default_spawn_limit
        if limit == AUTO_SPAWN_LIMIT:
            return self.service.vinz.governor.current_limit(self.ctx.now)
        return limit

    def spawn_limit(self) -> int:
        """The task's effective spawn limit right now.

        The Listing-3 throttle loop re-reads this every iteration, so
        a task under the ``"auto"`` sentinel (set per deployment with
        ``spawn_limit="auto"`` or per task with
        ``(vinz-auto-spawn-limit)``) follows the AIMD governor's
        decisions mid-fan-out.
        """
        return self.nondet("spawn-limit", self._spawn_limit_value)

    def set_spawn_limit(self, n: int) -> int:
        self.task.spawn_limit = max(1, n)
        return self.task.spawn_limit

    def auto_spawn_limit(self) -> int:
        """Hand this task's spawn limit to the adaptive governor;
        returns the currently governed limit."""

        def engage():
            self.task.spawn_limit = AUTO_SPAWN_LIMIT
            return self.service.vinz.governor.current_limit(self.ctx.now)

        return self.nondet("auto-spawn-limit", engage)

    # -- task variables (Section 3.6) ----------------------------------------

    def get_task_var(self, name: str) -> Any:
        """Read-through to the store: "will always see the latest value"."""
        vinz = self.service.vinz

        def read():
            key = self.service._task_var_key(self.task.id, name)
            vinz.counters.incr("taskvar.reads")
            if vinz.store.exists(key):
                blob = vinz.store.read(key)
                self.ctx.charge(vinz.store.cost(len(blob)))
                return pickle.loads(blob)
            if name not in self.service.task_var_defaults:
                raise GozerRuntimeError(
                    f"undeclared task variable ^{name}^")
            return self.service.task_var_defaults[name]

        return self.nondet(f"taskvar-get/{name}", read)

    def set_task_var(self, name: str, value: Any) -> Any:
        """Locked write: the paper's "very high synchronization
        overhead for mutation"."""
        vinz = self.service.vinz
        if name not in self.service.task_var_defaults:
            raise GozerRuntimeError(f"undeclared task variable ^{name}^")
        self._mark(f"taskvar-set/{name}")
        key = self.service._task_var_key(self.task.id, name)
        owner = f"{self.ctx.instance.id}#{self.ctx.message.id}"
        lock_key = f"taskvar/{self.task.id}/{name}"
        spins = 0
        while not vinz.locks.try_acquire(lock_key, owner):
            # with NFS-style file locks, a just-released lock may still
            # look held (attribute caching): model a blocking wait for
            # the visibility window instead of spinning the host CPU
            remaining = getattr(vinz.locks, "stale_visibility_remaining",
                                lambda _k: 0.0)(lock_key)
            if remaining > 0:
                self.ctx.charge(remaining)
                vinz.locks.expire_visibility(lock_key)
                continue
            spins += 1
            self.ctx.charge(0.001)
            if spins > 1000:  # pragma: no cover - defensive
                raise GozerRuntimeError(
                    f"task variable lock {lock_key} appears stuck "
                    f"(held by {vinz.locks.holder(lock_key)})")
        try:
            blob = pickle.dumps(value)
            self.ctx.charge(vinz.store.write(key, blob)
                            + vinz.taskvar_lock_overhead)
            vinz.counters.incr("taskvar.writes")
        finally:
            vinz.locks.release(lock_key, owner)
        return value

    # -- service calls ----------------------------------------------------------

    def call_sync(self, soap_action: str, values: Dict[str, Any]) -> Dict[str, Any]:
        def invoke():
            service_name, operation = self.service.vinz.resolve_soap_action(
                soap_action)
            envelope = self.ctx.cluster.call_inline(service_name, operation,
                                                    dict(values),
                                                    parent_context=self.ctx)
            if envelope.duration is not None:
                self.service.vinz.record_service_latency(soap_action,
                                                         envelope.duration)
            return envelope.to_body()

        return self.nondet(f"call-sync/{soap_action}", invoke)

    # -- misc ----------------------------------------------------------------

    def charge(self, seconds: float) -> None:
        self.ctx.charge(seconds)
