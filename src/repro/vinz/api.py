"""The high-level Vinz API: one object wiring everything together.

:class:`VinzEnvironment` owns the simulated cluster, the shared store,
the distributed lock manager and the process registry, and provides the
operations a platform operator (or a test) performs: deploy a workflow,
start/run/call it, terminate it, wait for completion, inspect metrics.

Typical use::

    from repro.vinz.api import VinzEnvironment

    vinz = VinzEnvironment(nodes=4)
    vinz.deploy_workflow("SumSquares", WORKFLOW_SOURCE)
    result = vinz.call("SumSquares", [1, 2, 3, 4])   # -> 30
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional

from ..bluebox.cluster import Cluster
from ..bluebox.locks import (
    CoordinatorLockManager,
    FileLockManager,
    LockManager,
)
from ..bluebox.monitoring import ConcurrencySampler, Counters
from ..bluebox.store import SharedStore
from ..gvm.futures import FutureExecutor, SynchronousFutureExecutor
from ..sched.governor import GovernorConfig, SpawnGovernor
from .service import WorkflowService
from .task import COMPLETED, ProcessRegistry, TaskRecord


class WorkflowError(RuntimeError):
    """A synchronous Call failed (the task errored or was terminated)."""

    def __init__(self, qname: str, message: str):
        super().__init__(f"{qname}: {message}")
        self.qname = qname
        self.fault_message = message


class VinzEnvironment:
    """The Vinz platform: cluster + store + locks + tracking.

    ``locks`` selects the distributed lock backend: ``"coordinator"``
    (the ZooKeeper-like replacement the paper is building) or ``"file"``
    (the original NFS file locks, optionally with their visibility
    quirk via ``lock_quirk_delay``).
    """

    def __init__(self, nodes: int = 4, slots: int = 1, seed: int = 0,
                 cluster: Optional[Cluster] = None,
                 store: Optional[SharedStore] = None,
                 locks: str = "coordinator",
                 lock_quirk_delay: float = 0.0,
                 taskvar_lock_overhead: float = 0.002,
                 trace: bool = True,
                 spans: Optional[bool] = None,
                 placement: str = "balanced",
                 retry_policy=None,
                 scheduler: Any = None,
                 admission: Any = None,
                 governor: Optional[GovernorConfig] = None,
                 lease_ttl: float = 2.0,
                 lease_heartbeat: Optional[float] = None,
                 recovery_interval: Optional[float] = None,
                 history: str = "off",
                 snapshot_interval: int = 1,
                 recovery: str = "snapshot",
                 future_executor_factory: Optional[Callable[[], FutureExecutor]] = None):
        #: ``scheduler`` picks the queue's message-ordering policy
        #: (None/"strict" = the paper's priority heap, "fair" = deficit
        #: round-robin with priority aging); ``admission`` switches on
        #: watermark admission control (True, an AdmissionConfig, or a
        #: ready controller); ``governor`` tunes the AIMD spawn
        #: governor backing ``(vinz-auto-spawn-limit)`` and
        #: ``spawn_limit="auto"`` deployments.  All default to the
        #: paper's behaviour.  See repro.sched / docs/scheduler.md.
        self.cluster = cluster if cluster is not None else \
            Cluster(seed=seed, trace=trace, retry_policy=retry_policy,
                    spans=spans, scheduler=scheduler, admission=admission)
        if retry_policy is not None and cluster is not None:
            self.cluster.retry_policy = retry_policy
        if not self.cluster.nodes:
            self.cluster.add_nodes(nodes, slots=slots)
        self.store = store if store is not None else SharedStore()
        if hasattr(self.store, "begin_window"):
            # a window-capable durable store (repro.durastore): the
            # cluster drives its group-commit lifecycle, and recovery
            # gets spans/metrics/virtual-time wiring
            self.cluster.durable_store = self.store
            self.store.tracer = self.cluster.tracer
            self.store.metrics = self.cluster.metrics
            self.store.now_fn = lambda: self.cluster.kernel.now
        #: the adaptive spawn governor (repro.sched.governor).  Always
        #: present — it only acts for tasks/deployments that opt in
        #: with ``spawn_limit="auto"`` or ``(vinz-auto-spawn-limit)``.
        self.governor = SpawnGovernor(self.cluster, governor)
        #: optional FaultInjector (set by FaultInjector.install(env))
        self.injector = None
        # dead-lettered fiber messages must fail their task/fiber
        # through the condition system instead of hanging it
        self.cluster.dead_letter_listeners.append(self._on_dead_letter)
        self.locks: LockManager
        if locks == "coordinator":
            self.locks = CoordinatorLockManager()
        elif locks == "file":
            self.locks = FileLockManager(
                self.store, clock_now=lambda: self.cluster.kernel.now,
                release_visibility_delay=lock_quirk_delay)
        else:
            raise ValueError(f"unknown lock backend {locks!r}")
        # ------- lease layer + orphan-fiber recovery -----------------
        #: every lock (either backend) carries a TTL lease charged to
        #: the virtual clock, renewed by cluster heartbeats while its
        #: operation window runs; ``lease_ttl=0`` disables lapsing
        #: (locks are held until released — the pre-lease behaviour)
        self.locks.configure_leases(
            ttl=lease_ttl,
            clock_now=lambda: self.cluster.kernel.now,
            heartbeat_interval=lease_heartbeat)
        #: the cluster fences commits and heartbeats in-flight windows
        self.cluster.lock_manager = self.locks
        #: every lease expiry/steal aborts the zombie's window *before*
        #: the lock changes hands (the single ordering invariant that
        #: makes steals safe)
        self.locks.lease_breaker = self.cluster.break_window_for
        from .recovery import RecoveryScanner
        #: detects lapsed leases / dead owners and re-awakens orphans
        self.recovery = RecoveryScanner(self, interval=recovery_interval)
        #: committed advancement windows ``(fiber_id, message_id,
        #: start, end)`` — the raw material of the single-runner audit
        self.runner_audit: List[tuple] = []
        self.registry = ProcessRegistry()
        self.counters = Counters()
        # ------- event-sourced task history (docs/history_replay.md) --
        if history not in ("off", "on"):
            raise ValueError(f"unknown history mode {history!r}")
        if recovery not in ("snapshot", "replay"):
            raise ValueError(f"unknown recovery mode {recovery!r}")
        if recovery == "replay" and history != "on":
            raise ValueError('recovery="replay" requires history="on"')
        if snapshot_interval < 1:
            raise ValueError("snapshot_interval must be >= 1")
        #: "snapshot" = rebuild crashed fibers from persisted
        #: continuations; "replay" = re-execute from the history log
        self.recovery_mode = recovery
        #: persist a continuation snapshot every N suspensions
        #: (default applied per deployment; 1 = the paper's every-step)
        self.default_snapshot_interval = int(snapshot_interval)
        self.history = None
        self.history_log = None
        self.replayer = None
        if history == "on":
            from ..history import HistoryLog, HistoryRecorder, ReplayEngine
            self.history_log = HistoryLog(self.store,
                                          metrics=self.cluster.metrics)
            self.history = HistoryRecorder(self, self.history_log)
            self.replayer = ReplayEngine(self)
        if placement not in ("balanced", "affinity"):
            raise ValueError(f"unknown placement policy {placement!r}")
        #: "balanced" = the paper's production behaviour (the queue
        #: alone decides placement); "affinity" = the Section 5
        #: future-work locality policy (prefer the fiber's last node,
        #: so resumes hit that node's fiber cache)
        self.placement = placement
        # ------- adaptive migration (Section 5 future work) ----------
        #: "programmer" = the paper's production behaviour (the stub's
        #: static/dynamic flags decide); "adaptive" = Vinz learns which
        #: operations are fast enough that migration costs more than it
        #: saves, and calls those synchronously.
        self.migration_policy = "programmer"
        #: per-soap-action EWMA of observed service latency (seconds)
        self.service_latency: Dict[str, float] = {}
        #: migrate only when the expected service time exceeds this —
        #: roughly the cost of one persist + one restore + queue trip
        self.migration_threshold = 0.05
        self.migration_ewma_alpha = 0.3
        # ------- deadline-aware scheduling (Section 5 / refs [7][8]) --
        #: "fcfs" = the paper's production behaviour ("task scheduling
        #: is first-come-first-serve, which has been shown to be
        #: suboptimal in the presence of deadlines"); "edf" = derive
        #: message priorities from task slack (earliest deadline first)
        self.scheduling_policy = "fcfs"
        #: slack (seconds) mapped linearly onto the priority range:
        #: slack <= 0 -> most urgent; slack >= edf_horizon -> normal
        self.edf_horizon = 60.0
        self.taskvar_lock_overhead = taskvar_lock_overhead
        #: deterministic futures by default: right for the simulation
        self.future_executor_factory = (future_executor_factory
                                        or SynchronousFutureExecutor)
        self.workflows: Dict[str, WorkflowService] = {}
        # concurrency profiling for the production bench
        self.task_concurrency = ConcurrencySampler()
        self.fiber_concurrency = ConcurrencySampler()

    @property
    def tracer(self):
        """The cluster's causal span tracer (repro.observe)."""
        return self.cluster.tracer

    @property
    def metrics(self):
        """The cluster's metrics registry (repro.observe)."""
        return self.cluster.metrics

    # ------------------------------------------------------------------
    # deployment
    # ------------------------------------------------------------------

    def deploy_workflow(self, name: str, source: str,
                        node_ids: Optional[List[str]] = None,
                        **config: Any) -> WorkflowService:
        """Wrap a Gozer program as a workflow service and deploy it.

        ``node_ids`` restricts deployment to specific nodes (default:
        every node, the paper's usual arrangement).
        """
        config.setdefault("snapshot_interval", self.default_snapshot_interval)
        service = WorkflowService(name, source, self, **config)
        self.cluster.deploy(service, node_ids=node_ids)
        self.workflows[name] = service
        return service

    def deploy_service(self, service) -> None:
        """Deploy an ordinary (non-workflow) BlueBox service."""
        self.cluster.deploy(service)

    # ------------------------------------------------------------------
    # workflow operations (client side of Table 1)
    # ------------------------------------------------------------------

    def _drain_in_flight(self) -> None:
        """Process pending completion events (lock releases, counters).

        ``run_until`` stops at the instant a predicate is satisfied,
        which can leave operations mid-window; draining them keeps the
        platform's bookkeeping consistent for the caller.
        """
        self.cluster.run_until(lambda: not self.cluster._in_flight)

    def start(self, workflow: str, params: Any = None,
              deadline: Optional[float] = None) -> str:
        """Start a task asynchronously; return its id immediately.

        ``deadline`` (absolute virtual time) feeds the EDF scheduling
        policy when ``scheduling_policy="edf"``.
        """
        body: Dict[str, Any] = {"params": params}
        if deadline is not None:
            body["deadline"] = deadline
        envelope = self.cluster.call(workflow, "Start", body)
        if not envelope.ok:
            raise WorkflowError(envelope.fault_qname, envelope.fault_message)
        return envelope.value["task"]

    def run(self, workflow: str, params: Any = None) -> str:
        """Run a task to completion; return its id."""
        envelope = self.cluster.call(workflow, "Run", {"params": params})
        if not envelope.ok:
            raise WorkflowError(envelope.fault_qname, envelope.fault_message)
        self._drain_in_flight()
        return envelope.value["task"]

    def call(self, workflow: str, params: Any = None) -> Any:
        """Run a task to completion; return its final result."""
        envelope = self.cluster.call(workflow, "Call", {"params": params})
        if not envelope.ok:
            raise WorkflowError(envelope.fault_qname, envelope.fault_message)
        self._drain_in_flight()
        return envelope.value

    def terminate(self, task_id: str) -> None:
        task = self.registry.tasks[task_id]
        self.cluster.call(task.workflow, "Terminate", {"task": task_id})

    def wait_for_task(self, task_id: str,
                      deadline: Optional[float] = None) -> TaskRecord:
        """Advance the simulation until the task finishes."""
        task = self.registry.tasks[task_id]
        ok = self.cluster.run_until(lambda: task.finished, deadline=deadline)
        if not ok:
            raise TimeoutError(f"task {task_id} did not finish "
                               f"(status {task.status})")
        self._drain_in_flight()
        return task

    def replay_task(self, task_id: str, source: str = "log"):
        """Deterministically re-execute a finished task from its
        recorded history and verify every recorded event matches —
        raises :class:`~repro.history.ReplayDivergenceError` on the
        first mismatch.  Requires ``history="on"``."""
        if self.replayer is None:
            raise RuntimeError(
                'replay_task requires VinzEnvironment(history="on")')
        return self.replayer.replay_task(task_id, source=source)

    def result_of(self, task_id: str) -> Any:
        task = self.registry.tasks[task_id]
        if task.status != COMPLETED:
            raise WorkflowError("{urn:vinz}WorkflowFailed",
                                task.error or task.status)
        return task.result

    # ------------------------------------------------------------------
    # service resolution (deflink support)
    # ------------------------------------------------------------------

    def resolve_wsdl(self, namespace: str, port: Optional[str] = None):
        service = self.cluster.find_service_by_namespace(namespace)
        if service is None and namespace in self.cluster.services:
            service = self.cluster.services[namespace]
        if service is None:
            raise KeyError(f"deflink: no deployed service publishes "
                           f"{namespace!r}")
        return service.wsdl

    def resolve_soap_action(self, soap_action: str):
        namespace, _, operation = soap_action.rpartition(":")
        service = self.cluster.find_service_by_namespace(namespace)
        if service is None:
            raise KeyError(f"no service for soap action {soap_action!r}")
        return service.name, operation

    # ------------------------------------------------------------------
    # adaptive migration (Section 5 future work)
    # ------------------------------------------------------------------

    def record_service_latency(self, soap_action: str, seconds: float) -> None:
        """Feed one observed request round-trip into the learner."""
        previous = self.service_latency.get(soap_action)
        if previous is None:
            self.service_latency[soap_action] = seconds
        else:
            alpha = self.migration_ewma_alpha
            self.service_latency[soap_action] = \
                alpha * seconds + (1 - alpha) * previous
        self.counters.incr("migration.observations")

    def should_migrate(self, soap_action: str) -> bool:
        """Should a request to ``soap_action`` migrate the fiber?

        Under the default "programmer" policy, always yes (the
        generated stub's static/dynamic flags already had their say) —
        the paper's production behaviour, where the programmer must
        "decide, and often guess".  Under "adaptive", migrate only when
        the learned latency exceeds the migration overhead; unknown
        operations migrate once to be measured.
        """
        if self.migration_policy != "adaptive":
            return True
        expected = self.service_latency.get(soap_action)
        if expected is None:
            return True  # explore: measure it the expensive-safe way
        migrate = expected >= self.migration_threshold
        self.counters.incr("migration.decisions."
                           + ("async" if migrate else "sync"))
        return migrate

    def message_priority(self, task: "TaskRecord", default: int) -> int:
        """Priority for a fiber message of ``task`` under the current
        scheduling policy.

        FCFS returns ``default`` (queue order alone decides, as in the
        paper's production system).  EDF maps the task's remaining
        slack onto the priority scale so tighter deadlines are
        delivered first.
        """
        if self.scheduling_policy != "edf" or task.deadline is None:
            return default
        slack = task.deadline - self.cluster.kernel.now
        if slack <= 0:
            return 1
        # linear map of [0, horizon] onto priorities [1, 8]
        fraction = min(1.0, slack / self.edf_horizon)
        return 1 + int(fraction * 7)

    # ------------------------------------------------------------------
    # failure injection / operations
    # ------------------------------------------------------------------

    def _on_dead_letter(self, message) -> None:
        """A queue message exhausted its retries: if it drove a fiber,
        fail that fiber (and possibly its task) so nothing hangs."""
        workflow = self.workflows.get(message.service)
        if workflow is not None:
            workflow.on_message_dead_lettered(message)

    def fail_node(self, node_id: str) -> int:
        """Kill a node and reclaim its locks.

        Each backend decides what node death means for its locks via
        the public :meth:`LockManager.expire_node` API: the coordinator
        expires the node's sessions immediately (its failure detector —
        the whole point of replacing NFS locks), while file locks are
        left in place — NFS "is completely opaque", so a dead holder's
        lock file survives until its lease lapses and the recovery
        scanner reclaims it.
        """
        requeued = self.cluster.fail_node(node_id)
        self.locks.expire_node(node_id)
        self.recovery.on_node_failed(node_id)
        return requeued

    def restore_node(self, node_id: str) -> None:
        self.cluster.restore_node(node_id)

    # ------------------------------------------------------------------
    # monitoring hooks (called by WorkflowService)
    # ------------------------------------------------------------------

    def monitor_task_started(self, task: TaskRecord, now: float) -> None:
        self.task_concurrency.change(now, +1)
        self.fiber_concurrency.change(now, +1)  # the initial fiber
        self.counters.incr("tasks.started")
        self.counters.incr("fibers.started")

    def monitor_task_finished(self, task: TaskRecord, now: float) -> None:
        self.task_concurrency.change(now, -1)
        self.counters.incr(f"tasks.{task.status}")
        if task.duration is not None:
            self.counters.add("tasks.total_duration", task.duration)
        if task.span_id:
            self.cluster.tracer.end(task.span_id, end=now,
                                    status=task.status)

    def monitor_fiber_started(self, fiber, now: float) -> None:
        self.fiber_concurrency.change(now, +1)
        self.counters.incr("fibers.started")

    def monitor_fiber_finished(self, fiber, now: float) -> None:
        self.fiber_concurrency.change(now, -1)
        self.counters.incr(f"fibers.{fiber.status}")
        if fiber.span_id:
            self.cluster.tracer.end(fiber.span_id, end=now,
                                    status=fiber.status)

    def monitor_task_discarded(self, task: TaskRecord, now: float) -> None:
        """Roll back :meth:`monitor_task_started` after an aborted
        operation window discarded the freshly created task."""
        self.task_concurrency.change(now, -1)
        self.fiber_concurrency.change(now, -1)  # the initial fiber
        self.counters.incr("tasks.discarded")

    def monitor_fiber_discarded(self, fiber, now: float) -> None:
        self.fiber_concurrency.change(now, -1)
        self.counters.incr("fibers.discarded")

    # ------------------------------------------------------------------
    # metrics summary
    # ------------------------------------------------------------------

    def cache_hit_rates(self) -> Dict[str, float]:
        """Cluster-wide mutable/immutable fiber-cache hit rates
        (the paper's Section 4.2 measurement)."""
        out = {}
        for kind in ("mutable", "immutable"):
            hits = self.counters.get(f"cache.{kind}.hit")
            misses = self.counters.get(f"cache.{kind}.miss")
            total = hits + misses
            out[kind] = hits / total if total else 0.0
        return out

    def snapshot_stats(self) -> Optional[Dict[str, Any]]:
        """Aggregate incremental-snapshot (v2) statistics across every
        deployed workflow, plus the digest-cache hit rate; ``None``
        when no workflow uses v2 snapshots."""
        pipelines = [w.snapper for w in self.workflows.values()
                     if w.snapper is not None]
        if not pipelines:
            return None
        stats: Dict[str, Any] = {"format": "v2"}
        for pipeline in pipelines:
            for key, value in pipeline.stats_snapshot().items():
                if key == "dedup_ratio":
                    continue
                stats[key] = stats.get(key, 0) + value
        written = stats.get("written_bytes", 0)
        stats["dedup_ratio"] = (round(stats.get("raw_bytes", 0) / written, 3)
                                if written else 1.0)
        hits = self.counters.get("cache.digest.hit")
        misses = self.counters.get("cache.digest.miss")
        total = hits + misses
        stats["digest_cache_hit_rate"] = hits / total if total else 0.0
        return stats

    def summary(self) -> Dict[str, Any]:
        return {
            "virtual_time": self.cluster.kernel.now,
            "tasks": self.registry.counts(),
            "fibers_total": len(self.registry.fibers),
            "queue": {
                "enqueued": self.cluster.queue.enqueued,
                "delivered": self.cluster.queue.delivered,
                "redelivered": self.cluster.queue.redelivered,
                "duplicated": self.cluster.queue.duplicated,
                "dead_lettered": self.cluster.queue.dead_lettered,
                "mean_wait": self.cluster.queue.mean_wait(),
            },
            "store": self.store.stats_snapshot(),
            "faults": {
                "injected": self.cluster.counters.get("fault.injected"),
                "retries_scheduled": self.cluster.counters.get("retry.scheduled"),
                "operation_faults": self.cluster.counters.get("operation.faults"),
            },
            "sched": {
                "policy": self.cluster.queue.policy.name,
                "governor": self.governor.summary(),
                "admission": (self.cluster.admission.summary()
                              if self.cluster.admission is not None
                              else None),
                "aged_promotions": getattr(self.cluster.queue.policy,
                                           "aged_promotions", 0),
            },
            "cache": self.cache_hit_rates(),
            "snapshots": self.snapshot_stats(),
            "history": (self.history.summary()
                        if self.history is not None else None),
            "recovery": {"mode": self.recovery_mode,
                         **self.recovery.summary(),
                         "leases": self.locks.lease_stats()},
            "utilization": self.cluster.utilization(),
            "peak_task_concurrency": self.task_concurrency.peak,
            "peak_fiber_concurrency": self.fiber_concurrency.peak,
            "trace": self.cluster.trace.snapshot(),
            "spans": self.cluster.tracer.summary(),
        }

    def observability_report(self) -> Dict[str, Any]:
        """The plain-JSON observability report: metrics percentiles,
        span summary, trace-log health, cache hit rates."""
        from ..observe.export import json_report
        return json_report(self)
