"""WSDL documents: how BlueBox services describe themselves.

"Each service describes the operations it offers with an XML document
called a WSDL" (paper Section 1).  Vinz's ``deflink`` macro (Section
3.3) fetches a service's WSDL, parses it, and generates one Gozer
function per operation — including error stubs for operations it cannot
bridge.  This module provides the document model both sides share.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from .xmlmsg import XmlElement, qname


@dataclass
class WsdlParameter:
    """One input parameter of an operation."""

    name: str
    type: str = "string"  # string | number | boolean | list | map | any
    doc: str = ""
    required: bool = False


@dataclass
class WsdlOperation:
    """One operation a service publishes.

    ``soap_action`` is the routing key used on the wire (Listing 2's
    ``:soap-action "...:ListSessions"``).  ``faults`` lists the error
    QNames the operation may return — ``deflink`` arranges for these to
    be signalled as Gozer conditions.  ``bridgeable`` models the paper's
    "if for some reason an operation cannot be interacted with from a
    Gozer function": when false, deflink generates a stub that raises a
    *compile-time* error if used.
    """

    name: str
    doc: str = ""
    parameters: List[WsdlParameter] = field(default_factory=list)
    output: str = "any"
    faults: List[str] = field(default_factory=list)
    soap_action: str = ""
    bridgeable: bool = True

    def parameter_names(self) -> List[str]:
        return [p.name for p in self.parameters]


@dataclass
class WsdlDocument:
    """A service interface: namespace, port and operations."""

    service: str
    namespace: str
    port: str = "Main"
    doc: str = ""
    operations: Dict[str, WsdlOperation] = field(default_factory=dict)

    def add_operation(self, operation: WsdlOperation) -> WsdlOperation:
        if not operation.soap_action:
            operation.soap_action = f"{self.namespace}:{operation.name}"
        self.operations[operation.name] = operation
        return operation

    def fault_qname(self, local: str) -> str:
        return qname(self.namespace, local)

    # -- XML round trip ------------------------------------------------

    def to_element(self) -> XmlElement:
        root = XmlElement("definitions", {
            "service": self.service,
            "targetNamespace": self.namespace,
            "port": self.port,
        })
        if self.doc:
            root.append(XmlElement("documentation", text=self.doc))
        for op in self.operations.values():
            op_el = root.append(XmlElement("operation", {
                "name": op.name,
                "soapAction": op.soap_action,
                "output": op.output,
                "bridgeable": "true" if op.bridgeable else "false",
            }))
            if op.doc:
                op_el.append(XmlElement("documentation", text=op.doc))
            for param in op.parameters:
                op_el.append(XmlElement("part", {
                    "name": param.name,
                    "type": param.type,
                    "required": "true" if param.required else "false",
                }, text=param.doc or None))
            for fault in op.faults:
                op_el.append(XmlElement("fault", {"name": fault}))
        return root

    def to_xml(self) -> str:
        return self.to_element().to_xml()

    @classmethod
    def from_element(cls, root: XmlElement) -> "WsdlDocument":
        doc_el = root.child("documentation")
        wsdl = cls(
            service=root.attrs["service"],
            namespace=root.attrs["targetNamespace"],
            port=root.attrs.get("port", "Main"),
            doc=doc_el.text or "" if doc_el is not None else "",
        )
        for op_el in root.children:
            if op_el.tag != "operation":
                continue
            op_doc = op_el.child("documentation")
            operation = WsdlOperation(
                name=op_el.attrs["name"],
                soap_action=op_el.attrs.get("soapAction", ""),
                output=op_el.attrs.get("output", "any"),
                bridgeable=op_el.attrs.get("bridgeable", "true") == "true",
                doc=op_doc.text or "" if op_doc is not None else "",
            )
            for child in op_el.children:
                if child.tag == "part":
                    operation.parameters.append(WsdlParameter(
                        name=child.attrs["name"],
                        type=child.attrs.get("type", "string"),
                        required=child.attrs.get("required") == "true",
                        doc=child.text or "",
                    ))
                elif child.tag == "fault":
                    operation.faults.append(child.attrs["name"])
            wsdl.operations[operation.name] = operation
        return wsdl

    @classmethod
    def from_xml(cls, text: str) -> "WsdlDocument":
        return cls.from_element(XmlElement.from_xml(text))
