"""Monitoring: trace events and metrics.

"The underlying BlueBox platform provides monitoring and management
features" (paper Section 1).  The trace log is also how we regenerate
the paper's Figure 1 (sample workflow lifetime): every queue, instance,
fiber and persistence event is recorded with its virtual timestamp, and
the Figure-1 bench renders the sequence for one task.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

#: Fault-injection / robustness event kinds (recorded by the cluster
#: and the FaultInjector).  Every injected fault and every recovery
#: decision is observable in the trace:
#:
#: * ``fault.injected`` — the injector fired (action=drop/duplicate/
#:   delay/fail-write/fail-read/corrupt-read/crash/crash-on-persist);
#: * ``retry.scheduled`` — a failed delivery was re-scheduled with its
#:   backoff delay and attempt number;
#: * ``deadletter.enqueued`` — a message exhausted its RetryPolicy and
#:   moved to the dead-letter queue;
#: * ``operation-fault`` — an operation aborted mid-window (store
#:   fault) and its state was rolled back.
FAULT_INJECTED = "fault.injected"
RETRY_SCHEDULED = "retry.scheduled"
DEADLETTER_ENQUEUED = "deadletter.enqueued"
OPERATION_FAULT = "operation-fault"

FAULT_EVENT_KINDS = (FAULT_INJECTED, RETRY_SCHEDULED, DEADLETTER_ENQUEUED,
                     OPERATION_FAULT)


@dataclass
class TraceEvent:
    """One timestamped event."""

    time: float
    kind: str
    detail: Dict[str, Any] = field(default_factory=dict)

    def __repr__(self) -> str:
        bits = " ".join(f"{k}={v}" for k, v in self.detail.items())
        return f"[{self.time:10.3f}] {self.kind} {bits}"


class TraceLog:
    """An append-only event log with simple querying."""

    def __init__(self, enabled: bool = True, capacity: Optional[int] = None):
        self.enabled = enabled
        self.capacity = capacity
        self.events: List[TraceEvent] = []

    def record(self, time: float, kind: str, **detail: Any) -> None:
        if not self.enabled:
            return
        if self.capacity is not None and len(self.events) >= self.capacity:
            return
        self.events.append(TraceEvent(time, kind, detail))

    def of_kind(self, *kinds: str) -> List[TraceEvent]:
        wanted = set(kinds)
        return [e for e in self.events if e.kind in wanted]

    def where(self, predicate: Callable[[TraceEvent], bool]) -> List[TraceEvent]:
        return [e for e in self.events if predicate(e)]

    def for_task(self, task_id: str) -> List[TraceEvent]:
        return [e for e in self.events if e.detail.get("task") == task_id]

    def clear(self) -> None:
        self.events.clear()

    def signature(self, *kinds: str) -> Tuple[Tuple[Any, ...], ...]:
        """A hashable, order-preserving fingerprint of the event
        sequence, for bit-identical replay assertions: two runs of the
        same seeded fault campaign must produce equal signatures.
        Restrict to specific ``kinds`` to compare a sub-stream."""
        events = self.events if not kinds else self.of_kind(*kinds)
        return tuple(
            (e.time, e.kind, tuple(sorted((k, repr(v))
                                          for k, v in e.detail.items())))
            for e in events)

    def render(self, events: Optional[Iterable[TraceEvent]] = None) -> str:
        """Human-readable lifetime rendering (the Figure 1 format)."""
        return "\n".join(repr(e) for e in (events if events is not None
                                           else self.events))


class Counters:
    """Named monotonically increasing counters and simple gauges."""

    def __init__(self):
        self.counts: Dict[str, int] = {}
        self.sums: Dict[str, float] = {}

    def incr(self, name: str, amount: int = 1) -> None:
        self.counts[name] = self.counts.get(name, 0) + amount

    def add(self, name: str, amount: float) -> None:
        self.sums[name] = self.sums.get(name, 0.0) + amount

    def get(self, name: str) -> int:
        return self.counts.get(name, 0)

    def get_sum(self, name: str) -> float:
        return self.sums.get(name, 0.0)

    def mean(self, sum_name: str, count_name: str) -> float:
        n = self.counts.get(count_name, 0)
        return self.sums.get(sum_name, 0.0) / n if n else 0.0

    def snapshot(self) -> Dict[str, Any]:
        return {"counts": dict(self.counts), "sums": dict(self.sums)}


class ConcurrencySampler:
    """Tracks a time-weighted concurrency profile.

    Used by the production-day bench (S5a) to report how many tasks and
    fibers were simultaneously in flight.
    """

    def __init__(self):
        self._level = 0
        self._last_time = 0.0
        self._area = 0.0
        self.peak = 0

    def change(self, now: float, delta: int) -> None:
        self._area += self._level * (now - self._last_time)
        self._last_time = now
        self._level += delta
        self.peak = max(self.peak, self._level)

    @property
    def level(self) -> int:
        return self._level

    def mean_until(self, now: float) -> float:
        area = self._area + self._level * (now - self._last_time)
        return area / now if now > 0 else 0.0
