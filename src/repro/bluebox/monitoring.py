"""Monitoring: trace events and metrics.

"The underlying BlueBox platform provides monitoring and management
features" (paper Section 1).  The trace log is also how we regenerate
the paper's Figure 1 (sample workflow lifetime): every queue, instance,
fiber and persistence event is recorded with its virtual timestamp, and
the Figure-1 bench renders the sequence for one task.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

#: Fault-injection / robustness event kinds (recorded by the cluster
#: and the FaultInjector).  Every injected fault and every recovery
#: decision is observable in the trace:
#:
#: * ``fault.injected`` — the injector fired (action=drop/duplicate/
#:   delay/fail-write/fail-read/corrupt-read/crash/crash-on-persist);
#: * ``retry.scheduled`` — a failed delivery was re-scheduled with its
#:   backoff delay and attempt number;
#: * ``deadletter.enqueued`` — a message exhausted its RetryPolicy and
#:   moved to the dead-letter queue;
#: * ``operation-fault`` — an operation aborted mid-window (store
#:   fault) and its state was rolled back.
FAULT_INJECTED = "fault.injected"
RETRY_SCHEDULED = "retry.scheduled"
DEADLETTER_ENQUEUED = "deadletter.enqueued"
OPERATION_FAULT = "operation-fault"

FAULT_EVENT_KINDS = (FAULT_INJECTED, RETRY_SCHEDULED, DEADLETTER_ENQUEUED,
                     OPERATION_FAULT)


@dataclass
class TraceEvent:
    """One timestamped event."""

    time: float
    kind: str
    detail: Dict[str, Any] = field(default_factory=dict)

    def __repr__(self) -> str:
        bits = " ".join(f"{k}={v}" for k, v in self.detail.items())
        return f"[{self.time:10.3f}] {self.kind} {bits}"


class TraceTruncatedError(RuntimeError):
    """A replay assertion was attempted on a truncated trace.

    A capacity-bounded :class:`TraceLog` that dropped events cannot
    vouch for bit-identical replay — comparing signatures of truncated
    streams would pass vacuously.
    """


class TraceLog:
    """An append-only event log with simple querying.

    When ``capacity`` is bounded, events past the cap are counted in
    ``dropped`` rather than silently discarded, and
    :meth:`signature` refuses to fingerprint the truncated stream.
    """

    def __init__(self, enabled: bool = True, capacity: Optional[int] = None):
        self.enabled = enabled
        self.capacity = capacity
        self.events: List[TraceEvent] = []
        #: events rejected because the log was full
        self.dropped = 0

    def record(self, time: float, kind: str, **detail: Any) -> None:
        if not self.enabled:
            return
        if self.capacity is not None and len(self.events) >= self.capacity:
            self.dropped += 1
            return
        self.events.append(TraceEvent(time, kind, detail))

    def of_kind(self, *kinds: str) -> List[TraceEvent]:
        wanted = set(kinds)
        return [e for e in self.events if e.kind in wanted]

    def where(self, predicate: Callable[[TraceEvent], bool]) -> List[TraceEvent]:
        return [e for e in self.events if predicate(e)]

    def for_task(self, task_id: str) -> List[TraceEvent]:
        return [e for e in self.events if e.detail.get("task") == task_id]

    def clear(self) -> None:
        self.events.clear()
        self.dropped = 0

    def snapshot(self) -> Dict[str, Any]:
        """Log health for summaries: event count, capacity, drops."""
        return {"events": len(self.events), "capacity": self.capacity,
                "dropped": self.dropped}

    def signature(self, *kinds: str) -> Tuple[Tuple[Any, ...], ...]:
        """A hashable, order-preserving fingerprint of the event
        sequence, for bit-identical replay assertions: two runs of the
        same seeded fault campaign must produce equal signatures.
        Restrict to specific ``kinds`` to compare a sub-stream.

        Raises :class:`TraceTruncatedError` if events were dropped —
        a fingerprint of a truncated stream would let replay
        assertions pass vacuously.
        """
        if self.dropped:
            raise TraceTruncatedError(
                f"trace log dropped {self.dropped} events "
                f"(capacity={self.capacity}); its signature would not "
                f"cover the full event stream")
        events = self.events if not kinds else self.of_kind(*kinds)
        return tuple(
            (e.time, e.kind, tuple(sorted((k, repr(v))
                                          for k, v in e.detail.items())))
            for e in events)

    def render(self, events: Optional[Iterable[TraceEvent]] = None) -> str:
        """Human-readable lifetime rendering (the Figure 1 format)."""
        return "\n".join(repr(e) for e in (events if events is not None
                                           else self.events))


class Counters:
    """Named monotonically increasing counters and simple gauges.

    Mutation is lock-guarded: the read-modify-write on the plain dicts
    races in real-threaded cluster mode, and fault-campaign summary
    counters must be exact, not approximately right.
    """

    def __init__(self):
        self.counts: Dict[str, int] = {}
        self.sums: Dict[str, float] = {}
        self._lock = threading.Lock()

    def incr(self, name: str, amount: int = 1) -> None:
        with self._lock:
            self.counts[name] = self.counts.get(name, 0) + amount

    def add(self, name: str, amount: float) -> None:
        with self._lock:
            self.sums[name] = self.sums.get(name, 0.0) + amount

    def get(self, name: str) -> int:
        return self.counts.get(name, 0)

    def get_sum(self, name: str) -> float:
        return self.sums.get(name, 0.0)

    def mean(self, sum_name: str, count_name: str) -> float:
        n = self.counts.get(count_name, 0)
        return self.sums.get(sum_name, 0.0) / n if n else 0.0

    def snapshot(self) -> Dict[str, Any]:
        with self._lock:
            return {"counts": dict(self.counts), "sums": dict(self.sums)}


class ConcurrencySampler:
    """Tracks a time-weighted concurrency profile.

    Used by the production-day bench (S5a) to report how many tasks and
    fibers were simultaneously in flight.  The mean is taken over the
    elapsed time since the *first sample*, not since absolute t=0 —
    a clock that doesn't start at zero (``VirtualClock(start=...)``,
    real-clock mode) must not dilute the average.
    """

    def __init__(self):
        self._level = 0
        self._start: Optional[float] = None
        self._last_time = 0.0
        self._area = 0.0
        self.peak = 0

    def change(self, now: float, delta: int) -> None:
        if self._start is None:
            self._start = now
            self._last_time = now
        self._area += self._level * (now - self._last_time)
        self._last_time = now
        self._level += delta
        self.peak = max(self.peak, self._level)

    @property
    def level(self) -> int:
        return self._level

    def mean_until(self, now: float) -> float:
        if self._start is None:
            return 0.0
        area = self._area + self._level * (now - self._last_time)
        elapsed = now - self._start
        return area / elapsed if elapsed > 0 else 0.0
