"""Service abstractions: what runs on BlueBox nodes.

"Operations are the only way to interact with a service in BlueBox and
the only way instances of services can interact with each other"
(paper Section 3.1).  A :class:`Service` publishes a WSDL and a set of
operation handlers; the cluster instantiates it on nodes and routes
queue messages to instances.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional

from .messagequeue import PRIORITY_NORMAL, ReplyTo
from .wsdl import WsdlDocument, WsdlOperation, WsdlParameter


class ServiceFault(Exception):
    """An operation-level error, identified by a QName.

    These travel in response messages and are re-signalled as Gozer
    conditions on the requesting side (paper Section 3.7: "the response
    from the service might be an error, conveniently expressed as an
    XML QName").
    """

    def __init__(self, qname: str, message: str = "", data: Any = None):
        super().__init__(f"{qname}: {message}")
        self.qname = qname
        self.message = message
        self.data = data


class OperationContext:
    """Everything a handler may do while processing one message.

    * ``charge(seconds)`` — consume simulated processing time; the
      instance slot stays busy for the total charged duration.
    * ``send(...)`` — place a new message on the queue.
    * ``now`` — current virtual time.
    * ``node``/``instance`` — where this handler is running (fiber
      cache lookups are per-instance, Section 4.2).
    """

    def __init__(self, cluster, instance, message):
        self.cluster = cluster
        self.instance = instance
        self.message = message
        self.charged = 0.0
        #: the current causal span (the operation window, or — while a
        #: fiber advances — its fiber-run span).  Sends from this
        #: context parent their queue-hop spans here; 0 when tracing
        #: is disabled.
        self.span_id = 0
        #: buffered outgoing messages: (extra_delay, send kwargs).
        #: Flushed when the simulated window ends — message sends are
        #: transactional with the operation, so a node failure
        #: mid-window sends nothing (the redelivered operation will).
        self.outbox = []
        #: run when the operation's simulated window ends normally
        self.completion_hooks = []
        #: run if the node dies before the window ends
        self.abort_hooks = []

    def on_complete(self, fn: Callable[[], None]) -> None:
        """Register a hook for the end of this operation's simulated
        processing window (e.g. releasing a fiber lock held for the
        whole window)."""
        self.completion_hooks.append(fn)

    def on_abort(self, fn: Callable[[], None]) -> None:
        """Register a hook for node failure mid-window (e.g. a lock
        coordinator expiring the dead node's session)."""
        self.abort_hooks.append(fn)

    @property
    def now(self) -> float:
        return self.cluster.kernel.now

    @property
    def node(self):
        return self.instance.node

    def charge(self, seconds: float) -> None:
        if seconds < 0:
            raise ValueError("cannot charge negative time")
        self.charged += seconds

    def send(self, service: str, operation: str, body: Dict[str, Any],
             priority: int = PRIORITY_NORMAL,
             reply_to: Optional[ReplyTo] = None,
             max_attempts: int = 10,
             affinity: Optional[str] = None,
             retry_policy: Optional[Any] = None,
             parent_span: Optional[int] = None) -> None:
        """Queue a message, to be placed on the queue when this
        operation's simulated processing window ends.  The outgoing
        message's causal parent is captured *now* (``parent_span``
        defaulting to the context's current span), so causality is
        preserved even though the send is deferred to window end."""
        self.outbox.append((0.0, dict(service=service, operation=operation,
                                      body=body, priority=priority,
                                      reply_to=reply_to,
                                      max_attempts=max_attempts,
                                      affinity=affinity,
                                      retry_policy=retry_policy,
                                      parent_span=(self.span_id
                                                   if parent_span is None
                                                   else parent_span))))

    def send_later(self, delay: float, service: str, operation: str,
                   body: Dict[str, Any],
                   priority: int = PRIORITY_NORMAL,
                   affinity: Optional[str] = None) -> None:
        """Like :meth:`send`, delayed a further ``delay`` seconds after
        the window ends (used for timers like workflow-sleep)."""
        self.outbox.append((delay, dict(service=service, operation=operation,
                                        body=body, priority=priority,
                                        affinity=affinity,
                                        parent_span=self.span_id)))

    def flush_outbox(self) -> None:
        """Dispatch buffered sends (called by the cluster at window
        end, or immediately for inline synchronous calls)."""
        outbox, self.outbox = self.outbox, []
        for delay, kwargs in outbox:
            if delay > 0:
                self.cluster.kernel.schedule(
                    delay, lambda kw=kwargs: self.cluster.send(**kw))
            else:
                self.cluster.send(**kwargs)

    def defer(self) -> Deferred:
        """Capture this message's reply for later resolution."""
        return Deferred(self.cluster, self.message.reply_to)

    def trace(self, kind: str, **detail: Any) -> None:
        self.cluster.trace.record(self.now, kind, node=self.instance.node.id,
                                  **detail)


class Deferred:
    """Returned by a handler to postpone its reply.

    Synchronous workflow operations (Run, Call, JoinProcess) cannot
    answer until the task finishes; the handler captures the message's
    ``reply_to`` in a :class:`Deferred` and resolves it later.
    """

    def __init__(self, cluster, reply_to: Optional[ReplyTo]):
        self._cluster = cluster
        self._reply_to = reply_to
        self.resolved = False

    def resolve(self, value: Any = None) -> None:
        self._send(ResponseEnvelope(value=value))

    def fail(self, qname: str, message: str = "") -> None:
        self._send(ResponseEnvelope(fault_qname=qname, fault_message=message))

    def _send(self, envelope: "ResponseEnvelope") -> None:
        if self.resolved:
            return
        self.resolved = True
        if self._reply_to is not None:
            self._cluster._route_reply(self._reply_to, envelope)


class Requeue:
    """Returned by a handler to put its message back on the queue.

    Used by AwakeFiber when the fiber's lock is held elsewhere: "a
    running AwakeFiber places a strict limit on how long it will wait
    for its turn to execute the fiber before giving up and placing
    itself back on the message queue for later delivery" (paper
    Section 5).  The handler charges the patience time it spent waiting
    before giving up; ``delay`` is the re-delivery delay.
    """

    def __init__(self, delay: float = 0.0):
        self.delay = delay


#: handler signature: (context, body-dict) -> result value
OperationHandler = Callable[[OperationContext, Dict[str, Any]], Any]


class Service:
    """Base class for BlueBox services.

    Subclasses (or instances built with :meth:`add_operation`) register
    handlers per operation name.  ``base_latency`` is the default
    simulated processing cost charged for every operation on top of
    whatever the handler charges.
    """

    def __init__(self, name: str, namespace: Optional[str] = None,
                 doc: str = "", base_latency: float = 0.001):
        self.name = name
        self.namespace = namespace or f"urn:{name.lower()}-service"
        self.base_latency = base_latency
        self._handlers: Dict[str, OperationHandler] = {}
        self.wsdl = WsdlDocument(service=name, namespace=self.namespace,
                                 port=name, doc=doc)

    def add_operation(self, name: str, handler: OperationHandler,
                      doc: str = "", parameters=None, output: str = "any",
                      faults=None, bridgeable: bool = True) -> None:
        """Register an operation and publish it in the WSDL."""
        self._handlers[name] = handler
        self.wsdl.add_operation(WsdlOperation(
            name=name, doc=doc,
            parameters=[p if isinstance(p, WsdlParameter) else WsdlParameter(p)
                        for p in (parameters or [])],
            output=output,
            faults=list(faults or []),
            bridgeable=bridgeable,
        ))

    def operation_names(self):
        return list(self._handlers)

    def handle(self, context: OperationContext, operation: str,
               body: Dict[str, Any]) -> Any:
        handler = self._handlers.get(operation)
        if handler is None:
            raise ServiceFault(self.wsdl.fault_qname("NoSuchOperation"),
                               f"{self.name} has no operation {operation}")
        context.charge(self.base_latency)
        return handler(context, body)

    def on_deployed(self, cluster) -> None:
        """Hook: called once when the service is deployed to a cluster."""

    def __repr__(self) -> str:
        return f"<Service {self.name} ops={sorted(self._handlers)}>"


def simple_service(name: str, operations: Dict[str, OperationHandler],
                   namespace: Optional[str] = None,
                   base_latency: float = 0.001,
                   parameters: Optional[Dict[str, list]] = None) -> Service:
    """Convenience constructor used heavily by tests and workloads.

    ``parameters`` optionally maps operation name -> list of parameter
    names to publish in the WSDL (deflink generates ``&key`` arguments
    from these).
    """
    service = Service(name, namespace=namespace, base_latency=base_latency)
    parameters = parameters or {}
    for op_name, handler in operations.items():
        service.add_operation(op_name, handler,
                              parameters=parameters.get(op_name, []))
    return service


@dataclass
class ResponseEnvelope:
    """What goes back to a requester: a value or a fault.

    ``duration`` (simulated seconds of processing) is local metadata —
    it never travels in the serialized body; the adaptive-migration
    learner reads it from synchronous inline calls.
    """

    value: Any = None
    fault_qname: Optional[str] = None
    fault_message: str = ""
    duration: Optional[float] = None

    @property
    def ok(self) -> bool:
        return self.fault_qname is None

    def to_body(self) -> Dict[str, Any]:
        if self.ok:
            return {"result": self.value}
        return {"fault": self.fault_qname, "message": self.fault_message}

    @classmethod
    def from_body(cls, body: Dict[str, Any]) -> "ResponseEnvelope":
        if "fault" in body:
            return cls(fault_qname=body["fault"],
                       fault_message=body.get("message", ""))
        return cls(value=body.get("result"))
