"""XML messages — the lingua franca of BlueBox services.

"Service instances communicate by placing XML messages on a message
queue" (paper Section 1).  We model a message body as an ordered tree
(:class:`XmlElement`) with conversion to and from real XML text and to
and from Gozer data structures ("the function is capable of coping with
complex XML trees by using corresponding Gozer data structures",
Section 3.3).

QNames use the James Clark notation the paper's Listing 6 shows:
``{urn:service}Connect``.
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from typing import Any, Dict, List, Optional, Tuple

from ..lang.symbols import Keyword, Symbol


def qname(namespace: str, local: str) -> str:
    """Build a ``{namespace}local`` QName string."""
    return f"{{{namespace}}}{local}" if namespace else local


def parse_qname(name: str) -> Tuple[Optional[str], str]:
    """Split a QName into (namespace, local-name)."""
    if name.startswith("{"):
        ns, _, local = name[1:].partition("}")
        return ns, local
    return None, name


class XmlElement:
    """A lightweight XML element: tag, attributes, children or text."""

    __slots__ = ("tag", "attrs", "children", "text")

    def __init__(self, tag: str, attrs: Optional[Dict[str, str]] = None,
                 children: Optional[List["XmlElement"]] = None,
                 text: Optional[str] = None):
        self.tag = tag
        self.attrs = attrs or {}
        self.children = children or []
        self.text = text

    def child(self, tag: str) -> Optional["XmlElement"]:
        for c in self.children:
            if c.tag == tag or parse_qname(c.tag)[1] == tag:
                return c
        return None

    def append(self, element: "XmlElement") -> "XmlElement":
        self.children.append(element)
        return element

    def to_xml(self) -> str:
        return ET.tostring(self._to_et(), encoding="unicode")

    def _to_et(self) -> ET.Element:
        el = ET.Element(self.tag, dict(self.attrs))
        if self.text is not None:
            el.text = self.text
        for child in self.children:
            el.append(child._to_et())
        return el

    @classmethod
    def from_xml(cls, text: str) -> "XmlElement":
        return cls._from_et(ET.fromstring(text))

    @classmethod
    def _from_et(cls, el: ET.Element) -> "XmlElement":
        return cls(el.tag, dict(el.attrib),
                   [cls._from_et(c) for c in el],
                   el.text if el.text and el.text.strip() else None)

    def __repr__(self) -> str:
        return f"<XmlElement {self.tag} attrs={len(self.attrs)} children={len(self.children)}>"

    def __eq__(self, other) -> bool:
        return (isinstance(other, XmlElement) and self.tag == other.tag
                and self.attrs == other.attrs and self.text == other.text
                and self.children == other.children)


# ---------------------------------------------------------------------------
# Gozer data <-> XML trees
# ---------------------------------------------------------------------------

def value_to_element(tag: str, value: Any) -> XmlElement:
    """Encode a Gozer value as an XML element tree.

    Scalars become text; dicts become child elements keyed by name;
    lists become repeated ``<item>`` children.  This is the encoding
    ``deflink``-generated stubs use for complex parameters.
    """
    el = XmlElement(tag)
    if value is None:
        el.attrs["nil"] = "true"
    elif isinstance(value, bool):
        el.text = "true" if value else "false"
        el.attrs["type"] = "boolean"
    elif isinstance(value, (int, float)):
        el.text = repr(value)
        el.attrs["type"] = "number"
    elif isinstance(value, str):
        el.attrs["type"] = "string"
        # \r must also be escaped (XML parsers normalize it to \n), and
        # whitespace-only strings too (the element model treats
        # whitespace-only text as absent)
        if value.strip() == "" or any(ord(c) < 0x20 and c not in "\t\n"
                                      for c in value):
            # XML 1.0 cannot carry most control characters as text;
            # escape such strings (and distinguish "" from absent text)
            el.attrs["enc"] = "escaped"
            # unicode_escape leaves plain spaces alone, so a whitespace-only
            # string would still be dropped by the parser; escape spaces too
            # (safe: literal backslashes are already doubled at this point)
            el.text = (value.encode("unicode_escape").decode("ascii")
                       .replace(" ", "\\x20"))
        else:
            el.text = value
    elif isinstance(value, (Symbol, Keyword)):
        el.text = value.name
        el.attrs["type"] = "symbol" if isinstance(value, Symbol) else "keyword"
    elif isinstance(value, dict):
        el.attrs["type"] = "map"
        for k, v in value.items():
            el.append(value_to_element(_map_key(k), v))
    elif isinstance(value, (list, tuple)):
        el.attrs["type"] = "list"
        for item in value:
            el.append(value_to_element("item", item))
    else:
        el.text = str(value)
    return el


def element_to_value(el: XmlElement) -> Any:
    """Decode :func:`value_to_element` output back into Gozer data."""
    if el.attrs.get("nil") == "true":
        return None
    kind = el.attrs.get("type")
    if kind == "string":
        text = el.text or ""
        if el.attrs.get("enc") == "escaped":
            return text.encode("ascii").decode("unicode_escape")
        return text
    if kind == "boolean":
        return el.text == "true"
    if kind == "number":
        text = el.text or "0"
        return float(text) if ("." in text or "e" in text or "inf" in text) else int(text)
    if kind == "symbol":
        return Symbol(el.text or "")
    if kind == "keyword":
        return Keyword(el.text or "")
    if kind == "map":
        return {parse_qname(c.tag)[1]: element_to_value(c) for c in el.children}
    if kind == "list":
        return [element_to_value(c) for c in el.children]
    return el.text


def _map_key(key: Any) -> str:
    if isinstance(key, (Symbol, Keyword)):
        return key.name
    return str(key)


class ServiceMessage:
    """A service request/response body (paper Listing 2's ``msg``).

    Behaves like a name -> value map with Groovy-flavoured ``set``/
    ``get`` methods, since workflow code manipulates it through host
    interop: ``(. msg (set "FilterParams" FilterParams))``.
    """

    def __init__(self, operation: str, values: Optional[Dict[str, Any]] = None):
        self.operation = operation
        self.values: Dict[str, Any] = dict(values or {})

    def set(self, name: str, value: Any) -> None:
        self.values[name] = value

    def get(self, name: str, default: Any = None) -> Any:
        return self.values.get(name, default)

    def to_element(self) -> XmlElement:
        root = XmlElement(self.operation)
        for name, value in self.values.items():
            root.append(value_to_element(name, value))
        return root

    def to_xml(self) -> str:
        return self.to_element().to_xml()

    @classmethod
    def from_element(cls, el: XmlElement) -> "ServiceMessage":
        values = {parse_qname(c.tag)[1]: element_to_value(c) for c in el.children}
        return cls(parse_qname(el.tag)[1], values)

    @classmethod
    def from_xml(cls, text: str) -> "ServiceMessage":
        return cls.from_element(XmlElement.from_xml(text))

    def __repr__(self) -> str:
        return f"<ServiceMessage {self.operation} {self.values!r}>"

    def __eq__(self, other) -> bool:
        return (isinstance(other, ServiceMessage)
                and self.operation == other.operation
                and self.values == other.values)
