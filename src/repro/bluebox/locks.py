"""Distributed locks: the single-runner guarantee for fibers.

Paper Section 4.2: "Another obvious requirement was a way to prevent a
single fiber from being run by different JVMs at the same time ...
distributed locks would be required."  The paper ships NFS file locks
("simple and effective, but completely opaque", with per-NFS-server
quirks) and is replacing them with an Apache-ZooKeeper-based
implementation.  We build both:

* :class:`FileLockManager` — advisory lock entries in the shared store
  (the NFS stand-in), including an optional *release visibility delay*
  to model the NFS attribute-cache quirk the paper complains about;
* :class:`CoordinatorLockManager` — a ZooKeeper-like central
  coordinator: sessions own ephemeral locks, and expiring a session
  (node death) releases everything it held.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Set, Tuple


class LockManager:
    """Abstract distributed lock manager."""

    def try_acquire(self, key: str, owner: str) -> bool:
        """Attempt to take the lock; non-blocking."""
        raise NotImplementedError

    def release(self, key: str, owner: str) -> bool:
        """Release a held lock; returns False if not held by ``owner``."""
        raise NotImplementedError

    def holder(self, key: str) -> Optional[str]:
        raise NotImplementedError

    def held(self, key: str) -> bool:
        return self.holder(key) is not None


class FileLockManager(LockManager):
    """NFS-file-style locks stored as entries in the shared store.

    ``release_visibility_delay`` models the NFS quirk: after a release,
    other clients may still *see* the lock as held for a short window
    (attribute caching).  The delay is in the owning clock's units; pass
    ``clock_now`` to enable it.
    """

    LOCK_PREFIX = "locks/"

    def __init__(self, store, clock_now: Optional[Callable[[], float]] = None,
                 release_visibility_delay: float = 0.0):
        self.store = store
        self.clock_now = clock_now or (lambda: 0.0)
        self.release_visibility_delay = release_visibility_delay
        #: (key -> (release_time, last_owner)) for the visibility quirk
        self._recently_released: Dict[str, Tuple[float, str]] = {}
        # statistics
        self.acquisitions = 0
        self.contentions = 0

    def _key(self, key: str) -> str:
        return self.LOCK_PREFIX + key

    def try_acquire(self, key: str, owner: str) -> bool:
        skey = self._key(key)
        if self.store.exists(skey):
            current = self.store.read(skey).decode()
            if current == owner:
                return True  # re-entrant
            self.contentions += 1
            return False
        if self.release_visibility_delay > 0:
            stale = self._recently_released.get(key)
            if stale is not None:
                release_time, last_owner = stale
                now = self.clock_now()
                if now < release_time + self.release_visibility_delay \
                        and last_owner != owner:
                    # the quirk: a just-released lock still looks held
                    self.contentions += 1
                    return False
                del self._recently_released[key]
        self.store.write(skey, owner.encode())
        self.acquisitions += 1
        return True

    def release(self, key: str, owner: str) -> bool:
        skey = self._key(key)
        if not self.store.exists(skey):
            return False
        if self.store.read(skey).decode() != owner:
            return False
        self.store.delete(skey)
        if self.release_visibility_delay > 0:
            self._recently_released[key] = (self.clock_now(), owner)
        return True

    def holder(self, key: str) -> Optional[str]:
        skey = self._key(key)
        if not self.store.exists(skey):
            return None
        return self.store.read(skey).decode()

    def force_release(self, key: str) -> None:
        """Administrative unlock (the opaque NFS escape hatch)."""
        self.store.delete(self._key(key))

    def stale_visibility_remaining(self, key: str) -> float:
        """Seconds until a released-but-cached lock looks free.

        Discrete-event clients cannot busy-wait (the virtual clock only
        advances between events), so they *charge* this time and then
        call :meth:`expire_visibility` — modelling a blocking wait for
        the NFS attribute cache to refresh.
        """
        if self.release_visibility_delay <= 0:
            return 0.0
        stale = self._recently_released.get(key)
        if stale is None or self.store.exists(self._key(key)):
            return 0.0
        release_time, _owner = stale
        return max(0.0, release_time + self.release_visibility_delay
                   - self.clock_now())

    def expire_visibility(self, key: str) -> None:
        """Drop the visibility-cache entry (the wait is over)."""
        self._recently_released.pop(key, None)


class CoordinatorLockManager(LockManager):
    """A ZooKeeper-like coordinator: sessions + ephemeral locks.

    Owners register a *session*; locks are ephemeral nodes owned by a
    session.  Killing a session (the coordinator noticing a dead node)
    atomically releases all of its locks — removing the opaque stale-
    lock problem the paper attributes to NFS file locks.
    """

    def __init__(self):
        self._locks: Dict[str, str] = {}  # key -> session owner
        self._sessions: Dict[str, Set[str]] = {}  # owner -> keys held
        # statistics
        self.acquisitions = 0
        self.contentions = 0
        self.expired_sessions = 0

    def ensure_session(self, owner: str) -> None:
        self._sessions.setdefault(owner, set())

    def try_acquire(self, key: str, owner: str) -> bool:
        self.ensure_session(owner)
        current = self._locks.get(key)
        if current is None:
            self._locks[key] = owner
            self._sessions[owner].add(key)
            self.acquisitions += 1
            return True
        if current == owner:
            return True
        self.contentions += 1
        return False

    def release(self, key: str, owner: str) -> bool:
        if self._locks.get(key) != owner:
            return False
        del self._locks[key]
        self._sessions.get(owner, set()).discard(key)
        return True

    def holder(self, key: str) -> Optional[str]:
        return self._locks.get(key)

    def expire_session(self, owner: str) -> List[str]:
        """Session death: release every lock the owner held."""
        keys = sorted(self._sessions.pop(owner, set()))
        for key in keys:
            if self._locks.get(key) == owner:
                del self._locks[key]
        if keys:
            self.expired_sessions += 1
        return keys

    def session_locks(self, owner: str) -> List[str]:
        return sorted(self._sessions.get(owner, set()))
