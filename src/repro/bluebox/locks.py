"""Distributed locks: the single-runner guarantee for fibers.

Paper Section 4.2: "Another obvious requirement was a way to prevent a
single fiber from being run by different JVMs at the same time ...
distributed locks would be required."  The paper ships NFS file locks
("simple and effective, but completely opaque", with per-NFS-server
quirks) and is replacing them with an Apache-ZooKeeper-based
implementation.  We build both:

* :class:`FileLockManager` — advisory lock entries in the shared store
  (the NFS stand-in), including an optional *release visibility delay*
  to model the NFS attribute-cache quirk the paper complains about;
* :class:`CoordinatorLockManager` — a ZooKeeper-like central
  coordinator: sessions own ephemeral locks, and expiring a session
  (node death) releases everything it held.

Both backends additionally carry **leases with fencing tokens**
(Netherite-style ownership): every grant stamps the lock with a
monotonically increasing per-key token and a TTL on the virtual clock,
renewed by the holder's heartbeats.  A holder that goes silent — a
crashed node cannot run release hooks, which is exactly the paper's
"completely opaque" complaint — loses the lock when the lease lapses,
and any write it attempts afterwards is rejected by the fencing check
(`fence_valid`).  The public :meth:`LockManager.expire_lock` /
:meth:`LockManager.expire_node` APIs are the one sanctioned way to
break ownership; both notify the ``lease_breaker`` *before* the lock
changes hands so the zombie's operation window is aborted (and its
state rolled back) before a new owner can read anything.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Set, Tuple


@dataclass
class Lease:
    """Ownership of one lock for a bounded (virtual) time.

    ``token`` is the key's fencing token at grant time: a per-key
    counter that only ever increases, so a write stamped with an old
    token can be recognized as coming from a superseded owner.
    """

    key: str
    owner: str
    token: int
    granted_at: float
    expires_at: float
    #: virtual time of the most recent grant or heartbeat renewal
    renewed_at: float = 0.0

    def remaining(self, now: float) -> float:
        return self.expires_at - now


class LockManager:
    """Abstract distributed lock manager with lease/fencing support.

    Subclasses implement the storage of lock entries (shared-store
    files, coordinator sessions); the lease bookkeeping lives here so
    both backends expose one recovery surface:

    * :meth:`configure_leases` — enable TTLs on a virtual clock;
    * :meth:`renew_owner` — heartbeat: extend every lease an owner holds;
    * :meth:`expire_lock` / :meth:`expire_node` — the public APIs for
      breaking ownership (scanner steals, coordinator failure
      detection);
    * :meth:`fencing_token` / :meth:`fence_valid` — zombie-writer
      rejection;
    * :meth:`abandon` — a dying holder's lock entry survives the crash
      (the "dirty" crash model: dead JVMs do not run unlock hooks).
    """

    def __init__(self):
        self.clock_now: Callable[[], float] = lambda: 0.0
        #: lease TTL in virtual seconds; 0 disables expiry (leases are
        #: still tracked — they are the held-locks registry — but never
        #: lapse)
        self.lease_ttl: float = 0.0
        #: how often holders renew (the cluster schedules heartbeats
        #: for operation windows longer than this)
        self.heartbeat_interval: float = 0.0
        #: key -> active lease (exactly the currently held locks)
        self._leases: Dict[str, Lease] = {}
        #: key -> last granted fencing token (monotonic, never reset)
        self._tokens: Dict[str, int] = {}
        #: called with each newly granted Lease (arms the recovery
        #: scanner)
        self.lease_listener: Optional[Callable[[Lease], None]] = None
        #: called with (key, owner, reason) *before* an expire/steal
        #: removes the lock, so the cluster can abort the zombie's
        #: in-flight window (rolling its state back) before the new
        #: owner reads anything
        self.lease_breaker: Optional[Callable[[str, str, str], None]] = None
        # statistics
        self.leases_granted = 0
        self.leases_renewed = 0
        self.leases_expired = 0
        self.leases_stolen = 0
        self.locks_abandoned = 0
        self.fence_rejections = 0

    # -- backend interface -------------------------------------------------

    def try_acquire(self, key: str, owner: str) -> bool:
        """Attempt to take the lock; non-blocking."""
        raise NotImplementedError

    def release(self, key: str, owner: str) -> bool:
        """Release a held lock; returns False if not held by ``owner``."""
        raise NotImplementedError

    def holder(self, key: str) -> Optional[str]:
        raise NotImplementedError

    def held(self, key: str) -> bool:
        return self.holder(key) is not None

    def _remove_entry(self, key: str, owner: str) -> None:
        """Forcibly remove the backend's lock entry (expire/steal)."""
        raise NotImplementedError

    # -- lease configuration ----------------------------------------------

    def configure_leases(self, ttl: float,
                         clock_now: Optional[Callable[[], float]] = None,
                         heartbeat_interval: Optional[float] = None) -> None:
        """Switch on lease expiry: locks lapse ``ttl`` virtual seconds
        after their last grant or heartbeat.  ``heartbeat_interval``
        defaults to ``ttl / 4`` so a healthy holder renews with margin.
        """
        self.lease_ttl = max(0.0, ttl)
        if clock_now is not None:
            self.clock_now = clock_now
        if heartbeat_interval is not None:
            self.heartbeat_interval = heartbeat_interval
        elif self.lease_ttl > 0:
            self.heartbeat_interval = self.lease_ttl / 4.0

    # -- lease bookkeeping (called by backends) ---------------------------

    def _grant(self, key: str, owner: str) -> Lease:
        """A fresh (non-re-entrant) acquisition: bump the fencing token
        and open a lease."""
        token = self._tokens.get(key, 0) + 1
        self._tokens[key] = token
        now = self.clock_now()
        expires = now + self.lease_ttl if self.lease_ttl > 0 else math.inf
        lease = Lease(key=key, owner=owner, token=token, granted_at=now,
                      expires_at=expires, renewed_at=now)
        self._leases[key] = lease
        self.leases_granted += 1
        if self.lease_listener is not None:
            self.lease_listener(lease)
        return lease

    def _refresh(self, key: str) -> None:
        """A re-entrant acquisition counts as a heartbeat."""
        lease = self._leases.get(key)
        if lease is not None and self.lease_ttl > 0:
            now = self.clock_now()
            lease.renewed_at = now
            lease.expires_at = now + self.lease_ttl

    def _drop_lease(self, key: str) -> None:
        self._leases.pop(key, None)

    # -- lease queries -----------------------------------------------------

    def lease_of(self, key: str) -> Optional[Lease]:
        return self._leases.get(key)

    def outstanding_leases(self) -> List[Lease]:
        """Every currently held lock's lease (both backends)."""
        return list(self._leases.values())

    def lease_expired(self, key: str) -> bool:
        lease = self._leases.get(key)
        if lease is None or self.lease_ttl <= 0:
            return False
        return self.clock_now() >= lease.expires_at

    def fencing_token(self, key: str) -> int:
        """The key's current fencing token (0 = never granted)."""
        return self._tokens.get(key, 0)

    def fence_valid(self, key: str, owner: str, token: int) -> bool:
        """Is a write stamped ``(owner, token)`` still authorized?

        True only while the lock is held by exactly that owner under
        exactly that grant.  Deliberately *not* a bare-expiry check: a
        lapsed-but-unstolen lease is harmless (no second runner
        exists), and failing it would dead-loop long windows.
        """
        lease = self._leases.get(key)
        if lease is None or lease.owner != owner or lease.token != token:
            return False
        return True

    # -- heartbeats --------------------------------------------------------

    def renew(self, key: str, owner: str) -> bool:
        """Extend one lease; False if ``owner`` no longer holds it."""
        lease = self._leases.get(key)
        if lease is None or lease.owner != owner:
            return False
        if self.lease_ttl > 0:
            now = self.clock_now()
            lease.renewed_at = now
            lease.expires_at = now + self.lease_ttl
            self.leases_renewed += 1
        return True

    def renew_owner(self, owner: str) -> int:
        """Heartbeat: renew every lease ``owner`` holds; returns how
        many were renewed."""
        count = 0
        for lease in list(self._leases.values()):
            if lease.owner == owner and self.renew(lease.key, owner):
                count += 1
        return count

    def locks_of(self, owner: str) -> List[str]:
        return sorted(lease.key for lease in self._leases.values()
                      if lease.owner == owner)

    # -- owner identity ----------------------------------------------------

    @staticmethod
    def owner_node(owner: str) -> Optional[str]:
        """Parse the node id out of an owner identity.

        Owners are ``"{service}@{node}#{message-id}"`` (one window of
        one service instance).  Returns None for owner strings that do
        not follow the convention (test-local owners).
        """
        at = owner.find("@")
        if at < 0:
            return None
        rest = owner[at + 1:]
        hash_pos = rest.find("#")
        node = rest[:hash_pos] if hash_pos >= 0 else rest
        return node or None

    # -- breaking ownership (the one public recovery surface) --------------

    def expire_lock(self, key: str, reason: str = "expired",
                    stolen_by: Optional[str] = None) -> Optional[str]:
        """Break the lock regardless of holder; returns the evicted
        owner (None when the lock was free).

        The ``lease_breaker`` runs *before* the entry is removed: the
        cluster uses it to abort the zombie's in-flight window, so its
        rollback lands before any new owner can observe state.
        """
        owner = self.holder(key)
        if owner is None:
            self._drop_lease(key)
            return None
        if self.lease_breaker is not None:
            self.lease_breaker(key, owner, reason)
        self._remove_entry(key, owner)
        self._drop_lease(key)
        if stolen_by is not None:
            self.leases_stolen += 1
        else:
            self.leases_expired += 1
        return owner

    def expire_node(self, node_id: str) -> List[str]:
        """Break every lock whose owner ran on ``node_id``.

        This is the failure-detector surface: the coordinator backend
        implements it as session expiry (ZooKeeper notices dead
        clients); the file backend has *no* failure detector — the
        paper's "completely opaque" NFS locks — so there it is a no-op
        and recovery waits for the lease to lapse.
        """
        raise NotImplementedError

    def abandon(self, key: str, owner: str) -> bool:
        """A dying holder walks away from its lock *without* releasing
        it — the entry (and lease) survive, exactly as an NFS lock file
        outlives the JVM that wrote it.  Recovery is the lease's job.
        """
        lease = self._leases.get(key)
        if lease is None or lease.owner != owner:
            return False
        self.locks_abandoned += 1
        return True

    # -- stats -------------------------------------------------------------

    def lease_stats(self) -> Dict[str, int]:
        return {
            "granted": self.leases_granted,
            "renewed": self.leases_renewed,
            "expired": self.leases_expired,
            "stolen": self.leases_stolen,
            "abandoned": self.locks_abandoned,
            "fence_rejections": self.fence_rejections,
            "outstanding": len(self._leases),
        }


class FileLockManager(LockManager):
    """NFS-file-style locks stored as entries in the shared store.

    ``release_visibility_delay`` models the NFS quirk: after a release,
    other clients may still *see* the lock as held for a short window
    (attribute caching).  The delay is in the owning clock's units; pass
    ``clock_now`` to enable it.
    """

    LOCK_PREFIX = "locks/"

    def __init__(self, store, clock_now: Optional[Callable[[], float]] = None,
                 release_visibility_delay: float = 0.0):
        super().__init__()
        self.store = store
        if clock_now is not None:
            self.clock_now = clock_now
        self.release_visibility_delay = release_visibility_delay
        #: (key -> (release_time, last_owner)) for the visibility quirk
        self._recently_released: Dict[str, Tuple[float, str]] = {}
        # statistics
        self.acquisitions = 0
        self.contentions = 0

    def _key(self, key: str) -> str:
        return self.LOCK_PREFIX + key

    def try_acquire(self, key: str, owner: str) -> bool:
        skey = self._key(key)
        if self.store.exists(skey):
            current = self.store.read(skey).decode()
            if current == owner:
                self._refresh(key)
                return True  # re-entrant
            if self.lease_expired(key):
                # the holder went silent past its TTL: steal.  The
                # breaker aborts any zombie window first, then the
                # entry is overwritten under a fresh fencing token.
                self.expire_lock(key, reason="lease-lapsed",
                                 stolen_by=owner)
            else:
                self.contentions += 1
                return False
        if self.release_visibility_delay > 0:
            stale = self._recently_released.get(key)
            if stale is not None:
                release_time, last_owner = stale
                now = self.clock_now()
                if now < release_time + self.release_visibility_delay \
                        and last_owner != owner:
                    # the quirk: a just-released lock still looks held
                    self.contentions += 1
                    return False
                del self._recently_released[key]
        self.store.write(skey, owner.encode())
        self.acquisitions += 1
        self._grant(key, owner)
        return True

    def release(self, key: str, owner: str) -> bool:
        skey = self._key(key)
        if not self.store.exists(skey):
            return False
        if self.store.read(skey).decode() != owner:
            return False
        self.store.delete(skey)
        self._drop_lease(key)
        if self.release_visibility_delay > 0:
            self._recently_released[key] = (self.clock_now(), owner)
        return True

    def holder(self, key: str) -> Optional[str]:
        skey = self._key(key)
        if not self.store.exists(skey):
            return None
        return self.store.read(skey).decode()

    def _remove_entry(self, key: str, owner: str) -> None:
        skey = self._key(key)
        if self.store.exists(skey):
            self.store.delete(skey)
        # an administratively broken lock must be immediately
        # acquirable: no stale visibility window survives it
        self._recently_released.pop(key, None)

    def expire_node(self, node_id: str) -> List[str]:
        """NFS has no failure detector: a dead node's lock files stay
        on the filer until their leases lapse (the recovery scanner's
        job).  Nothing to do here — which *is* the paper's complaint.
        """
        return []

    def force_release(self, key: str) -> None:
        """Administrative unlock (the opaque NFS escape hatch)."""
        self.store.delete(self._key(key))
        self._drop_lease(key)
        # the stale-visibility entry must go too: an operator who just
        # force-freed a lock expects the very next acquire to succeed,
        # not a bogus attribute-cache wait on a lock that no longer
        # exists
        self._recently_released.pop(key, None)

    def stale_visibility_remaining(self, key: str) -> float:
        """Seconds until a released-but-cached lock looks free.

        Discrete-event clients cannot busy-wait (the virtual clock only
        advances between events), so they *charge* this time and then
        call :meth:`expire_visibility` — modelling a blocking wait for
        the NFS attribute cache to refresh.
        """
        if self.release_visibility_delay <= 0:
            return 0.0
        stale = self._recently_released.get(key)
        if stale is None or self.store.exists(self._key(key)):
            return 0.0
        release_time, _owner = stale
        return max(0.0, release_time + self.release_visibility_delay
                   - self.clock_now())

    def expire_visibility(self, key: str) -> None:
        """Drop the visibility-cache entry (the wait is over)."""
        self._recently_released.pop(key, None)


class CoordinatorLockManager(LockManager):
    """A ZooKeeper-like coordinator: sessions + ephemeral locks.

    Owners register a *session*; locks are ephemeral nodes owned by a
    session.  Killing a session (the coordinator noticing a dead node)
    atomically releases all of its locks — removing the opaque stale-
    lock problem the paper attributes to NFS file locks.
    """

    def __init__(self):
        super().__init__()
        self._locks: Dict[str, str] = {}  # key -> session owner
        self._sessions: Dict[str, Set[str]] = {}  # owner -> keys held
        # statistics
        self.acquisitions = 0
        self.contentions = 0
        self.expired_sessions = 0

    def ensure_session(self, owner: str) -> None:
        self._sessions.setdefault(owner, set())

    def try_acquire(self, key: str, owner: str) -> bool:
        self.ensure_session(owner)
        current = self._locks.get(key)
        if current is not None and current != owner \
                and self.lease_expired(key):
            # silent holder past its TTL: steal under a fresh token
            self.expire_lock(key, reason="lease-lapsed", stolen_by=owner)
            current = None
        if current is None:
            self._locks[key] = owner
            self._sessions[owner].add(key)
            self.acquisitions += 1
            self._grant(key, owner)
            return True
        if current == owner:
            self._refresh(key)
            return True
        self.contentions += 1
        return False

    def release(self, key: str, owner: str) -> bool:
        if self._locks.get(key) != owner:
            return False
        del self._locks[key]
        self._sessions.get(owner, set()).discard(key)
        self._drop_lease(key)
        return True

    def holder(self, key: str) -> Optional[str]:
        return self._locks.get(key)

    def _remove_entry(self, key: str, owner: str) -> None:
        if self._locks.get(key) == owner:
            del self._locks[key]
        self._sessions.get(owner, set()).discard(key)

    def expire_session(self, owner: str) -> List[str]:
        """Session death: release every lock the owner held.

        Goes through :meth:`expire_lock` so the lease breaker fires for
        each key — a session expiry is an ownership change like any
        other and must abort zombie windows before freeing the locks.
        """
        keys = sorted(self._sessions.get(owner, set()))
        for key in keys:
            if self._locks.get(key) == owner:
                self.expire_lock(key, reason="session-expired")
        self._sessions.pop(owner, None)
        if keys:
            self.expired_sessions += 1
        return keys

    def expire_node(self, node_id: str) -> List[str]:
        """The coordinator's failure detector: expire every session
        whose owner identity places it on the dead node."""
        released: List[str] = []
        for owner in sorted(self._sessions):
            if self.owner_node(owner) == node_id:
                released.extend(self.expire_session(owner))
        return released

    def session_locks(self, owner: str) -> List[str]:
        return sorted(self._sessions.get(owner, set()))
