"""Simulated BlueBox platform: cluster, queue, services, store, locks."""

from .clock import RealClock, SimKernel, VirtualClock
from .cluster import Cluster, Node, ServiceInstance
from .messagequeue import (
    Message,
    MessageQueue,
    PRIORITY_INTERACTIVE,
    PRIORITY_LOW,
    PRIORITY_NORMAL,
    ReplyTo,
)
from .services import (
    Deferred,
    OperationContext,
    Requeue,
    ResponseEnvelope,
    Service,
    ServiceFault,
    simple_service,
)
from .store import DirectoryStore, SharedStore, StoreError
from .locks import CoordinatorLockManager, FileLockManager, LockManager
from .wsdl import WsdlDocument, WsdlOperation, WsdlParameter
from .xmlmsg import ServiceMessage, XmlElement, element_to_value, value_to_element
from .executor import LoadBalancingExecutor
from .monitoring import ConcurrencySampler, Counters, TraceEvent, TraceLog

__all__ = [
    "RealClock", "SimKernel", "VirtualClock",
    "Cluster", "Node", "ServiceInstance",
    "Message", "MessageQueue", "PRIORITY_INTERACTIVE", "PRIORITY_LOW",
    "PRIORITY_NORMAL", "ReplyTo",
    "Deferred", "OperationContext", "Requeue", "ResponseEnvelope",
    "Service", "ServiceFault", "simple_service",
    "DirectoryStore", "SharedStore", "StoreError",
    "CoordinatorLockManager", "FileLockManager", "LockManager",
    "WsdlDocument", "WsdlOperation", "WsdlParameter",
    "ServiceMessage", "XmlElement", "element_to_value", "value_to_element",
    "LoadBalancingExecutor",
    "ConcurrencySampler", "Counters", "TraceEvent", "TraceLog",
]
