"""The BlueBox message queue (simulated JMS).

Paper Section 1: "Service instances communicate by placing XML messages
on a message queue (the Java Message Service) which distributes the
messages to available nodes."  The queue is the heart of BlueBox — it
load-balances across service instances, prioritizes, buffers, and
re-delivers messages when an instance fails (Section 3.2), and it alone
decides where a fiber runs (Section 4.2: "Vinz executes no control over
where a fiber will be asked to run, leaving that in the hands of the
message queue").

Message *ordering* is delegated to a pluggable scheduling policy
(:mod:`repro.sched.fair`): the default :class:`~repro.sched.fair.
StrictPriorityPolicy` reproduces the paper's strict priority heap,
while :class:`~repro.sched.fair.DeficitRoundRobinPolicy` adds per-
workflow fairness with priority aging.  The queue keeps the delivery
bookkeeping (attempts, dead letters, wait statistics, hop spans)
either way.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..sched.fair import SchedulingPolicy, StrictPriorityPolicy

# Priorities: lower value = delivered first.  The paper (Section 5)
# specifies AwakeFiber requests to be low-priority so that bursts of
# parent wake-ups do not starve interactive traffic.
PRIORITY_INTERACTIVE = 2
PRIORITY_NORMAL = 5
PRIORITY_LOW = 8

#: how many individual waits the bounded reservoir keeps; the mean is
#: streamed exactly, percentiles come from this uniform sample
WAIT_RESERVOIR_SIZE = 4096


@dataclass
class ReplyTo:
    """Where a response should go.

    ``callback`` — an external caller's Python function (the test
    harness, a synchronous ``Run``).  ``service``/``operation`` — route
    the response back onto the queue as a new message, the mechanism
    behind non-blocking service requests: "the message queue is
    instructed to deliver the response not to the sending instance ...
    but instead to any workflow service instance by means of its
    ResumeFromCall operation" (Section 3.2).
    """

    callback: Optional[Callable[[Dict[str, Any]], None]] = None
    service: Optional[str] = None
    operation: Optional[str] = None
    extra: Dict[str, Any] = field(default_factory=dict)
    #: soft placement hint for the response message (locality policy)
    affinity: Optional[str] = None


@dataclass
class Message:
    """One message on the queue.

    ``affinity`` is a soft placement hint (a node id): the dispatcher
    prefers that node when it has a free slot, falling back to normal
    load balancing otherwise.  This implements the paper's Section 5
    future-work item of "mov[ing] the processing work to the last
    location of the data" (the Swarm idea) — a fiber resumed where it
    last ran hits the node's fiber cache.
    """

    id: int
    service: str
    operation: str
    body: Dict[str, Any]
    priority: int = PRIORITY_NORMAL
    reply_to: Optional[ReplyTo] = None
    enqueued_at: float = 0.0
    attempts: int = 0
    max_attempts: int = 10
    affinity: Optional[str] = None
    #: when the message first hit the queue (retry timeouts are
    #: measured from here, not from the latest re-enqueue)
    first_enqueued_at: float = 0.0
    #: optional per-message RetryPolicy (repro.faults.retry); None
    #: falls back to the cluster's platform policy
    retry_policy: Optional[Any] = None
    #: causal-tracing headers (repro.observe): the span that caused
    #: this send, the current queue-hop span, and the *first* hop span
    #: (retries parent to it, so redeliveries stay linked to the
    #: original lifetime).  0 everywhere when tracing is disabled.
    parent_span: int = 0
    span_id: int = 0
    origin_span_id: int = 0

    def __repr__(self) -> str:
        return (f"<Message #{self.id} {self.service}.{self.operation} "
                f"prio={self.priority} attempts={self.attempts}>")


class MessageQueue:
    """Per-service message scheduling plus delivery bookkeeping.

    The queue itself is passive data; the :class:`~repro.bluebox.cluster.
    Cluster` drives delivery by asking for the next deliverable message
    whenever an instance slot frees up.  Which message that is belongs
    to the scheduling ``policy``.
    """

    def __init__(self, policy: Optional[SchedulingPolicy] = None):
        self.policy: SchedulingPolicy = policy or StrictPriorityPolicy()
        self._seq = itertools.count()
        self._ids = itertools.count(1)
        #: messages whose retry policy is exhausted, kept for
        #: inspection and operator replay (never silently discarded)
        self.dead_letters: List[Message] = []
        #: observability wiring (set by the owning Cluster): the causal
        #: span tracer, the metrics registry, and a virtual-clock read.
        #: The queue owns the queue-hop span lifecycle: a hop opens at
        #: enqueue/push-back and closes at delivery.
        self.tracer = None
        self.metrics = None
        self.now_fn: Optional[Callable[[], float]] = None
        # statistics
        self.enqueued = 0
        self.delivered = 0
        self.redelivered = 0
        self.duplicated = 0
        self.dropped = 0
        self.dead_lettered = 0
        #: a bounded uniform sample of waits (reservoir, Algorithm R);
        #: the exact mean is streamed separately, so unbounded runs no
        #: longer grow memory with every delivery
        self.wait_times: List[float] = []
        self._wait_count = 0
        self._wait_total = 0.0
        self._reservoir_rng = random.Random(0x77A17)

    def _now(self, fallback: float = 0.0) -> float:
        return self.now_fn() if self.now_fn is not None else fallback

    def make_message(self, service: str, operation: str, body: Dict[str, Any],
                     priority: int = PRIORITY_NORMAL,
                     reply_to: Optional[ReplyTo] = None,
                     now: float = 0.0,
                     max_attempts: int = 10,
                     affinity: Optional[str] = None,
                     retry_policy: Optional[Any] = None,
                     parent_span: int = 0) -> Message:
        return Message(id=next(self._ids), service=service,
                       operation=operation, body=dict(body),
                       priority=priority, reply_to=reply_to,
                       enqueued_at=now, max_attempts=max_attempts,
                       affinity=affinity, first_enqueued_at=now,
                       retry_policy=retry_policy, parent_span=parent_span)

    def _begin_hop(self, message: Message, now: float,
                   retry: bool = False) -> None:
        """Open a queue-hop span for one stay on the queue.  A retry
        hop parents to the message's *original* hop, keeping fault
        redeliveries attached to the lifetime they belong to."""
        if retry and message.origin_span_id:
            parent = message.origin_span_id
            extra = {"attempt": message.attempts,
                     "retry_of": message.origin_span_id}
        else:
            parent = message.parent_span
            extra = {}
        message.span_id = self.tracer.begin(
            f"hop:{message.service}.{message.operation}", kind="queue-hop",
            start=now, parent_id=parent or None, msg=message.id,
            service=message.service, operation=message.operation,
            **_trace_ids(message.body), **extra)
        if not message.origin_span_id:
            message.origin_span_id = message.span_id

    def peek_message(self, service: str,
                     now: Optional[float] = None) -> Optional[Message]:
        """The message the policy would deliver next, without popping."""
        return self.policy.peek(service, self._now() if now is None else now)

    def enqueue(self, message: Message, now: float) -> None:
        message.enqueued_at = now
        self.policy.push(message.service, message, next(self._seq), now)
        self.enqueued += 1
        if self.tracer is not None and self.tracer.enabled:
            self._begin_hop(message, now)

    def requeue(self, message: Message, now: float,
                cap: Optional[int] = None, push: bool = True) -> bool:
        """Put a message back after a failed delivery.

        ``cap`` overrides the message's own ``max_attempts`` (a
        RetryPolicy's bound).  Once the cap is exhausted the message
        moves to the dead-letter queue and False is returned — the
        poison-message guard, upgraded from a silent drop.  With
        ``push=False`` only the attempt accounting happens; the caller
        re-inserts via :meth:`push_back` after its backoff delay.
        """
        message.attempts += 1
        limit = cap if cap is not None else message.max_attempts
        if message.attempts >= limit:
            self.dead_letter(message)
            return False
        self.redelivered += 1
        if push:
            self.push_back(message, now=now)
        return True

    def push_back(self, message: Message,
                  now: Optional[float] = None) -> None:
        """Re-insert an already-accounted message (backoff expiry,
        delivery-delay faults, duplicate deliveries).

        ``enqueued_at`` is restamped to the re-insertion instant:
        ``queue.wait`` measures each *stay* on the queue, so a backoff
        retry must not be charged the time it spent off the queue (the
        overall retry budget still runs from ``first_enqueued_at``).
        """
        now = self._now(message.enqueued_at) if now is None else now
        message.enqueued_at = now
        self.policy.push(message.service, message, next(self._seq), now)
        if self.tracer is not None and self.tracer.enabled:
            self._begin_hop(message, now, retry=True)

    def dead_letter(self, message: Message) -> None:
        """Move a message to the dead-letter queue.

        ``dropped`` keeps counting (backwards-compatible statistic);
        the message itself is retained for inspection/replay instead of
        being discarded.
        """
        self.dropped += 1
        self.dead_lettered += 1
        self.dead_letters.append(message)
        if self.tracer is not None and self.tracer.enabled \
                and message.origin_span_id:
            self.tracer.annotate(message.origin_span_id,
                                 self._now(message.enqueued_at),
                                 "dead-letter", msg=message.id,
                                 attempts=message.attempts)

    def dead_letter_ids(self) -> List[int]:
        return [m.id for m in self.dead_letters]

    def pop_next(self, service: str, now: float) -> Optional[Message]:
        """Remove and return the next message the policy schedules."""
        message = self.policy.pop(service, now)
        if message is None:
            return None
        self.delivered += 1
        wait = now - message.enqueued_at
        self._record_wait(wait)
        if self.metrics is not None and self.metrics.enabled:
            self.metrics.histogram("queue.wait").observe(wait)
        if self.tracer is not None and self.tracer.enabled \
                and message.span_id:
            self.tracer.end(message.span_id, end=now, wait=wait)
        return message

    def peek_depth(self, service: str) -> int:
        return self.policy.depth(service)

    def peek_priority(self, service: str,
                      now: Optional[float] = None
                      ) -> Optional[Tuple[float, int]]:
        """The (priority, seq) of the next message, without popping.

        Under a fair policy the priority is the *effective* (aged)
        priority, so cross-service comparisons see what the scheduler
        sees."""
        return self.policy.peek_priority(service,
                                         self._now() if now is None else now)

    def total_depth(self) -> int:
        return self.policy.total_depth()

    def services_with_messages(self) -> List[str]:
        return self.policy.services()

    # -- wait statistics ----------------------------------------------------

    def _record_wait(self, wait: float) -> None:
        self._wait_count += 1
        self._wait_total += wait
        if len(self.wait_times) < WAIT_RESERVOIR_SIZE:
            self.wait_times.append(wait)
        else:
            slot = self._reservoir_rng.randrange(self._wait_count)
            if slot < WAIT_RESERVOIR_SIZE:
                self.wait_times[slot] = wait

    def wait_count(self) -> int:
        """Deliveries recorded (exact, streamed)."""
        return self._wait_count

    def wait_sum(self) -> float:
        """Total seconds waited across all deliveries (exact)."""
        return self._wait_total

    def mean_wait(self) -> float:
        if not self._wait_count:
            return 0.0
        return self._wait_total / self._wait_count

    def wait_percentile(self, q: float) -> float:
        """Approximate wait percentile from the reservoir sample
        (``q`` in [0, 1]) — the metrics-off fallback for p99."""
        if not self.wait_times:
            return 0.0
        ordered = sorted(self.wait_times)
        index = min(len(ordered) - 1, int(q * len(ordered)))
        return ordered[index]


def _trace_ids(body: Dict[str, Any]) -> Dict[str, Any]:
    """Pull workflow identifiers out of a body for trace readability."""
    out = {}
    for key in ("task", "fiber"):
        if key in body:
            out[key] = body[key]
    return out
