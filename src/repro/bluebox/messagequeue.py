"""The BlueBox message queue (simulated JMS).

Paper Section 1: "Service instances communicate by placing XML messages
on a message queue (the Java Message Service) which distributes the
messages to available nodes."  The queue is the heart of BlueBox — it
load-balances across service instances, prioritizes, buffers, and
re-delivers messages when an instance fails (Section 3.2), and it alone
decides where a fiber runs (Section 4.2: "Vinz executes no control over
where a fiber will be asked to run, leaving that in the hands of the
message queue").
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

# Priorities: lower value = delivered first.  The paper (Section 5)
# specifies AwakeFiber requests to be low-priority so that bursts of
# parent wake-ups do not starve interactive traffic.
PRIORITY_INTERACTIVE = 2
PRIORITY_NORMAL = 5
PRIORITY_LOW = 8


@dataclass
class ReplyTo:
    """Where a response should go.

    ``callback`` — an external caller's Python function (the test
    harness, a synchronous ``Run``).  ``service``/``operation`` — route
    the response back onto the queue as a new message, the mechanism
    behind non-blocking service requests: "the message queue is
    instructed to deliver the response not to the sending instance ...
    but instead to any workflow service instance by means of its
    ResumeFromCall operation" (Section 3.2).
    """

    callback: Optional[Callable[[Dict[str, Any]], None]] = None
    service: Optional[str] = None
    operation: Optional[str] = None
    extra: Dict[str, Any] = field(default_factory=dict)
    #: soft placement hint for the response message (locality policy)
    affinity: Optional[str] = None


@dataclass
class Message:
    """One message on the queue.

    ``affinity`` is a soft placement hint (a node id): the dispatcher
    prefers that node when it has a free slot, falling back to normal
    load balancing otherwise.  This implements the paper's Section 5
    future-work item of "mov[ing] the processing work to the last
    location of the data" (the Swarm idea) — a fiber resumed where it
    last ran hits the node's fiber cache.
    """

    id: int
    service: str
    operation: str
    body: Dict[str, Any]
    priority: int = PRIORITY_NORMAL
    reply_to: Optional[ReplyTo] = None
    enqueued_at: float = 0.0
    attempts: int = 0
    max_attempts: int = 10
    affinity: Optional[str] = None
    #: when the message first hit the queue (retry timeouts are
    #: measured from here, not from the latest re-enqueue)
    first_enqueued_at: float = 0.0
    #: optional per-message RetryPolicy (repro.faults.retry); None
    #: falls back to the cluster's platform policy
    retry_policy: Optional[Any] = None

    def __repr__(self) -> str:
        return (f"<Message #{self.id} {self.service}.{self.operation} "
                f"prio={self.priority} attempts={self.attempts}>")


class MessageQueue:
    """Per-service priority queues plus delivery bookkeeping.

    The queue itself is passive data; the :class:`~repro.bluebox.cluster.
    Cluster` drives delivery by asking for the next deliverable message
    whenever an instance slot frees up.
    """

    def __init__(self):
        self._queues: Dict[str, List[Tuple[int, int, Message]]] = {}
        self._seq = itertools.count()
        self._ids = itertools.count(1)
        #: messages whose retry policy is exhausted, kept for
        #: inspection and operator replay (never silently discarded)
        self.dead_letters: List[Message] = []
        # statistics
        self.enqueued = 0
        self.delivered = 0
        self.redelivered = 0
        self.duplicated = 0
        self.dropped = 0
        self.dead_lettered = 0
        self.wait_times: List[float] = []

    def make_message(self, service: str, operation: str, body: Dict[str, Any],
                     priority: int = PRIORITY_NORMAL,
                     reply_to: Optional[ReplyTo] = None,
                     now: float = 0.0,
                     max_attempts: int = 10,
                     affinity: Optional[str] = None,
                     retry_policy: Optional[Any] = None) -> Message:
        return Message(id=next(self._ids), service=service,
                       operation=operation, body=dict(body),
                       priority=priority, reply_to=reply_to,
                       enqueued_at=now, max_attempts=max_attempts,
                       affinity=affinity, first_enqueued_at=now,
                       retry_policy=retry_policy)

    def peek_message(self, service: str) -> Optional[Message]:
        """The next message for ``service``, without popping it."""
        heap = self._queues.get(service)
        if not heap:
            return None
        return heap[0][2]

    def enqueue(self, message: Message, now: float) -> None:
        message.enqueued_at = now
        heap = self._queues.setdefault(message.service, [])
        heapq.heappush(heap, (message.priority, next(self._seq), message))
        self.enqueued += 1

    def requeue(self, message: Message, now: float,
                cap: Optional[int] = None, push: bool = True) -> bool:
        """Put a message back after a failed delivery.

        ``cap`` overrides the message's own ``max_attempts`` (a
        RetryPolicy's bound).  Once the cap is exhausted the message
        moves to the dead-letter queue and False is returned — the
        poison-message guard, upgraded from a silent drop.  With
        ``push=False`` only the attempt accounting happens; the caller
        re-inserts via :meth:`push_back` after its backoff delay.
        """
        message.attempts += 1
        limit = cap if cap is not None else message.max_attempts
        if message.attempts >= limit:
            self.dead_letter(message)
            return False
        self.redelivered += 1
        if push:
            self.push_back(message)
        return True

    def push_back(self, message: Message) -> None:
        """Re-insert an already-accounted message (backoff expiry,
        delivery-delay faults, duplicate deliveries)."""
        heap = self._queues.setdefault(message.service, [])
        heapq.heappush(heap, (message.priority, next(self._seq), message))

    def dead_letter(self, message: Message) -> None:
        """Move a message to the dead-letter queue.

        ``dropped`` keeps counting (backwards-compatible statistic);
        the message itself is retained for inspection/replay instead of
        being discarded.
        """
        self.dropped += 1
        self.dead_lettered += 1
        self.dead_letters.append(message)

    def dead_letter_ids(self) -> List[int]:
        return [m.id for m in self.dead_letters]

    def pop_next(self, service: str, now: float) -> Optional[Message]:
        """Remove and return the highest-priority message for ``service``."""
        heap = self._queues.get(service)
        if not heap:
            return None
        _prio, _seq, message = heapq.heappop(heap)
        self.delivered += 1
        self.wait_times.append(now - message.enqueued_at)
        return message

    def peek_depth(self, service: str) -> int:
        return len(self._queues.get(service, []))

    def peek_priority(self, service: str) -> Optional[Tuple[int, int]]:
        """The (priority, seq) of the next message, without popping."""
        heap = self._queues.get(service)
        if not heap:
            return None
        priority, seq, _message = heap[0]
        return (priority, seq)

    def total_depth(self) -> int:
        return sum(len(h) for h in self._queues.values())

    def services_with_messages(self) -> List[str]:
        return [s for s, h in self._queues.items() if h]

    def mean_wait(self) -> float:
        if not self.wait_times:
            return 0.0
        return sum(self.wait_times) / len(self.wait_times)
