"""BlueBox's load-balancing ExecutorService equivalent.

Paper Section 4.1: "the BlueBox platform provides an ExecutorService
that integrates with its native load balancing heuristics, and Vinz
configures futures to be created using this implementation."  Here the
integration is a cluster-wide concurrency budget: the pool refuses to
run more simultaneous future bodies than the cluster has spare
capacity, queueing the rest — which is what keeps a future-happy
workflow from starving co-located services.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Any, Callable, Deque, Optional, Tuple

from ..gvm.futures import (
    FutureExecutor,
    GozerFuture,
    ThreadPoolFutureExecutor,
    exit_fiber_thread,
)


class ExecutorShutdownError(RuntimeError):
    """The executor was shut down while this future was still queued.

    Raised at ``touch`` time: a thunk that never ran can never
    determine its future, and an undetermined future would otherwise
    block the toucher forever.
    """


class LoadBalancingExecutor(FutureExecutor):
    """A bounded, observable future executor.

    ``capacity`` is the cluster's concurrent-future budget.  Submissions
    beyond it wait in FIFO order.  ``peak_in_use`` and
    ``total_submitted`` feed the monitoring layer.
    """

    def __init__(self, capacity: int = 8, max_workers: Optional[int] = None):
        self.capacity = capacity
        self._pool = ThreadPoolFutureExecutor(
            max_workers=max_workers or capacity)
        self._lock = threading.Lock()
        self._in_use = 0
        self._waiting: Deque[Tuple[Callable[[], Any], GozerFuture]] = deque()
        # statistics
        self.total_submitted = 0
        self.peak_in_use = 0
        self.peak_queue = 0

    def submit(self, thunk: Callable[[], Any], label: str = "future") -> GozerFuture:
        future = GozerFuture(label)
        with self._lock:
            self.total_submitted += 1
            if self._in_use < self.capacity:
                self._in_use += 1
                self.peak_in_use = max(self.peak_in_use, self._in_use)
                self._launch(thunk, future)
            else:
                self._waiting.append((thunk, future))
                self.peak_queue = max(self.peak_queue, len(self._waiting))
        return future

    def _launch(self, thunk: Callable[[], Any], future: GozerFuture) -> None:
        def run():
            exit_fiber_thread()
            future._mark_running()
            try:
                future._determine(thunk())
            except BaseException as exc:  # noqa: BLE001 - re-raised at touch
                future._fail(exc)
            finally:
                self._release()

        self._pool._pool.submit(run)

    def _release(self) -> None:
        with self._lock:
            if self._waiting:
                thunk, future = self._waiting.popleft()
                self._launch(thunk, future)
            else:
                self._in_use -= 1

    def shutdown(self) -> None:
        # queued thunks will never run: fail their futures with a typed
        # error so a later touch raises instead of hanging forever
        with self._lock:
            waiting, self._waiting = list(self._waiting), deque()
        for _thunk, future in waiting:
            future._fail(ExecutorShutdownError(
                f"executor shut down with future {future.label!r} "
                f"still queued"))
        self._pool.shutdown()
