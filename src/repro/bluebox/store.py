"""The shared persistent store (the paper's NFS filer).

"A shared NFS filesystem provides all instances with read and write
access to this data" (paper Section 4.2).  Vinz writes serialized fiber
state here and any node can read it back.  The store models per-
operation and per-byte IO costs so the serialization benchmark (S4a)
can reproduce the paper's finding that compressing before writing is a
net win: smaller payloads save more simulated IO time than the
compression costs.

``DirectoryStore`` additionally mirrors the data onto a real directory,
for tests that want to survive process boundaries.

Subclasses override the ``_get``/``_put``/``_remove``/``_contains``/
``_key_list`` storage primitives (the durable sharded store in
:mod:`repro.durastore` routes them across backends); the public API —
cost model, statistics, fault-injection consultation — lives here once.
"""

from __future__ import annotations

import os
from typing import Any, Dict, List, Optional


class StoreError(KeyError):
    """A missing key or failed store operation."""


class StoreWriteError(StoreError):
    """A write failed before any state changed (injected IO fault)."""

    #: propagate through the GVM instead of becoming a Gozer condition:
    #: IO faults abort the operation window and are retried by the
    #: platform, invisibly to the workflow program
    tunnels_through_vm = True


class StoreReadError(StoreError):
    """A read failed at the IO layer (injected fault), key intact."""

    tunnels_through_vm = True


class StoreCorruptionError(StoreError):
    """A read returned a corrupt block, detected by the store's
    integrity check (modelled as checksummed NFS: corruption surfaces
    as an IO error rather than silently returning garbage)."""

    tunnels_through_vm = True


class FencedWriteError(StoreError):
    """A fiber-state write was rejected by the fencing check: the
    writer's lock lease was expired or stolen, so a newer owner may
    already be running — the zombie's window aborts instead of
    corrupting state (Netherite-style fencing)."""

    tunnels_through_vm = True


class SharedStore:
    """In-memory shared key/value store with an IO cost model.

    ``op_latency`` is charged per read/write (seek + protocol), and
    ``per_byte`` per byte moved — the knobs that make compression
    trade-offs measurable.  Costs are *reported*, not slept: callers in
    the discrete-event world charge them to the simulation clock.
    """

    #: Cost-model calibration (2010-era NFS with many small, synchronous
    #: writers): ~2 ms per operation (RPC + commit) and ~2 µs/byte
    #: (≈0.5 MB/s effective per-client throughput under contention).
    #: With these numbers a typical 4 KB raw fiber blob costs ~10 ms to
    #: write while its ~2 KB deflated form costs ~6 ms — which is what
    #: makes compression "a net win by reducing IO costs considerably"
    #: (paper Section 4.2).

    def __init__(self, op_latency: float = 0.002,
                 per_byte: float = 2.0e-6):
        self._data: Dict[str, bytes] = {}
        self.op_latency = op_latency
        self.per_byte = per_byte
        #: optional fault-injection hooks (repro.faults.FaultInjector);
        #: consulted before every read/write/delete and may raise
        #: StoreError
        self.injector = None
        # statistics
        self.reads = 0
        self.writes = 0
        self.deletes = 0
        self.bytes_read = 0
        self.bytes_written = 0
        self.faulted_ops = 0
        #: charged IO operations / simulated IO seconds, the raw
        #: material of the store-scaling benchmark (group commit's
        #: claim is exactly "fewer ops, less IO time")
        self.io_ops = 0
        self.io_seconds = 0.0

    # -- storage primitives (what subclasses reroute) ---------------------

    def _get(self, key: str) -> Optional[bytes]:
        return self._data.get(key)

    def _put(self, key: str, data: bytes) -> None:
        self._data[key] = data

    def _remove(self, key: str) -> None:
        self._data.pop(key, None)

    def _contains(self, key: str) -> bool:
        return key in self._data

    def _key_list(self) -> List[str]:
        return list(self._data)

    # -- fault-injection consultation -------------------------------------

    def _consult_write(self, key: str) -> None:
        if self.injector is not None:
            try:
                self.injector.on_store_write(key)
            except StoreError:
                self.faulted_ops += 1
                raise

    def _consult_read(self, key: str) -> None:
        if self.injector is not None:
            try:
                self.injector.on_store_read(key)
            except StoreError:
                self.faulted_ops += 1
                raise

    def _checked_lookup(self, key: str) -> bytes:
        """The one missing-key/injector path every read-side operation
        shares: a fault campaign that blacks out a key is visible to
        ``read``, ``read_cost`` and ``size`` alike."""
        self._consult_read(key)
        data = self._get(key)
        if data is None:
            raise StoreError(key)
        return data

    def _account(self, cost: float) -> float:
        self.io_ops += 1
        self.io_seconds += cost
        return cost

    # -- core API ---------------------------------------------------------

    def write(self, key: str, data: bytes) -> float:
        """Store ``data``; return the simulated IO cost in seconds."""
        if not isinstance(data, bytes):
            raise TypeError("store values must be bytes")
        self._consult_write(key)
        self._put(key, data)
        self.writes += 1
        self.bytes_written += len(data)
        return self._account(self.cost(len(data)))

    def read(self, key: str) -> bytes:
        data = self._checked_lookup(key)
        self.reads += 1
        self.bytes_read += len(data)
        self._account(self.cost(len(data)))
        return data

    def read_cost(self, key: str) -> float:
        """Probe the cost a :meth:`read` of ``key`` would charge
        (uncounted — no payload moves)."""
        return self.cost(len(self._checked_lookup(key)))

    def delete(self, key: str) -> float:
        """Remove ``key``; return the simulated IO cost in seconds.

        Deletes are store IO too: they charge ``op_latency``, count in
        the statistics, and the fault injector may veto them exactly
        like writes (a delete mutates the filer).  Deleting a missing
        key is a no-op but still costs the round trip.
        """
        self._consult_write(key)
        self._remove(key)
        self.deletes += 1
        return self._account(self.cost(0))

    def exists(self, key: str) -> bool:
        return self._contains(key)

    def keys(self, prefix: str = "") -> List[str]:
        return sorted(k for k in self._key_list() if k.startswith(prefix))

    def size(self, key: str) -> int:
        return len(self._checked_lookup(key))

    def cost(self, nbytes: int) -> float:
        """The simulated seconds one IO of ``nbytes`` takes."""
        return self.op_latency + nbytes * self.per_byte

    # -- crash-recovery support (no stats impact) -------------------------

    def snapshot_value(self, key: str) -> Optional[bytes]:
        """Peek a value for later restoration (uncounted)."""
        return self._get(key)

    def restore_value(self, key: str, value: Optional[bytes]) -> None:
        """Put back a snapshot taken with :meth:`snapshot_value`
        (uncounted) — used to roll back writes of an aborted operation."""
        if value is None:
            self._remove(key)
        else:
            self._put(key, value)

    def rollback_value(self, key: str, value: Optional[bytes]) -> None:
        """Abort-undo entry point: like :meth:`restore_value`, but a
        journaled store also scrubs the key from its uncommitted batch
        so rollback and journal replay compose (overridden there)."""
        self.restore_value(key, value)

    def total_bytes(self) -> int:
        return sum(len(self._get(k) or b"") for k in self._key_list())

    # -- reporting ---------------------------------------------------------

    def stats_snapshot(self) -> Dict[str, Any]:
        """The store section of the observability report."""
        return {
            "kind": type(self).__name__,
            "reads": self.reads,
            "writes": self.writes,
            "deletes": self.deletes,
            "bytes_read": self.bytes_read,
            "bytes_written": self.bytes_written,
            "faulted_ops": self.faulted_ops,
            "io_ops": self.io_ops,
            "io_seconds": self.io_seconds,
        }


class DirectoryStore(SharedStore):
    """A shared store additionally backed by a real directory.

    Used by the persistence integration tests to prove a fiber written
    by one process can be resumed by another — the property the paper's
    NFS setup provides between JVMs.
    """

    def __init__(self, root: str, **kwargs):
        super().__init__(**kwargs)
        self.root = root
        os.makedirs(root, exist_ok=True)
        # hydrate the in-memory view from whatever is on disk
        for name in os.listdir(root):
            path = os.path.join(root, name)
            if os.path.isfile(path):
                with open(path, "rb") as fh:
                    self._data[self._decode_name(name)] = fh.read()

    @staticmethod
    def _encode_name(key: str) -> str:
        # escape the escape character first: a key literally containing
        # "%2F" must not collide with a key containing "/"
        return key.replace("%", "%25").replace("/", "%2F")

    @staticmethod
    def _decode_name(name: str) -> str:
        return name.replace("%2F", "/").replace("%25", "%")

    def _put(self, key: str, data: bytes) -> None:
        super()._put(key, data)
        path = os.path.join(self.root, self._encode_name(key))
        tmp = path + ".tmp"
        with open(tmp, "wb") as fh:
            fh.write(data)
        os.replace(tmp, path)

    def _remove(self, key: str) -> None:
        super()._remove(key)
        path = os.path.join(self.root, self._encode_name(key))
        if os.path.exists(path):
            os.unlink(path)
