"""The shared persistent store (the paper's NFS filer).

"A shared NFS filesystem provides all instances with read and write
access to this data" (paper Section 4.2).  Vinz writes serialized fiber
state here and any node can read it back.  The store models per-
operation and per-byte IO costs so the serialization benchmark (S4a)
can reproduce the paper's finding that compressing before writing is a
net win: smaller payloads save more simulated IO time than the
compression costs.

``DirectoryStore`` additionally mirrors the data onto a real directory,
for tests that want to survive process boundaries.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional


class StoreError(KeyError):
    """A missing key or failed store operation."""


class StoreWriteError(StoreError):
    """A write failed before any state changed (injected IO fault)."""

    #: propagate through the GVM instead of becoming a Gozer condition:
    #: IO faults abort the operation window and are retried by the
    #: platform, invisibly to the workflow program
    tunnels_through_vm = True


class StoreReadError(StoreError):
    """A read failed at the IO layer (injected fault), key intact."""

    tunnels_through_vm = True


class StoreCorruptionError(StoreError):
    """A read returned a corrupt block, detected by the store's
    integrity check (modelled as checksummed NFS: corruption surfaces
    as an IO error rather than silently returning garbage)."""

    tunnels_through_vm = True


class SharedStore:
    """In-memory shared key/value store with an IO cost model.

    ``op_latency`` is charged per read/write (seek + protocol), and
    ``per_byte`` per byte moved — the knobs that make compression
    trade-offs measurable.  Costs are *reported*, not slept: callers in
    the discrete-event world charge them to the simulation clock.
    """

    #: Cost-model calibration (2010-era NFS with many small, synchronous
    #: writers): ~2 ms per operation (RPC + commit) and ~2 µs/byte
    #: (≈0.5 MB/s effective per-client throughput under contention).
    #: With these numbers a typical 4 KB raw fiber blob costs ~10 ms to
    #: write while its ~2 KB deflated form costs ~6 ms — which is what
    #: makes compression "a net win by reducing IO costs considerably"
    #: (paper Section 4.2).

    def __init__(self, op_latency: float = 0.002,
                 per_byte: float = 2.0e-6):
        self._data: Dict[str, bytes] = {}
        self.op_latency = op_latency
        self.per_byte = per_byte
        #: optional fault-injection hooks (repro.faults.FaultInjector);
        #: consulted before every read/write and may raise StoreError
        self.injector = None
        # statistics
        self.reads = 0
        self.writes = 0
        self.bytes_read = 0
        self.bytes_written = 0
        self.faulted_ops = 0

    # -- core API ---------------------------------------------------------

    def write(self, key: str, data: bytes) -> float:
        """Store ``data``; return the simulated IO cost in seconds."""
        if not isinstance(data, bytes):
            raise TypeError("store values must be bytes")
        if self.injector is not None:
            try:
                self.injector.on_store_write(key)
            except StoreError:
                self.faulted_ops += 1
                raise
        self._data[key] = data
        self.writes += 1
        self.bytes_written += len(data)
        return self.cost(len(data))

    def read(self, key: str) -> bytes:
        if self.injector is not None:
            try:
                self.injector.on_store_read(key)
            except StoreError:
                self.faulted_ops += 1
                raise
        data = self._data.get(key)
        if data is None:
            raise StoreError(key)
        self.reads += 1
        self.bytes_read += len(data)
        return data

    def read_cost(self, key: str) -> float:
        data = self._data.get(key)
        if data is None:
            raise StoreError(key)
        return self.cost(len(data))

    def delete(self, key: str) -> None:
        self._data.pop(key, None)

    def exists(self, key: str) -> bool:
        return key in self._data

    def keys(self, prefix: str = "") -> List[str]:
        return sorted(k for k in self._data if k.startswith(prefix))

    def size(self, key: str) -> int:
        data = self._data.get(key)
        if data is None:
            raise StoreError(key)
        return len(data)

    def cost(self, nbytes: int) -> float:
        """The simulated seconds one IO of ``nbytes`` takes."""
        return self.op_latency + nbytes * self.per_byte

    # -- crash-recovery support (no stats impact) -------------------------

    def snapshot_value(self, key: str) -> Optional[bytes]:
        """Peek a value for later restoration (uncounted)."""
        return self._data.get(key)

    def restore_value(self, key: str, value: Optional[bytes]) -> None:
        """Put back a snapshot taken with :meth:`snapshot_value`
        (uncounted) — used to roll back writes of an aborted operation."""
        if value is None:
            self._data.pop(key, None)
        else:
            self._data[key] = value

    def total_bytes(self) -> int:
        return sum(len(v) for v in self._data.values())


class DirectoryStore(SharedStore):
    """A shared store additionally backed by a real directory.

    Used by the persistence integration tests to prove a fiber written
    by one process can be resumed by another — the property the paper's
    NFS setup provides between JVMs.
    """

    def __init__(self, root: str, **kwargs):
        super().__init__(**kwargs)
        self.root = root
        os.makedirs(root, exist_ok=True)
        # hydrate the in-memory view from whatever is on disk
        for name in os.listdir(root):
            path = os.path.join(root, name)
            if os.path.isfile(path):
                with open(path, "rb") as fh:
                    self._data[self._decode_name(name)] = fh.read()

    @staticmethod
    def _encode_name(key: str) -> str:
        return key.replace("/", "%2F")

    @staticmethod
    def _decode_name(name: str) -> str:
        return name.replace("%2F", "/")

    def write(self, key: str, data: bytes) -> float:
        cost = super().write(key, data)
        path = os.path.join(self.root, self._encode_name(key))
        tmp = path + ".tmp"
        with open(tmp, "wb") as fh:
            fh.write(data)
        os.replace(tmp, path)
        return cost

    def delete(self, key: str) -> None:
        super().delete(key)
        path = os.path.join(self.root, self._encode_name(key))
        if os.path.exists(path):
            os.unlink(path)

    def restore_value(self, key: str, value: Optional[bytes]) -> None:
        super().restore_value(key, value)
        path = os.path.join(self.root, self._encode_name(key))
        if value is None:
            if os.path.exists(path):
                os.unlink(path)
        else:
            with open(path, "wb") as fh:
                fh.write(value)
