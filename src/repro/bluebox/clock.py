"""Clocks and the discrete-event simulation kernel.

The paper's BlueBox is a real distributed cluster; our stand-in runs as
a discrete-event simulation so that benchmarks over "12-hour" tasks
(Section 5's production statistics) complete in milliseconds and every
run is deterministic.  Handlers execute real Python instantly but
*charge* simulated seconds; the kernel advances virtual time from event
to event.
"""

from __future__ import annotations

import heapq
import itertools
import time
from typing import Any, Callable, List, Optional, Tuple


class Clock:
    """Abstract time source."""

    def now(self) -> float:
        raise NotImplementedError


class RealClock(Clock):
    """Wall-clock time (monotonic)."""

    def now(self) -> float:
        return time.monotonic()


class VirtualClock(Clock):
    """Simulated time, advanced only by the kernel."""

    def __init__(self, start: float = 0.0):
        self._now = start

    def now(self) -> float:
        return self._now

    def _advance_to(self, t: float) -> None:
        if t < self._now:
            raise ValueError(f"time cannot go backwards ({t} < {self._now})")
        self._now = t


class SimKernel:
    """A minimal discrete-event scheduler.

    Events are ``(time, priority, seq, fn)``; ``run_until_idle`` pops
    them in order, advancing the virtual clock.  ``seq`` breaks ties
    deterministically (FIFO among same-time, same-priority events).
    """

    def __init__(self, clock: Optional[VirtualClock] = None):
        self.clock = clock if clock is not None else VirtualClock()
        self._events: List[Tuple[float, int, int, Callable[[], None]]] = []
        self._seq = itertools.count()
        self._running = False
        #: safety valve against runaway simulations
        self.max_events = 10_000_000
        self.processed_events = 0

    @property
    def now(self) -> float:
        return self.clock.now()

    def schedule(self, delay: float, fn: Callable[[], None],
                 priority: int = 0) -> None:
        """Run ``fn`` at ``now + delay``.  Lower priority runs first
        among simultaneous events."""
        if delay < 0:
            raise ValueError("cannot schedule into the past")
        heapq.heappush(self._events,
                       (self.now + delay, priority, next(self._seq), fn))

    def schedule_at(self, when: float, fn: Callable[[], None],
                    priority: int = 0) -> None:
        self.schedule(max(0.0, when - self.now), fn, priority)

    def run_until_idle(self) -> float:
        """Process events until none remain; return the final time."""
        if self._running:
            raise RuntimeError("kernel is already running (no re-entrancy)")
        self._running = True
        try:
            while self._events:
                when, _priority, _seq, fn = heapq.heappop(self._events)
                self.clock._advance_to(when)
                fn()
                self.processed_events += 1
                if self.processed_events > self.max_events:
                    raise RuntimeError(
                        f"simulation exceeded {self.max_events} events; "
                        "likely a livelock")
            return self.now
        finally:
            self._running = False

    def run_until(self, predicate: Callable[[], bool],
                  deadline: Optional[float] = None) -> bool:
        """Process events until ``predicate()`` is true.

        Returns True if the predicate was satisfied, False if events ran
        out (or ``deadline`` virtual time passed) first.
        """
        if self._running:
            raise RuntimeError("kernel is already running (no re-entrancy)")
        if predicate():
            return True
        self._running = True
        try:
            while self._events:
                when, _priority, _seq, fn = heapq.heappop(self._events)
                if deadline is not None and when > deadline:
                    heapq.heappush(self._events, (when, _priority, _seq, fn))
                    return predicate()
                self.clock._advance_to(when)
                fn()
                self.processed_events += 1
                if predicate():
                    return True
                if self.processed_events > self.max_events:
                    raise RuntimeError("simulation event limit exceeded")
            return predicate()
        finally:
            self._running = False

    def pending(self) -> int:
        return len(self._events)
